package decvec_test

import (
	"testing"

	"decvec"
)

// cacheSuite returns a fresh suite backed by a store at dir, as dvabench
// builds one.
func cacheSuite(t *testing.T, dir string) *decvec.Suite {
	t.Helper()
	store, err := decvec.OpenCache(dir, decvec.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := decvec.NewSuite(benchScale)
	s.Disk = store
	return s
}

// TestCacheEndToEnd is the PR's acceptance property at the facade level: a
// warm cache serves a repeat experiment run with zero simulator invocations
// and byte-identical reports, and a full verification pass agrees with the
// store.
func TestCacheEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates several experiment grids")
	}
	dir := t.TempDir()
	exps := []string{"table1", "fig3", "fig8", "ablation-qmov"}

	cold := cacheSuite(t, dir)
	want := make(map[string]string)
	for _, name := range exps {
		out, err := decvec.RunExperimentWithSuite(cold, name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = out
	}
	if cold.Simulations() == 0 {
		t.Fatal("cold run performed no simulations")
	}

	warm := cacheSuite(t, dir)
	for _, name := range exps {
		out, err := decvec.RunExperimentWithSuite(warm, name)
		if err != nil {
			t.Fatal(err)
		}
		if out != want[name] {
			t.Errorf("%s: warm report differs from cold", name)
		}
	}
	if got := warm.Simulations(); got != 0 {
		t.Errorf("warm run performed %d simulations, want 0", got)
	}

	audit := cacheSuite(t, dir)
	audit.VerifyFraction = 1.0
	for _, name := range exps {
		if _, err := decvec.RunExperimentWithSuite(audit, name); err != nil {
			t.Fatalf("%s: full cache verification failed: %v", name, err)
		}
	}
	if st := audit.CacheStats(); st.Verified == 0 {
		t.Error("full verification audited no hits")
	}
}

// TestRunSourceCached pins the dvasim-facing cache path, including the
// BYP → DVA+Bypass key canonicalization.
func TestRunSourceCached(t *testing.T) {
	dir := t.TempDir()
	store, err := decvec.OpenCache(dir, decvec.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := decvec.LoadWorkload("DYFESM")
	if err != nil {
		t.Fatal(err)
	}
	src := w.Trace(benchScale)
	cfg := decvec.DefaultConfig(30)

	cold, err := decvec.RunSourceCached(store, src, "BYP", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Writes != 1 {
		t.Fatalf("cold stats = %+v", st)
	}
	// The equivalent DVA+Bypass spelling hits the same entry.
	bypCfg := cfg
	bypCfg.Bypass = true
	warm, err := decvec.RunSourceCached(store, src, "DVA", bypCfg, 1.0)
	if err != nil {
		t.Fatalf("verified warm run failed: %v", err)
	}
	if warm.Cycles != cold.Cycles {
		t.Errorf("warm cycles %d != cold cycles %d", warm.Cycles, cold.Cycles)
	}
	if st := store.Stats(); st.Hits != 1 || st.Verified != 1 {
		t.Errorf("warm stats = %+v, want 1 hit / 1 verified", st)
	}
}
