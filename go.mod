module decvec

go 1.22
