// Package decvec is a cycle-accurate simulation study of Decoupled Vector
// Architectures (Espasa & Valero, HPCA 1996).
//
// It provides three machine models — the reference Convex C3400-like
// vector architecture (REF), the decoupled vector architecture (DVA) and
// its store-to-load bypass variant (BYP) — driven by synthetic traces
// modeled on the Perfect Club benchmark suite, plus the full experiment
// harness that regenerates every table and figure of the paper.
//
// Quick start:
//
//	w, _ := decvec.LoadWorkload("BDNA")
//	cfg := decvec.DefaultConfig(50) // memory latency in cycles
//	refRes, _ := w.RunREF(cfg)
//	dvaRes, _ := w.RunDVA(cfg)
//	fmt.Printf("speedup %.2f\n", float64(refRes.Cycles)/float64(dvaRes.Cycles))
package decvec

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"decvec/internal/dva"
	"decvec/internal/experiments"
	"decvec/internal/ideal"
	"decvec/internal/ooo"
	"decvec/internal/ref"
	"decvec/internal/report"
	"decvec/internal/server"
	"decvec/internal/sim"
	"decvec/internal/simcache"
	"decvec/internal/sweep"
	"decvec/internal/trace"
	"decvec/internal/workload"
)

// Config parametrizes a simulation run: memory latency, pipeline depths,
// queue sizes and the bypass switch. Obtain one from DefaultConfig or
// BypassConfig and adjust fields as needed.
type Config = sim.Config

// Result is the outcome of one simulation run: total cycles, the
// (FU2,FU1,LD) state breakdown, instruction counts, memory traffic, queue
// occupancy histograms and stall diagnostics.
type Result = sim.Result

// State encodes the (FU2, FU1, LD) busy 3-tuple of one cycle; Result.States
// indexes its per-state cycle counts by State.
type State = sim.State

// Recorder collects the cycle-stamped event stream of a run (issues, stalls,
// queue pushes/pops, bus grants, bypasses, flushes). A nil *Recorder disables
// recording at zero cost; recording never changes simulated cycle counts.
type Recorder = sim.Recorder

// Event is one entry of a Recorder's stream.
type Event = sim.Event

// StallReason enumerates the per-unit stall causes of Result.Stalls.
type StallReason = sim.StallReason

// EventKind enumerates the event types of a Recorder's stream.
type EventKind = sim.EventKind

// Event kinds.
const (
	EvIssue     = sim.EvIssue
	EvStall     = sim.EvStall
	EvQueuePush = sim.EvQueuePush
	EvQueuePop  = sim.EvQueuePop
	EvBusGrant  = sim.EvBusGrant
	EvBypass    = sim.EvBypass
	EvFlush     = sim.EvFlush
)

// NewRecorder returns an empty, unbounded event recorder.
func NewRecorder() *Recorder { return sim.NewRecorder() }

// DefaultConfig returns the paper's main DVA configuration (instruction
// queues 16, scalar queues 256, AVDQ 256, VADQ 16) at the given memory
// latency in cycles.
func DefaultConfig(latency int64) Config { return sim.DefaultConfig(latency) }

// BypassConfig returns a §7 bypass configuration "BYP loadQ/storeQ" at the
// given latency.
func BypassConfig(latency int64, loadQ, storeQ int) Config {
	return sim.BypassConfig(latency, loadQ, storeQ)
}

// TraceSource is a replayable stream of trace instructions, as produced by
// Workload.Trace, ReadTrace or the tracegen kernels.
type TraceSource = trace.Source

// Workload is one benchmark program model.
type Workload struct {
	p *workload.Program
}

// Workloads lists the names of all thirteen Perfect Club program models.
func Workloads() []string {
	names := make([]string, 0, len(workload.All))
	for _, p := range workload.All {
		names = append(names, p.Name)
	}
	return names
}

// SimulatedWorkloads lists the six programs the paper simulates.
func SimulatedWorkloads() []string {
	var names []string
	for _, p := range workload.All {
		if p.Simulated {
			names = append(names, p.Name)
		}
	}
	return names
}

// LoadWorkload returns the named program model (see Workloads).
func LoadWorkload(name string) (*Workload, error) {
	p, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	return &Workload{p: p}, nil
}

// Name returns the program name.
func (w *Workload) Name() string { return w.p.Name }

// Description returns a one-line description of the program model.
func (w *Workload) Description() string { return w.p.Description }

// Trace returns the program's dynamic instruction trace at the given scale
// (1.0 = default, tens of thousands of instructions). Traces are memoized
// per (program, scale); use FreshTrace to force regeneration.
func (w *Workload) Trace(scale float64) trace.Source {
	return w.p.CachedTrace(scale)
}

// FreshTrace synthesizes the trace anew, bypassing the memoization cache.
// Generation is deterministic, so the result always equals Trace's.
func (w *Workload) FreshTrace(scale float64) trace.Source {
	return w.p.Trace(scale)
}

// Stats returns the Table 1 statistics of the trace at scale 1.
func (w *Workload) Stats() *trace.Stats {
	return trace.Collect(w.p.CachedTrace(1))
}

// RunREF simulates the workload on the reference vector architecture.
func (w *Workload) RunREF(cfg Config) (*Result, error) {
	return ref.Run(w.p.CachedTrace(1), cfg)
}

// RunDVA simulates the workload on the decoupled vector architecture
// (set cfg.Bypass, or use BypassConfig, for the bypass variant).
func (w *Workload) RunDVA(cfg Config) (*Result, error) {
	return dva.Run(w.p.CachedTrace(1), cfg)
}

// RunRecorded simulates the workload on the named architecture (REF, DVA or
// BYP) with an event recorder attached; pass nil to disable recording.
// Recording never changes the simulated cycle counts.
func (w *Workload) RunRecorded(arch string, cfg Config, rec *Recorder) (*Result, error) {
	return RunSourceRecorded(w.p.CachedTrace(1), arch, cfg, rec)
}

// RunOOO simulates the workload on the out-of-order, register-renaming
// extension of the reference architecture (the paper's §8 comparison) with
// the given issue-window and physical vector-register pool sizes.
func (w *Workload) RunOOO(cfg Config, window, physRegs int) (*Result, error) {
	ocfg := ooo.Config{Config: cfg, Window: window, PhysRegs: physRegs}
	return ooo.Run(w.p.CachedTrace(1), ocfg)
}

// IdealCycles returns the §5 five-resource lower bound on execution time.
func (w *Workload) IdealCycles() int64 {
	return ideal.Compute(w.p.CachedTrace(1)).Cycles
}

// WriteTrace serializes a trace to w in the compact binary format (the
// role Dixie trace files played in the paper's methodology). Only
// in-memory traces (as produced by Workload.Trace and tracegen) can be
// serialized.
func WriteTrace(w io.Writer, src trace.Source) error {
	s, ok := src.(*trace.Slice)
	if !ok {
		s = trace.Materialize(src.Name(), src.Stream())
	}
	return trace.Write(w, s)
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (trace.Source, error) {
	return trace.Read(r)
}

// IdealCyclesOf returns the §5 five-resource lower bound for an arbitrary
// trace source.
func IdealCyclesOf(src trace.Source) int64 {
	return ideal.Compute(src).Cycles
}

// RunSource simulates an arbitrary trace source (for example one built
// with the tracegen kernels) on REF or DVA.
func RunSource(src trace.Source, arch string, cfg Config) (*Result, error) {
	return RunSourceRecorded(src, arch, cfg, nil)
}

// RunSourceRecorded is RunSource with an event recorder attached; pass nil
// to disable recording (equivalent to RunSource).
func RunSourceRecorded(src trace.Source, arch string, cfg Config, rec *Recorder) (*Result, error) {
	switch arch {
	case "REF", "ref":
		return ref.RunRecorded(src, cfg, rec)
	case "DVA", "dva", "BYP", "byp":
		if arch == "BYP" || arch == "byp" {
			cfg.Bypass = true
		}
		return dva.RunRecorded(src, cfg, rec)
	default:
		return nil, fmt.Errorf("decvec: unknown architecture %q (want REF, DVA or BYP)", arch)
	}
}

// MetricsJSON renders a result — cycle counts, state breakdown, stall
// attribution and queue occupancy — as indented machine-readable JSON.
func MetricsJSON(res *Result) ([]byte, error) { return report.MetricsJSON(res) }

// MetricsJSONWithCache is MetricsJSON with the persistent result-cache
// counters attached (the `dvasim -cache -metrics-json` schema).
func MetricsJSONWithCache(res *Result, st CacheStats) ([]byte, error) {
	return report.MetricsJSONWithCache(res, st)
}

// CacheStore is the persistent, content-addressed store for simulation
// results (see internal/simcache). Attach one to Suite.Disk, or pass it to
// RunSourceCached, to make repeat runs skip simulation entirely.
type CacheStore = simcache.Store

// CacheOptions configures OpenCache. MaxBytes is the GC size cap: 0 applies
// the 512 MiB default, and a negative value means explicitly unbounded —
// callers exposing a size flag should validate user input themselves
// (dvabench, dvasim and dvad all reject a negative -cache-max-mb) and map
// their documented "0 = unbounded" convention onto a negative MaxBytes.
type CacheOptions = simcache.Options

// CacheStats are a store's lifetime counters.
type CacheStats = simcache.Stats

// ModelFingerprint identifies the simulator model sources this build was
// compiled from (generated by `make generate`); it is part of every cache
// key, so results cached by a different model can never be served.
const ModelFingerprint = sim.ModelFingerprint

// OpenCache creates (if needed) and opens the persistent result cache
// rooted at dir.
func OpenCache(dir string, opts CacheOptions) (*CacheStore, error) {
	return simcache.Open(dir, opts)
}

// DefaultCacheDir returns the conventional cache location
// ($XDG_CACHE_HOME/decvec), or "" when the environment defines none.
func DefaultCacheDir() string { return simcache.DefaultDir() }

// CacheTable renders a store's counters as an ASCII table.
func CacheTable(st CacheStats) string { return report.CacheTable(st) }

// RunSourceCached is RunSource through a persistent result cache: disk hits
// skip simulation, misses simulate and persist. verify re-simulates that
// fraction of hits (deterministically sampled per key) and returns a hard
// error if the stored bytes differ from the fresh encoding. A nil store
// simulates uncached.
func RunSourceCached(store *CacheStore, src trace.Source, arch string, cfg Config, verify float64) (*Result, error) {
	simulate := func() (*Result, error) { return RunSource(src, arch, cfg) }
	if store == nil {
		return simulate()
	}
	// BYP is DVA with the bypass bit set: canonicalize so a -arch BYP run
	// shares its entry with the equivalent DVA+Bypass run (and with the
	// entries dvabench writes).
	keyArch := strings.ToUpper(arch)
	keyCfg := cfg
	if keyArch == "BYP" {
		keyArch = "DVA"
		keyCfg.Bypass = true
	}
	th, err := simcache.TraceHash(src)
	if err != nil {
		return simulate()
	}
	key := store.Key(th, keyArch, keyCfg, "")
	if r, payload, ok := store.GetBytes(key); ok {
		if simcache.VerifySample(key, verify) {
			store.CountVerified()
			fresh, err := simulate()
			if err != nil {
				return nil, err
			}
			freshBytes, err := simcache.EncodeResultBytes(fresh)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(freshBytes, payload) {
				return nil, fmt.Errorf("decvec: cache verification FAILED for %s %s on %s: stored result differs from re-simulation (key %s…); the store at %s holds results no current model produces — remove it and re-run", keyArch, cfg.String(), src.Name(), key[:16], store.Dir())
			}
		}
		return r, nil
	}
	r, err := simulate()
	if err != nil {
		return nil, err
	}
	// Persistence is best-effort: a read-only or full store must not fail a
	// simulation that already succeeded.
	_ = store.Put(key, r)
	return r, nil
}

// Server is the dvad simulation daemon: an HTTP/JSON front end over an
// embedded Suite, with request coalescing (identical concurrent requests
// share one simulation), admission control (bounded concurrency + bounded
// wait queue, 429 on overflow), per-request timeouts, periodic cache GC and
// graceful drain-then-GC shutdown. See DESIGN.md "Serving".
type Server = server.Server

// ServerConfig parametrizes NewServer.
type ServerConfig = server.Config

// ServerStats is the machine-readable /statsz schema.
type ServerStats = report.ServerMetric

// NewServer returns a simulation daemon over a fresh suite. Callers must
// Shutdown the server to stop its background GC loop and run the final
// cache GC.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// Serve runs a simulation daemon on addr until the process ends — the
// one-line embedding of dvad. For graceful shutdown use NewServer and wire
// Shutdown yourself (as cmd/dvad does).
func Serve(addr string, cfg ServerConfig) error {
	return server.New(cfg).ListenAndServe(addr)
}

// ServerTable renders the daemon counters as an ASCII table (the shutdown
// summary companion to CacheTable).
func ServerTable(st ServerStats) string { return report.ServerTable(st) }

// WriteTraceEvents writes a recorded event stream as a Trace Event Format
// JSON file loadable in chrome://tracing or Perfetto.
func WriteTraceEvents(w io.Writer, res *Result, rec *Recorder) error {
	return report.WriteTraceEvents(w, res, rec)
}

// StallTable renders the nonzero stall causes of a result as an ASCII table.
func StallTable(res *Result) string { return report.StallTable(res) }

// QueueTable renders the per-queue occupancy stats of a result as an ASCII
// table.
func QueueTable(res *Result) string { return report.QueueTable(res) }

// ExperimentNames lists the regenerable paper experiments.
func ExperimentNames() []string {
	names := make([]string, 0, len(experimentRunners))
	for n := range experimentRunners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var experimentRunners = map[string]func(ctx context.Context, s *experiments.Suite) (string, error){
	"table1": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Table1(ctx, s)
		if err != nil {
			return "", err
		}
		return report.Table1(r), nil
	},
	"fig1": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Figure1(ctx, s)
		if err != nil {
			return "", err
		}
		return report.Figure1(r), nil
	},
	"fig3": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Sweep(ctx, s, nil)
		if err != nil {
			return "", err
		}
		return report.Figure3(r), nil
	},
	"fig4": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Sweep(ctx, s, nil)
		if err != nil {
			return "", err
		}
		return report.Figure4(r), nil
	},
	"fig5": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Sweep(ctx, s, nil)
		if err != nil {
			return "", err
		}
		return report.Figure5(r), nil
	},
	"fig6": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Figure6(ctx, s)
		if err != nil {
			return "", err
		}
		return report.Figure6(r), nil
	},
	"fig7": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Figure7(ctx, s, nil)
		if err != nil {
			return "", err
		}
		return report.Figure7(r), nil
	},
	"fig8": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.Figure8(ctx, s, 30)
		if err != nil {
			return "", err
		}
		return report.Figure8(r), nil
	},
	"extension-conflicts": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.ExtensionConflicts(ctx, s, 20, nil)
		if err != nil {
			return "", err
		}
		return report.ExtensionConflicts(r), nil
	},
	"extension-ports": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.ExtensionPorts(ctx, s, nil)
		if err != nil {
			return "", err
		}
		return report.ExtensionPorts(r), nil
	},
	"extension-ooo": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.ExtensionOOO(ctx, s, nil)
		if err != nil {
			return "", err
		}
		return report.ExtensionOOO(r), nil
	},
	"ablation-iq": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.AblationIQ(ctx, s, 50)
		if err != nil {
			return "", err
		}
		return report.Ablation(r), nil
	},
	"ablation-vsq": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.AblationVSQ(ctx, s, 50)
		if err != nil {
			return "", err
		}
		return report.Ablation(r), nil
	},
	"ablation-avdq": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.AblationAVDQ(ctx, s, 50)
		if err != nil {
			return "", err
		}
		return report.Ablation(r), nil
	},
	"ablation-qmov": func(ctx context.Context, s *experiments.Suite) (string, error) {
		r, err := experiments.AblationQMov(ctx, s, 50)
		if err != nil {
			return "", err
		}
		return report.Ablation(r), nil
	},
}

// RunExperiment regenerates one paper experiment by name (see
// ExperimentNames) at the given trace scale and returns the rendered
// report. It is the facade convenience over RunExperimentCtx with a fresh
// suite and the process root context.
func RunExperiment(name string, scale float64) (string, error) {
	return RunExperimentWithSuite(NewSuite(scale), name)
}

// Suite caches simulation runs across experiments.
type Suite = experiments.Suite

// NewSuite returns a fresh experiment suite at the given trace scale.
func NewSuite(scale float64) *Suite { return experiments.NewSuite(scale) }

// RunExperimentWithSuite is RunExperiment against a shared suite.
func RunExperimentWithSuite(s *Suite, name string) (string, error) {
	return RunExperimentCtx(context.Background(), s, name)
}

// RunExperimentCtx regenerates one paper experiment against a shared
// suite, honoring context cancellation: every simulation, warm fan-out and
// coalesced wait underneath threads ctx end-to-end.
func RunExperimentCtx(ctx context.Context, s *Suite, name string) (string, error) {
	fn, ok := experimentRunners[name]
	if !ok {
		return "", fmt.Errorf("decvec: unknown experiment %q (have %v)", name, ExperimentNames())
	}
	return fn(ctx, s)
}

// SweepGridSpec names a (program × arch × latency × queue) parameter grid
// by its dimension values; empty dimensions take the paper defaults. Its
// JSON form is the -grid file format of cmd/dvasweep.
type SweepGridSpec = sweep.GridSpec

// SweepPlan is a compiled grid, enumerated cell-by-cell without ever
// materializing the full product.
type SweepPlan = sweep.Plan

// NewSweepPlan compiles and validates a grid spec.
func NewSweepPlan(spec SweepGridSpec) (*SweepPlan, error) { return sweep.NewPlan(spec) }

// SweepExecutor drains sweep shards for one worker; see LocalExecutor and
// RemoteExecutor.
type SweepExecutor = sweep.Executor

// SweepOptions tune a coordinated sweep; the zero value is
// production-ready.
type SweepOptions = sweep.Options

// SweepStats is the sweep-level outcome summary: cells completed, cells
// re-sharded after worker failures, dispatch rounds, and per-worker
// cache-hit ratios.
type SweepStats = sweep.Stats

// RemoteExecutorOptions tune a RemoteExecutor.
type RemoteExecutorOptions = sweep.RemoteOptions

// LocalExecutor runs sweep shards in-process through the suite — the
// fallback when no dvad workers are configured.
func LocalExecutor(name string, s *Suite) SweepExecutor { return sweep.NewLocal(name, s) }

// RemoteExecutor runs sweep shards on the dvad worker at baseURL.
func RemoteExecutor(baseURL string, opts RemoteExecutorOptions) SweepExecutor {
	return sweep.NewRemote(baseURL, opts)
}

// RunSweep shards the plan's cells across the executors by cache-key
// prefix (so repeat sweeps land each cell on the worker whose disk cache
// already holds it), survives worker failures by re-sharding, and merges
// the results deterministically in plan order: out[i] is plan cell i's
// result wherever it ran. Partial failures follow the RunBatch contract —
// completed results come back alongside the joined error.
func RunSweep(ctx context.Context, plan *SweepPlan, execs []SweepExecutor, opts SweepOptions) ([]*Result, SweepStats, error) {
	return sweep.Run(ctx, plan, execs, opts)
}

// sweepMetricOf converts the coordinator's stats into the report schema.
func sweepMetricOf(st SweepStats) report.SweepMetric {
	m := report.SweepMetric{
		Points:    st.Points,
		Completed: st.Completed,
		Resharded: st.Resharded,
		Rounds:    st.Rounds,
		Workers:   make([]report.SweepWorkerMetric, len(st.Workers)),
	}
	for i, w := range st.Workers {
		m.Workers[i] = report.SweepWorkerMetric{
			Name:        w.Name,
			Cells:       w.Cells,
			CacheHits:   w.CacheHits,
			CacheMisses: w.CacheMisses,
			HitRatio:    w.HitRatio,
			Retries:     w.Retries,
			Failed:      w.Failed,
			LastError:   w.LastError,
		}
	}
	return m
}

// SweepTable renders a sweep summary as ASCII tables, one row per worker.
func SweepTable(st SweepStats) string { return report.SweepTable(sweepMetricOf(st)) }

// SweepStatsJSON renders a sweep summary as indented JSON.
func SweepStatsJSON(st SweepStats) ([]byte, error) {
	return report.SweepJSON(sweepMetricOf(st))
}

// EncodeResult writes the canonical binary result encoding — the format
// the persistent cache stores and the sweep protocol streams, and the one
// to hash when checking two runs for byte-identity.
func EncodeResult(w io.Writer, res *Result) error { return sim.EncodeResult(w, res) }
