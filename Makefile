# Development entry points. `make verify` is the tier-1 gate: it must pass
# before every commit.

GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
