# Development entry points. `make verify` is the tier-1 gate: it must pass
# before every commit.

GO ?= go

.PHONY: build test vet lint race bench profile verify generate loadtest sweeptest

build:
	$(GO) build ./...

# generate regenerates internal/sim/fingerprint_gen.go, the hash of every
# simulator-model source file that versions the persistent result cache.
# Run after any model edit; `make verify` fails if it is stale.
generate:
	$(GO) run ./cmd/modelhash

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs declint, the custom static-analysis suite that enforces the
# simulator invariants (enum exhaustiveness, determinism, queue discipline,
# recorder hygiene, the package-layer DAG, context discipline, concurrency
# discipline, hot-path allocation hygiene). Exits 0 clean / 1 findings /
# 2 analysis failure. See DESIGN.md "Checked invariants".
lint:
	$(GO) run ./cmd/declint ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark three times (with the dvabench PGO profile,
# matching how the CLI itself is built) and folds the per-benchmark medians
# against the checked-in post-PR-10 baseline into BENCH_CI.json — ns/op,
# B/op, allocs/op, sims/op, and the figure-benchmark geomean speedup. This is
# a CI gate: -min-geomean fails the run if the geomean drops below 0.95x the
# tracked baseline (slack for runner noise, failure for real regressions);
# the median-of-3 keeps one descheduled run from flaking the gate. See
# EXPERIMENTS.md "Reproducing".
bench:
	$(GO) test -bench . -benchtime 1x -count 3 -benchmem -run '^$$' \
		-pgo=cmd/dvabench/default.pgo . | tee bench_current.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr10.txt \
		-current bench_current.txt -out BENCH_CI.json -min-geomean 0.95 \
		-desc "post-PR-10 baseline vs current; gate fails below 0.95x geomean" \
		-notes "baseline snapshot taken after the PR 10 per-unit event stepping (wake-wheel scheduler)"

# loadtest stands up a throwaway dvad daemon and storms it with dvadload:
# identical concurrent requests must coalesce into at most one simulation,
# a mixed storm exercises the admission gate, and SIGTERM must drain
# gracefully. Prints latency percentiles. See DESIGN.md "Serving".
loadtest:
	GO=$(GO) sh bench/loadtest.sh

# sweeptest stands up two throwaway dvad workers and drives a 1044-cell
# dvasweep through them: zero cells may re-shard, the digest must match an
# in-process run byte-for-byte, and a warm rerun against restarted workers
# must answer every cell from each worker's disk cache (cache-affine
# sharding). See DESIGN.md "Distributed sweeps".
sweeptest:
	GO=$(GO) sh bench/sweeptest.sh

# profile produces pprof CPU and heap profiles of a full dvabench run.
# Inspect with: go tool pprof dvabench.bin cpu.pprof
profile:
	$(GO) build -o dvabench.bin ./cmd/dvabench
	./dvabench.bin -q -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "profiles written: cpu.pprof mem.pprof (go tool pprof dvabench.bin cpu.pprof)"

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/modelhash -check
	$(GO) run ./cmd/declint ./...
	$(GO) test -race ./...
