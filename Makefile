# Development entry points. `make verify` is the tier-1 gate: it must pass
# before every commit.

GO ?= go

.PHONY: build test vet lint race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs declint, the custom static-analysis suite that enforces the
# simulator invariants (enum exhaustiveness, determinism, queue discipline,
# recorder hot-path hygiene). See DESIGN.md "Checked invariants".
lint:
	$(GO) run ./cmd/declint ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/declint ./...
	$(GO) test -race ./...
