package decvec_test

import (
	"testing"

	decvec "decvec"
)

// TestRunDeterminism is the regression gate behind the determinism analyzer:
// two runs of the same trace on the same architecture must agree on every
// observable — cycle count, stall attribution, queue statistics and the full
// recorded event stream. FreshTrace regenerates the trace each time, so trace
// synthesis is covered too, not just the simulators.
func TestRunDeterminism(t *testing.T) {
	w, err := decvec.LoadWorkload("TRFD")
	if err != nil {
		t.Fatalf("LoadWorkload: %v", err)
	}
	for _, arch := range []string{"REF", "DVA", "BYP"} {
		t.Run(arch, func(t *testing.T) {
			cfg := decvec.DefaultConfig(50)
			if arch == "BYP" {
				cfg = decvec.BypassConfig(50, 8, 8)
			}
			run := func() (*decvec.Result, []decvec.Event) {
				rec := decvec.NewRecorder()
				res, err := decvec.RunSourceRecorded(w.FreshTrace(0.5), arch, cfg, rec)
				if err != nil {
					t.Fatalf("run %s: %v", arch, err)
				}
				return res, rec.Events()
			}
			res1, ev1 := run()
			res2, ev2 := run()

			if res1.Cycles != res2.Cycles {
				t.Errorf("cycle count differs between runs: %d vs %d", res1.Cycles, res2.Cycles)
			}
			if res1.Stalls != res2.Stalls {
				t.Errorf("stall tallies differ between runs:\n%v\n%v", res1.Stalls, res2.Stalls)
			}
			if len(res1.Queues) != len(res2.Queues) {
				t.Fatalf("queue stat count differs: %d vs %d", len(res1.Queues), len(res2.Queues))
			}
			for i := range res1.Queues {
				if res1.Queues[i] != res2.Queues[i] {
					t.Errorf("queue %s stats differ:\n%+v\n%+v", res1.Queues[i].Name, res1.Queues[i], res2.Queues[i])
				}
			}
			if len(ev1) != len(ev2) {
				t.Fatalf("event stream length differs: %d vs %d", len(ev1), len(ev2))
			}
			for i := range ev1 {
				if ev1[i] != ev2[i] {
					t.Fatalf("event %d differs:\n%+v\n%+v", i, ev1[i], ev2[i])
				}
			}
		})
	}
}

// TestRecordingInvariance checks the other half of the recorder contract: an
// attached recorder must never perturb the simulation itself.
func TestRecordingInvariance(t *testing.T) {
	w, err := decvec.LoadWorkload("TRFD")
	if err != nil {
		t.Fatalf("LoadWorkload: %v", err)
	}
	for _, arch := range []string{"REF", "DVA"} {
		cfg := decvec.DefaultConfig(50)
		plain, err := decvec.RunSource(w.FreshTrace(0.5), arch, cfg)
		if err != nil {
			t.Fatalf("run %s: %v", arch, err)
		}
		recorded, err := decvec.RunSourceRecorded(w.FreshTrace(0.5), arch, cfg, decvec.NewRecorder())
		if err != nil {
			t.Fatalf("recorded run %s: %v", arch, err)
		}
		if plain.Cycles != recorded.Cycles || plain.Stalls != recorded.Stalls {
			t.Errorf("%s: attaching a recorder changed the result: %d/%d cycles", arch, plain.Cycles, recorded.Cycles)
		}
	}
}
