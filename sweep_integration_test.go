package decvec_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"decvec"
	"decvec/internal/experiments"
	"decvec/internal/server"
	"decvec/internal/sweep"
)

// sweepWorker spins one real in-process dvad worker for the coordinator
// to drive over HTTP.
func sweepWorker(t *testing.T, scale float64) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(server.Config{Scale: scale, RequestTimeout: 5 * time.Minute})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("worker shutdown: %v", err)
		}
	})
	return s, ts
}

// sweepDigest concatenates the canonical encodings in plan order.
func sweepDigest(t *testing.T, results []*decvec.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, r := range results {
		if r == nil {
			t.Fatalf("cell %d has no result", i)
		}
		if err := decvec.EncodeResult(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// A two-worker distributed sweep must be byte-identical, in plan order,
// to a single-process RunBatch of the same grid — the contract that makes
// the sweep engine a drop-in scale-out of the experiment harness. The
// full grid tops 1000 cells; -short trims the latency axis.
func TestDistributedSweepMatchesRunBatch(t *testing.T) {
	const scale = 0.02
	nLat := 87 // 2 programs × 2 archs × 87 latencies × 3 loadqs = 1044 cells
	if testing.Short() {
		nLat = 5
	}
	lats := make([]int64, nLat)
	for i := range lats {
		lats[i] = int64(i + 1)
	}
	spec := decvec.SweepGridSpec{
		Programs:  []string{"BDNA", "MG3D"},
		Archs:     []string{"REF", "DVA"},
		Latencies: lats,
		LoadQs:    []int{0, 8, 16},
	}
	plan, err := decvec.NewSweepPlan(spec)
	if err != nil {
		t.Fatal(err)
	}

	_, w1 := sweepWorker(t, scale)
	_, w2 := sweepWorker(t, scale)
	execs := []decvec.SweepExecutor{
		decvec.RemoteExecutor(w1.URL, decvec.RemoteExecutorOptions{Name: "w1"}),
		decvec.RemoteExecutor(w2.URL, decvec.RemoteExecutorOptions{Name: "w2"}),
	}
	distributed, st, err := decvec.RunSweep(context.Background(), plan, execs, decvec.SweepOptions{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if st.Resharded != 0 || st.Rounds != 1 {
		t.Errorf("healthy sweep resharded %d cells over %d rounds", st.Resharded, st.Rounds)
	}
	for _, w := range st.Workers {
		if w.Cells == 0 {
			t.Errorf("worker %s received no cells; sharding is degenerate", w.Name)
		}
	}

	// The same grid through one local RunBatch.
	suite := experiments.NewSuite(scale)
	jobs := make([]experiments.BatchJob, plan.Points())
	for i := range jobs {
		jobs[i] = plan.Cell(i).Job()
	}
	local, err := suite.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(sweepDigest(t, distributed), sweepDigest(t, local)) {
		t.Fatal("distributed sweep is not byte-identical to the local batch")
	}
}

// Killing a worker mid-sweep must not lose cells: its shard re-routes to
// the survivor and the merged output still byte-matches a local run.
func TestDistributedSweepSurvivesWorkerDeath(t *testing.T) {
	const scale = 0.02
	lats := make([]int64, 30)
	for i := range lats {
		lats[i] = int64(i + 1)
	}
	plan, err := decvec.NewSweepPlan(decvec.SweepGridSpec{
		Programs:  []string{"BDNA"},
		Archs:     []string{"REF", "DVA"},
		Latencies: lats,
	})
	if err != nil {
		t.Fatal(err)
	}

	_, healthy := sweepWorker(t, scale)
	// The doomed worker proxies its first sweep chunk to a real server,
	// then starts refusing everything — a worker crashing mid-sweep.
	_, backing := sweepWorker(t, scale)
	var sweeps atomic.Int64
	doomed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sweep" && sweeps.Add(1) > 1 {
			panic(http.ErrAbortHandler) // dead: connection dropped
		}
		r2 := r.Clone(r.Context())
		r2.URL.Scheme = "http"
		r2.URL.Host = backing.Listener.Addr().String()
		r2.RequestURI = ""
		resp, err := http.DefaultClient.Do(r2)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
				if fl, ok := w.(http.Flusher); ok {
					fl.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer doomed.Close()

	execs := []decvec.SweepExecutor{
		decvec.RemoteExecutor(healthy.URL, decvec.RemoteExecutorOptions{Name: "healthy"}),
		decvec.RemoteExecutor(doomed.URL, decvec.RemoteExecutorOptions{
			Name: "doomed", Retries: 1, Backoff: time.Millisecond,
		}),
	}
	// Small chunks force the doomed worker to need several requests, so
	// its death lands mid-sweep with cells still owed.
	results, st, err := decvec.RunSweep(context.Background(), plan, execs, decvec.SweepOptions{
		Scale: scale, ChunkSize: 5, Inflight: 1,
	})
	if err != nil {
		t.Fatalf("sweep did not survive the worker death: %v", err)
	}

	var doomedFailed bool
	for _, w := range st.Workers {
		if w.Name == "doomed" && w.Failed {
			doomedFailed = true
		}
	}
	if !doomedFailed {
		t.Fatalf("doomed worker not reported failed (did it ever get cells?): %+v", st.Workers)
	}
	if st.Resharded == 0 {
		t.Error("no cells re-sharded despite a worker death")
	}
	if st.Rounds < 2 {
		t.Errorf("rounds = %d, want >= 2", st.Rounds)
	}

	suite := experiments.NewSuite(scale)
	jobs := make([]experiments.BatchJob, plan.Points())
	for i := range jobs {
		jobs[i] = plan.Cell(i).Job()
	}
	local, err := suite.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sweepDigest(t, results), sweepDigest(t, local)) {
		t.Fatal("post-failover merge is not byte-identical to the local batch")
	}
}

// The facade plumbing: table and JSON renderings of sweep stats.
func TestSweepStatsRendering(t *testing.T) {
	st := sweep.Stats{
		Points: 10, Completed: 10, Rounds: 1,
		Workers: []sweep.WorkerStats{{Name: "w1", Cells: 10, CacheHits: 8, CacheMisses: 2, HitRatio: 0.8}},
	}
	table := decvec.SweepTable(st)
	for _, want := range []string{"dvasweep", "w1", "80.0"} {
		if !bytes.Contains([]byte(table), []byte(want)) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	b, err := decvec.SweepStatsJSON(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"hitRatio": 0.8`)) {
		t.Errorf("JSON missing hit ratio: %s", b)
	}
}
