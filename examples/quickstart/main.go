// Quickstart: run one Perfect Club model on both architectures and print
// the decoupling speedup — the paper's headline result in a dozen lines.
package main

import (
	"fmt"
	"log"

	"decvec"
)

func main() {
	w, err := decvec.LoadWorkload("BDNA")
	if err != nil {
		log.Fatal(err)
	}
	cfg := decvec.DefaultConfig(50) // 50-cycle memory latency

	refRes, err := w.RunREF(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dvaRes, err := w.RunDVA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s)\n", w.Name(), w.Description())
	fmt.Printf("  reference architecture: %9d cycles\n", refRes.Cycles)
	fmt.Printf("  decoupled architecture: %9d cycles\n", dvaRes.Cycles)
	fmt.Printf("  ideal lower bound:      %9d cycles\n", w.IdealCycles())
	fmt.Printf("  speedup from decoupling: %.2fx\n",
		float64(refRes.Cycles)/float64(dvaRes.Cycles))
	fmt.Printf("  stall cycles < , , >: REF %d vs DVA %d (%.1fx reduction)\n",
		refRes.States.Idle(), dvaRes.States.Idle(),
		float64(refRes.States.Idle())/float64(dvaRes.States.Idle()))
}
