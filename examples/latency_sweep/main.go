// Latency sweep: reproduce a Figure 3-style study for one program — how
// execution time grows with memory latency on the reference architecture
// versus the decoupled one. The flat DVA curve against the steep REF curve
// is the paper's central observation: decoupling tolerates long memory
// delays far better than conventional vector architectures.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"decvec"
)

func main() {
	prog := flag.String("prog", "TRFD", "program to sweep")
	flag.Parse()

	w, err := decvec.LoadWorkload(*prog)
	if err != nil {
		log.Fatal(err)
	}
	ideal := w.IdealCycles()

	fmt.Printf("%s: execution cycles vs memory latency (ideal bound %d)\n\n", w.Name(), ideal)
	fmt.Printf("%8s %10s %10s %8s   %s\n", "latency", "REF", "DVA", "speedup", "REF growth")
	var base int64
	for _, l := range []int64{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		cfg := decvec.DefaultConfig(l)
		r, err := w.RunREF(cfg)
		if err != nil {
			log.Fatal(err)
		}
		d, err := w.RunDVA(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Cycles
		}
		growth := float64(r.Cycles) / float64(base)
		bar := strings.Repeat("#", int(20*(growth-1))+1)
		fmt.Printf("%8d %10d %10d %7.2fx   %s\n",
			l, r.Cycles, d.Cycles, float64(r.Cycles)/float64(d.Cycles), bar)
	}
	fmt.Println("\nThe REF curve climbs with latency while the DVA stays nearly flat:")
	fmt.Println("the address processor slips ahead and loads data before the vector")
	fmt.Println("processor needs it, so memory latency leaves the critical path.")
}
