// Bypass study: measure what the §7 store-to-load bypass buys on the
// spill-heavy programs. A vector load identical to a store still waiting
// in the store queue is serviced by copying the data between the queues —
// no memory access, no latency, and the memory port stays free, acting as
// a second port. The study sweeps the store queue length the way §7 does.
package main

import (
	"fmt"
	"log"

	"decvec"
)

func main() {
	const latency = 50
	fmt.Printf("Store-to-load bypass at memory latency %d\n\n", latency)

	for _, name := range []string{"DYFESM", "TRFD", "BDNA", "FLO52"} {
		w, err := decvec.LoadWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		base, err := w.RunDVA(decvec.DefaultConfig(latency))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: DVA baseline %d cycles, %d memory elements\n",
			w.Name(), base.Cycles, base.Traffic.Total())

		// Sweep the store queue length with the paper's 4-slot load queue,
		// plus the BYP 256/16 upper configuration.
		for _, qs := range [][2]int{{4, 4}, {4, 8}, {4, 16}, {256, 16}} {
			cfg := decvec.BypassConfig(latency, qs[0], qs[1])
			r, err := w.RunDVA(cfg)
			if err != nil {
				log.Fatal(err)
			}
			cut := float64(base.Traffic.Total()-r.Traffic.Total()) / float64(base.Traffic.Total())
			fmt.Printf("  BYP %3d/%-3d %9d cycles (%+5.1f%% vs DVA)  %4d bypasses, traffic -%.1f%%\n",
				qs[0], qs[1], r.Cycles,
				100*(float64(base.Cycles)/float64(r.Cycles)-1), r.Bypasses, 100*cut)
		}
		fmt.Println()
	}
	fmt.Println("Eight store-queue slots capture nearly all of the benefit of sixteen,")
	fmt.Println("as §7 found; the reloads serviced from the queue also cut memory traffic.")
}
