// Queue sizing: how large do the architectural queues really need to be?
// §6 of the paper answers with the AVDQ occupancy distribution: most
// programs rarely hold more than four vectors, and the occupancy is bounded
// by the instruction-queue effect (a 16-slot VPIQ admits at most 9
// computation instructions alongside 7 QMOVs, so at most ~8 loads can be
// in flight). SPEC77 is the exception that actually uses the depth.
package main

import (
	"fmt"
	"log"
	"strings"

	"decvec"
)

func main() {
	const latency = 100
	fmt.Printf("AVDQ occupancy at memory latency %d (DVA 256/16)\n\n", latency)

	for _, name := range decvec.SimulatedWorkloads() {
		w, err := decvec.LoadWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		r, err := w.RunDVA(decvec.DefaultConfig(latency))
		if err != nil {
			log.Fatal(err)
		}
		h := r.AVDQBusy
		fmt.Printf("%-8s mean %.2f, max %d\n", w.Name(), h.Mean(), h.Max())
		total := h.Total()
		for k := 0; k <= h.Max(); k++ {
			frac := float64(h.Buckets[k]) / float64(total)
			fmt.Printf("  %2d slots %9d cycles %s\n", k, h.Buckets[k],
				strings.Repeat("#", int(40*frac)))
		}
		fmt.Println()
	}

	// And the consequence: shrink the load queue and see who cares.
	fmt.Println("Execution cycles when shrinking the load queue (BYP x/16):")
	fmt.Printf("%-8s", "")
	sizes := []int{2, 4, 8, 256}
	for _, s := range sizes {
		fmt.Printf(" %10d", s)
	}
	fmt.Println()
	for _, name := range decvec.SimulatedWorkloads() {
		w, err := decvec.LoadWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", w.Name())
		for _, s := range sizes {
			r, err := w.RunDVA(decvec.BypassConfig(latency, s, 16))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10d", r.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("\nFour slots suffice for most programs; SPEC77's load bursts need more,")
	fmt.Println("exactly the effect the paper reports for its BYP 4/x configurations.")
}
