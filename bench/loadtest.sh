#!/bin/sh
# loadtest.sh — end-to-end load test of the dvad daemon (`make loadtest`).
#
# Builds dvad and dvadload, starts the daemon on a throwaway port with a
# temporary cache directory, storms it with identical concurrent requests,
# and asserts the coalescing contract: N requests, at most one simulation.
# The daemon is then shut down gracefully (SIGTERM) and must drain and exit
# zero. Latency percentiles and the served/simulated counters print on the
# way through.
#
# Tunables (env): DVAD_PORT (default 18382), LOAD_N (200), LOAD_C (100),
# LOAD_SCALE (0.25).
set -eu

PORT="${DVAD_PORT:-18382}"
N="${LOAD_N:-200}"
C="${LOAD_C:-100}"
SCALE="${LOAD_SCALE:-0.25}"
URL="http://127.0.0.1:$PORT"

GO="${GO:-go}"
$GO build -o dvad.bin ./cmd/dvad
$GO build -o dvadload.bin ./cmd/dvadload

CACHE="$(mktemp -d)"
./dvad.bin -addr "127.0.0.1:$PORT" -scale "$SCALE" -cache-dir "$CACHE" &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    rm -rf "$CACHE"
}
trap cleanup EXIT

ready=0
i=0
while [ "$i" -lt 100 ]; do
    if curl -fsS "$URL/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$ready" -ne 1 ]; then
    echo "loadtest: dvad did not become healthy on $URL" >&2
    exit 1
fi

# Cold storm: every request identical, so the daemon must coalesce them
# into (at most) one simulation.
./dvadload.bin -url "$URL" -n "$N" -c "$C" -assert-coalesce

# Mixed storm: distinct configurations per request, exercising the
# admission gate and throughput instead of coalescing.
./dvadload.bin -url "$URL" -n "$N" -c "$C" -mix

# Graceful shutdown: SIGTERM must drain and exit zero, printing the final
# server and cache tables.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
rm -rf "$CACHE"
echo "loadtest: PASS"
