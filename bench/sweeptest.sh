#!/bin/sh
# sweeptest.sh — end-to-end test of the distributed sweep path
# (`make sweeptest`).
#
# Builds dvad and dvasweep, starts two workers on throwaway ports with
# separate cache directories, and runs a >=1000-cell sweep through the
# coordinator with -assert-no-reshard: a healthy fleet must finish in one
# round with zero cells moved. The digest of the distributed run must
# match an in-process run of the same grid (byte-identity contract), and
# a warm rerun against *restarted* workers on the same cache directories
# must answer every cell from the disk tier — nonzero hits, zero misses,
# per worker — proving cache-affine sharding routes each cell back to the
# worker that already holds it.
#
# Tunables (env): SWEEP_PORT1 (default 18481), SWEEP_PORT2 (18482),
# SWEEP_SCALE (0.05).
set -eu

PORT1="${SWEEP_PORT1:-18481}"
PORT2="${SWEEP_PORT2:-18482}"
SCALE="${SWEEP_SCALE:-0.05}"
URL1="http://127.0.0.1:$PORT1"
URL2="http://127.0.0.1:$PORT2"

# 2 programs x 2 archs x 87 latencies x 3 load-queue depths = 1044 cells.
LATS="$(seq -s, 1 87)"
GRID="-progs BDNA,MG3D -archs REF,DVA -latencies $LATS -loadqs 0,8,16"

GO="${GO:-go}"
$GO build -o dvad.bin ./cmd/dvad
$GO build -o dvasweep.bin ./cmd/dvasweep

CACHE1="$(mktemp -d)"
CACHE2="$(mktemp -d)"
LOCALCACHE="$(mktemp -d)"
PID1=""
PID2=""
cleanup() {
    [ -n "$PID1" ] && kill "$PID1" 2>/dev/null || true
    [ -n "$PID2" ] && kill "$PID2" 2>/dev/null || true
    rm -rf "$CACHE1" "$CACHE2" "$LOCALCACHE"
}
trap cleanup EXIT

start_workers() {
    ./dvad.bin -addr "127.0.0.1:$PORT1" -scale "$SCALE" -cache-dir "$CACHE1" \
        -timeout 300s &
    PID1=$!
    ./dvad.bin -addr "127.0.0.1:$PORT2" -scale "$SCALE" -cache-dir "$CACHE2" \
        -timeout 300s &
    PID2=$!
    for url in "$URL1" "$URL2"; do
        ready=0
        i=0
        while [ "$i" -lt 100 ]; do
            if curl -fsS "$url/healthz" >/dev/null 2>&1; then
                ready=1
                break
            fi
            sleep 0.1
            i=$((i + 1))
        done
        if [ "$ready" -ne 1 ]; then
            echo "sweeptest: dvad did not become healthy on $url" >&2
            exit 1
        fi
    done
}

stop_workers() {
    kill -TERM "$PID1" "$PID2"
    wait "$PID1" "$PID2"
    PID1=""
    PID2=""
}

start_workers

# Cold distributed sweep: both workers start empty, so every cell is a
# miss, but a healthy fleet must still finish in one round with zero
# cells re-sharded.
# shellcheck disable=SC2086 # GRID is a flag list, word-splitting intended
./dvasweep.bin $GRID -workers "$URL1,$URL2" -scale "$SCALE" \
    -digest -assert-no-reshard | tee sweep_cold.txt

# The same grid in-process: the digest lines must agree byte-for-byte.
# shellcheck disable=SC2086
./dvasweep.bin $GRID -scale "$SCALE" -cache-dir "$LOCALCACHE" \
    -digest -quiet > sweep_local.txt
grep '^sha256:' sweep_cold.txt > digest_dist.txt
grep '^sha256:' sweep_local.txt > digest_local.txt
diff digest_dist.txt digest_local.txt

# Restart the workers on the same cache directories. The warm rerun must
# answer every cell from each worker's disk tier: cache-affine sharding
# sends a cell to the same worker both times, so hits must be nonzero and
# misses zero on every worker.
stop_workers
start_workers
# shellcheck disable=SC2086
./dvasweep.bin $GRID -workers "$URL1,$URL2" -scale "$SCALE" \
    -digest -assert-no-reshard -json | tee sweep_warm.txt
grep '^sha256:' sweep_warm.txt > digest_warm.txt
diff digest_dist.txt digest_warm.txt
if grep -q '"cacheHits": 0' sweep_warm.txt; then
    echo "sweeptest: a worker had zero warm cache hits; sharding is not cache-affine" >&2
    exit 1
fi
if grep '"cacheMisses":' sweep_warm.txt | grep -qv '"cacheMisses": 0'; then
    echo "sweeptest: warm rerun missed the disk cache" >&2
    exit 1
fi

stop_workers
trap - EXIT
rm -rf "$CACHE1" "$CACHE2" "$LOCALCACHE"
rm -f sweep_cold.txt sweep_local.txt sweep_warm.txt \
    digest_dist.txt digest_local.txt digest_warm.txt
echo "sweeptest: PASS"
