package decvec_test

import (
	"testing"

	"decvec"
)

// benchScale keeps the benchmark traces small enough that the full
// `go test -bench=.` run finishes in minutes while still exercising every
// code path of every experiment.
const benchScale = 0.25

// benchExperiment regenerates one paper table/figure per iteration, with a
// fresh suite each time so the measured work is the real simulation cost.
// Besides the stock ns/op and allocs/op it reports sims/op — the number of
// simulator invocations behind one regeneration — so a bench diff can tell a
// genuinely faster core from an experiment that simply started running fewer
// configurations.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	var sims int64
	for i := 0; i < b.N; i++ {
		s := decvec.NewSuite(benchScale)
		if _, err := decvec.RunExperimentWithSuite(s, name); err != nil {
			b.Fatal(err)
		}
		sims += s.Simulations()
	}
	b.ReportMetric(float64(sims)/float64(b.N), "sims/op")
}

// BenchmarkTable1 regenerates Table 1 (operation counts, 13 programs).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (REF functional-unit usage at four
// latencies).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure3 regenerates Figure 3 (execution time vs latency for
// IDEAL/REF/DVA).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates Figure 4 (stall-state ratio REF/DVA).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates Figure 5 (DVA speedup over REF).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates Figure 6 (AVDQ busy-slot distributions).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Figure 7 (bypass configurations vs DVA).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8 (memory-traffic reduction).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkAblationIQ regenerates the §5 instruction-queue sizing study.
func BenchmarkAblationIQ(b *testing.B) { benchExperiment(b, "ablation-iq") }

// BenchmarkAblationVSQ regenerates the §7 store-queue sizing study.
func BenchmarkAblationVSQ(b *testing.B) { benchExperiment(b, "ablation-vsq") }

// BenchmarkAblationAVDQ regenerates the §6/§8 load-queue sizing study.
func BenchmarkAblationAVDQ(b *testing.B) { benchExperiment(b, "ablation-avdq") }

// benchArch measures raw simulator throughput (simulated cycles per second)
// on one program.
func benchArch(b *testing.B, prog, arch string, latency int64) {
	b.Helper()
	w, err := decvec.LoadWorkload(prog)
	if err != nil {
		b.Fatal(err)
	}
	src := w.Trace(benchScale)
	cfg := decvec.DefaultConfig(latency)
	var simCycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := decvec.RunSource(src, arch, cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += r.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkREF_ARC2D measures reference-simulator throughput on a
// long-vector program.
func BenchmarkREF_ARC2D(b *testing.B) { benchArch(b, "ARC2D", "REF", 30) }

// BenchmarkREF_SPEC77 measures reference-simulator throughput on a
// short-vector program.
func BenchmarkREF_SPEC77(b *testing.B) { benchArch(b, "SPEC77", "REF", 30) }

// BenchmarkDVA_ARC2D measures decoupled-simulator throughput (per-cycle
// stepping) on a long-vector program.
func BenchmarkDVA_ARC2D(b *testing.B) { benchArch(b, "ARC2D", "DVA", 30) }

// BenchmarkDVA_SPEC77 measures decoupled-simulator throughput on a
// short-vector program.
func BenchmarkDVA_SPEC77(b *testing.B) { benchArch(b, "SPEC77", "DVA", 30) }

// BenchmarkBYP_DYFESM measures the bypass variant on the program with the
// most bypass traffic.
func BenchmarkBYP_DYFESM(b *testing.B) { benchArch(b, "DYFESM", "BYP", 30) }

// BenchmarkTraceGeneration measures synthetic trace synthesis itself.
func BenchmarkTraceGeneration(b *testing.B) {
	w, err := decvec.LoadWorkload("BDNA")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		src := w.FreshTrace(benchScale)
		if src == nil {
			b.Fatal("nil trace")
		}
	}
}

// BenchmarkExtensionOOO regenerates the §8 extension study (decoupling vs
// out-of-order execution and register renaming).
func BenchmarkExtensionOOO(b *testing.B) { benchExperiment(b, "extension-ooo") }

// BenchmarkExtensionConflicts regenerates the memory-conflict jitter study.
func BenchmarkExtensionConflicts(b *testing.B) { benchExperiment(b, "extension-conflicts") }

// BenchmarkAblationQMov regenerates the §4.3 QMOV-unit-count study.
func BenchmarkAblationQMov(b *testing.B) { benchExperiment(b, "ablation-qmov") }

// BenchmarkExtensionPorts regenerates the second-memory-port comparison.
func BenchmarkExtensionPorts(b *testing.B) { benchExperiment(b, "extension-ports") }

// BenchmarkFigure3CacheCold measures one Figure 3 regeneration into a fresh
// persistent result cache: full simulation cost plus the encode/checksum/
// write overhead of populating the store.
func BenchmarkFigure3CacheCold(b *testing.B) {
	var sims int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store, err := decvec.OpenCache(b.TempDir(), decvec.CacheOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s := decvec.NewSuite(benchScale)
		s.Disk = store
		if _, err := decvec.RunExperimentWithSuite(s, "fig3"); err != nil {
			b.Fatal(err)
		}
		sims += s.Simulations()
	}
	b.ReportMetric(float64(sims)/float64(b.N), "sims/op")
}

// BenchmarkFigure3CacheWarm measures the same regeneration served entirely
// from a warm store — no simulator invocations (sims/op must report 0); the
// remaining cost is hashing, decoding and report rendering. The ratio
// against BenchmarkFigure3CacheCold is the cache's headline speedup.
func BenchmarkFigure3CacheWarm(b *testing.B) {
	dir := b.TempDir()
	warm := func() (*decvec.Suite, error) {
		store, err := decvec.OpenCache(dir, decvec.CacheOptions{})
		if err != nil {
			return nil, err
		}
		s := decvec.NewSuite(benchScale)
		s.Disk = store
		return s, nil
	}
	s, err := warm()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := decvec.RunExperimentWithSuite(s, "fig3"); err != nil {
		b.Fatal(err)
	}
	var sims int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := warm()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := decvec.RunExperimentWithSuite(s, "fig3"); err != nil {
			b.Fatal(err)
		}
		sims += s.Simulations()
	}
	b.ReportMetric(float64(sims)/float64(b.N), "sims/op")
}

// BenchmarkDVA_ARC2D_Recorded is BenchmarkDVA_ARC2D with an event recorder
// attached; the delta against the plain benchmark is the cost of recording,
// and the plain benchmark itself guards the disabled-recorder hot path.
func BenchmarkDVA_ARC2D_Recorded(b *testing.B) {
	w, err := decvec.LoadWorkload("ARC2D")
	if err != nil {
		b.Fatal(err)
	}
	src := w.Trace(benchScale)
	cfg := decvec.DefaultConfig(30)
	var simCycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := decvec.NewRecorder()
		r, err := decvec.RunSourceRecorded(src, "DVA", cfg, rec)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += r.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "simcycles/s")
}
