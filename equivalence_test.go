package decvec

import (
	"reflect"
	"testing"

	"decvec/internal/dva"
	"decvec/internal/ooo"
	"decvec/internal/ref"
	"decvec/internal/report"
	"decvec/internal/sim"
	"decvec/internal/workload"
)

// These tests pin the central claim of the idle-skip (event-horizon) fast
// path: it is a pure wall-clock optimization. For every simulator core and
// every point of the (program x latency x queue-size) grid, a fast run and a
// SlowTick (per-cycle) run must produce bit-identical results — cycles,
// stall counters, state breakdowns, occupancy histograms, queue statistics,
// the rendered metrics JSON, and (for the recorded cores) the exact same
// event stream.

// equivalenceScale keeps the grid affordable under -race while still running
// thousands of cycles per point.
const equivalenceScale = 0.25

// normalize clears the one field that legitimately differs between the two
// modes (the mode flag itself) so the rest of the result can be compared
// with reflect.DeepEqual.
func normalize(r *sim.Result) *sim.Result {
	c := *r
	c.Config.SlowTick = false
	return &c
}

// assertIdentical fails the test unless fast and slow are bit-identical
// (modulo the SlowTick flag) and render identical metrics JSON.
func assertIdentical(t *testing.T, fast, slow *sim.Result) {
	t.Helper()
	nf, ns := normalize(fast), normalize(slow)
	if !reflect.DeepEqual(nf, ns) {
		t.Errorf("fast and slow results differ:\nfast: %+v\nslow: %+v", nf, ns)
		if fast.Cycles != slow.Cycles {
			t.Errorf("cycles: fast %d, slow %d", fast.Cycles, slow.Cycles)
		}
		if fast.States != slow.States {
			t.Errorf("states: fast %v, slow %v", &fast.States, &slow.States)
		}
		if fast.Stalls != slow.Stalls {
			t.Errorf("stalls: fast %v, slow %v", fast.Stalls.Nonzero(), slow.Stalls.Nonzero())
		}
	}
	fj, err := report.MetricsJSON(nf)
	if err != nil {
		t.Fatalf("fast MetricsJSON: %v", err)
	}
	sj, err := report.MetricsJSON(ns)
	if err != nil {
		t.Fatalf("slow MetricsJSON: %v", err)
	}
	if string(fj) != string(sj) {
		t.Errorf("MetricsJSON differs:\nfast: %s\nslow: %s", fj, sj)
	}
}

// assertSameEvents fails the test unless both recorders saw the same stream.
// The fast path records a skipped idle window by extending the stall events
// of the window's first cycle, which must reproduce the per-cycle coalescing
// exactly.
func assertSameEvents(t *testing.T, fast, slow *sim.Recorder) {
	t.Helper()
	fe, se := fast.Events(), slow.Events()
	if len(fe) != len(se) {
		t.Errorf("event stream length differs: fast %d, slow %d", len(fe), len(se))
	}
	n := len(fe)
	if len(se) < n {
		n = len(se)
	}
	for i := 0; i < n; i++ {
		if fe[i] != se[i] {
			t.Errorf("event %d differs:\nfast: %+v\nslow: %+v", i, fe[i], se[i])
			return
		}
	}
}

// dvaGrid is the DVA/BYP configuration grid: the paper's default machine,
// squeezed queues (which shift the stall mix toward back-pressure), the
// bypass machine, and a second QMOV/port shape.
func dvaGrid(latency int64) []sim.Config {
	def := sim.DefaultConfig(latency)

	small := sim.DefaultConfig(latency)
	small.IQSize = 2
	small.ScalarQSize = 4
	small.AVDQSize = 4
	small.VADQSize = 2

	byp := sim.BypassConfig(latency, 16, 8)

	wide := sim.DefaultConfig(latency)
	wide.MemPorts = 2
	wide.QMovUnits = 1
	wide.LatencyJitter = 7

	return []sim.Config{def, small, byp, wide}
}

var equivalenceLatencies = []int64{1, 30, 100}

// TestDVAIdleSkipEquivalence sweeps the DVA and BYP cores over the full
// (program x latency x queue-size) grid, comparing the fast and SlowTick
// modes including their recorded event streams.
func TestDVAIdleSkipEquivalence(t *testing.T) {
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			for ci, cfg := range dvaGrid(lat) {
				p, cfg := p, cfg
				t.Run(testName(p.Name, lat, ci), func(t *testing.T) {
					t.Parallel()
					src := p.CachedTrace(equivalenceScale)

					fastRec, slowRec := sim.NewRecorder(), sim.NewRecorder()
					fastCfg := cfg
					fastCfg.SlowTick = false
					slowCfg := cfg
					slowCfg.SlowTick = true

					fast, err := dva.RunRecorded(src, fastCfg, fastRec)
					if err != nil {
						t.Fatalf("fast run: %v", err)
					}
					slow, err := dva.RunRecorded(src, slowCfg, slowRec)
					if err != nil {
						t.Fatalf("slow run: %v", err)
					}
					assertIdentical(t, fast, slow)
					assertSameEvents(t, fastRec, slowRec)
				})
			}
		}
	}
}

// TestREFIdleSkipEquivalence checks the reference core's windowed state
// accounting against the per-cycle SlowTick mode, event streams included.
func TestREFIdleSkipEquivalence(t *testing.T) {
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			p, lat := p, lat
			t.Run(testName(p.Name, lat, 0), func(t *testing.T) {
				t.Parallel()
				src := p.CachedTrace(equivalenceScale)

				fastRec, slowRec := sim.NewRecorder(), sim.NewRecorder()
				fastCfg := sim.DefaultConfig(lat)
				slowCfg := fastCfg
				slowCfg.SlowTick = true

				fast, err := ref.RunRecorded(src, fastCfg, fastRec)
				if err != nil {
					t.Fatalf("fast run: %v", err)
				}
				slow, err := ref.RunRecorded(src, slowCfg, slowRec)
				if err != nil {
					t.Fatalf("slow run: %v", err)
				}
				assertIdentical(t, fast, slow)
				assertSameEvents(t, fastRec, slowRec)
			})
		}
	}
}

// TestOOOIdleSkipEquivalence checks the out-of-order core over window and
// physical-register shapes in addition to the latency sweep.
func TestOOOIdleSkipEquivalence(t *testing.T) {
	shapes := []struct{ window, phys int }{
		{1, 8}, {4, 16}, {16, 32},
	}
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			for si, sh := range shapes {
				p, lat, sh := p, lat, sh
				t.Run(testName(p.Name, lat, si), func(t *testing.T) {
					t.Parallel()
					src := p.CachedTrace(equivalenceScale)

					fastCfg := ooo.DefaultConfig(lat)
					fastCfg.Window = sh.window
					fastCfg.PhysRegs = sh.phys
					slowCfg := fastCfg
					slowCfg.SlowTick = true

					fast, err := ooo.Run(src, fastCfg)
					if err != nil {
						t.Fatalf("fast run: %v", err)
					}
					slow, err := ooo.Run(src, slowCfg)
					if err != nil {
						t.Fatalf("slow run: %v", err)
					}
					assertIdentical(t, fast, slow)
				})
			}
		}
	}
}

// TestBoundedRecorderEquivalence pins the one documented divergence between
// the modes: with MaxEvents set, the stored stream stays identical while the
// Dropped counter may differ (a skipped span drops as one event, not n).
func TestBoundedRecorderEquivalence(t *testing.T) {
	p := workload.Simulated()[0]
	src := p.CachedTrace(equivalenceScale)
	cfg := sim.DefaultConfig(100)

	fastRec := &sim.Recorder{MaxEvents: 64}
	slowRec := &sim.Recorder{MaxEvents: 64}
	slowCfg := cfg
	slowCfg.SlowTick = true

	fast, err := dva.RunRecorded(src, cfg, fastRec)
	if err != nil {
		t.Fatalf("fast run: %v", err)
	}
	slow, err := dva.RunRecorded(src, slowCfg, slowRec)
	if err != nil {
		t.Fatalf("slow run: %v", err)
	}
	assertIdentical(t, fast, slow)
	assertSameEvents(t, fastRec, slowRec)
	if fastRec.Dropped == 0 || slowRec.Dropped == 0 {
		t.Errorf("expected both recorders to drop events at MaxEvents=64: fast %d, slow %d",
			fastRec.Dropped, slowRec.Dropped)
	}
}

// testName builds a stable subtest name for one grid point.
func testName(prog string, lat int64, variant int) string {
	return prog + "/L" + itoa(lat) + "/c" + itoa(int64(variant))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
