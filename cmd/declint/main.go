// Command declint runs the repository's custom static-analysis suite over
// the given package patterns and reports every violated simulator invariant.
//
// Usage:
//
//	go run ./cmd/declint ./...
//	go run ./cmd/declint -list
//	go run ./cmd/declint -json internal/dva internal/ref
//
// Exit-code contract (stable; CI and editor integrations rely on it):
//
//	0  the tree is clean
//	1  one or more diagnostics were reported
//	2  the analysis itself failed (unresolvable patterns, parse or
//	   type-check errors, bad flags)
//
// In the default text mode each diagnostic is one line,
// "file:line:col: analyzer: message", with the file path relative to the
// module root — the format .github/declint-problem-matcher.json teaches
// GitHub Actions to annotate. With -json the diagnostics are emitted as a
// single JSON object on stdout instead. See DESIGN.md ("Checked
// invariants") for the analyzers and the // declint: escape-hatch syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"decvec/internal/analysis"
	"decvec/internal/analysis/concdiscipline"
	"decvec/internal/analysis/ctxdiscipline"
	"decvec/internal/analysis/determinism"
	"decvec/internal/analysis/exhaustive"
	"decvec/internal/analysis/hotalloc"
	"decvec/internal/analysis/layerdag"
	"decvec/internal/analysis/queuediscipline"
	"decvec/internal/analysis/recorderhygiene"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		exhaustive.Analyzer,
		determinism.Analyzer,
		queuediscipline.Analyzer,
		recorderhygiene.Analyzer,
		layerdag.Analyzer,
		ctxdiscipline.Analyzer,
		concdiscipline.Analyzer,
		hotalloc.Analyzer,
	}
}

// finding is the machine-readable form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the top-level -json document.
type report struct {
	Findings []finding `json:"findings"`
	Count    int       `json:"count"`
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON document instead of text lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: declint [-list] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the simulator-invariant analyzers over the module.\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Exits 0 when clean, 1 on diagnostics, 2 on analysis errors.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, an := range analyzers() {
			fmt.Printf("%-16s %s\n", an.Name, an.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	violations, err := run(patterns, *jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declint:", err)
		os.Exit(2)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// run loads the packages, applies every analyzer and prints the surviving
// diagnostics; it returns how many there were.
func run(patterns []string, jsonOut bool) (int, error) {
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modPath, modDir, err := analysis.ModuleInfo(wd)
	if err != nil {
		return 0, err
	}
	loader := analysis.NewLoader(modPath, modDir)
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		return 0, err
	}
	diags, err := analysis.Run(analyzers(), pkgs)
	if err != nil {
		return 0, err
	}
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(modDir, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		findings = append(findings, finding{
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{Findings: findings, Count: len(findings)}); err != nil {
			return 0, err
		}
		return len(findings), nil
	}
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Printf("declint: %d violation(s)\n", len(findings))
	}
	return len(findings), nil
}
