// Command declint runs the repository's custom static-analysis suite over
// the given package patterns and reports every violated simulator invariant.
//
// Usage:
//
//	go run ./cmd/declint ./...
//	go run ./cmd/declint -list
//	go run ./cmd/declint internal/dva internal/ref
//
// It exits 0 when the tree is clean, 1 when diagnostics were reported and 2
// on load errors. See DESIGN.md ("Checked invariants") for the analyzers and
// the // declint: escape-hatch syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"decvec/internal/analysis"
	"decvec/internal/analysis/determinism"
	"decvec/internal/analysis/exhaustive"
	"decvec/internal/analysis/queuediscipline"
	"decvec/internal/analysis/recorderhygiene"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		exhaustive.Analyzer,
		determinism.Analyzer,
		queuediscipline.Analyzer,
		recorderhygiene.Analyzer,
	}
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: declint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the simulator-invariant analyzers over the module.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, an := range analyzers() {
			fmt.Printf("%-16s %s\n", an.Name, an.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "declint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	modPath, modDir, err := analysis.ModuleInfo(wd)
	if err != nil {
		return err
	}
	loader := analysis.NewLoader(modPath, modDir)
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		return err
	}
	diags, err := analysis.Run(analyzers(), pkgs)
	if err != nil {
		return err
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Printf("declint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}
