// Command dvabench regenerates the paper's tables and figures.
//
// Usage:
//
//	dvabench [-exp table1,fig1,fig3,...|all] [-scale 1.0] [-csv]
//
// Each experiment prints an ASCII rendition of the corresponding paper
// table or figure. Experiments sharing simulation runs (fig3/4/5) reuse a
// common cache, so running "all" costs little more than the union of runs.
//
// The -cpuprofile and -memprofile flags write runtime/pprof profiles
// covering the experiment runs, for use with "go tool pprof" (see also
// "make profile"). Profiling is passive; reports are unaffected.
//
// -slowtick disables the idle-skip fast path and simulates every cycle
// (DESIGN.md "Idle-skip advancement"). The output is byte-identical in
// both modes; only the wall clock differs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"decvec"
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments to run, or 'all'; available: "+strings.Join(decvec.ExperimentNames(), ","))
		scale      = flag.Float64("scale", 1.0, "trace scale factor (1.0 = default trace sizes)")
		quiet      = flag.Bool("q", false, "suppress timing output")
		outDir     = flag.String("out", "", "also write each experiment's report to <dir>/<name>.txt")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
		slowTick   = flag.Bool("slowtick", false, "disable the idle-skip fast path and simulate every cycle (same output, ~3x slower)")
	)
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			os.Exit(1)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	names := decvec.ExperimentNames()
	if *exps != "all" {
		names = strings.Split(*exps, ",")
	}
	suite := decvec.NewSuite(*scale)
	suite.SlowTick = *slowTick
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		start := time.Now()
		out, err := decvec.RunExperimentWithSuite(suite, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n%s\n", name, out)
		if *outDir != "" {
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
				os.Exit(1)
			}
		}
		if !*quiet {
			fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle allocations so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}
