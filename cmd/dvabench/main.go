// Command dvabench regenerates the paper's tables and figures.
//
// Usage:
//
//	dvabench [-exp table1,fig1,fig3,...|all] [-scale 1.0] [-csv]
//
// Each experiment prints an ASCII rendition of the corresponding paper
// table or figure. Experiments sharing simulation runs (fig3/4/5) reuse a
// common cache, so running "all" costs little more than the union of runs.
//
// The -cpuprofile and -memprofile flags write runtime/pprof profiles
// covering the experiment runs, for use with "go tool pprof" (see also
// "make profile"). Profiling is passive; reports are unaffected.
//
// -slowtick disables the idle-skip fast path and simulates every cycle
// (DESIGN.md "Idle-skip advancement"). The output is byte-identical in
// both modes; only the wall clock differs.
//
// Simulation results persist in a content-addressed cache (default
// $XDG_CACHE_HOME/decvec; see DESIGN.md "Result cache"), so repeat
// invocations skip simulation entirely. -cache=off disables it, -cache-dir
// relocates it, -cache-max-mb bounds it (GC runs at the end of every
// invocation, even ones that fail mid-run), and -cache-verify re-simulates
// a fraction of cache hits and fails loudly on any divergence. Keys
// include a fingerprint of the simulator sources, so editing any model
// forces a cold run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"decvec"
)

func main() {
	os.Exit(run())
}

// run holds the whole invocation so that end-of-run cache maintenance —
// the GC that enforces -cache-max-mb and the hit/miss accounting — happens
// on every exit path, including mid-run experiment failures. os.Exit would
// skip it; main only forwards the code.
func run() int {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments to run, or 'all'; available: "+strings.Join(decvec.ExperimentNames(), ","))
		scale      = flag.Float64("scale", 1.0, "trace scale factor (1.0 = default trace sizes)")
		quiet      = flag.Bool("q", false, "suppress timing output")
		outDir     = flag.String("out", "", "also write each experiment's report to <dir>/<name>.txt")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
		slowTick   = flag.Bool("slowtick", false, "disable the idle-skip fast path and simulate every cycle (same output, ~3x slower)")

		cacheMode   = flag.String("cache", "on", "persistent result cache: on or off")
		cacheDir    = flag.String("cache-dir", "", "result cache directory (default $XDG_CACHE_HOME/decvec)")
		cacheMaxMB  = flag.Int64("cache-max-mb", 512, "result cache size cap in MiB, enforced after the run (0 = unbounded)")
		cacheVerify = flag.Float64("cache-verify", 0, "re-simulate this fraction of cache hits and fail on any mismatch (1 audits every hit)")
	)
	flag.Parse()
	if *cacheMaxMB < 0 {
		fmt.Fprintf(os.Stderr, "dvabench: -cache-max-mb must be >= 0 (0 = unbounded), got %d\n", *cacheMaxMB)
		return 2
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			return 1
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	names := decvec.ExperimentNames()
	if *exps != "all" {
		names = strings.Split(*exps, ",")
	}
	suite := decvec.NewSuite(*scale)
	suite.SlowTick = *slowTick
	suite.VerifyFraction = *cacheVerify
	if *cacheMode != "off" {
		dir := *cacheDir
		if dir == "" {
			dir = decvec.DefaultCacheDir()
		}
		if dir == "" {
			fmt.Fprintln(os.Stderr, "dvabench: no cache directory available; running uncached (set -cache-dir)")
		} else {
			maxBytes := *cacheMaxMB << 20
			if *cacheMaxMB == 0 {
				maxBytes = -1 // unbounded
			}
			store, err := decvec.OpenCache(dir, decvec.CacheOptions{MaxBytes: maxBytes})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvabench: %v; running uncached\n", err)
			} else {
				suite.Disk = store
			}
		}
	}

	// A mid-run failure stops launching experiments but still falls through
	// to the cache GC and counters below — completed runs were already
	// Put, so the store must still be brought back under its cap.
	var runErr error
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		start := time.Now()
		out, err := decvec.RunExperimentWithSuite(suite, name)
		if err != nil {
			runErr = err
			break
		}
		fmt.Printf("==== %s ====\n%s\n", name, out)
		if *outDir != "" {
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				runErr = err
				break
			}
		}
		if !*quiet {
			fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dvabench: %v\n", runErr)
	}

	if suite.Disk != nil {
		if _, err := suite.Disk.GC(); err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: cache GC: %v\n", err)
		}
		if !*quiet {
			fmt.Printf("%s(simulations run: %d, cache %s)\n\n",
				decvec.CacheTable(suite.CacheStats()), suite.Simulations(), suite.Disk.Dir())
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			return 1
		}
		runtime.GC() // settle allocations so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dvabench: %v\n", err)
			return 1
		}
		f.Close()
	}
	if runErr != nil {
		return 1
	}
	return 0
}
