// Command benchjson turns a pair of `go test -bench` outputs — a checked-in
// baseline and a fresh run — into a single JSON trajectory file. The repo
// tracks the result (BENCH_PR<n>.json) so performance claims in each PR are
// reproducible numbers, not prose: each benchmark carries its baseline and
// current ns/op, B/op, allocs/op and any custom metrics (sims/op,
// simcycles/s), a baseline/current speedup, and the file closes with the
// geometric-mean speedup over the paper-figure benchmarks.
//
// With -min-geomean set, benchjson doubles as the CI performance gate: the
// report is still written, then the process exits nonzero if the figure
// geomean speedup falls below the floor (CI uses 0.95, allowing runner
// noise but failing real regressions). Feed it a `-count 3` (or higher) run:
// repeated lines for one benchmark are reduced to their per-metric median
// before any speedup is computed, so one descheduled run cannot flake the
// gate.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count 3 -benchmem -run '^$' . > current.txt
//	go run ./cmd/benchjson -baseline bench/baseline_pr8.txt \
//	    -current current.txt -out BENCH_CI.json -min-geomean 0.95 \
//	    -desc "..." -notes "..."
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark's metrics keyed by unit ("ns/op",
// "allocs/op", "sims/op", ...).
type result map[string]float64

// samples collects every value a metric reported across repeated runs of the
// same benchmark (`go test -count N` emits one line per run).
type samples map[string][]float64

// parseBench reads `go test -bench` output and returns name → metrics. A
// benchmark that appears on several lines (a -count N run) contributes the
// per-metric median, so a single jittery run cannot swing the speedup the CI
// gate checks. The trailing -N GOMAXPROCS suffix is stripped so runs from
// machines with different core counts compare by name.
func parseBench(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	all := make(map[string]samples)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := all[name]
		if s == nil {
			s = make(samples)
			all[name] = s
		}
		// fields[1] is the iteration count; the rest come in (value, unit)
		// pairs regardless of which metrics a benchmark reports.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q for %s", path, fields[i], name)
			}
			s[fields[i+1]] = append(s[fields[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string]result, len(all))
	for name, s := range all {
		r := make(result, len(s))
		for unit, vs := range s {
			r[unit] = median(vs)
		}
		out[name] = r
	}
	return out, nil
}

// median returns the middle sample (mean of the middle two for even counts).
// Callers never pass an empty slice: every parsed metric has ≥ 1 sample.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// entry is one benchmark's row in the JSON output.
type entry struct {
	Baseline result  `json:"baseline,omitempty"`
	Current  result  `json:"current,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"` // baseline ns/op ÷ current ns/op
}

type report struct {
	Description string           `json:"description"`
	Baseline    string           `json:"baseline_file"`
	Benchmarks  map[string]entry `json:"benchmarks"`
	// Figures lists the benchmarks (paper figures) entering the geomean.
	Figures []string `json:"figure_benchmarks"`
	// FigureGeomeanSpeedup is the geometric mean of the figure benchmarks'
	// wall-clock speedups — the PR's headline number.
	FigureGeomeanSpeedup float64 `json:"figure_geomean_speedup"`
	Notes                string  `json:"notes,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "bench/baseline_pr5.txt", "checked-in baseline bench output")
	current := flag.String("current", "", "fresh bench output (required)")
	out := flag.String("out", "BENCH_PR5.json", "JSON report path")
	desc := flag.String("desc", "pre-PR baseline vs current; speedup = baseline ns/op / current ns/op",
		"one-line description of what the trajectory compares")
	notes := flag.String("notes", "", "free-form notes embedded in the report")
	minGeomean := flag.Float64("min-geomean", 0,
		"fail (exit 1) if the figure geomean speedup falls below this value; 0 disables the gate")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -current is required")
		os.Exit(2)
	}

	base, err := parseBench(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := parseBench(*current)
	if err != nil {
		fatal(err)
	}

	rep := report{
		Description: *desc,
		Baseline:    *baseline,
		Benchmarks:  make(map[string]entry),
		Notes:       *notes,
	}
	names := make(map[string]bool)
	for n := range base {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	for n := range names {
		e := entry{Baseline: base[n], Current: cur[n]}
		if b, c := e.Baseline["ns/op"], e.Current["ns/op"]; b > 0 && c > 0 {
			e.Speedup = round3(b / c)
		}
		rep.Benchmarks[n] = e
	}

	// The paper-figure regeneration benchmarks define the headline geomean.
	logSum, logN := 0.0, 0
	for _, n := range []string{"Figure1", "Figure3", "Figure4", "Figure5", "Figure6", "Figure7", "Figure8"} {
		if s := rep.Benchmarks[n].Speedup; s > 0 {
			rep.Figures = append(rep.Figures, n)
			logSum += math.Log(s)
			logN++
		}
	}
	sort.Strings(rep.Figures)
	if logN > 0 {
		rep.FigureGeomeanSpeedup = round3(math.Exp(logSum / float64(logN)))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: %s (figure geomean %.3fx over %d benchmarks)\n",
		*out, rep.FigureGeomeanSpeedup, logN)

	// The gate makes the bench step CI-enforceable: the report is always
	// written (the artifact survives a failure for diagnosis), then the run
	// fails if the figure geomean regressed below the floor.
	if *minGeomean > 0 {
		if logN == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -min-geomean %.2f set but no figure benchmarks matched\n", *minGeomean)
			os.Exit(1)
		}
		if rep.FigureGeomeanSpeedup < *minGeomean {
			fmt.Fprintf(os.Stderr, "benchjson: figure geomean %.3fx below floor %.2fx\n",
				rep.FigureGeomeanSpeedup, *minGeomean)
			os.Exit(1)
		}
	}
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
