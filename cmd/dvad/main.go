// Command dvad is the long-running simulation daemon: simulation-as-a-
// service over the same engine, suite and persistent cache the CLI tools
// use.
//
// Usage:
//
//	dvad [-addr :8382] [-scale 1.0] [-max-concurrent N] [-max-queue N]
//	     [-timeout 60s] [-gc-interval 5m]
//	     [-cache on|off] [-cache-dir DIR] [-cache-max-mb 512] [-cache-verify F]
//
// Endpoints: POST /v1/simulate (one run, `-metrics-json`-shaped reply),
// POST /v1/sweep (a program × arch × latency × queue grid), GET /healthz,
// GET /statsz (counters; ?format=table for ASCII).
//
// Identical concurrent requests coalesce into one simulation; an admission
// gate bounds concurrent simulations and sheds load with 429 when the wait
// queue overflows. SIGINT/SIGTERM trigger a graceful shutdown: in-flight
// requests drain, the cache is GC'd a final time, and the served/simulated
// counters print in the same tables dvabench uses. See DESIGN.md "Serving".
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"decvec"
)

func main() {
	var (
		addr     = flag.String("addr", ":8382", "listen address")
		scale    = flag.Float64("scale", 1.0, "trace scale factor shared by every request")
		maxConc  = flag.Int("max-concurrent", 0, "max simultaneously running simulations (0 = GOMAXPROCS)")
		maxQueue = flag.Int("max-queue", 0, "max simulations waiting for a slot before 429 (0 = 4x max-concurrent)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request wall-time cap (requests answer 504 past it)")
		gcEvery  = flag.Duration("gc-interval", 5*time.Minute, "periodic cache GC interval (0 disables; the shutdown GC always runs)")

		cacheMode   = flag.String("cache", "on", "persistent result cache: on or off")
		cacheDir    = flag.String("cache-dir", "", "result cache directory (default $XDG_CACHE_HOME/decvec)")
		cacheMaxMB  = flag.Int64("cache-max-mb", 512, "result cache size cap in MiB, enforced periodically and at shutdown (0 = unbounded)")
		cacheVerify = flag.Float64("cache-verify", 0, "re-simulate this fraction of cache hits and fail the request on any mismatch")
	)
	flag.Parse()
	if *cacheMaxMB < 0 {
		fmt.Fprintf(os.Stderr, "dvad: -cache-max-mb must be >= 0 (0 = unbounded), got %d\n", *cacheMaxMB)
		os.Exit(2)
	}

	var store *decvec.CacheStore
	if *cacheMode != "off" {
		dir := *cacheDir
		if dir == "" {
			dir = decvec.DefaultCacheDir()
		}
		if dir == "" {
			fmt.Fprintln(os.Stderr, "dvad: no cache directory available; serving without the disk tier (set -cache-dir)")
		} else {
			maxBytes := *cacheMaxMB << 20
			if *cacheMaxMB == 0 {
				maxBytes = -1 // unbounded
			}
			var err error
			store, err = decvec.OpenCache(dir, decvec.CacheOptions{MaxBytes: maxBytes})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvad: %v; serving without the disk tier\n", err)
				store = nil
			}
		}
	}

	srv := decvec.NewServer(decvec.ServerConfig{
		Scale:          *scale,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		RequestTimeout: *timeout,
		Store:          store,
		GCInterval:     *gcEvery,
	})
	srv.Suite().VerifyFraction = *cacheVerify

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "dvad: %v: draining in-flight requests...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dvad: shutdown: %v\n", err)
		}
	}()

	cacheNote := "off"
	if store != nil {
		cacheNote = store.Dir()
	}
	fmt.Fprintf(os.Stderr, "dvad: serving on %s (scale %g, cache %s)\n", *addr, *scale, cacheNote)
	err := srv.ListenAndServe(*addr)
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "dvad: %v\n", err)
		os.Exit(1)
	}
	<-done // let the signal handler finish draining and GC

	fmt.Fprint(os.Stderr, decvec.ServerTable(srv.Stats()))
	if store != nil {
		fmt.Fprint(os.Stderr, decvec.CacheTable(store.Stats()))
	}
}
