// Command dvadload is the load-test harness for the dvad daemon: it fires
// concurrent /v1/simulate requests, reports latency percentiles and
// throughput, and measures coalescing — requests served versus simulations
// actually run, read from /statsz before and after the storm.
//
// Usage:
//
//	dvadload [-url http://localhost:8382] [-n 200] [-c 100]
//	         [-prog BDNA] [-arch DVA] [-latency 50] [-mix]
//	         [-assert-coalesce]
//
// By default every request is identical, the worst case for a naive server
// and the best case for a coalescing one: N requests must cost at most one
// simulation (zero on a warm cache). -mix varies the latency per request to
// exercise throughput across distinct configurations instead.
// -assert-coalesce exits nonzero unless all requests succeeded and the
// simulation delta stayed ≤ 1 — the CI smoke contract.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

func main() {
	var (
		url       = flag.String("url", "http://localhost:8382", "dvad base URL")
		n         = flag.Int("n", 200, "total requests")
		c         = flag.Int("c", 100, "concurrent workers")
		prog      = flag.String("prog", "BDNA", "program to request")
		arch      = flag.String("arch", "DVA", "architecture to request")
		latency   = flag.Int64("latency", 50, "memory latency to request")
		mix       = flag.Bool("mix", false, "vary the latency per request (distinct configurations) instead of firing identical requests")
		assertCoa = flag.Bool("assert-coalesce", false, "exit nonzero unless every request succeeded and the run cost at most one simulation")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
	)
	flag.Parse()
	if *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "dvadload: -n and -c must be positive")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	before, err := stats(client, *url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvadload: reading /statsz: %v\n", err)
		os.Exit(1)
	}

	type result struct {
		dur    time.Duration
		status int
		err    error
	}
	results := make([]result, *n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				lat := *latency
				if *mix {
					// Walk the paper's latency sweep so each request is a
					// distinct, equally real configuration.
					lat = int64(1 + 10*(i%11))
					if lat > 1 {
						lat-- // 1,10,20,...,100
					}
				}
				body, _ := json.Marshal(map[string]any{
					"program": *prog, "arch": *arch, "latency": lat,
				})
				t0 := time.Now()
				resp, err := client.Post(*url+"/v1/simulate", "application/json", bytes.NewReader(body))
				r := result{dur: time.Since(t0), err: err}
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					r.status = resp.StatusCode
				}
				results[i] = r
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	after, err := stats(client, *url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvadload: reading /statsz: %v\n", err)
		os.Exit(1)
	}

	var durs []time.Duration
	ok, failed := 0, 0
	statuses := map[int]int{}
	for _, r := range results {
		if r.err != nil {
			failed++
			continue
		}
		statuses[r.status]++
		if r.status == http.StatusOK {
			ok++
			durs = append(durs, r.dur)
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })

	sims := after.Simulations - before.Simulations
	fmt.Printf("dvadload: %d requests (%d workers) in %v (%.1f req/s)\n",
		*n, *c, wall.Round(time.Millisecond), float64(*n)/wall.Seconds())
	fmt.Printf("  ok: %d", ok)
	for code, cnt := range statuses {
		if code != http.StatusOK {
			fmt.Printf("  %d: %d", code, cnt)
		}
	}
	if failed > 0 {
		fmt.Printf("  transport errors: %d", failed)
	}
	fmt.Println()
	if len(durs) > 0 {
		fmt.Printf("  latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(durs, 50), pct(durs, 90), pct(durs, 99), durs[len(durs)-1])
	}
	fmt.Printf("  coalescing: %d requests served by %d simulations", ok, sims)
	if sims > 0 {
		fmt.Printf(" (%.0fx)", float64(ok)/float64(sims))
	}
	fmt.Println()

	if *assertCoa {
		if ok != *n {
			fmt.Fprintf(os.Stderr, "dvadload: assert-coalesce: only %d/%d requests succeeded\n", ok, *n)
			os.Exit(1)
		}
		if *mix {
			fmt.Fprintln(os.Stderr, "dvadload: assert-coalesce requires identical requests (drop -mix)")
			os.Exit(2)
		}
		if sims > 1 {
			fmt.Fprintf(os.Stderr, "dvadload: assert-coalesce: %d identical requests cost %d simulations, want <= 1\n", *n, sims)
			os.Exit(1)
		}
		fmt.Printf("  assert-coalesce: PASS (%d requests, %d simulation(s))\n", *n, sims)
	}
}

// statsz is the subset of /statsz dvadload needs.
type statsz struct {
	Served      int64 `json:"served"`
	Simulations int64 `json:"simulations"`
}

func stats(client *http.Client, base string) (statsz, error) {
	var s statsz
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("/statsz: %s", resp.Status)
	}
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

// pct returns the p-th percentile of sorted durations (nearest-rank).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i < 1 {
		i = 1
	}
	return sorted[i-1]
}
