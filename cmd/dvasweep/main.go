// Command dvasweep runs a parameter sweep across dvad workers — or
// in-process when none are given — and merges the results in plan order.
//
// Usage:
//
//	dvasweep [-grid grid.json | -progs BDNA,OCEAN -archs REF,DVA
//	          -latencies 1,50,100 -loadqs 0 -storeqs 0]
//	         [-workers http://host1:8382,http://host2:8382]
//	         [-scale 1.0] [-cache-dir DIR] [-chunk 128] [-inflight 2]
//	         [-retries 4] [-backoff 100ms] [-req-timeout 0]
//	         [-out results.bin] [-digest] [-json] [-quiet]
//	         [-assert-no-reshard]
//
// The grid comes from a JSON spec file (-grid; the decvec.SweepGridSpec
// schema) or from the dimension flags; empty dimensions take the paper
// defaults. Cells shard across the workers by simcache key prefix, so a
// repeat sweep lands each cell on the worker whose disk cache already
// holds it; if a worker dies mid-sweep its unfinished cells re-shard
// across the survivors.
//
// -out writes every result's canonical binary encoding, concatenated in
// plan order; -digest prints the SHA-256 of that stream — two runs of the
// same grid print the same digest whatever the worker topology, which is
// the byte-identity contract CI checks. -assert-no-reshard exits nonzero
// if any cell had to move or any worker died (the healthy-fleet CI
// contract).
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"decvec"
)

func main() {
	var (
		gridFile  = flag.String("grid", "", "JSON grid spec file (mutually exclusive with the dimension flags)")
		progs     = flag.String("progs", "", "comma-separated program names (default: the six simulated programs)")
		archs     = flag.String("archs", "", "comma-separated architectures: REF, DVA, BYP (default REF,DVA)")
		latencies = flag.String("latencies", "", "comma-separated memory latencies (default: the Figure 3-5 sweep)")
		loadqs    = flag.String("loadqs", "", "comma-separated load-queue sizes (0 = architecture default)")
		storeqs   = flag.String("storeqs", "", "comma-separated store-queue sizes (0 = architecture default)")

		workers  = flag.String("workers", "", "comma-separated dvad base URLs; empty runs the sweep in-process")
		scale    = flag.Float64("scale", 1.0, "trace scale factor (must match the workers' -scale for cache affinity)")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory for the in-process fallback")
		chunk    = flag.Int("chunk", 0, "cells per worker dispatch (0 = 128, or one chunk for in-process runs)")
		inflight = flag.Int("inflight", 0, "concurrent chunks per worker (0 = 2)")
		retries  = flag.Int("retries", 0, "chunk retries before a worker is declared down (0 = 4)")
		backoff  = flag.Duration("backoff", 0, "first retry delay, doubling per retry (0 = 100ms)")
		reqTO    = flag.Duration("req-timeout", 0, "worker-side per-chunk timeout to request (0 = worker default)")

		outFile  = flag.String("out", "", "write concatenated canonical results (plan order) to this file")
		digest   = flag.Bool("digest", false, "print the SHA-256 of the canonical result stream")
		asJSON   = flag.Bool("json", false, "print the sweep summary as JSON instead of tables")
		quiet    = flag.Bool("quiet", false, "suppress the sweep summary and progress")
		noReshrd = flag.Bool("assert-no-reshard", false, "exit nonzero if any cell was re-sharded or any worker died")
	)
	flag.Parse()

	spec, err := gridSpec(*gridFile, *progs, *archs, *latencies, *loadqs, *storeqs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvasweep: %v\n", err)
		os.Exit(2)
	}
	plan, err := decvec.NewSweepPlan(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvasweep: %v\n", err)
		os.Exit(2)
	}

	var execs []decvec.SweepExecutor
	chunkSize := *chunk
	if *workers == "" {
		// In-process fallback: one local executor; a single chunk keeps
		// RunBatch's global trace-grouping unless the user asked otherwise.
		suite := decvec.NewSuite(*scale)
		if *cacheDir != "" {
			store, err := decvec.OpenCache(*cacheDir, decvec.CacheOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvasweep: %v; sweeping without the disk tier\n", err)
			} else {
				suite.Disk = store
			}
		}
		execs = append(execs, decvec.LocalExecutor("local", suite))
		if chunkSize <= 0 {
			chunkSize = plan.Points()
		}
	} else {
		opts := decvec.RemoteExecutorOptions{
			Client:    &http.Client{},
			Retries:   *retries,
			Backoff:   *backoff,
			TimeoutMs: reqTO.Milliseconds(),
		}
		for _, u := range strings.Split(*workers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			execs = append(execs, decvec.RemoteExecutor(u, opts))
		}
		if len(execs) == 0 {
			fmt.Fprintln(os.Stderr, "dvasweep: -workers has no usable URLs")
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var progress func(done, total int)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "dvasweep: %d cells across %d worker(s)\n", plan.Points(), len(execs))
		progress = progressPrinter(plan.Points())
	}
	start := time.Now()
	results, st, sweepErr := decvec.RunSweep(ctx, plan, execs, decvec.SweepOptions{
		Scale:     *scale,
		ChunkSize: chunkSize,
		Inflight:  *inflight,
		Progress:  progress,
	})
	wall := time.Since(start)

	// Canonical output stream: every completed result in plan order.
	// Errors below are I/O on our side, never sweep state.
	var sink io.Writer
	h := sha256.New()
	if *digest {
		sink = h
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvasweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if sink != nil {
			sink = io.MultiWriter(sink, f)
		} else {
			sink = f
		}
	}
	if sink != nil {
		for i, res := range results {
			if res == nil {
				continue
			}
			if err := decvec.EncodeResult(sink, res); err != nil {
				fmt.Fprintf(os.Stderr, "dvasweep: encoding cell %d: %v\n", i, err)
				os.Exit(1)
			}
		}
	}

	if !*quiet {
		if *asJSON {
			b, err := decvec.SweepStatsJSON(st)
			if err == nil {
				fmt.Println(string(b))
			}
		} else {
			fmt.Print(decvec.SweepTable(st))
		}
		fmt.Fprintf(os.Stderr, "dvasweep: %d/%d cells in %s\n", st.Completed, st.Points, wall.Round(time.Millisecond))
	}
	if *digest {
		fmt.Printf("sha256:%x\n", h.Sum(nil))
	}

	if sweepErr != nil {
		fmt.Fprintf(os.Stderr, "dvasweep: %v\n", sweepErr)
		os.Exit(1)
	}
	if *noReshrd {
		if st.Resharded > 0 {
			fmt.Fprintf(os.Stderr, "dvasweep: FAIL: %d cells re-sharded\n", st.Resharded)
			os.Exit(1)
		}
		for _, w := range st.Workers {
			if w.Failed {
				fmt.Fprintf(os.Stderr, "dvasweep: FAIL: worker %s died (%s)\n", w.Name, w.LastError)
				os.Exit(1)
			}
		}
	}
}

// gridSpec builds the plan spec from the -grid file or the dimension
// flags; mixing the two is an error, so a script can never half-override a
// file.
func gridSpec(file, progs, archs, latencies, loadqs, storeqs string) (decvec.SweepGridSpec, error) {
	var spec decvec.SweepGridSpec
	if file != "" {
		if progs+archs+latencies+loadqs+storeqs != "" {
			return spec, fmt.Errorf("-grid is mutually exclusive with the dimension flags")
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(b, &spec); err != nil {
			return spec, fmt.Errorf("parsing %s: %w", file, err)
		}
		return spec, nil
	}
	spec.Programs = splitList(progs)
	spec.Archs = splitList(archs)
	for _, s := range splitList(latencies) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("-latencies: %w", err)
		}
		spec.Latencies = append(spec.Latencies, v)
	}
	var err error
	if spec.LoadQs, err = intList("-loadqs", loadqs); err != nil {
		return spec, err
	}
	if spec.StoreQs, err = intList("-storeqs", storeqs); err != nil {
		return spec, err
	}
	return spec, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func intList(flagName, s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", flagName, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// progressPrinter reports to stderr at every decile boundary. The
// callback runs from concurrent chunk completions, hence the atomic.
func progressPrinter(total int) func(done, total int) {
	if total == 0 {
		return nil
	}
	var last atomic.Int64
	return func(done, total int) {
		dec := int64(done * 10 / total)
		for {
			prev := last.Load()
			if dec <= prev {
				return
			}
			if last.CompareAndSwap(prev, dec) {
				fmt.Fprintf(os.Stderr, "dvasweep: %d%% (%d/%d)\n", dec*10, done, total)
				return
			}
		}
	}
}
