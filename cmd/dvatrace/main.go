// Command dvatrace generates, inspects and validates the synthetic
// instruction traces that stand in for the paper's Dixie traces.
//
// Usage:
//
//	dvatrace -prog TRFD            # print Table 1 statistics for one model
//	dvatrace -prog TRFD -dump 40   # additionally dump the first N instructions
//	dvatrace -all                  # statistics for every model
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"decvec"
)

func main() {
	var (
		prog  = flag.String("prog", "", "program model: "+strings.Join(decvec.Workloads(), ","))
		all   = flag.Bool("all", false, "print statistics for all thirteen models")
		dump  = flag.Int("dump", 0, "dump the first N trace instructions")
		scale = flag.Float64("scale", 1.0, "trace scale factor")
		out   = flag.String("o", "", "write the trace to this file in binary format")
	)
	flag.Parse()

	names := []string{}
	switch {
	case *all:
		names = decvec.Workloads()
	case *prog != "":
		names = []string{*prog}
	default:
		fmt.Fprintln(os.Stderr, "dvatrace: need -prog NAME or -all")
		os.Exit(2)
	}

	for _, n := range names {
		w, err := decvec.LoadWorkload(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvatrace: %v\n", err)
			os.Exit(1)
		}
		src := w.Trace(*scale)
		st := w.Stats()
		fmt.Printf("%-8s %s\n", w.Name(), w.Description())
		fmt.Printf("  bbs=%d scalarInsts=%d vectorInsts=%d vectorOps=%d\n",
			st.BasicBlocks, st.ScalarInsts, st.VectorInsts, st.VectorOps)
		fmt.Printf("  vectorization=%.1f%% avgVL=%.1f spill=%.1f%% of memory ops\n",
			100*st.Vectorization(), st.AvgVL(), 100*st.SpillFraction())
		if *dump > 0 {
			stream := src.Stream()
			for i := 0; i < *dump; i++ {
				in, ok := stream.Next()
				if !ok {
					break
				}
				fmt.Printf("    %s\n", in)
			}
		}
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvatrace: %v\n", err)
				os.Exit(1)
			}
			if err := decvec.WriteTrace(f, src); err != nil {
				fmt.Fprintf(os.Stderr, "dvatrace: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dvatrace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", *out)
		}
	}
}
