// Command dvasim runs one benchmark program on one architecture and prints
// detailed statistics: cycle counts, the (FU2,FU1,LD) state breakdown,
// memory traffic, queue occupancies and stall diagnostics.
//
// Usage:
//
//	dvasim -prog BDNA -arch DVA -latency 50 [-bypass] [-loadq 256] [-storeq 16] [-iq 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"decvec"
)

func main() {
	var (
		prog    = flag.String("prog", "ARC2D", "program to simulate: "+strings.Join(decvec.Workloads(), ","))
		arch    = flag.String("arch", "DVA", "architecture: REF, DVA or BYP")
		latency = flag.Int64("latency", 50, "memory latency in cycles")
		loadQ   = flag.Int("loadq", 256, "AVDQ (vector load queue) slots")
		storeQ  = flag.Int("storeq", 16, "VADQ (vector store queue) slots")
		iq      = flag.Int("iq", 16, "instruction queue slots")
		jitter  = flag.Int64("jitter", 0, "per-access latency jitter in cycles (memory conflicts)")
		infile  = flag.String("i", "", "simulate a binary trace file instead of a program model")
	)
	flag.Parse()

	cfg := decvec.DefaultConfig(*latency)
	cfg.AVDQSize = *loadQ
	cfg.VADQSize = *storeQ
	cfg.IQSize = *iq
	cfg.LatencyJitter = *jitter
	if strings.ToUpper(*arch) == "BYP" {
		cfg.Bypass = true
	}

	var res *decvec.Result
	var name, desc string
	var idealCycles int64
	if *infile != "" {
		f, err := os.Open(*infile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvasim: %v\n", err)
			os.Exit(1)
		}
		src, err := decvec.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvasim: %v\n", err)
			os.Exit(1)
		}
		name, desc = src.Name(), "trace file "+*infile
		res, err = decvec.RunSource(src, strings.ToUpper(*arch), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvasim: %v\n", err)
			os.Exit(1)
		}
		idealCycles = decvec.IdealCyclesOf(src)
	} else {
		w, err := decvec.LoadWorkload(*prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvasim: %v\n", err)
			os.Exit(1)
		}
		name, desc = w.Name(), w.Description()
		idealCycles = w.IdealCycles()
		switch strings.ToUpper(*arch) {
		case "REF":
			res, err = w.RunREF(cfg)
		case "DVA":
			res, err = w.RunDVA(cfg)
		case "BYP":
			cfg.Bypass = true
			res, err = w.RunDVA(cfg)
		default:
			err = fmt.Errorf("unknown architecture %q", *arch)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvasim: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s on %s (%s)\n", name, res.Arch, desc)
	fmt.Printf("  config:        %s\n", cfg.String())
	fmt.Printf("  cycles:        %d (ideal lower bound %d, ratio %.2f)\n",
		res.Cycles, idealCycles, float64(res.Cycles)/float64(idealCycles))
	fmt.Printf("  instructions:  %d scalar, %d vector (%d vector ops, avg VL %.1f)\n",
		res.Counts.ScalarInsts, res.Counts.VectorInsts, res.Counts.VectorOps, res.Counts.AvgVL())
	fmt.Printf("  IPC:           %.3f\n", res.IPC())
	fmt.Printf("  memory:        %d load elems, %d store elems (%d total)\n",
		res.Traffic.LoadElems, res.Traffic.StoreElems, res.Traffic.Total())
	fmt.Printf("  scalar cache:  %d hits, %d misses\n", res.ScalarCacheHits, res.ScalarCacheMisses)

	fmt.Println("  state breakdown:")
	for s := decvec.State(0); s < 8; s++ {
		st := res.States
		fmt.Printf("    %-16s %10d cycles (%5.1f%%)\n", s, st.Cycles[s], 100*st.Fraction(s))
	}
	if res.AVDQBusy != nil {
		fmt.Printf("  AVDQ occupancy: mean %.2f, max %d\n", res.AVDQBusy.Mean(), res.AVDQBusy.Max())
	}
	if res.Arch != "REF" {
		fmt.Printf("  bypasses:      %d (%d elements), store-queue flushes: %d\n",
			res.Bypasses, res.BypassedElems, res.Flushes)
		if len(res.Stalls) > 0 {
			fmt.Println("  top stall causes:")
			type kv struct {
				k string
				v int64
			}
			var stalls []kv
			for k, v := range res.Stalls {
				stalls = append(stalls, kv{k, v})
			}
			sort.Slice(stalls, func(i, j int) bool { return stalls[i].v > stalls[j].v })
			for i, s := range stalls {
				if i >= 6 {
					break
				}
				fmt.Printf("    %-16s %10d\n", s.k, s.v)
			}
		}
	}
}
