// Command dvasim runs one benchmark program on one architecture and prints
// detailed statistics: cycle counts, the (FU2,FU1,LD) state breakdown,
// memory traffic, queue occupancies and per-unit stall attribution.
//
// Usage:
//
//	dvasim -prog BDNA -arch DVA -latency 50 [-bypass] [-loadq 256] [-storeq 16] [-iq 16]
//
// Observability modes:
//
//	dvasim -prog BDNA -metrics-json metrics.json   # machine-readable summary
//	dvasim -prog BDNA -metrics-json -              # ... on stdout (quiet)
//	dvasim -prog BDNA -events trace.json           # chrome://tracing event file
//
// Results persist in the content-addressed cache shared with dvabench and
// dvad (default $XDG_CACHE_HOME/decvec; -cache=off disables, -cache-dir
// relocates, -cache-max-mb bounds it — GC'd at the end of every run, error
// paths included — and -cache-verify audits hits by re-simulation).
// Event-recording runs always simulate, since the event stream is not
// cached.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"decvec"
)

// errQuiet marks machine-readable-output runs that suppress the human
// report; it is not a failure.
var errQuiet = errors.New("quiet")

// usageError distinguishes bad invocations (exit 2, matching dvabench and
// dvad) from runtime failures (exit 1).
type usageError struct{ error }

func main() {
	err := run()
	if err == nil || err == errQuiet {
		return
	}
	fmt.Fprintf(os.Stderr, "dvasim: %v\n", err)
	var ue usageError
	if errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}

// run holds the whole invocation so the deferred cache GC executes on every
// exit path — a mid-run error must not leave the shared store over its cap
// (os.Exit skips defers, so main only decides the exit code).
func run() error {
	var (
		prog      = flag.String("prog", "ARC2D", "program to simulate: "+strings.Join(decvec.Workloads(), ","))
		arch      = flag.String("arch", "DVA", "architecture: REF, DVA or BYP")
		latency   = flag.Int64("latency", 50, "memory latency in cycles")
		loadQ     = flag.Int("loadq", 256, "AVDQ (vector load queue) slots")
		storeQ    = flag.Int("storeq", 16, "VADQ (vector store queue) slots")
		iq        = flag.Int("iq", 16, "instruction queue slots")
		jitter    = flag.Int64("jitter", 0, "per-access latency jitter in cycles (memory conflicts)")
		infile    = flag.String("i", "", "simulate a binary trace file instead of a program model")
		eventsOut = flag.String("events", "", "write a chrome://tracing event trace to this file ('-' for stdout)")
		jsonOut   = flag.String("metrics-json", "", "write the metrics summary as JSON to this file ('-' for stdout)")
		maxEvents = flag.Int("max-events", 0, "cap the recorded event stream (0 = unlimited)")

		cacheMode   = flag.String("cache", "on", "persistent result cache: on or off (event recording always simulates)")
		cacheDir    = flag.String("cache-dir", "", "result cache directory (default $XDG_CACHE_HOME/decvec)")
		cacheMaxMB  = flag.Int64("cache-max-mb", 512, "result cache size cap in MiB, enforced after the run (0 = unbounded)")
		cacheVerify = flag.Float64("cache-verify", 0, "re-simulate this fraction of cache hits and fail on any mismatch")
	)
	flag.Parse()
	if *cacheMaxMB < 0 {
		return usageError{fmt.Errorf("-cache-max-mb must be >= 0 (0 = unbounded), got %d", *cacheMaxMB)}
	}

	cfg := decvec.DefaultConfig(*latency)
	cfg.AVDQSize = *loadQ
	cfg.VADQSize = *storeQ
	cfg.IQSize = *iq
	cfg.LatencyJitter = *jitter
	archName := strings.ToUpper(*arch)
	if archName == "BYP" {
		cfg.Bypass = true
	}

	// Recording is only paid for when an event trace was requested; the
	// metrics summary comes from the Result itself.
	var rec *decvec.Recorder
	if *eventsOut != "" {
		rec = decvec.NewRecorder()
		rec.MaxEvents = *maxEvents
	}

	var src decvec.TraceSource
	var name, desc string
	var idealCycles int64
	if *infile != "" {
		f, err := os.Open(*infile)
		if err != nil {
			return err
		}
		src, err = decvec.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		name, desc = src.Name(), "trace file "+*infile
		idealCycles = decvec.IdealCyclesOf(src)
	} else {
		w, err := decvec.LoadWorkload(*prog)
		if err != nil {
			return err
		}
		name, desc = w.Name(), w.Description()
		idealCycles = w.IdealCycles()
		src = w.Trace(1)
	}

	// Event recording observes the simulation, so a recorded run never comes
	// from the cache.
	var store *decvec.CacheStore
	if *cacheMode != "off" && rec == nil {
		dir := *cacheDir
		if dir == "" {
			dir = decvec.DefaultCacheDir()
		}
		if dir != "" {
			maxBytes := *cacheMaxMB << 20
			if *cacheMaxMB == 0 {
				maxBytes = -1 // unbounded
			}
			var err error
			if store, err = decvec.OpenCache(dir, decvec.CacheOptions{MaxBytes: maxBytes}); err != nil {
				fmt.Fprintf(os.Stderr, "dvasim: %v; running uncached\n", err)
				store = nil
			}
		}
	}
	// The store is shared with dvabench and dvad; dvasim-only usage must
	// respect the size cap too, so GC on every exit path from here on.
	if store != nil {
		defer func() {
			if _, err := store.GC(); err != nil {
				fmt.Fprintf(os.Stderr, "dvasim: cache GC: %v\n", err)
			}
		}()
	}
	var res *decvec.Result
	var err error
	if store != nil {
		res, err = decvec.RunSourceCached(store, src, archName, cfg, *cacheVerify)
	} else {
		res, err = decvec.RunSourceRecorded(src, archName, cfg, rec)
	}
	if err != nil {
		return err
	}

	if *jsonOut != "" {
		var b []byte
		if store != nil {
			b, err = decvec.MetricsJSONWithCache(res, store.Stats())
		} else {
			b, err = decvec.MetricsJSON(res)
		}
		if err != nil {
			return err
		}
		if err := writeOutput(*jsonOut, append(b, '\n')); err != nil {
			return err
		}
	}
	if *eventsOut != "" {
		if err := writeEvents(*eventsOut, res, rec); err != nil {
			return err
		}
	}
	// Machine-readable output on stdout suppresses the human report.
	if *jsonOut == "-" || *eventsOut == "-" {
		return errQuiet
	}

	fmt.Printf("%s on %s (%s)\n", name, res.Arch, desc)
	fmt.Printf("  config:        %s\n", cfg.String())
	fmt.Printf("  cycles:        %d (ideal lower bound %d, ratio %.2f)\n",
		res.Cycles, idealCycles, float64(res.Cycles)/float64(idealCycles))
	fmt.Printf("  instructions:  %d scalar, %d vector (%d vector ops, avg VL %.1f)\n",
		res.Counts.ScalarInsts, res.Counts.VectorInsts, res.Counts.VectorOps, res.Counts.AvgVL())
	fmt.Printf("  IPC:           %.3f\n", res.IPC())
	fmt.Printf("  memory:        %d load elems, %d store elems (%d total)\n",
		res.Traffic.LoadElems, res.Traffic.StoreElems, res.Traffic.Total())
	fmt.Printf("  scalar cache:  %d hits, %d misses\n", res.ScalarCacheHits, res.ScalarCacheMisses)

	fmt.Println("  state breakdown:")
	for s := decvec.State(0); s < 8; s++ {
		st := res.States
		fmt.Printf("    %-16s %10d cycles (%5.1f%%)\n", s, st.Cycles[s], 100*st.Fraction(s))
	}
	if res.AVDQBusy != nil {
		fmt.Printf("  AVDQ occupancy: mean %.2f, max %d\n", res.AVDQBusy.Mean(), res.AVDQBusy.Max())
	}
	if res.Arch != "REF" {
		fmt.Printf("  bypasses:      %d (%d elements), store-queue flushes: %d\n",
			res.Bypasses, res.BypassedElems, res.Flushes)
	}
	fmt.Println()
	fmt.Print(indent(decvec.StallTable(res)))
	if len(res.Queues) > 0 {
		fmt.Println()
		fmt.Print(indent(decvec.QueueTable(res)))
	}
	if rec != nil && rec.Dropped > 0 {
		fmt.Printf("\n  (event trace truncated: %d events dropped at -max-events %d)\n",
			rec.Dropped, rec.MaxEvents)
	}
	return nil
}

func writeEvents(path string, res *decvec.Result, rec *decvec.Recorder) error {
	if path == "-" {
		return decvec.WriteTraceEvents(os.Stdout, res, rec)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := decvec.WriteTraceEvents(f, res, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeOutput(path string, b []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
