package decvec_test

import (
	"fmt"

	"decvec"
)

// ExampleWorkload_RunDVA reproduces the paper's headline comparison for one
// program at one latency.
func ExampleWorkload_RunDVA() {
	w, err := decvec.LoadWorkload("TRFD")
	if err != nil {
		panic(err)
	}
	cfg := decvec.DefaultConfig(100)
	refRes, _ := w.RunREF(cfg)
	dvaRes, _ := w.RunDVA(cfg)
	fmt.Printf("TRFD at latency 100: speedup %.2fx\n",
		float64(refRes.Cycles)/float64(dvaRes.Cycles))
	// Output: TRFD at latency 100: speedup 1.58x
}

// ExampleBypassConfig shows the §7 store-to-load bypass cutting memory
// traffic on a spill-heavy program.
func ExampleBypassConfig() {
	w, err := decvec.LoadWorkload("DYFESM")
	if err != nil {
		panic(err)
	}
	plain, _ := w.RunDVA(decvec.DefaultConfig(30))
	byp, _ := w.RunDVA(decvec.BypassConfig(30, 256, 16))
	cut := 100 * float64(plain.Traffic.Total()-byp.Traffic.Total()) / float64(plain.Traffic.Total())
	fmt.Printf("DYFESM: %d bypasses, traffic cut %.0f%%\n", byp.Bypasses, cut)
	// Output: DYFESM: 576 bypasses, traffic cut 27%
}

// ExampleRunExperiment regenerates one of the paper's figures as text.
func ExampleRunExperiment() {
	out, err := decvec.RunExperiment("fig8", 0.5)
	if err != nil {
		panic(err)
	}
	// The report is a full table; print just its title line.
	for i := 0; i < len(out); i++ {
		if out[i] == '\n' {
			fmt.Println(out[:i])
			break
		}
	}
	// Output: Figure 8: total memory traffic, DVA 256/16 vs BYP 256/16 (elements, L=30)
}

// ExampleWorkload_Stats shows the Table 1 characteristics of a program
// model.
func ExampleWorkload_Stats() {
	w, err := decvec.LoadWorkload("BDNA")
	if err != nil {
		panic(err)
	}
	st := w.Stats()
	fmt.Printf("BDNA: %.1f%% vectorized, average vector length %.0f\n",
		100*st.Vectorization(), st.AvgVL())
	// Output: BDNA: 86.8% vectorized, average vector length 81
}
