package decvec_test

import (
	"bytes"
	"strings"
	"testing"

	"decvec"
)

func TestWorkloadLists(t *testing.T) {
	all := decvec.Workloads()
	if len(all) != 13 {
		t.Fatalf("Workloads() = %d entries", len(all))
	}
	sims := decvec.SimulatedWorkloads()
	if len(sims) != 6 {
		t.Fatalf("SimulatedWorkloads() = %d entries", len(sims))
	}
}

func TestLoadWorkload(t *testing.T) {
	w, err := decvec.LoadWorkload("TRFD")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "TRFD" || w.Description() == "" {
		t.Error("metadata missing")
	}
	if _, err := decvec.LoadWorkload("NOT-A-PROGRAM"); err == nil {
		t.Error("expected error")
	}
}

func TestRunBothArchitectures(t *testing.T) {
	w, err := decvec.LoadWorkload("FLO52")
	if err != nil {
		t.Fatal(err)
	}
	cfg := decvec.DefaultConfig(30)
	r, err := w.RunREF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.RunDVA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || d.Cycles <= 0 {
		t.Fatal("empty results")
	}
	if d.Cycles >= r.Cycles {
		t.Errorf("decoupling lost: DVA %d vs REF %d", d.Cycles, r.Cycles)
	}
	if ideal := w.IdealCycles(); ideal <= 0 || ideal > d.Cycles {
		t.Errorf("ideal bound %d vs DVA %d", ideal, d.Cycles)
	}
}

func TestBypassConfigRuns(t *testing.T) {
	w, err := decvec.LoadWorkload("DYFESM")
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.RunDVA(decvec.BypassConfig(30, 256, 16))
	if err != nil {
		t.Fatal(err)
	}
	if r.Arch != "BYP" || r.Bypasses == 0 {
		t.Errorf("arch=%s bypasses=%d", r.Arch, r.Bypasses)
	}
}

func TestWorkloadStats(t *testing.T) {
	w, _ := decvec.LoadWorkload("ARC2D")
	st := w.Stats()
	if st.VectorOps == 0 || st.Vectorization() < 0.9 {
		t.Errorf("ARC2D stats off: %+v", st)
	}
}

func TestRunSource(t *testing.T) {
	w, _ := decvec.LoadWorkload("TRFD")
	src := w.Trace(0.3)
	for _, arch := range []string{"REF", "DVA", "BYP"} {
		r, err := decvec.RunSource(src, arch, decvec.DefaultConfig(10))
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if r.Cycles == 0 {
			t.Errorf("%s: no cycles", arch)
		}
	}
	if _, err := decvec.RunSource(src, "VLIW", decvec.DefaultConfig(10)); err == nil {
		t.Error("expected unknown-architecture error")
	}
}

func TestExperimentNames(t *testing.T) {
	names := decvec.ExperimentNames()
	want := []string{"table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"ablation-iq", "ablation-vsq", "ablation-avdq", "ablation-qmov", "extension-ooo", "extension-conflicts", "extension-ports"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("missing experiment %q", w)
		}
	}
}

func TestRunExperiment(t *testing.T) {
	out, err := decvec.RunExperiment("table1", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ARC2D") {
		t.Error("table1 output incomplete")
	}
	if _, err := decvec.RunExperiment("fig99", 0.3); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func TestSharedSuiteReuse(t *testing.T) {
	s := decvec.NewSuite(0.3)
	if _, err := decvec.RunExperimentWithSuite(s, "fig4"); err != nil {
		t.Fatal(err)
	}
	// fig5 reuses the same sweep; this should be nearly instant and must
	// succeed.
	out, err := decvec.RunExperimentWithSuite(s, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speedup") {
		t.Error("fig5 output incomplete")
	}
}

func TestStateAlias(t *testing.T) {
	w, _ := decvec.LoadWorkload("BDNA")
	r, err := w.RunDVA(decvec.DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for s := decvec.State(0); s < 8; s++ {
		total += r.States.Cycles[s]
	}
	if total != r.Cycles {
		t.Errorf("state cycles %d != total %d", total, r.Cycles)
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	w, _ := decvec.LoadWorkload("DYFESM")
	src := w.Trace(0.3)
	var buf bytes.Buffer
	if err := decvec.WriteTrace(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := decvec.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The deserialized trace must simulate identically to the original.
	cfg := decvec.DefaultConfig(30)
	a, err := decvec.RunSource(src, "DVA", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decvec.RunSource(got, "DVA", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Traffic != b.Traffic {
		t.Errorf("serialized trace simulates differently: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestLatencyJitterMonotone(t *testing.T) {
	w, _ := decvec.LoadWorkload("SPEC77")
	base := decvec.DefaultConfig(20)
	r0, err := w.RunREF(base)
	if err != nil {
		t.Fatal(err)
	}
	jit := base
	jit.LatencyJitter = 100
	r1, err := w.RunREF(jit)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles <= r0.Cycles {
		t.Errorf("jitter did not slow the reference machine: %d vs %d", r1.Cycles, r0.Cycles)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	s := decvec.NewSuite(0.2)
	for _, name := range decvec.ExperimentNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := decvec.RunExperimentWithSuite(s, name)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) < 100 {
				t.Errorf("suspiciously short output (%d bytes)", len(out))
			}
		})
	}
}

func TestRunOOO(t *testing.T) {
	w, _ := decvec.LoadWorkload("SPEC77")
	cfg := decvec.DefaultConfig(50)
	o, err := w.RunOOO(cfg, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.RunREF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Arch != "OOO" || o.Cycles >= r.Cycles {
		t.Errorf("OOO w=64 (%d) should beat REF (%d)", o.Cycles, r.Cycles)
	}
	if _, err := w.RunOOO(cfg, 0, 8); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestIdealCyclesOf(t *testing.T) {
	w, _ := decvec.LoadWorkload("FLO52")
	src := w.Trace(1)
	got := decvec.IdealCyclesOf(src)
	if got != w.IdealCycles() {
		t.Errorf("IdealCyclesOf (%d) disagrees with Workload.IdealCycles (%d)", got, w.IdealCycles())
	}
}
