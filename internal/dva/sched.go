package dva

// This file implements the per-unit wake scheduler ("wake wheel") the fast
// path runs on. Every simulated cycle still passes through run()'s loop —
// sampling, stall batching and the finished() check are per-cycle — but a
// unit's step function only executes when the unit is *due* (the cycle
// reached its wake time) or *dirty* (a queue its decisions read mutated
// since it last stepped). A unit that steps without acting goes back to
// sleep: its stall reasons are cached and replayed verbatim on every
// skipped cycle, so the stall counters and the recorded event stream stay
// bit-identical to the SlowTick reference, and its wake time is recomputed
// as the earliest strictly-future timestamp its decision predicates read.
// The whole-machine idle skip is the degenerate all-units-asleep case: on a
// cycle with no progress and no mutation every dirty bit is provably clear
// (every queue mutation lives inside a progressing step), so the machine
// jumps to the minimum of six wake times in one hop — the old horizon()
// full-machine rescan per skip is gone.
//
// Correctness rests on the invariants the horizon() scan relied on, now
// split per unit:
//
//   - every step function is a chain of predicates "timestamp <= now" and
//     queue occupancy tests, so waking a unit early is always safe: it
//     re-stalls identically and sleeps again;
//   - a sleeping unit's first failing predicate cannot change without
//     either a queue mutation (which raises the unit's dirty bit through
//     the queue's wake wiring, this cycle and the next — the next-cycle
//     half covers the one-cycle entry-visibility delay) or a stored future
//     timestamp arriving (covered by the wake time, a conservative
//     superset of every timestamp the unit's predicates read);
//   - cross-unit timestamps only grow (bus reservations extend busy spans,
//     never shrink them), and the one cross-unit predicate without a dirty
//     bit — the bus — is checked last in every step function, after every
//     stall it could mask, so a unit sleeping on an earlier stall replays
//     it correctly no matter what the bus does meanwhile.
//
// Register scoreboards (aReady, sReady, vRegs), functional units, QMOV
// units, the bypass unit, the store engine and the disambiguation memo are
// each written only by the unit that reads them; a unit that rewrites its
// own state has, by definition, acted, and an acting unit is due again the
// very next cycle.

import "decvec/internal/queue"

// Unit indices of the wake wheel. The within-cycle tick order is fixed by
// run() — fetch, then AP/store-engine in bus-priority order, SP, VP, drain
// completion — matching the SlowTick reference loop exactly.
const (
	uFP    = iota // fetch processor
	uAP           // address processor
	uST           // store engine
	uSP           // scalar processor
	uVP           // vector processor
	uDrain        // AVDQ drain completion
	numUnits
)

// unitMaskAll selects every unit's bit in one half of the dirty word.
const unitMaskAll = 1<<numUnits - 1

// infCycle is the "never" wake time: a unit whose decisions wait on no
// stored timestamp sleeps until a dirty bit wakes it. The same sentinel the
// old horizon() used, so an all-quiet machine runs the deadlock window out
// with identical cycle arithmetic.
const infCycle = int64(1)<<62 - 1

// wakeBits builds a queue's wake mask: the given units' bits in both the
// current-cycle (low) and next-cycle (high) halves of the dirty word.
func wakeBits(units ...int) uint32 {
	var b uint32
	for _, u := range units {
		b |= 1 << u
	}
	return b | b<<16
}

// wireWake points every architectural queue at the machine's dirty word
// with the wake conditions of the units whose decision predicates read that
// queue — the producer side (capacity tests, unblocked by pops of a full
// queue) and the consumer side (head/peek probes, unblocked by pushes into
// the shallow prefix the unit actually reads) alike. This generalizes the
// iqFreed blocked-dispatch gate from one unit to all of them, and the
// Push/Pop conditions (see queue.Wake) keep units asleep through the bulk
// of a dispatch burst: a tail push into a backlogged queue wakes nobody.
//
// The conditions encode how each unit reads each queue:
//
//   - the instruction queues and the point-to-point data queues are
//     head-consumed (BelowN 1); the SAAQ delivers up to two S operands per
//     AP instruction (BelowN 2);
//   - the AP's disambiguation scan reads the whole SSAQ/VSAQ and its bypass
//     scan the whole VADQ, so those queues' pops — and VADQ pushes — wake
//     the AP unconditionally (its own pushes are self-actions);
//   - the VP peeks the AVDQ at the first undrained index, which is not a
//     fixed prefix, so AVDQ pushes wake it unconditionally; AVDQ pops (by
//     the drain unit) shift indices and drainLen together and leave the
//     VP's view unchanged;
//   - fetch dispatch can need more than one slot in one instruction queue,
//     so IQ pops wake it unconditionally rather than only on full→not-full.
//
// The wiring is structural (pointers into the machine itself) and survives
// reset.
func (m *machine) wireWake() {
	w := &m.dirty
	m.apIQ.SetWake(w, queue.Wake{PushBelow: wakeBits(uAP), BelowN: 1, PopAlways: wakeBits(uFP)})
	m.spIQ.SetWake(w, queue.Wake{PushBelow: wakeBits(uSP), BelowN: 1, PopAlways: wakeBits(uFP)})
	m.vpIQ.SetWake(w, queue.Wake{PushBelow: wakeBits(uVP), BelowN: 1, PopAlways: wakeBits(uFP)})
	m.avdq.SetWake(w, queue.Wake{PushAlways: wakeBits(uVP), PopFull: wakeBits(uAP)})
	m.vadq.SetWake(w, queue.Wake{PushAlways: wakeBits(uAP), PushBelow: wakeBits(uST), BelowN: 1, PopAlways: wakeBits(uAP), PopFull: wakeBits(uVP)})
	m.asdq.SetWake(w, queue.Wake{PushBelow: wakeBits(uSP), BelowN: 1, PopFull: wakeBits(uAP)})
	m.sadq.SetWake(w, queue.Wake{PushBelow: wakeBits(uST), BelowN: 1, PopFull: wakeBits(uSP)})
	m.svdq.SetWake(w, queue.Wake{PushBelow: wakeBits(uVP), BelowN: 1, PopFull: wakeBits(uSP)})
	m.vsdq.SetWake(w, queue.Wake{PushBelow: wakeBits(uSP), BelowN: 1, PopFull: wakeBits(uVP)})
	m.saaq.SetWake(w, queue.Wake{PushBelow: wakeBits(uAP), BelowN: 2, PopFull: wakeBits(uSP)})
	m.ssaq.SetWake(w, queue.Wake{PushBelow: wakeBits(uST), BelowN: 1, PopAlways: wakeBits(uAP)})
	m.vsaq.SetWake(w, queue.Wake{PushBelow: wakeBits(uST), BelowN: 1, PopAlways: wakeBits(uAP)})
	m.afbq.SetWake(w, queue.Wake{PushBelow: wakeBits(uFP), BelowN: 1, PopFull: wakeBits(uAP)})
	m.sfbq.SetWake(w, queue.Wake{PushBelow: wakeBits(uFP), BelowN: 1, PopFull: wakeBits(uSP)})
}

// tickUnit runs unit u's slot of the current cycle: step it when due or
// dirty, otherwise replay its cached stall reasons (each replayed reason
// goes through stall(), so counters and the recorder see exactly what a
// stepped re-stall would have emitted). Recorder-off runs skip even the
// replay — a sleeping unit costs two loads and a branch — and settle the
// slept cycles' stall counts in bulk when the unit next steps (the cached
// reasons are exactly what every slept cycle would have emitted, so
// count × cycles is exact); see settleStallDebt for the end-of-run flush.
// declint:hotpath
func (m *machine) tickUnit(u int) {
	if m.dirty&(1<<u) == 0 && m.now < m.wake[u] {
		if m.rec != nil {
			for i := int8(0); i < m.stallN[u]; i++ {
				m.stall(m.stallCache[u][i])
			}
		}
		return
	}
	if m.rec == nil {
		if d := m.now - m.lastStep[u] - 1; d > 0 {
			for i := int8(0); i < m.stallN[u]; i++ {
				m.stalls.Add(m.stallCache[u][i], d)
			}
		}
	}
	m.lastStep[u] = m.now
	wasDirty := m.dirty&(1<<u) != 0
	m.dirty &^= 1 << u
	stallBase := m.nCycleStalls
	p0 := m.progressCount
	mut0 := m.mutated
	switch u {
	case uFP:
		m.stepFetch()
	case uAP:
		m.stepAP()
	case uST:
		m.stepStoreEngine()
	case uSP:
		m.stepSP()
	case uVP:
		m.stepVP()
	case uDrain:
		m.completeDrains()
	default:
		panic("dva: unknown scheduler unit")
	}
	if m.progressCount != p0 || (m.mutated && !mut0) {
		// The unit acted (or mutated state on a stall path, as a hazard
		// flush does); its post-action state may admit another decision
		// immediately, so it is due next cycle and caches nothing.
		m.wake[u] = m.now + 1
		m.stallN[u] = 0
		return
	}
	n := m.nCycleStalls - stallBase
	for i := int32(0); i < n; i++ {
		m.stallCache[u][i] = m.cycleStalls[stallBase+i]
	}
	m.stallN[u] = int8(n)
	if wasDirty {
		// A dirty-triggered stall is almost always mid-burst: the queues
		// around the unit are moving and another dirty bit is a cycle or
		// two away, so a full predicate scan would be wasted work. Stay due
		// (waking early is always safe) and let the scan run at the first
		// stall with no dirt — the actual transition into a quiet phase.
		m.wake[u] = m.now + 1
		return
	}
	m.wake[u] = m.unitWake(u)
}

// settleStallDebt flushes every unit's outstanding stall debt at the end of
// a recorder-off fast run. A unit asleep since its last step would, in the
// reference mode, have stepped and re-stalled with its cached reasons on
// every cycle through the terminal one, so each reason is owed
// now-lastStep cycles (the stall at lastStep itself was batched normally
// that cycle). Units that stepped on the terminal cycle owe nothing.
func (m *machine) settleStallDebt() {
	for u := 0; u < numUnits; u++ {
		if d := m.now - m.lastStep[u]; d > 0 {
			for i := int8(0); i < m.stallN[u]; i++ {
				m.stalls.Add(m.stallCache[u][i], d)
			}
		}
	}
}

// unitWake computes unit u's wake time after a step that did not act: the
// earliest strictly-future timestamp among those the unit's predicates
// read. Each set is the per-unit partition of the old horizon() scan and is
// deliberately a superset of what the unit's current stall needs — waking
// early is safe, sleeping late is the bug class.
// declint:hotpath
func (m *machine) unitWake(u int) int64 {
	switch u {
	case uFP:
		// Fetch reads no timestamps: dispatch capacity changes only through
		// instruction-queue pops and branch-queue pushes, both dirty-bit
		// sites.
		return infCycle
	case uAP:
		return m.wakeAP()
	case uST:
		return m.wakeST()
	case uSP:
		return m.wakeSP()
	case uVP:
		return m.wakeVP()
	case uDrain:
		if m.drainLen > 0 {
			return lowerFuture(infCycle, m.now, m.drainFront().doneAt)
		}
		return infCycle
	default:
		panic("dva: unknown scheduler unit")
	}
}

// lowerFuture folds candidate timestamp t into the running minimum h,
// counting only strictly-future cycles: a timestamp at or before now
// already satisfies its predicate and can never flip it again.
func lowerFuture(h, now, t int64) int64 {
	if t > now && t < h {
		return t
	}
	return h
}

// wakeAP collects the AP's timestamp set: A-register ready times, the
// arrival times of its first two SAAQ operands (its operand-count bound),
// the bus, the bypass unit, and — for a bypassing load waiting on store
// data — every visible VADQ entry's arrival time. Flush waits and
// disambiguation verdicts move only through store-queue mutations, which
// are dirty-bit sites.
// declint:hotpath
func (m *machine) wakeAP() int64 {
	now := m.now
	h := infCycle
	for _, t := range m.aReady {
		h = lowerFuture(h, now, t)
	}
	for i := 0; i < 2; i++ {
		s, ok := m.saaq.PeekAt(now, i)
		if !ok {
			break
		}
		h = lowerFuture(h, now, s.readyAt)
	}
	h = lowerFuture(h, now, m.bus.FreeCycle())
	h = lowerFuture(h, now, m.bypassBusyUntil)
	m.vadq.All(now, func(v *vslot) bool { h = lowerFuture(h, now, v.readyAt); return true })
	return h
}

// wakeST collects the store engine's timestamp set. While a store is in
// flight its only predicate is the completion time; idle, it reads the
// oldest store's data-arrival time (queue-resident for S/V data, stored in
// the address entry for A-register data) and the bus.
// declint:hotpath
func (m *machine) wakeST() int64 {
	now := m.now
	if m.storeActive {
		return lowerFuture(infCycle, now, m.storeDoneAt)
	}
	h := infCycle
	if st, ok := m.ssaq.Head(now); ok && !st.needsData {
		h = lowerFuture(h, now, st.dataReadyAt)
	}
	if st, ok := m.vsaq.Head(now); ok && !st.needsData {
		h = lowerFuture(h, now, st.dataReadyAt)
	}
	if s, ok := m.sadq.Head(now); ok {
		h = lowerFuture(h, now, s.readyAt)
	}
	if v, ok := m.vadq.Head(now); ok {
		h = lowerFuture(h, now, v.readyAt)
	}
	h = lowerFuture(h, now, m.bus.FreeCycle())
	return h
}

// wakeSP collects the scalar processor's timestamp set: S-register ready
// times and the head arrival times of the two queues it drains.
// declint:hotpath
func (m *machine) wakeSP() int64 {
	now := m.now
	h := infCycle
	for _, t := range m.sReady {
		h = lowerFuture(h, now, t)
	}
	if s, ok := m.asdq.Head(now); ok {
		h = lowerFuture(h, now, s.readyAt)
	}
	if s, ok := m.vsdq.Head(now); ok {
		h = lowerFuture(h, now, s.readyAt)
	}
	return h
}

// wakeVP collects the vector processor's timestamp set: functional-unit and
// QMOV busy times, the vector-register scoreboard (write completion, read
// occupancy, chain-start points), the SVDQ head's arrival, and the first
// undrained AVDQ entry's arrival.
// declint:hotpath
func (m *machine) wakeVP() int64 {
	now := m.now
	h := infCycle
	h = lowerFuture(h, now, m.fu1Busy)
	h = lowerFuture(h, now, m.fu2Busy)
	for _, t := range m.qmovBusy {
		h = lowerFuture(h, now, t)
	}
	chain := m.cfg.ChainDelay
	for i := range m.vRegs {
		v := &m.vRegs[i]
		h = lowerFuture(h, now, v.writeReady)
		h = lowerFuture(h, now, v.readBusyUntil)
		if v.chainable {
			h = lowerFuture(h, now, v.writeStart+chain)
		}
	}
	if s, ok := m.svdq.Head(now); ok {
		h = lowerFuture(h, now, s.readyAt)
	}
	if v, ok := m.avdq.PeekAt(now, m.drainLen); ok {
		h = lowerFuture(h, now, v.readyAt)
	}
	return h
}

// nextWake returns the earliest wake time across the wheel — the idle-skip
// target. Called only after a cycle with no progress and no mutation, when
// every unit was either stepped (and recomputed a future wake) or verified
// asleep, so every entry is strictly beyond m.now. The drain slot counts
// only while drains are in flight (its wake time is stale otherwise). The
// bus joins the minimum not as a decision input but as a sampling boundary:
// skipTo accounts the whole span under one (FU2, FU1, LD) state, and the LD
// bit flips when a port's reservation runs out even if no unit wakes for
// it, so a span must never cross a port release.
// declint:hotpath
func (m *machine) nextWake() int64 {
	h := m.wake[uFP]
	for u := uAP; u <= uVP; u++ {
		if m.wake[u] < h {
			h = m.wake[u]
		}
	}
	if m.drainLen > 0 && m.wake[uDrain] < h {
		h = m.wake[uDrain]
	}
	return lowerFuture(h, m.now, m.bus.FreeCycle())
}
