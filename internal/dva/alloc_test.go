package dva

import (
	"testing"

	"decvec/internal/isa"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// allocTrace builds a steady-state kernel exercising the full hot loop:
// vector loads and stores (store engine, disambiguation, AVDQ/VADQ drains),
// chained vector arithmetic, and scalar address bumping through the AP.
func allocTrace() *trace.Slice {
	insts := make([]isa.Inst, 0, 32*7)
	for i := 0; i < 32; i++ {
		base := uint64(0x10000 + i*0x1000)
		insts = append(insts,
			isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.A(1), Src1: isa.A(1)},
			vld(isa.V(0), base, 16),
			vld(isa.V(1), base+0x400, 16),
			vadd(isa.V(2), isa.V(0), isa.V(1), 16),
			vmul(isa.V(3), isa.V(2), isa.V(0), 16),
			vst(isa.V(3), base+0x800, 16),
			isa.Inst{Class: isa.ClassBranch, Op: isa.OpCmp, Src1: isa.A(1), BBEnd: true},
		)
	}
	return mkTrace(insts...)
}

// TestRunnerSteadyStateZeroAlloc pins the arena contract's payoff: a warmed
// (Runner, Result) pair replays a recorder-off run without a single heap
// allocation, in both fast and SlowTick modes.
func TestRunnerSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr := allocTrace()
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("invalid test trace: %v", err)
	}
	for _, mode := range []struct {
		name     string
		slowTick bool
	}{
		{"fast", false},
		{"slowtick", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := testCfg(30)
			cfg.SlowTick = mode.slowTick
			r := NewRunner()
			var res sim.Result
			// Warm-up run builds the machine and sizes res's storage.
			if err := r.RunInto(&res, tr, cfg); err != nil {
				t.Fatalf("warm-up run: %v", err)
			}
			warm := res.Cycles
			allocs := testing.AllocsPerRun(10, func() {
				if err := r.RunInto(&res, tr, cfg); err != nil {
					t.Fatalf("run: %v", err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state RunInto allocated %.1f times per run, want 0", allocs)
			}
			if res.Cycles != warm || res.Cycles == 0 {
				t.Errorf("steady-state cycles %d, warm-up %d; want equal and nonzero", res.Cycles, warm)
			}
		})
	}
}
