//go:build !race

package dva

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
