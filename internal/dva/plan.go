package dva

import (
	"fmt"

	"decvec/internal/isa"
	"decvec/internal/queue"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// A dispatchPlan is the predecoded form of one trace: for every dynamic
// instruction, the uops route() would emit (as queue ids instead of machine
// queue pointers) and the per-queue slot demands the atomic dispatch must
// re-check while blocked, plus the whole-trace instruction counts. Routing
// is a pure function of the instruction — independent of configuration,
// architecture variant and machine state — so the plan is computed once per
// trace, published on the trace.Slice itself, and shared by every machine
// (and every concurrent run) that replays it. The fetch processor then
// dispatches by table lookup instead of re-deriving the translation per
// instruction per run.
type dispatchPlan struct {
	insts   []isa.Inst
	entries []planEntry
	// counts are the Table 1 instruction counts for the full trace; a
	// drained run's incremental tally equals them by construction.
	counts sim.Counts
}

// Queue ids used by planOp/planEntry.
const (
	planAP = iota
	planSP
	planVP
	numPlanQs
)

// planOp is one queue insertion: which instruction queue, which uop kind.
type planOp struct {
	qid  uint8
	kind uopKind
}

// planEntry is the dispatch recipe for one instruction. route() emits at
// most three uops per instruction (the exec uop plus up to two QMOVs); the
// fixed arrays keep the whole entry pointer-free and 12 bytes wide.
type planEntry struct {
	n    uint8
	need [numPlanQs]uint8
	ops  [4]planOp
}

// planQ maps a plan queue id back onto this machine's instruction queue.
func (m *machine) planQ(qid uint8) *queue.Q[uop] {
	switch qid {
	case planAP:
		return &m.apIQ
	case planSP:
		return &m.spIQ
	default:
		return &m.vpIQ
	}
}

// planFor returns sl's dispatch plan, building and publishing it on first
// use. Concurrent first uses build equivalent plans (routing is
// deterministic over the immutable instruction sequence), so whichever
// publication wins is correct.
func (m *machine) planFor(sl *trace.Slice) *dispatchPlan {
	if p, ok := sl.Aux().(*dispatchPlan); ok {
		return p
	}
	p := m.buildPlan(sl)
	sl.SetAux(p)
	return p
}

// buildPlan predecodes sl by running the authoritative route() translation
// over every instruction and compacting the result into plan entries.
func (m *machine) buildPlan(sl *trace.Slice) *dispatchPlan {
	insts := sl.Insts
	p := &dispatchPlan{insts: insts, entries: make([]planEntry, len(insts))}
	var scratch []push
	for i := range insts {
		in := &insts[i]
		countInto(&p.counts, in)
		scratch = m.route(scratch[:0], in)
		e := &p.entries[i]
		if len(scratch) > len(e.ops) {
			panic(fmt.Sprintf("dva: %d uops for %s exceed plan entry width", len(scratch), in))
		}
		e.n = uint8(len(scratch))
		for k, ps := range scratch {
			var qid uint8
			switch ps.q {
			case &m.apIQ:
				qid = planAP
			case &m.spIQ:
				qid = planSP
			case &m.vpIQ:
				qid = planVP
			default:
				panic("dva: route emitted an unknown instruction queue")
			}
			e.ops[k] = planOp{qid: qid, kind: ps.u.kind}
			e.need[qid]++
		}
	}
	return p
}
