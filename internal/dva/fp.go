package dva

import (
	"fmt"

	"decvec/internal/isa"
	"decvec/internal/queue"
	"decvec/internal/sim"
)

// push is one queue insertion the fetch processor must perform to dispatch
// an instruction.
type push struct {
	q *queue.Q[uop]
	u uop
}

// queueNeed is the number of slots one dispatch requires in a queue.
type queueNeed struct {
	q    *queue.Q[uop]
	need int
}

// stepFetch advances the fetch processor by one cycle: it drains the branch
// result queues (perfect branch prediction — outcomes are consumed but
// never stall fetch, §4.1) and dispatches at most one instruction,
// translating it into its decoupled form and fabricating the necessary QMOV
// pseudo-instructions.
func (m *machine) stepFetch() {
	// Drain branch outcome queues for free. The inlined emptiness guards
	// keep the (non-inlined) Pop call off the common every-cycle path.
	for !m.afbq.Empty() {
		if _, ok := m.afbq.Pop(m.now); !ok {
			break
		}
		m.progress()
	}
	for !m.sfbq.Empty() {
		if _, ok := m.sfbq.Pop(m.now); !ok {
			break
		}
		m.progress()
	}

	if m.plan != nil {
		m.dispatchPlanned()
		return
	}

	if !m.hasPending {
		in, ok := m.stream.Next()
		if !ok {
			m.streamDone = true
			return
		}
		m.pending = in
		m.hasPending = true
		countInto(&m.counts, m.pending)
		// Route once per instruction: the translation depends only on the
		// pending instruction, so the uop list (pushScratch) and the
		// per-queue capacity demands (needScratch) stay valid across
		// however many cycles dispatch stalls.
		m.pushScratch = m.route(m.pushScratch[:0], m.pending)
		m.needScratch = m.needScratch[:0]
		for _, p := range m.pushScratch {
			found := false
			for i := range m.needScratch {
				if m.needScratch[i].q == p.q {
					m.needScratch[i].need++
					found = true
					break
				}
			}
			if !found {
				m.needScratch = append(m.needScratch, queueNeed{q: p.q, need: 1})
			}
		}
	}
	pushes := m.pushScratch
	// All destination queues must have room for their share of the pushes;
	// the dispatch is atomic. The per-queue shares were counted once at
	// routing time (needScratch), so the re-check a blocked dispatch makes
	// every cycle is one capacity comparison per distinct queue.
	for _, nd := range m.needScratch {
		if nd.q.Cap()-nd.q.Len() < nd.need {
			m.stall(sim.StallFPDispatch)
			return
		}
	}
	for _, p := range pushes {
		if !p.q.Push(m.now, p.u) {
			panic("dva: dispatch push failed after capacity check")
		}
	}
	if m.rec != nil {
		m.rec.Issue(m.now, sim.ProcFP, m.pending.Seq, m.pending.Class.String())
	}
	m.hasPending = false
	m.progress()
}

// dispatchPlanned is stepFetch's dispatch stage over a predecoded plan: the
// next instruction's uops and per-queue slot demands are table entries, so
// fetching costs an index bump and the blocked re-check at most three
// capacity comparisons. The behaviour is identical to the route() path —
// the plan is built by running route() over the trace once.
func (m *machine) dispatchPlanned() {
	if !m.hasPending {
		if m.planPos >= len(m.plan.insts) {
			m.streamDone = true
			return
		}
		m.pending = &m.plan.insts[m.planPos]
		m.hasPending = true
	}
	// A capacity-blocked dispatch can only be unblocked by an instruction
	// queue pop (capacity moves no other way), so until popIQ reports one
	// the re-check is a single flag test.
	if m.dispBlocked && !m.iqFreed {
		m.stall(sim.StallFPDispatch)
		return
	}
	e := &m.plan.entries[m.planPos]
	// All destination queues must have room for their share of the pushes;
	// the dispatch is atomic.
	if (e.need[planAP] > 0 && m.apIQ.Cap()-m.apIQ.Len() < int(e.need[planAP])) ||
		(e.need[planSP] > 0 && m.spIQ.Cap()-m.spIQ.Len() < int(e.need[planSP])) ||
		(e.need[planVP] > 0 && m.vpIQ.Cap()-m.vpIQ.Len() < int(e.need[planVP])) {
		// Pops observed up to here were consumed by this (failed) check; the
		// next one starts a fresh wait.
		m.dispBlocked = true
		m.iqFreed = false
		m.stall(sim.StallFPDispatch)
		return
	}
	m.dispBlocked = false
	in := m.pending
	for k := 0; k < int(e.n); k++ {
		op := e.ops[k]
		if !m.planQ(op.qid).Push(m.now, uop{kind: op.kind, in: in}) {
			panic("dva: dispatch push failed after capacity check")
		}
	}
	if m.rec != nil {
		m.rec.Issue(m.now, sim.ProcFP, in.Seq, in.Class.String())
	}
	m.planPos++
	m.hasPending = false
	m.progress()
}

// countInto accumulates in's Table 1 instruction counts into c. The stream
// fetch path tallies per instruction; the plan builder tallies the whole
// trace once.
func countInto(c *sim.Counts, in *isa.Inst) {
	if in.IsVector() {
		c.VectorInsts++
		c.VectorOps += int64(in.VL)
	} else {
		c.ScalarInsts++
	}
	if in.Class.IsMemory() {
		c.MemInsts++
		if in.Spill {
			c.SpillMemOps++
		}
	}
	if in.BBEnd {
		c.BasicBlocks++
	}
}

// route translates one architectural instruction into the uops that flow to
// the three processors (§4.1's simple translation rules), appending them to
// ps and returning the extended slice.
func (m *machine) route(ps []push, in *isa.Inst) []push {
	exec := uop{kind: uExec, in: in}
	switch in.Class {
	case isa.ClassNop, isa.ClassVSetVL, isa.ClassVSetVS:
		return append(ps, push{&m.spIQ, exec})

	case isa.ClassScalarALU, isa.ClassBranch:
		if involvesA(in) {
			ps = append(ps, push{&m.apIQ, exec})
			// The AP receives S-register operands through the SAAQ.
			for _, src := range [...]isa.Reg{in.Src1, in.Src2} {
				if src.Kind == isa.RegS {
					ps = append(ps, push{&m.spIQ, uop{kind: uQMovStoSAA, in: in}})
				}
			}
			return ps
		}
		return append(ps, push{&m.spIQ, exec})

	case isa.ClassScalarLoad:
		ps = append(ps, push{&m.apIQ, exec})
		if in.Dst.Kind == isa.RegS {
			ps = append(ps, push{&m.spIQ, uop{kind: uQMovAStoS, in: in}})
		}
		return ps

	case isa.ClassScalarStore:
		ps = append(ps, push{&m.apIQ, exec})
		if in.Dst.Kind == isa.RegS {
			// The data travels SP -> SADQ -> store engine.
			ps = append(ps, push{&m.spIQ, uop{kind: uQMovStoSA, in: in}})
		}
		return ps

	case isa.ClassVectorLoad, isa.ClassGather:
		return append(ps,
			push{&m.apIQ, exec},
			push{&m.vpIQ, uop{kind: uQMovAVtoV, in: in}})

	case isa.ClassVectorStore, isa.ClassScatter:
		return append(ps,
			push{&m.vpIQ, uop{kind: uQMovVtoVA, in: in}},
			push{&m.apIQ, exec})

	case isa.ClassVectorALU:
		ps = append(ps, push{&m.vpIQ, exec})
		if in.Src2.Kind == isa.RegS {
			ps = append(ps, push{&m.spIQ, uop{kind: uQMovStoSV, in: in}})
		}
		return ps

	case isa.ClassReduce:
		return append(ps,
			push{&m.vpIQ, exec},
			push{&m.spIQ, uop{kind: uQMovVStoS, in: in}})

	default:
		panic(fmt.Sprintf("dva: unroutable instruction %s", in))
	}
}
