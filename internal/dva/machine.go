package dva

import (
	"fmt"
	"strings"

	"decvec/internal/disamb"

	"decvec/internal/isa"
	"decvec/internal/mem"
	"decvec/internal/queue"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// machine is the complete state of one decoupled-architecture simulation.
type machine struct {
	cfg   sim.Config
	now   int64
	bus   *mem.Bus
	cache *mem.Cache

	// Fetch processor.
	stream     trace.Stream
	streamDone bool
	pending    *isa.Inst
	hasPending bool
	// pushScratch and needScratch are reused by the dispatcher to avoid
	// per-instruction allocation.
	pushScratch []push
	needScratch []queueNeed

	// Instruction queues.
	apIQ, spIQ, vpIQ *queue.Q[uop]
	// Vector data queues.
	avdq, vadq *queue.Q[vslot]
	// Scalar data queues.
	asdq, sadq, svdq, vsdq, saaq *queue.Q[sslot]
	// Store address queues.
	ssaq, vsaq *queue.Q[storeAddr]
	// Branch result queues back to the FP.
	afbq, sfbq *queue.Q[int64]

	// Address processor.
	aReady          [isa.NumARegs]int64
	flushWaitSeq    int64 // -1 when not draining for a hazard
	bypassBusyUntil int64
	// psScratch is reused by pendingStores to avoid per-issue allocation.
	psScratch []disamb.PendingStore
	// disambSeq/disambVer/disambRes cache the last disambiguation verdict.
	// Check is a pure function of the load and the visible store-queue
	// entries, so the verdict holds while the load (disambSeq) and the store
	// queues' operation counters (disambVer) are unchanged — a load stalled
	// on the bus re-checks for free. disambOK additionally requires that the
	// cached check saw every queued entry (none still in its visibility
	// delay), since those become visible on a later cycle without any
	// counter movement.
	disambSeq int64
	disambVer int64
	disambRes disamb.Conflict
	disambOK  bool

	// Store engine (performs queued stores behind the AP's back).
	storeActive   bool
	storeIsVector bool
	storeDoneAt   int64

	// Scalar processor.
	sReady [isa.NumSRegs]int64

	// Vector processor.
	vRegs    [isa.NumVRegs]vreg
	fu1Busy  int64
	fu2Busy  int64
	qmovBusy []int64
	drains   []drain

	// Measurements.
	states   sim.StateStats
	counts   sim.Counts
	traffic  sim.MemTraffic
	avdqHist *sim.Histogram
	vadqHist *sim.Histogram
	bypasses int64
	bypElems int64
	flushes  int64
	stalls   sim.StallCounts
	// rec is the optional event recorder; nil when disabled. Recording is
	// strictly passive and never influences a timing decision.
	rec *sim.Recorder

	lastProgress int64
	// cycleStalls lists the stall reasons recorded during the current cycle,
	// in emission order. On a cycle with no progress every later cycle up to
	// the event horizon repeats them exactly, so the idle-skip fast path
	// replays this list over the whole skipped span.
	cycleStalls []sim.StallReason
	// mutated marks a cycle that changed machine state without making
	// progress (hazard-flush initiation). The cycle after such a mutation
	// stalls differently, so it must not seed an idle skip.
	mutated bool
	// drainBusy caches the tail busy-horizon computed by finished() once the
	// streams and queues have fully drained (nothing can make progress after
	// that); -1 until then. Near-drain cycles then cost one comparison
	// instead of rechecking all 14 queues and the register scoreboards.
	drainBusy int64
	// horizon2 is the second-smallest distinct future timestamp seen by the
	// last horizon() scan, and horizon2OK marks it usable. An idle, unmutated
	// cycle cannot change the machine's timestamp set, so when the machine
	// wakes at the horizon and immediately idles again the next skip target
	// is exactly this cached value — no rescan needed. Any progress or
	// mutation invalidates it.
	horizon2   int64
	horizon2OK bool
}

// Run simulates the trace on the decoupled vector architecture under cfg
// (set cfg.Bypass for the §7 bypass variant) and returns the measured
// result. It returns an error for invalid configurations or if the machine
// deadlocks, which would indicate a malformed trace.
func Run(src trace.Source, cfg sim.Config) (*sim.Result, error) {
	return RunRecorded(src, cfg, nil)
}

// RunRecorded is Run with an optional event recorder. Recording is passive:
// the returned result is bit-identical to a run with rec nil; the recorder
// additionally collects the cycle-stamped event stream (issues, stalls,
// queue pushes/pops, bus grants, bypasses, flushes).
func RunRecorded(src trace.Source, cfg sim.Config, rec *sim.Recorder) (*sim.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := newMachine(src, cfg)
	if rec != nil {
		m.rec = rec
		for _, q := range m.allQueues() {
			q.SetObserver(rec)
		}
	}
	if err := m.run(); err != nil {
		return nil, fmt.Errorf("dva: %s on %s: %w", cfg.String(), src.Name(), err)
	}
	arch := "DVA"
	if cfg.Bypass {
		arch = "BYP"
	}
	return &sim.Result{
		Arch:              arch,
		Config:            cfg,
		Cycles:            m.now,
		States:            m.states,
		Counts:            m.counts,
		Traffic:           m.traffic,
		AVDQBusy:          m.avdqHist,
		VADQBusy:          m.vadqHist,
		Bypasses:          m.bypasses,
		BypassedElems:     m.bypElems,
		Flushes:           m.flushes,
		ScalarCacheHits:   m.cache.Hits,
		ScalarCacheMisses: m.cache.Misses,
		Stalls:            m.stalls,
		Queues:            m.queueStats(),
	}, nil
}

// queueMeta is the statistics surface every architectural queue exposes,
// independent of its element type.
type queueMeta interface {
	Name() string
	Cap() int
	Pushes() int64
	Pops() int64
	PeakLen() int
	MeanLen(now int64) float64
	FullCycles(now int64) int64
	SetObserver(queue.Observer)
}

// allQueues lists every architectural queue of the machine.
func (m *machine) allQueues() []queueMeta {
	return []queueMeta{
		m.apIQ, m.spIQ, m.vpIQ,
		m.avdq, m.vadq,
		m.asdq, m.sadq, m.svdq, m.vsdq, m.saaq,
		m.ssaq, m.vsaq,
		m.afbq, m.sfbq,
	}
}

// queueStats summarizes every queue's occupancy over the finished run.
func (m *machine) queueStats() []sim.QueueStat {
	qs := make([]sim.QueueStat, 0, 14)
	for _, q := range m.allQueues() {
		qs = append(qs, sim.QueueStat{
			Name:       q.Name(),
			Cap:        q.Cap(),
			Pushes:     q.Pushes(),
			Pops:       q.Pops(),
			Peak:       q.PeakLen(),
			MeanLen:    q.MeanLen(m.now),
			FullCycles: q.FullCycles(m.now),
		})
	}
	return qs
}

func newMachine(src trace.Source, cfg sim.Config) *machine {
	sq := cfg.ScalarQSize
	return &machine{
		cfg:          cfg,
		bus:          mem.NewBus(cfg.MemPorts),
		cache:        mem.NewCache(cfg.ScalarCacheLines, cfg.ScalarCacheLineBytes),
		stream:       src.Stream(),
		apIQ:         queue.New[uop]("APIQ", cfg.IQSize),
		spIQ:         queue.New[uop]("SPIQ", cfg.IQSize),
		vpIQ:         queue.New[uop]("VPIQ", cfg.IQSize),
		avdq:         queue.New[vslot]("AVDQ", cfg.AVDQSize),
		vadq:         queue.New[vslot]("VADQ", cfg.VADQSize),
		asdq:         queue.New[sslot]("ASDQ", sq),
		sadq:         queue.New[sslot]("SADQ", sq),
		svdq:         queue.New[sslot]("SVDQ", sq),
		vsdq:         queue.New[sslot]("VSDQ", sq),
		saaq:         queue.New[sslot]("SAAQ", sq),
		ssaq:         queue.New[storeAddr]("SSAQ", sq),
		vsaq:         queue.New[storeAddr]("VSAQ", cfg.EffVSAQSize()),
		afbq:         queue.New[int64]("AFBQ", sq),
		sfbq:         queue.New[int64]("SFBQ", sq),
		flushWaitSeq: -1,
		drainBusy:    -1,
		qmovBusy:     make([]int64, cfg.QMovUnits),
		avdqHist:     sim.NewHistogram(cfg.AVDQSize),
		vadqHist:     sim.NewHistogram(cfg.VADQSize),
	}
}

// deadlockWindow is how many cycles without any progress the machine
// tolerates before declaring a deadlock. Every legitimate passive wait is
// bounded by memory latency plus a pipeline's worth of cycles.
func (m *machine) deadlockWindow() int64 {
	return 16*(m.cfg.MemLatency+isa.MaxVL+m.cfg.DivDepth) + 4096
}

func (m *machine) progress() { m.lastProgress = m.now }

// declint:hotpath
func (m *machine) run() error {
	window := m.deadlockWindow()
	fast := !m.cfg.SlowTick
	// idleSteps counts progress-free loop iterations; with the idle-skip
	// fast path active every such iteration spans at least one cycle, so the
	// per-cycle deadlock window stays a valid (conservative) bound.
	var idleSteps int64
	for {
		m.cycleStalls = m.cycleStalls[:0]
		m.mutated = false
		m.stepFetch()
		// Loads normally have first claim on the address bus (they sit on
		// the critical path; stores never stall the processor, §4.2). The
		// store engine gets priority when the store queues are under
		// pressure, so a long load streak cannot starve stores into
		// overflowing their queues.
		if m.storePressure() {
			m.stepStoreEngine()
			m.stepAP()
		} else {
			m.stepAP()
			m.stepStoreEngine()
		}
		m.stepSP()
		m.stepVP()
		if len(m.drains) > 0 {
			m.completeDrains()
		}
		if m.finished() {
			return nil
		}
		m.sample()
		progressed := m.lastProgress == m.now
		m.now++
		if progressed || m.mutated {
			// Any state change redraws the timestamp set; the cached
			// runner-up horizon is stale.
			m.horizon2OK = false
		}
		if progressed {
			idleSteps = 0
			continue
		}
		idleSteps++
		if idleSteps >= window {
			return fmt.Errorf("deadlock at cycle %d: %s", m.now, m.dumpState())
		}
		// Idle-skip fast path: the cycle just simulated made no progress and
		// mutated nothing, so every unit repeats exactly the same decisions
		// each cycle until the event horizon — jump there in one step,
		// accounting the skipped span in bulk. SlowTick keeps the plain
		// per-cycle loop as the reference mode the equivalence suite checks
		// this path against. The second-idle-iteration gate keeps the
		// horizon scan off the ubiquitous one-cycle gaps of dense code,
		// where it could never pay for itself; the skipped-over cycle is
		// accounted identically either way.
		if fast && !m.mutated && idleSteps >= 2 {
			var h int64
			if m.horizon2OK && m.horizon2 >= m.now {
				// The machine woke at the previous horizon and idled straight
				// through: the timestamp set is unchanged, so the next target
				// is the scan's cached runner-up — no rescan.
				h = m.horizon2
				m.horizon2OK = false
			} else {
				h = m.horizon()
			}
			if h > m.now {
				m.skipTo(h)
			}
		}
	}
}

// horizon returns the earliest cycle >= m.now at which any unit's decision
// inputs can change: the minimum over every future timestamp stored in the
// machine (FU/QMOV/bypass busy-until times, bus port releases, store-engine
// and drain completions, register scoreboard ready times, chain-start points
// and queue-entry data-arrival times). Every step function's choices are
// predicates of the form "timestamp <= now" over this set, so on a cycle
// with no progress and no mutation the machine's behaviour is constant on
// [m.now, horizon). The set is deliberately a superset of what any single
// decision needs — waking early is safe (the next iteration just skips
// again), overshooting never happens. Returns MaxInt64 when nothing is in
// flight (the caller's deadlock window then counts the machine out).
func (m *machine) horizon() int64 {
	now := m.now
	const inf = int64(1)<<62 - 1
	// h is the minimum future timestamp, h2 the second-smallest distinct one
	// (cached for the wake-and-idle-again fast path; see horizon2). Keep
	// both in locals; these comparisons are the hottest straight-line code
	// of the fast path.
	h, h2 := inf, inf
	lower := func(t int64) {
		if t < now || t == h {
			return
		}
		if t < h {
			h2 = h
			h = t
		} else if t < h2 {
			h2 = t
		}
	}
	lower(m.fu1Busy)
	lower(m.fu2Busy)
	for _, t := range m.qmovBusy {
		lower(t)
	}
	lower(m.bypassBusyUntil)
	lower(m.bus.FreeCycle())
	if m.storeActive {
		lower(m.storeDoneAt)
	}
	if len(m.drains) > 0 {
		lower(m.drains[0].doneAt)
	}
	for _, t := range m.aReady {
		lower(t)
	}
	for _, t := range m.sReady {
		lower(t)
	}
	chain := m.cfg.ChainDelay
	for i := range m.vRegs {
		v := &m.vRegs[i]
		lower(v.writeReady)
		lower(v.readBusyUntil)
		if v.chainable {
			lower(v.writeStart + chain)
		}
	}
	// Queue entries: only the slots a consumer can actually examine this
	// cycle carry decision-relevant timestamps. The SP, VP and store engine
	// peek at their queues' heads; the AP peeks at the first two SAAQ
	// entries (its operand count bound); the VP's load QMOV peeks at the
	// AVDQ entry just behind the in-flight drains. The bypass unit alone
	// scans the VADQ for an arbitrary store's slot, so that (small) queue is
	// walked in full. Deeper entries cannot influence any decision before a
	// pop reshuffles the heads — and a pop is progress, which ends the
	// skipped span anyway.
	for _, q := range [...]*queue.Q[sslot]{m.asdq, m.sadq, m.svdq, m.vsdq} {
		if s, ok := q.Peek(m.now); ok {
			lower(s.readyAt)
		}
	}
	for i := 0; i < 2; i++ {
		s, ok := m.saaq.PeekAt(m.now, i)
		if !ok {
			break
		}
		lower(s.readyAt)
	}
	if v, ok := m.avdq.PeekAt(m.now, len(m.drains)); ok {
		lower(v.readyAt)
	}
	m.vadq.All(m.now, func(v *vslot) bool { lower(v.readyAt); return true })
	for _, q := range [...]*queue.Q[storeAddr]{m.ssaq, m.vsaq} {
		if st, ok := q.Head(m.now); ok && !st.needsData {
			lower(st.dataReadyAt)
		}
	}
	m.horizon2, m.horizon2OK = h2, h2 < inf
	return h
}

// skipTo bulk-accounts the idle span [m.now, h) and jumps m.now to h. During
// the span every cycle repeats the cycle just simulated: its stalls recur
// verbatim (replayed from cycleStalls into the counters and, as one span
// event, into the recorder), the (FU2, FU1, LD) state and the data-queue
// occupancies are constant. The queues' own occupancy integrals need no
// help: they accumulate lazily from timestamped push/pop deltas, so a time
// jump composes exactly.
func (m *machine) skipTo(h int64) {
	n := h - m.now
	for _, r := range m.cycleStalls {
		m.stalls.Add(r, n)
		m.rec.StallSpan(m.now, r, n)
	}
	fu2 := m.now < m.fu2Busy
	fu1 := m.now < m.fu1Busy
	ld := m.bus.BusyAt(m.now)
	m.states.ObserveN(sim.MakeState(fu2, fu1, ld), n)
	m.avdqHist.ObserveN(m.avdq.Len(), n)
	m.vadqHist.ObserveN(m.vadq.Len(), n)
	m.now = h
}

// finished reports whether every stream, queue and unit has drained. Once
// the stream is exhausted and every queue is empty no step can ever make
// progress again, so the in-flight tail busy-horizon is computed once and
// cached in drainBusy; the remaining near-drain cycles then cost a single
// comparison instead of rechecking 14 queues and the register scoreboards.
func (m *machine) finished() bool {
	if m.drainBusy < 0 {
		if !m.streamDone || m.hasPending {
			return false
		}
		for _, e := range [...]bool{
			m.apIQ.Empty(), m.spIQ.Empty(), m.vpIQ.Empty(),
			m.avdq.Empty(), m.vadq.Empty(),
			m.asdq.Empty(), m.sadq.Empty(), m.svdq.Empty(), m.vsdq.Empty(), m.saaq.Empty(),
			m.ssaq.Empty(), m.vsaq.Empty(),
			m.afbq.Empty(), m.sfbq.Empty(),
		} {
			if !e {
				return false
			}
		}
		if m.storeActive || len(m.drains) > 0 {
			return false
		}
		m.drainBusy = m.tailBusy()
	}
	return m.now >= m.drainBusy
}

// tailBusy returns the cycle by which all in-flight pipeline work has
// retired; the drained machine runs until then.
func (m *machine) tailBusy() int64 {
	busy := max64(m.fu1Busy, m.fu2Busy)
	for _, q := range m.qmovBusy {
		busy = max64(busy, q)
	}
	busy = max64(busy, m.bus.FreeCycle())
	busy = max64(busy, m.bypassBusyUntil)
	for _, r := range m.aReady {
		busy = max64(busy, r)
	}
	for _, r := range m.sReady {
		busy = max64(busy, r)
	}
	for i := range m.vRegs {
		busy = max64(busy, m.vRegs[i].writeReady)
	}
	return busy
}

// sample records the per-cycle measurements: the (FU2, FU1, LD) state and
// the data-queue occupancies.
func (m *machine) sample() {
	fu2 := m.now < m.fu2Busy
	fu1 := m.now < m.fu1Busy
	ld := m.bus.BusyAt(m.now)
	m.states.Observe(sim.MakeState(fu2, fu1, ld))
	m.avdqHist.Observe(m.avdq.Len())
	m.vadqHist.Observe(m.vadq.Len())
}

// stall accounts one cycle in which a unit could not make progress and,
// when recording, emits the matching event. The reason is also noted in
// cycleStalls so the idle-skip fast path can replay this cycle's stall
// pattern over a skipped span.
func (m *machine) stall(r sim.StallReason) {
	m.stalls[r]++
	m.cycleStalls = append(m.cycleStalls, r)
	if m.rec != nil {
		m.rec.Stall(m.now, r)
	}
}

// storePressure reports whether either store address queue is at least
// half full, at which point queued stores outrank new loads for the bus.
// This pressure threshold is the machine's load/store bus arbitration:
// loads normally have absolute priority (they sit on the critical path;
// stores never stall the processor, §4.2), and the priority flip bounds how
// far a long load streak can back the store queues up — see
// TestLoadStreakCannotStarveStores for the guarantee.
func (m *machine) storePressure() bool {
	return m.vsaq.Len()*2 >= m.vsaq.Cap() || m.ssaq.Len()*2 >= m.ssaq.Cap()
}

// dumpState summarizes machine state for deadlock diagnostics.
func (m *machine) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pending=%v streamDone=%v ", m.hasPending, m.streamDone)
	if m.hasPending {
		fmt.Fprintf(&b, "pendingInst=%s ", m.pending.String())
	}
	for _, q := range [...]fmt.Stringer{m.apIQ, m.spIQ, m.vpIQ, m.avdq, m.vadq,
		m.asdq, m.sadq, m.svdq, m.vsdq, m.saaq, m.ssaq, m.vsaq} {
		fmt.Fprintf(&b, "%s ", q)
	}
	fmt.Fprintf(&b, "flushWait=%d storeActive=%v drains=%d", m.flushWaitSeq, m.storeActive, len(m.drains))
	if u, ok := m.apIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " apHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.spIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " spHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.vpIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " vpHead={%s %s}", u.kind, u.in.String())
	}
	return b.String()
}
