package dva

import (
	"fmt"
	"strings"

	"decvec/internal/disamb"

	"decvec/internal/isa"
	"decvec/internal/mem"
	"decvec/internal/queue"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// machine is the complete state of one decoupled-architecture simulation.
type machine struct {
	cfg sim.Config
	now int64
	// The bus, cache, and the architectural queues below are embedded by
	// value: every per-cycle probe then indexes into the one machine
	// allocation instead of chasing a pointer per structure.
	bus   mem.Bus
	cache mem.Cache

	// Fetch processor. A Slice source (the common case) is replayed through
	// its shared predecoded dispatch plan (plan/planPos); any other Source
	// falls back to the stream + per-instruction route() path.
	plan       *dispatchPlan
	planPos    int
	stream     trace.Stream
	streamDone bool
	pending    *isa.Inst
	hasPending bool
	// pushScratch and needScratch are reused by the dispatcher to avoid
	// per-instruction allocation.
	pushScratch []push
	needScratch []queueNeed

	// Instruction queues.
	apIQ, spIQ, vpIQ queue.Q[uop]
	// Vector data queues.
	avdq, vadq queue.Q[vslot]
	// Scalar data queues.
	asdq, sadq, svdq, vsdq, saaq queue.Q[sslot]
	// Store address queues.
	ssaq, vsaq queue.Q[storeAddr]
	// Branch result queues back to the FP.
	afbq, sfbq queue.Q[int64]

	// Address processor.
	aReady          [isa.NumARegs]int64
	flushWaitSeq    int64 // -1 when not draining for a hazard
	bypassBusyUntil int64
	// psScratch is reused by pendingStores to avoid per-issue allocation.
	psScratch []disamb.PendingStore
	// disambSeq/disambVer/disambRes cache the last disambiguation verdict.
	// Check is a pure function of the load and the visible store-queue
	// entries, so the verdict holds while the load (disambSeq) and the store
	// queues' operation counters (disambVer) are unchanged — a load stalled
	// on the bus re-checks for free. disambOK additionally requires that the
	// cached check saw every queued entry (none still in its visibility
	// delay), since those become visible on a later cycle without any
	// counter movement.
	disambSeq int64
	disambVer int64
	disambRes disamb.Conflict
	disambOK  bool

	// Store engine (performs queued stores behind the AP's back).
	storeActive   bool
	storeIsVector bool
	storeDoneAt   int64

	// Scalar processor.
	sReady [isa.NumSRegs]int64

	// Vector processor.
	vRegs   [isa.NumVRegs]vreg
	fu1Busy int64
	fu2Busy int64
	qmovBusy []int64
	// drains is a fixed ring of in-flight AVDQ→V-register QMOV completions,
	// FIFO by drainHead/drainLen. Every drain owns the AVDQ slot it is
	// emptying, so occupancy is bounded by the AVDQ capacity and the ring
	// never reallocates (a plain append/reslice pair here was the dominant
	// allocation of a recorder-off run).
	drains    []drain
	drainHead int
	drainLen  int

	// Measurements.
	states   sim.StateStats
	counts   sim.Counts
	traffic  sim.MemTraffic
	avdqHist *sim.Histogram
	vadqHist *sim.Histogram
	bypasses int64
	bypElems int64
	flushes  int64
	stalls   sim.StallCounts
	// rec is the optional event recorder; nil when disabled. Recording is
	// strictly passive and never influences a timing decision.
	rec *sim.Recorder

	lastProgress int64
	// cycleStalls[:nCycleStalls] lists the stall reasons recorded during the
	// current cycle, in emission order. On a cycle with no progress every
	// later cycle up to the event horizon repeats them exactly, so the
	// idle-skip fast path replays this list over the whole skipped span. A
	// fixed array: each unit stalls at most once per cycle, so the hot
	// stall() path is two stores instead of an append.
	cycleStalls  [8]sim.StallReason
	nCycleStalls int32
	// mutated marks a cycle that changed machine state without making
	// progress (hazard-flush initiation). The cycle after such a mutation
	// stalls differently, so it must not seed an idle skip.
	mutated bool
	// dispBlocked marks the fetch processor as capacity-blocked: its pending
	// instruction found an instruction queue too full. Only an IQ pop can
	// change that verdict, so popIQ raises iqFreed and the blocked dispatch
	// skips its table and capacity loads until then (see dispatchPlanned).
	dispBlocked bool
	iqFreed     bool
	// drainBusy caches the tail busy-horizon computed by finished() once the
	// streams and queues have fully drained (nothing can make progress after
	// that); -1 until then. Near-drain cycles then cost one comparison
	// instead of rechecking all 14 queues and the register scoreboards.
	drainBusy int64
	// horizon2 is the second-smallest distinct future timestamp seen by the
	// last horizon() scan, and horizon2OK marks it usable. An idle, unmutated
	// cycle cannot change the machine's timestamp set, so when the machine
	// wakes at the horizon and immediately idles again the next skip target
	// is exactly this cached value — no rescan needed. Any progress or
	// mutation invalidates it.
	horizon2   int64
	horizon2OK bool
}

// drainFront returns a pointer to the oldest in-flight drain. Callers check
// drainLen > 0 first.
func (m *machine) drainFront() *drain {
	return &m.drains[m.drainHead]
}

// pushDrain enqueues a drain completion. The ring is sized to the AVDQ, and
// every drain holds an AVDQ slot, so overflow is impossible by construction.
func (m *machine) pushDrain(d drain) {
	i := m.drainHead + m.drainLen
	if i >= len(m.drains) {
		i -= len(m.drains)
	}
	m.drains[i] = d
	m.drainLen++
}

// popDrain retires the oldest in-flight drain.
func (m *machine) popDrain() {
	if m.drainHead++; m.drainHead >= len(m.drains) {
		m.drainHead = 0
	}
	m.drainLen--
}

// Run simulates the trace on the decoupled vector architecture under cfg
// (set cfg.Bypass for the §7 bypass variant) and returns the measured
// result. It returns an error for invalid configurations or if the machine
// deadlocks, which would indicate a malformed trace.
func Run(src trace.Source, cfg sim.Config) (*sim.Result, error) {
	return RunRecorded(src, cfg, nil)
}

// RunRecorded is Run with an optional event recorder. Recording is passive:
// the returned result is bit-identical to a run with rec nil; the recorder
// additionally collects the cycle-stamped event stream (issues, stalls,
// queue pushes/pops, bus grants, bypasses, flushes).
func RunRecorded(src trace.Source, cfg sim.Config, rec *sim.Recorder) (*sim.Result, error) {
	var r Runner
	res := new(sim.Result)
	if err := r.RunRecordedInto(res, src, cfg, rec); err != nil {
		return nil, err
	}
	return res, nil
}

// queueMeta is the statistics surface every architectural queue exposes,
// independent of its element type.
type queueMeta interface {
	Name() string
	Cap() int
	Pushes() int64
	Pops() int64
	PeakLen() int
	MeanLen(now int64) float64
	FullCycles(now int64) int64
	SetObserver(queue.Observer)
}

// allQueues lists every architectural queue of the machine.
func (m *machine) allQueues() []queueMeta {
	return []queueMeta{
		&m.apIQ, &m.spIQ, &m.vpIQ,
		&m.avdq, &m.vadq,
		&m.asdq, &m.sadq, &m.svdq, &m.vsdq, &m.saaq,
		&m.ssaq, &m.vsaq,
		&m.afbq, &m.sfbq,
	}
}

func newMachine(src trace.Source, cfg sim.Config) *machine {
	sq := cfg.ScalarQSize
	m := &machine{
		cfg:          cfg,
		flushWaitSeq: -1,
		drainBusy:    -1,
		qmovBusy:     make([]int64, cfg.QMovUnits),
		drains:       make([]drain, cfg.AVDQSize),
		avdqHist:     sim.NewHistogram(cfg.AVDQSize),
		vadqHist:     sim.NewHistogram(cfg.VADQSize),
	}
	m.bus.Init(cfg.MemPorts)
	m.cache.Init(cfg.ScalarCacheLines, cfg.ScalarCacheLineBytes)
	m.apIQ.Init("APIQ", cfg.IQSize)
	m.spIQ.Init("SPIQ", cfg.IQSize)
	m.vpIQ.Init("VPIQ", cfg.IQSize)
	m.avdq.Init("AVDQ", cfg.AVDQSize)
	m.vadq.Init("VADQ", cfg.VADQSize)
	m.asdq.Init("ASDQ", sq)
	m.sadq.Init("SADQ", sq)
	m.svdq.Init("SVDQ", sq)
	m.vsdq.Init("VSDQ", sq)
	m.saaq.Init("SAAQ", sq)
	m.ssaq.Init("SSAQ", sq)
	m.vsaq.Init("VSAQ", cfg.EffVSAQSize())
	m.afbq.Init("AFBQ", sq)
	m.sfbq.Init("SFBQ", sq)
	m.setStream(src)
	return m
}

// deadlockWindow is how many cycles without any progress the machine
// tolerates before declaring a deadlock. Every legitimate passive wait is
// bounded by memory latency plus a pipeline's worth of cycles.
func (m *machine) deadlockWindow() int64 {
	return 16*(m.cfg.MemLatency+isa.MaxVL+m.cfg.DivDepth) + 4096
}

func (m *machine) progress() { m.lastProgress = m.now }

// declint:hotpath
func (m *machine) run() error {
	window := m.deadlockWindow()
	fast := !m.cfg.SlowTick
	// idleSteps counts progress-free loop iterations; with the idle-skip
	// fast path active every such iteration spans at least one cycle, so the
	// per-cycle deadlock window stays a valid (conservative) bound.
	var idleSteps int64
	for {
		m.nCycleStalls = 0
		m.mutated = false
		m.stepFetch()
		// Loads normally have first claim on the address bus (they sit on
		// the critical path; stores never stall the processor, §4.2). The
		// store engine gets priority when the store queues are under
		// pressure, so a long load streak cannot starve stores into
		// overflowing their queues.
		if m.storePressure() {
			m.stepStoreEngine()
			m.stepAP()
		} else {
			m.stepAP()
			m.stepStoreEngine()
		}
		m.stepSP()
		m.stepVP()
		if m.drainLen > 0 {
			m.completeDrains()
		}
		// Batched counterpart of stall(): one pass tallies the cycle's stall
		// reasons, before finished() so a terminal cycle still counts.
		for _, r := range m.cycleStalls[:m.nCycleStalls] {
			m.stalls[r]++
		}
		if m.finished() {
			return nil
		}
		m.sample()
		progressed := m.lastProgress == m.now
		m.now++
		if progressed || m.mutated {
			// Any state change redraws the timestamp set; the cached
			// runner-up horizon is stale.
			m.horizon2OK = false
		}
		if progressed {
			idleSteps = 0
			continue
		}
		idleSteps++
		if idleSteps >= window {
			return fmt.Errorf("deadlock at cycle %d: %s", m.now, m.dumpState())
		}
		// Idle-skip fast path: the cycle just simulated made no progress and
		// mutated nothing, so every unit repeats exactly the same decisions
		// each cycle until the event horizon — jump there in one step,
		// accounting the skipped span in bulk. SlowTick keeps the plain
		// per-cycle loop as the reference mode the equivalence suite checks
		// this path against. Scanning on the very first idle iteration pays
		// off because idle gaps are overwhelmingly multi-cycle (memory
		// latencies, vector-length occupancies): eagerly skipping them saves
		// a full all-units iteration per gap, while the rare one-cycle gap
		// only costs the (cheaper) scan.
		if fast && !m.mutated && idleSteps >= 1 {
			var h int64
			if m.horizon2OK && m.horizon2 >= m.now {
				// The machine woke at the previous horizon and idled straight
				// through: the timestamp set is unchanged, so the next target
				// is the scan's cached runner-up — no rescan.
				h = m.horizon2
				m.horizon2OK = false
			} else {
				h = m.horizon()
			}
			if h > m.now {
				m.skipTo(h)
			}
		}
	}
}

// horizon returns the earliest cycle >= m.now at which any unit's decision
// inputs can change: the minimum over every future timestamp stored in the
// machine (FU/QMOV/bypass busy-until times, bus port releases, store-engine
// and drain completions, register scoreboard ready times, chain-start points
// and queue-entry data-arrival times). Every step function's choices are
// predicates of the form "timestamp <= now" over this set, so on a cycle
// with no progress and no mutation the machine's behaviour is constant on
// [m.now, horizon). The set is deliberately a superset of what any single
// decision needs — waking early is safe (the next iteration just skips
// again), overshooting never happens. Returns MaxInt64 when nothing is in
// flight (the caller's deadlock window then counts the machine out).
func (m *machine) horizon() int64 {
	now := m.now
	const inf = int64(1)<<62 - 1
	// h is the minimum future timestamp, h2 the second-smallest distinct one
	// (cached for the wake-and-idle-again fast path; see horizon2). Keep
	// both in locals; these comparisons are the hottest straight-line code
	// of the fast path.
	h, h2 := inf, inf
	h, h2 = lower2(h, h2, now, m.fu1Busy)
	h, h2 = lower2(h, h2, now, m.fu2Busy)
	for _, t := range m.qmovBusy {
		h, h2 = lower2(h, h2, now, t)
	}
	h, h2 = lower2(h, h2, now, m.bypassBusyUntil)
	h, h2 = lower2(h, h2, now, m.bus.FreeCycle())
	if m.storeActive {
		h, h2 = lower2(h, h2, now, m.storeDoneAt)
	}
	if m.drainLen > 0 {
		h, h2 = lower2(h, h2, now, m.drainFront().doneAt)
	}
	for _, t := range m.aReady {
		h, h2 = lower2(h, h2, now, t)
	}
	for _, t := range m.sReady {
		h, h2 = lower2(h, h2, now, t)
	}
	chain := m.cfg.ChainDelay
	for i := range m.vRegs {
		v := &m.vRegs[i]
		h, h2 = lower2(h, h2, now, v.writeReady)
		h, h2 = lower2(h, h2, now, v.readBusyUntil)
		if v.chainable {
			h, h2 = lower2(h, h2, now, v.writeStart+chain)
		}
	}
	// Queue entries: only the slots a consumer can actually examine this
	// cycle carry decision-relevant timestamps. The SP, VP and store engine
	// peek at their queues' heads; the AP peeks at the first two SAAQ
	// entries (its operand count bound); the VP's load QMOV peeks at the
	// AVDQ entry just behind the in-flight drains. The bypass unit alone
	// scans the VADQ for an arbitrary store's slot, so that (small) queue is
	// walked in full. Deeper entries cannot influence any decision before a
	// pop reshuffles the heads — and a pop is progress, which ends the
	// skipped span anyway.
	for _, q := range [...]*queue.Q[sslot]{&m.asdq, &m.sadq, &m.svdq, &m.vsdq} {
		if s, ok := q.Peek(m.now); ok {
			h, h2 = lower2(h, h2, now, s.readyAt)
		}
	}
	for i := 0; i < 2; i++ {
		s, ok := m.saaq.PeekAt(m.now, i)
		if !ok {
			break
		}
		h, h2 = lower2(h, h2, now, s.readyAt)
	}
	if v, ok := m.avdq.PeekAt(m.now, m.drainLen); ok {
		h, h2 = lower2(h, h2, now, v.readyAt)
	}
	m.vadq.All(m.now, func(v *vslot) bool { h, h2 = lower2(h, h2, now, v.readyAt); return true })
	for _, q := range [...]*queue.Q[storeAddr]{&m.ssaq, &m.vsaq} {
		if st, ok := q.Head(m.now); ok && !st.needsData {
			h, h2 = lower2(h, h2, now, st.dataReadyAt)
		}
	}
	m.horizon2, m.horizon2OK = h2, h2 < inf
	return h
}

// lower2 folds candidate timestamp t into the running (smallest, second
// smallest) pair of distinct future timestamps. A plain value function —
// unlike a closure over h/h2 it inlines at every horizon call site and keeps
// the pair in registers.
func lower2(h, h2, now, t int64) (int64, int64) {
	if t < now || t == h {
		return h, h2
	}
	if t < h {
		return t, h
	}
	if t < h2 {
		return h, t
	}
	return h, h2
}

// skipTo bulk-accounts the idle span [m.now, h) and jumps m.now to h. During
// the span every cycle repeats the cycle just simulated: its stalls recur
// verbatim (replayed from cycleStalls into the counters and, as one span
// event, into the recorder), the (FU2, FU1, LD) state and the data-queue
// occupancies are constant. The queues' own occupancy integrals need no
// help: they accumulate lazily from timestamped push/pop deltas, so a time
// jump composes exactly.
func (m *machine) skipTo(h int64) {
	n := h - m.now
	for _, r := range m.cycleStalls[:m.nCycleStalls] {
		m.stalls.Add(r, n)
		m.rec.StallSpan(m.now, r, n)
	}
	fu2 := m.now < m.fu2Busy
	fu1 := m.now < m.fu1Busy
	ld := m.bus.BusyAt(m.now)
	m.states.ObserveN(sim.MakeState(fu2, fu1, ld), n)
	m.avdqHist.ObserveN(m.avdq.Len(), n)
	m.vadqHist.ObserveN(m.vadq.Len(), n)
	m.now = h
}

// finished reports whether every stream, queue and unit has drained. Once
// the stream is exhausted and every queue is empty no step can ever make
// progress again, so the in-flight tail busy-horizon is computed once and
// cached in drainBusy; the remaining near-drain cycles then cost a single
// comparison instead of rechecking 14 queues and the register scoreboards.
func (m *machine) finished() bool {
	if m.drainBusy < 0 {
		if !m.streamDone || m.hasPending {
			return false
		}
		for _, e := range [...]bool{
			m.apIQ.Empty(), m.spIQ.Empty(), m.vpIQ.Empty(),
			m.avdq.Empty(), m.vadq.Empty(),
			m.asdq.Empty(), m.sadq.Empty(), m.svdq.Empty(), m.vsdq.Empty(), m.saaq.Empty(),
			m.ssaq.Empty(), m.vsaq.Empty(),
			m.afbq.Empty(), m.sfbq.Empty(),
		} {
			if !e {
				return false
			}
		}
		if m.storeActive || m.drainLen > 0 {
			return false
		}
		m.drainBusy = m.tailBusy()
	}
	return m.now >= m.drainBusy
}

// tailBusy returns the cycle by which all in-flight pipeline work has
// retired; the drained machine runs until then.
func (m *machine) tailBusy() int64 {
	busy := max64(m.fu1Busy, m.fu2Busy)
	for _, q := range m.qmovBusy {
		busy = max64(busy, q)
	}
	busy = max64(busy, m.bus.FreeCycle())
	busy = max64(busy, m.bypassBusyUntil)
	for _, r := range m.aReady {
		busy = max64(busy, r)
	}
	for _, r := range m.sReady {
		busy = max64(busy, r)
	}
	for i := range m.vRegs {
		busy = max64(busy, m.vRegs[i].writeReady)
	}
	return busy
}

// sample records the per-cycle measurements: the (FU2, FU1, LD) state and
// the data-queue occupancies.
func (m *machine) sample() {
	fu2 := m.now < m.fu2Busy
	fu1 := m.now < m.fu1Busy
	ld := m.bus.BusyAt(m.now)
	m.states.Observe(sim.MakeState(fu2, fu1, ld))
	m.avdqHist.Observe(m.avdq.Len())
	m.vadqHist.Observe(m.vadq.Len())
}

// stall accounts one cycle in which a unit could not make progress and,
// when recording, emits the matching event. The reason is noted in
// cycleStalls; the run loop batches the counter increments once per cycle
// (keeping this, the most-called function of the stalled phases, under the
// inlining budget) and the idle-skip fast path replays the same list over a
// skipped span.
func (m *machine) stall(r sim.StallReason) {
	m.cycleStalls[m.nCycleStalls] = r
	m.nCycleStalls++
	if m.rec != nil {
		m.rec.Stall(m.now, r)
	}
}

// popIQ pops one instruction-queue entry, raising the flag a capacity-blocked
// fetch dispatch waits on. All three instruction queues pop through here.
func (m *machine) popIQ(q *queue.Q[uop]) {
	q.Pop(m.now)
	m.iqFreed = true
}

// storePressure reports whether either store address queue is at least
// half full, at which point queued stores outrank new loads for the bus.
// This pressure threshold is the machine's load/store bus arbitration:
// loads normally have absolute priority (they sit on the critical path;
// stores never stall the processor, §4.2), and the priority flip bounds how
// far a long load streak can back the store queues up — see
// TestLoadStreakCannotStarveStores for the guarantee.
func (m *machine) storePressure() bool {
	return m.vsaq.Len()*2 >= m.vsaq.Cap() || m.ssaq.Len()*2 >= m.ssaq.Cap()
}

// dumpState summarizes machine state for deadlock diagnostics.
func (m *machine) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pending=%v streamDone=%v ", m.hasPending, m.streamDone)
	if m.hasPending {
		fmt.Fprintf(&b, "pendingInst=%s ", m.pending.String())
	}
	for _, q := range [...]fmt.Stringer{&m.apIQ, &m.spIQ, &m.vpIQ, &m.avdq, &m.vadq,
		&m.asdq, &m.sadq, &m.svdq, &m.vsdq, &m.saaq, &m.ssaq, &m.vsaq} {
		fmt.Fprintf(&b, "%s ", q)
	}
	fmt.Fprintf(&b, "flushWait=%d storeActive=%v drains=%d", m.flushWaitSeq, m.storeActive, m.drainLen)
	if u, ok := m.apIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " apHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.spIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " spHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.vpIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " vpHead={%s %s}", u.kind, u.in.String())
	}
	return b.String()
}
