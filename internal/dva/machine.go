package dva

import (
	"fmt"
	"strings"

	"decvec/internal/disamb"

	"decvec/internal/isa"
	"decvec/internal/mem"
	"decvec/internal/queue"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// machine is the complete state of one decoupled-architecture simulation.
type machine struct {
	cfg   sim.Config
	now   int64
	bus   *mem.Bus
	cache *mem.Cache

	// Fetch processor.
	stream     trace.Stream
	streamDone bool
	pending    isa.Inst
	hasPending bool
	// pushScratch is reused by the dispatcher to avoid per-instruction
	// allocation.
	pushScratch []push

	// Instruction queues.
	apIQ, spIQ, vpIQ *queue.Q[uop]
	// Vector data queues.
	avdq, vadq *queue.Q[vslot]
	// Scalar data queues.
	asdq, sadq, svdq, vsdq, saaq *queue.Q[sslot]
	// Store address queues.
	ssaq, vsaq *queue.Q[storeAddr]
	// Branch result queues back to the FP.
	afbq, sfbq *queue.Q[int64]

	// Address processor.
	aReady          [isa.NumARegs]int64
	flushWaitSeq    int64 // -1 when not draining for a hazard
	bypassBusyUntil int64
	// psScratch is reused by pendingStores to avoid per-issue allocation.
	psScratch []disamb.PendingStore

	// Store engine (performs queued stores behind the AP's back).
	storeActive   bool
	storeIsVector bool
	storeDoneAt   int64

	// Scalar processor.
	sReady [isa.NumSRegs]int64

	// Vector processor.
	vRegs    [isa.NumVRegs]vreg
	fu1Busy  int64
	fu2Busy  int64
	qmovBusy []int64
	drains   []drain

	// Measurements.
	states   sim.StateStats
	counts   sim.Counts
	traffic  sim.MemTraffic
	avdqHist *sim.Histogram
	vadqHist *sim.Histogram
	bypasses int64
	bypElems int64
	flushes  int64
	stalls   sim.StallCounts
	// rec is the optional event recorder; nil when disabled. Recording is
	// strictly passive and never influences a timing decision.
	rec *sim.Recorder

	lastProgress int64
}

// Run simulates the trace on the decoupled vector architecture under cfg
// (set cfg.Bypass for the §7 bypass variant) and returns the measured
// result. It returns an error for invalid configurations or if the machine
// deadlocks, which would indicate a malformed trace.
func Run(src trace.Source, cfg sim.Config) (*sim.Result, error) {
	return RunRecorded(src, cfg, nil)
}

// RunRecorded is Run with an optional event recorder. Recording is passive:
// the returned result is bit-identical to a run with rec nil; the recorder
// additionally collects the cycle-stamped event stream (issues, stalls,
// queue pushes/pops, bus grants, bypasses, flushes).
func RunRecorded(src trace.Source, cfg sim.Config, rec *sim.Recorder) (*sim.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := newMachine(src, cfg)
	if rec != nil {
		m.rec = rec
		for _, q := range m.allQueues() {
			q.SetObserver(rec)
		}
	}
	if err := m.run(); err != nil {
		return nil, fmt.Errorf("dva: %s on %s: %w", cfg.String(), src.Name(), err)
	}
	arch := "DVA"
	if cfg.Bypass {
		arch = "BYP"
	}
	return &sim.Result{
		Arch:              arch,
		Config:            cfg,
		Cycles:            m.now,
		States:            m.states,
		Counts:            m.counts,
		Traffic:           m.traffic,
		AVDQBusy:          m.avdqHist,
		VADQBusy:          m.vadqHist,
		Bypasses:          m.bypasses,
		BypassedElems:     m.bypElems,
		Flushes:           m.flushes,
		ScalarCacheHits:   m.cache.Hits,
		ScalarCacheMisses: m.cache.Misses,
		Stalls:            m.stalls,
		Queues:            m.queueStats(),
	}, nil
}

// queueMeta is the statistics surface every architectural queue exposes,
// independent of its element type.
type queueMeta interface {
	Name() string
	Cap() int
	Pushes() int64
	Pops() int64
	PeakLen() int
	MeanLen(now int64) float64
	FullCycles(now int64) int64
	SetObserver(queue.Observer)
}

// allQueues lists every architectural queue of the machine.
func (m *machine) allQueues() []queueMeta {
	return []queueMeta{
		m.apIQ, m.spIQ, m.vpIQ,
		m.avdq, m.vadq,
		m.asdq, m.sadq, m.svdq, m.vsdq, m.saaq,
		m.ssaq, m.vsaq,
		m.afbq, m.sfbq,
	}
}

// queueStats summarizes every queue's occupancy over the finished run.
func (m *machine) queueStats() []sim.QueueStat {
	qs := make([]sim.QueueStat, 0, 14)
	for _, q := range m.allQueues() {
		qs = append(qs, sim.QueueStat{
			Name:       q.Name(),
			Cap:        q.Cap(),
			Pushes:     q.Pushes(),
			Pops:       q.Pops(),
			Peak:       q.PeakLen(),
			MeanLen:    q.MeanLen(m.now),
			FullCycles: q.FullCycles(m.now),
		})
	}
	return qs
}

func newMachine(src trace.Source, cfg sim.Config) *machine {
	sq := cfg.ScalarQSize
	return &machine{
		cfg:          cfg,
		bus:          mem.NewBus(cfg.MemPorts),
		cache:        mem.NewCache(cfg.ScalarCacheLines, cfg.ScalarCacheLineBytes),
		stream:       src.Stream(),
		apIQ:         queue.New[uop]("APIQ", cfg.IQSize),
		spIQ:         queue.New[uop]("SPIQ", cfg.IQSize),
		vpIQ:         queue.New[uop]("VPIQ", cfg.IQSize),
		avdq:         queue.New[vslot]("AVDQ", cfg.AVDQSize),
		vadq:         queue.New[vslot]("VADQ", cfg.VADQSize),
		asdq:         queue.New[sslot]("ASDQ", sq),
		sadq:         queue.New[sslot]("SADQ", sq),
		svdq:         queue.New[sslot]("SVDQ", sq),
		vsdq:         queue.New[sslot]("VSDQ", sq),
		saaq:         queue.New[sslot]("SAAQ", sq),
		ssaq:         queue.New[storeAddr]("SSAQ", sq),
		vsaq:         queue.New[storeAddr]("VSAQ", cfg.EffVSAQSize()),
		afbq:         queue.New[int64]("AFBQ", sq),
		sfbq:         queue.New[int64]("SFBQ", sq),
		flushWaitSeq: -1,
		qmovBusy:     make([]int64, cfg.QMovUnits),
		avdqHist:     sim.NewHistogram(cfg.AVDQSize),
		vadqHist:     sim.NewHistogram(cfg.VADQSize),
	}
}

// deadlockWindow is how many cycles without any progress the machine
// tolerates before declaring a deadlock. Every legitimate passive wait is
// bounded by memory latency plus a pipeline's worth of cycles.
func (m *machine) deadlockWindow() int64 {
	return 16*(m.cfg.MemLatency+isa.MaxVL+m.cfg.DivDepth) + 4096
}

func (m *machine) progress() { m.lastProgress = m.now }

func (m *machine) run() error {
	window := m.deadlockWindow()
	for {
		m.stepFetch()
		// Loads normally have first claim on the address bus (they sit on
		// the critical path; stores never stall the processor, §4.2). The
		// store engine gets priority when the store queues are under
		// pressure, so a long load streak cannot starve stores into
		// overflowing their queues.
		if m.storePressure() {
			m.stepStoreEngine()
			m.stepAP()
		} else {
			m.stepAP()
			m.stepStoreEngine()
		}
		m.stepSP()
		m.stepVP()
		m.completeDrains()
		if m.finished() {
			return nil
		}
		m.sample()
		m.now++
		if m.now-m.lastProgress > window {
			return fmt.Errorf("deadlock at cycle %d: %s", m.now, m.dumpState())
		}
	}
}

// finished reports whether every stream, queue and unit has drained.
func (m *machine) finished() bool {
	if !m.streamDone || m.hasPending {
		return false
	}
	for _, e := range [...]bool{
		m.apIQ.Empty(), m.spIQ.Empty(), m.vpIQ.Empty(),
		m.avdq.Empty(), m.vadq.Empty(),
		m.asdq.Empty(), m.sadq.Empty(), m.svdq.Empty(), m.vsdq.Empty(), m.saaq.Empty(),
		m.ssaq.Empty(), m.vsaq.Empty(),
		m.afbq.Empty(), m.sfbq.Empty(),
	} {
		if !e {
			return false
		}
	}
	if m.storeActive || len(m.drains) > 0 {
		return false
	}
	// Let in-flight pipeline work retire.
	busy := max64(m.fu1Busy, m.fu2Busy)
	for _, q := range m.qmovBusy {
		busy = max64(busy, q)
	}
	busy = max64(busy, m.bus.FreeCycle())
	busy = max64(busy, m.bypassBusyUntil)
	for _, r := range m.aReady {
		busy = max64(busy, r)
	}
	for _, r := range m.sReady {
		busy = max64(busy, r)
	}
	for i := range m.vRegs {
		busy = max64(busy, m.vRegs[i].writeReady)
	}
	return m.now >= busy
}

// sample records the per-cycle measurements: the (FU2, FU1, LD) state and
// the data-queue occupancies.
func (m *machine) sample() {
	fu2 := m.now < m.fu2Busy
	fu1 := m.now < m.fu1Busy
	ld := m.bus.BusyAt(m.now)
	m.states.Observe(sim.MakeState(fu2, fu1, ld))
	m.avdqHist.Observe(m.avdq.Len())
	m.vadqHist.Observe(m.vadq.Len())
}

// stall accounts one cycle in which a unit could not make progress and,
// when recording, emits the matching event.
func (m *machine) stall(r sim.StallReason) {
	m.stalls[r]++
	m.rec.Stall(m.now, r)
}

// storePressure reports whether either store address queue is at least
// half full, at which point queued stores outrank new loads for the bus.
// This pressure threshold is the machine's load/store bus arbitration:
// loads normally have absolute priority (they sit on the critical path;
// stores never stall the processor, §4.2), and the priority flip bounds how
// far a long load streak can back the store queues up — see
// TestLoadStreakCannotStarveStores for the guarantee.
func (m *machine) storePressure() bool {
	return m.vsaq.Len()*2 >= m.vsaq.Cap() || m.ssaq.Len()*2 >= m.ssaq.Cap()
}

// dumpState summarizes machine state for deadlock diagnostics.
func (m *machine) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pending=%v streamDone=%v ", m.hasPending, m.streamDone)
	if m.hasPending {
		fmt.Fprintf(&b, "pendingInst=%s ", m.pending.String())
	}
	for _, q := range [...]fmt.Stringer{m.apIQ, m.spIQ, m.vpIQ, m.avdq, m.vadq,
		m.asdq, m.sadq, m.svdq, m.vsdq, m.saaq, m.ssaq, m.vsaq} {
		fmt.Fprintf(&b, "%s ", q)
	}
	fmt.Fprintf(&b, "flushWait=%d storeActive=%v drains=%d", m.flushWaitSeq, m.storeActive, len(m.drains))
	if u, ok := m.apIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " apHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.spIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " spHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.vpIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " vpHead={%s %s}", u.kind, u.in.String())
	}
	return b.String()
}
