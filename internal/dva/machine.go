package dva

import (
	"fmt"
	"strings"

	"decvec/internal/disamb"

	"decvec/internal/isa"
	"decvec/internal/mem"
	"decvec/internal/queue"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// machine is the complete state of one decoupled-architecture simulation.
type machine struct {
	cfg sim.Config
	now int64
	// The bus, cache, and the architectural queues below are embedded by
	// value: every per-cycle probe then indexes into the one machine
	// allocation instead of chasing a pointer per structure.
	bus   mem.Bus
	cache mem.Cache

	// Fetch processor. A Slice source (the common case) is replayed through
	// its shared predecoded dispatch plan (plan/planPos); any other Source
	// falls back to the stream + per-instruction route() path.
	plan       *dispatchPlan
	planPos    int
	stream     trace.Stream
	streamDone bool
	pending    *isa.Inst
	hasPending bool
	// pushScratch and needScratch are reused by the dispatcher to avoid
	// per-instruction allocation.
	pushScratch []push
	needScratch []queueNeed

	// Instruction queues.
	apIQ, spIQ, vpIQ queue.Q[uop]
	// Vector data queues.
	avdq, vadq queue.Q[vslot]
	// Scalar data queues.
	asdq, sadq, svdq, vsdq, saaq queue.Q[sslot]
	// Store address queues.
	ssaq, vsaq queue.Q[storeAddr]
	// Branch result queues back to the FP.
	afbq, sfbq queue.Q[int64]

	// Address processor.
	aReady          [isa.NumARegs]int64
	flushWaitSeq    int64 // -1 when not draining for a hazard
	bypassBusyUntil int64
	// psScratch is reused by pendingStores to avoid per-issue allocation.
	psScratch []disamb.PendingStore
	// disambSeq/disambVer/disambRes cache the last disambiguation verdict.
	// Check is a pure function of the load and the visible store-queue
	// entries, so the verdict holds while the load (disambSeq) and the store
	// queues' operation counters (disambVer) are unchanged — a load stalled
	// on the bus re-checks for free. disambOK additionally requires that the
	// cached check saw every queued entry (none still in its visibility
	// delay), since those become visible on a later cycle without any
	// counter movement.
	disambSeq int64
	disambVer int64
	disambRes disamb.Conflict
	disambOK  bool

	// Store engine (performs queued stores behind the AP's back).
	storeActive   bool
	storeIsVector bool
	storeDoneAt   int64

	// Scalar processor.
	sReady [isa.NumSRegs]int64

	// Vector processor.
	vRegs   [isa.NumVRegs]vreg
	fu1Busy int64
	fu2Busy int64
	qmovBusy []int64
	// drains is a fixed ring of in-flight AVDQ→V-register QMOV completions,
	// FIFO by drainHead/drainLen. Every drain owns the AVDQ slot it is
	// emptying, so occupancy is bounded by the AVDQ capacity and the ring
	// never reallocates (a plain append/reslice pair here was the dominant
	// allocation of a recorder-off run).
	drains    []drain
	drainHead int
	drainLen  int

	// Measurements.
	states   sim.StateStats
	counts   sim.Counts
	traffic  sim.MemTraffic
	avdqHist *sim.Histogram
	vadqHist *sim.Histogram
	bypasses int64
	bypElems int64
	flushes  int64
	stalls   sim.StallCounts
	// rec is the optional event recorder; nil when disabled. Recording is
	// strictly passive and never influences a timing decision.
	rec *sim.Recorder

	lastProgress int64
	// cycleStalls[:nCycleStalls] lists the stall reasons recorded during the
	// current cycle, in emission order. On a cycle with no progress every
	// later cycle up to the event horizon repeats them exactly, so the
	// idle-skip fast path replays this list over the whole skipped span. A
	// fixed array: each unit stalls at most once per cycle, so the hot
	// stall() path is two stores instead of an append.
	cycleStalls  [8]sim.StallReason
	nCycleStalls int32
	// mutated marks a cycle that changed machine state without making
	// progress (hazard-flush initiation). The cycle after such a mutation
	// stalls differently, so it must not seed an idle skip.
	mutated bool
	// dispBlocked marks the fetch processor as capacity-blocked: its pending
	// instruction found an instruction queue too full. Only an IQ pop can
	// change that verdict, so popIQ raises iqFreed and the blocked dispatch
	// skips its table and capacity loads until then (see dispatchPlanned).
	dispBlocked bool
	iqFreed     bool
	// drainBusy caches the tail busy-horizon computed by finished() once the
	// streams and queues have fully drained (nothing can make progress after
	// that); -1 until then. Near-drain cycles then cost one comparison
	// instead of rechecking all 14 queues and the register scoreboards.
	drainBusy int64

	// Wake wheel (fast path; see sched.go). wake[u] is the earliest cycle
	// unit u must step again; dirty packs two per-unit bit sets (low half:
	// step this cycle; high half: step next cycle, covering queue-entry
	// visibility) raised by queue mutations through the queues' wake
	// wiring. stallCache[u][:stallN[u]] holds the stall reasons a sleeping
	// unit replays on every skipped cycle. Fixed-size arrays throughout: the
	// scheduler adds no allocation to the hot path.
	wake       [numUnits]int64
	dirty      uint32
	stallCache [numUnits][2]sim.StallReason
	stallN     [numUnits]int8
	// lastStep[u] is the cycle unit u last stepped at; recorder-off fast
	// runs use it to settle a woken unit's slept-cycle stall counts in one
	// multiplication instead of replaying them per cycle (see tickUnit and
	// settleStallDebt).
	lastStep [numUnits]int64
	// progressCount counts progress() calls; tickUnit diffs it across one
	// step to detect that the unit acted (a store start, for instance,
	// progresses without any queue movement).
	progressCount int64
}

// drainFront returns a pointer to the oldest in-flight drain. Callers check
// drainLen > 0 first.
func (m *machine) drainFront() *drain {
	return &m.drains[m.drainHead]
}

// pushDrain enqueues a drain completion. The ring is sized to the AVDQ, and
// every drain holds an AVDQ slot, so overflow is impossible by construction.
// The drain unit's wake time is maintained here (the one cross-unit event
// with no queue mutation to raise a dirty bit): a completion can only
// tighten it, never loosen it.
func (m *machine) pushDrain(d drain) {
	i := m.drainHead + m.drainLen
	if i >= len(m.drains) {
		i -= len(m.drains)
	}
	m.drains[i] = d
	m.drainLen++
	if d.doneAt < m.wake[uDrain] {
		m.wake[uDrain] = d.doneAt
	}
}

// popDrain retires the oldest in-flight drain.
func (m *machine) popDrain() {
	if m.drainHead++; m.drainHead >= len(m.drains) {
		m.drainHead = 0
	}
	m.drainLen--
}

// Run simulates the trace on the decoupled vector architecture under cfg
// (set cfg.Bypass for the §7 bypass variant) and returns the measured
// result. It returns an error for invalid configurations or if the machine
// deadlocks, which would indicate a malformed trace.
func Run(src trace.Source, cfg sim.Config) (*sim.Result, error) {
	return RunRecorded(src, cfg, nil)
}

// RunRecorded is Run with an optional event recorder. Recording is passive:
// the returned result is bit-identical to a run with rec nil; the recorder
// additionally collects the cycle-stamped event stream (issues, stalls,
// queue pushes/pops, bus grants, bypasses, flushes).
func RunRecorded(src trace.Source, cfg sim.Config, rec *sim.Recorder) (*sim.Result, error) {
	var r Runner
	res := new(sim.Result)
	if err := r.RunRecordedInto(res, src, cfg, rec); err != nil {
		return nil, err
	}
	return res, nil
}

// queueMeta is the statistics surface every architectural queue exposes,
// independent of its element type.
type queueMeta interface {
	Name() string
	Cap() int
	Pushes() int64
	Pops() int64
	PeakLen() int
	MeanLen(now int64) float64
	FullCycles(now int64) int64
	SetObserver(queue.Observer)
}

// allQueues lists every architectural queue of the machine.
func (m *machine) allQueues() []queueMeta {
	return []queueMeta{
		&m.apIQ, &m.spIQ, &m.vpIQ,
		&m.avdq, &m.vadq,
		&m.asdq, &m.sadq, &m.svdq, &m.vsdq, &m.saaq,
		&m.ssaq, &m.vsaq,
		&m.afbq, &m.sfbq,
	}
}

func newMachine(src trace.Source, cfg sim.Config) *machine {
	sq := cfg.ScalarQSize
	m := &machine{
		cfg:          cfg,
		flushWaitSeq: -1,
		drainBusy:    -1,
		qmovBusy:     make([]int64, cfg.QMovUnits),
		drains:       make([]drain, cfg.AVDQSize),
		avdqHist:     sim.NewHistogram(cfg.AVDQSize),
		vadqHist:     sim.NewHistogram(cfg.VADQSize),
	}
	m.bus.Init(cfg.MemPorts)
	m.cache.Init(cfg.ScalarCacheLines, cfg.ScalarCacheLineBytes)
	m.apIQ.Init("APIQ", cfg.IQSize)
	m.spIQ.Init("SPIQ", cfg.IQSize)
	m.vpIQ.Init("VPIQ", cfg.IQSize)
	m.avdq.Init("AVDQ", cfg.AVDQSize)
	m.vadq.Init("VADQ", cfg.VADQSize)
	m.asdq.Init("ASDQ", sq)
	m.sadq.Init("SADQ", sq)
	m.svdq.Init("SVDQ", sq)
	m.vsdq.Init("VSDQ", sq)
	m.saaq.Init("SAAQ", sq)
	m.ssaq.Init("SSAQ", sq)
	m.vsaq.Init("VSAQ", cfg.EffVSAQSize())
	m.afbq.Init("AFBQ", sq)
	m.sfbq.Init("SFBQ", sq)
	m.wireWake()
	m.setStream(src)
	return m
}

// deadlockWindow is how many cycles without any progress the machine
// tolerates before declaring a deadlock. Every legitimate passive wait is
// bounded by memory latency plus a pipeline's worth of cycles.
func (m *machine) deadlockWindow() int64 {
	return 16*(m.cfg.MemLatency+isa.MaxVL+m.cfg.DivDepth) + 4096
}

func (m *machine) progress() {
	m.lastProgress = m.now
	m.progressCount++
}

// declint:hotpath
func (m *machine) run() error {
	window := m.deadlockWindow()
	fast := !m.cfg.SlowTick
	// idleSteps counts progress-free loop iterations; with the idle-skip
	// fast path active every such iteration spans at least one cycle, so the
	// per-cycle deadlock window stays a valid (conservative) bound.
	var idleSteps int64
	for {
		m.nCycleStalls = 0
		m.mutated = false
		// Loads normally have first claim on the address bus (they sit on
		// the critical path; stores never stall the processor, §4.2). The
		// store engine gets priority when the store queues are under
		// pressure, so a long load streak cannot starve stores into
		// overflowing their queues. The unit order is identical in both
		// modes; the fast path merely replaces each step call with a wake-
		// wheel tick that replays the unit's cached stalls instead of
		// stepping it when nothing it reads has changed (see sched.go).
		if fast {
			m.tickUnit(uFP)
			if m.storePressure() {
				m.tickUnit(uST)
				m.tickUnit(uAP)
			} else {
				m.tickUnit(uAP)
				m.tickUnit(uST)
			}
			m.tickUnit(uSP)
			m.tickUnit(uVP)
			if m.drainLen > 0 {
				m.tickUnit(uDrain)
			}
			// Fold the visibility half of the dirty word: queue entries
			// pushed this cycle become visible next cycle, so their
			// consumers' next-cycle bits become current-cycle bits.
			d := m.dirty
			m.dirty = (d | d>>16) & unitMaskAll
		} else {
			m.stepFetch()
			if m.storePressure() {
				m.stepStoreEngine()
				m.stepAP()
			} else {
				m.stepAP()
				m.stepStoreEngine()
			}
			m.stepSP()
			m.stepVP()
			if m.drainLen > 0 {
				m.completeDrains()
			}
		}
		// Batched counterpart of stall(): one pass tallies the cycle's stall
		// reasons, before finished() so a terminal cycle still counts.
		for _, r := range m.cycleStalls[:m.nCycleStalls] {
			m.stalls[r]++
		}
		if m.finished() {
			if fast && m.rec == nil {
				m.settleStallDebt()
			}
			return nil
		}
		m.sample()
		progressed := m.lastProgress == m.now
		m.now++
		if progressed {
			idleSteps = 0
			continue
		}
		idleSteps++
		if idleSteps >= window {
			return fmt.Errorf("deadlock at cycle %d: %s", m.now, m.dumpState())
		}
		// Idle-skip fast path: the cycle just simulated made no progress and
		// mutated nothing, so no queue moved (every queue mutation lives
		// inside a progressing step), every dirty bit is clear, and every
		// unit verifiably sleeps past m.now — the machine repeats the same
		// cycle verbatim until the earliest wake time. Jump there in one
		// step, accounting the skipped span in bulk. This is the all-units-
		// asleep degenerate case of the wake wheel: the skip target is a
		// six-entry minimum, not a machine-wide timestamp rescan. SlowTick
		// keeps the plain per-cycle loop as the reference mode the
		// equivalence suite checks this path against.
		if fast && !m.mutated {
			if h := m.nextWake(); h > m.now {
				m.skipTo(h)
			}
		}
	}
}

// skipTo bulk-accounts the idle span [m.now, h) and jumps m.now to h. During
// the span every cycle repeats the cycle just simulated: its stalls recur
// verbatim (replayed from cycleStalls into the counters and, as one span
// event, into the recorder), the (FU2, FU1, LD) state and the data-queue
// occupancies are constant. The queues' own occupancy integrals need no
// help: they accumulate lazily from timestamped push/pop deltas, so a time
// jump composes exactly.
func (m *machine) skipTo(h int64) {
	n := h - m.now
	if m.rec != nil {
		// With a recorder the counters track the replayed event stream cycle
		// for cycle, so the skipped span is added here in bulk. Recorder-off
		// runs leave this to stall-debt settlement: every unit is asleep
		// across the span, and its cached reasons are charged for the whole
		// sleep when it next steps (tickUnit) or at end of run
		// (settleStallDebt) — adding them here too would double-count.
		for _, r := range m.cycleStalls[:m.nCycleStalls] {
			m.stalls.Add(r, n)
			m.rec.StallSpan(m.now, r, n)
		}
	}
	fu2 := m.now < m.fu2Busy
	fu1 := m.now < m.fu1Busy
	ld := m.bus.BusyAt(m.now)
	m.states.ObserveN(sim.MakeState(fu2, fu1, ld), n)
	m.avdqHist.ObserveN(m.avdq.Len(), n)
	m.vadqHist.ObserveN(m.vadq.Len(), n)
	m.now = h
}

// finished reports whether every stream, queue and unit has drained. Once
// the stream is exhausted and every queue is empty no step can ever make
// progress again, so the in-flight tail busy-horizon is computed once and
// cached in drainBusy; the remaining near-drain cycles then cost a single
// comparison instead of rechecking 14 queues and the register scoreboards.
func (m *machine) finished() bool {
	if m.drainBusy < 0 {
		if !m.streamDone || m.hasPending {
			return false
		}
		for _, e := range [...]bool{
			m.apIQ.Empty(), m.spIQ.Empty(), m.vpIQ.Empty(),
			m.avdq.Empty(), m.vadq.Empty(),
			m.asdq.Empty(), m.sadq.Empty(), m.svdq.Empty(), m.vsdq.Empty(), m.saaq.Empty(),
			m.ssaq.Empty(), m.vsaq.Empty(),
			m.afbq.Empty(), m.sfbq.Empty(),
		} {
			if !e {
				return false
			}
		}
		if m.storeActive || m.drainLen > 0 {
			return false
		}
		m.drainBusy = m.tailBusy()
	}
	return m.now >= m.drainBusy
}

// tailBusy returns the cycle by which all in-flight pipeline work has
// retired; the drained machine runs until then.
func (m *machine) tailBusy() int64 {
	busy := max64(m.fu1Busy, m.fu2Busy)
	for _, q := range m.qmovBusy {
		busy = max64(busy, q)
	}
	busy = max64(busy, m.bus.FreeCycle())
	busy = max64(busy, m.bypassBusyUntil)
	for _, r := range m.aReady {
		busy = max64(busy, r)
	}
	for _, r := range m.sReady {
		busy = max64(busy, r)
	}
	for i := range m.vRegs {
		busy = max64(busy, m.vRegs[i].writeReady)
	}
	return busy
}

// sample records the per-cycle measurements: the (FU2, FU1, LD) state and
// the data-queue occupancies.
func (m *machine) sample() {
	fu2 := m.now < m.fu2Busy
	fu1 := m.now < m.fu1Busy
	ld := m.bus.BusyAt(m.now)
	m.states.Observe(sim.MakeState(fu2, fu1, ld))
	m.avdqHist.Observe(m.avdq.Len())
	m.vadqHist.Observe(m.vadq.Len())
}

// stall accounts one cycle in which a unit could not make progress and,
// when recording, emits the matching event. The reason is noted in
// cycleStalls; the run loop batches the counter increments once per cycle
// (keeping this, the most-called function of the stalled phases, under the
// inlining budget) and the idle-skip fast path replays the same list over a
// skipped span.
func (m *machine) stall(r sim.StallReason) {
	m.cycleStalls[m.nCycleStalls] = r
	m.nCycleStalls++
	if m.rec != nil {
		m.rec.Stall(m.now, r)
	}
}

// popIQ pops one instruction-queue entry, raising the flag a capacity-blocked
// fetch dispatch waits on. All three instruction queues pop through here.
func (m *machine) popIQ(q *queue.Q[uop]) {
	q.Pop(m.now)
	m.iqFreed = true
}

// storePressure reports whether either store address queue is at least
// half full, at which point queued stores outrank new loads for the bus.
// This pressure threshold is the machine's load/store bus arbitration:
// loads normally have absolute priority (they sit on the critical path;
// stores never stall the processor, §4.2), and the priority flip bounds how
// far a long load streak can back the store queues up — see
// TestLoadStreakCannotStarveStores for the guarantee.
func (m *machine) storePressure() bool {
	return m.vsaq.Len()*2 >= m.vsaq.Cap() || m.ssaq.Len()*2 >= m.ssaq.Cap()
}

// dumpState summarizes machine state for deadlock diagnostics.
func (m *machine) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pending=%v streamDone=%v ", m.hasPending, m.streamDone)
	if m.hasPending {
		fmt.Fprintf(&b, "pendingInst=%s ", m.pending.String())
	}
	for _, q := range [...]fmt.Stringer{&m.apIQ, &m.spIQ, &m.vpIQ, &m.avdq, &m.vadq,
		&m.asdq, &m.sadq, &m.svdq, &m.vsdq, &m.saaq, &m.ssaq, &m.vsaq} {
		fmt.Fprintf(&b, "%s ", q)
	}
	fmt.Fprintf(&b, "flushWait=%d storeActive=%v drains=%d", m.flushWaitSeq, m.storeActive, m.drainLen)
	if u, ok := m.apIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " apHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.spIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " spHead={%s %s}", u.kind, u.in.String())
	}
	if u, ok := m.vpIQ.Peek(m.now); ok {
		fmt.Fprintf(&b, " vpHead={%s %s}", u.kind, u.in.String())
	}
	return b.String()
}
