package dva

import (
	"testing"

	"decvec/internal/ideal"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/trace"
	"decvec/internal/tracegen"
)

// The cross-simulator property tests run randomized but well-formed traces
// through both architectures and check the invariants that must hold for
// ANY trace: termination, accounting consistency, conservation of memory
// traffic, the lower bound, and determinism. They are the strongest
// correctness net for the queue/disambiguation machinery, because the
// random traces deliberately overlap addresses.

const (
	crossSeeds    = 60
	crossTraceLen = 400
)

func crossConfig(seed int64) sim.Config {
	cfg := sim.DefaultConfig(1 + (seed*7)%100)
	// Vary the queue geometry too.
	switch seed % 4 {
	case 0: // paper defaults
	case 1:
		cfg.AVDQSize, cfg.VADQSize = 4, 4
	case 2:
		cfg.AVDQSize, cfg.VADQSize = 2, 8
		cfg.IQSize = 4
	case 3:
		cfg.AVDQSize, cfg.VADQSize = 16, 2
		cfg.IQSize = 32
	}
	cfg.Bypass = seed%2 == 0
	return cfg
}

func TestRandomTracesBothSimulators(t *testing.T) {
	for seed := int64(0); seed < crossSeeds; seed++ {
		seed := seed
		tr := tracegen.Random(seed, crossTraceLen).Trace()
		if err := trace.Validate(tr); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
		cfg := crossConfig(seed)

		refRes, err := ref.Run(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d: REF: %v", seed, err)
		}
		dvaRes, err := Run(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d (%s): DVA: %v", seed, cfg.String(), err)
		}

		// Both must execute the same dynamic instruction mix.
		if refRes.Counts != dvaRes.Counts {
			t.Errorf("seed %d: counts differ: %+v vs %+v", seed, refRes.Counts, dvaRes.Counts)
		}
		// State accounting covers exactly the run.
		if refRes.States.Total() != refRes.Cycles {
			t.Errorf("seed %d: REF state total %d != %d", seed, refRes.States.Total(), refRes.Cycles)
		}
		if dvaRes.States.Total() != dvaRes.Cycles {
			t.Errorf("seed %d: DVA state total %d != %d", seed, dvaRes.States.Total(), dvaRes.Cycles)
		}
		// Histograms sample every cycle.
		if dvaRes.AVDQBusy.Total() != dvaRes.Cycles || dvaRes.VADQBusy.Total() != dvaRes.Cycles {
			t.Errorf("seed %d: histogram totals off", seed)
		}
		// Store traffic must be conserved exactly: every store writes
		// memory precisely once (bypass never swallows stores).
		var storeElems int64
		st := tr.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			if in.Class.IsStore() {
				storeElems += in.Ops()
			}
		}
		if refRes.Traffic.StoreElems != storeElems {
			t.Errorf("seed %d: REF store traffic %d != %d", seed, refRes.Traffic.StoreElems, storeElems)
		}
		if dvaRes.Traffic.StoreElems != storeElems {
			t.Errorf("seed %d: DVA store traffic %d != %d", seed, dvaRes.Traffic.StoreElems, storeElems)
		}
		// Load traffic: every load either hits the scalar cache, is
		// bypassed, or reaches memory.
		var loadElems int64
		st = tr.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			if in.Class.IsLoad() {
				loadElems += in.Ops()
			}
		}
		got := dvaRes.Traffic.LoadElems + dvaRes.BypassedElems + dvaRes.ScalarCacheHits
		if got != loadElems {
			t.Errorf("seed %d: DVA load conservation: mem %d + bypass %d + hits %d != %d",
				seed, dvaRes.Traffic.LoadElems, dvaRes.BypassedElems, dvaRes.ScalarCacheHits, loadElems)
		}
		// Without bypass, the DVA may never beat the five-resource bound.
		if !cfg.Bypass {
			bound := ideal.Compute(tr).Cycles
			if dvaRes.Cycles < bound {
				t.Errorf("seed %d: DVA %d beat the lower bound %d", seed, dvaRes.Cycles, bound)
			}
			if refRes.Cycles < bound {
				t.Errorf("seed %d: REF %d beat the lower bound %d", seed, refRes.Cycles, bound)
			}
		}
		// Determinism.
		again, err := Run(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d: rerun: %v", seed, err)
		}
		if again.Cycles != dvaRes.Cycles || again.Traffic != dvaRes.Traffic || again.States != dvaRes.States {
			t.Errorf("seed %d: DVA not deterministic", seed)
		}
	}
}

func TestRandomTracesBypassNeverAddsTraffic(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		tr := tracegen.Random(seed, crossTraceLen).Trace()
		cfg := sim.DefaultConfig(1 + (seed*13)%100)
		plain, err := Run(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg.Bypass = true
		byp, err := Run(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if byp.Traffic.Total() > plain.Traffic.Total() {
			t.Errorf("seed %d: bypass increased traffic %d -> %d",
				seed, plain.Traffic.Total(), byp.Traffic.Total())
		}
		if byp.Traffic.StoreElems != plain.Traffic.StoreElems {
			t.Errorf("seed %d: bypass changed store traffic", seed)
		}
	}
}

func TestRandomTracesTinyQueuesStillTerminate(t *testing.T) {
	// The pathological minimum geometry must not deadlock.
	for seed := int64(200); seed < 215; seed++ {
		tr := tracegen.Random(seed, 200).Trace()
		cfg := sim.DefaultConfig(37)
		cfg.IQSize = 2
		cfg.AVDQSize = 1
		cfg.VADQSize = 1
		cfg.ScalarQSize = 2
		if _, err := Run(tr, cfg); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
