// Package dva implements the decoupled vector architecture of the paper's
// §4: a fetch processor (FP) splits the instruction stream between an
// address processor (AP), a scalar processor (SP) and a vector processor
// (VP), which proceed asynchronously and communicate through architectural
// queues. Stores are two-step (address queue + data queue) and performed
// behind the AP's back in strict program order, which requires dynamic
// memory disambiguation of loads against queued stores. The optional §7
// bypass services a load identical to a queued store by copying the data
// from the store data queue into the load data queue without touching
// memory.
package dva

import (
	"decvec/internal/disamb"
	"decvec/internal/isa"
)

// uopKind distinguishes the operations that flow through the instruction
// queues: ordinary instructions plus the QMOV pseudo-instructions the FP
// fabricates. QMOVs are not part of the programmer-visible instruction set
// (§4.1); they move data between an architectural queue and a register.
type uopKind uint8

const (
	// uExec executes the embedded instruction on the owning processor.
	uExec uopKind = iota
	// uQMovAVtoV moves a vector from the AVDQ into a vector register (VP).
	uQMovAVtoV
	// uQMovVtoVA moves a vector register into the VADQ store data queue (VP).
	uQMovVtoVA
	// uQMovAStoS moves a scalar from the ASDQ into an S register (SP).
	uQMovAStoS
	// uQMovStoSA moves an S register into the SADQ store data queue (SP).
	uQMovStoSA
	// uQMovStoSV moves an S register into the SVDQ vector-operand queue (SP).
	uQMovStoSV
	// uQMovVStoS moves a reduction result from the VSDQ into an S register (SP).
	uQMovVStoS
	// uQMovStoSAA moves an S register into the SAAQ so the AP can consume it
	// as an operand (SP).
	uQMovStoSAA
)

var uopNames = [...]string{
	uExec:       "exec",
	uQMovAVtoV:  "qmov.av->v",
	uQMovVtoVA:  "qmov.v->va",
	uQMovAStoS:  "qmov.as->s",
	uQMovStoSA:  "qmov.s->sa",
	uQMovStoSV:  "qmov.s->sv",
	uQMovVStoS:  "qmov.vs->s",
	uQMovStoSAA: "qmov.s->saa",
}

func (k uopKind) String() string {
	if int(k) < len(uopNames) {
		return uopNames[k]
	}
	return "uop?"
}

// uop is one instruction-queue entry: a kind plus the originating trace
// instruction. Streams guarantee the pointer stays valid and the Inst
// immutable for the whole pass, so queue entries stay two words instead of
// dragging a full Inst copy through every ring.
type uop struct {
	kind uopKind
	in   *isa.Inst
}

// uopLabel names a uop for the event stream: the instruction class for
// ordinary instructions, the QMOV name otherwise. Both come from static
// tables, so labelling allocates nothing.
func uopLabel(u *uop) string {
	if u.kind == uExec {
		return u.in.Class.String()
	}
	return u.kind.String()
}

// vslot is one entry of a vector data queue (AVDQ or VADQ): a slot holds a
// whole vector register's worth of data. readyAt is the cycle at which the
// last element has arrived in the slot; until then the slot is reserved but
// not consumable (the paper's "no chaining after a vector load": data cannot
// be consumed from the AVDQ until the last element arrives from memory).
type vslot struct {
	seq     int64
	vl      int64
	readyAt int64
	// bypassed marks slots filled by the bypass unit rather than memory.
	bypassed bool
}

// sslot is one entry of a scalar data queue.
type sslot struct {
	seq     int64
	readyAt int64
}

// storeAddr is one entry of a store address queue (SSAQ or VSAQ). The AP
// enters the address as soon as the store issues; the store itself is
// performed by the store engine when the matching data reaches the head of
// the corresponding data queue (§4.2, the two-step store process).
type storeAddr struct {
	seq      int64
	rng      disamb.Range
	vl       int64 // 1 for scalar stores
	isVector bool
	inst     *isa.Inst
	// needsData is true when the data arrives through a data queue (S or V
	// register data). False for A-register scalar stores, whose data the AP
	// provides itself; then dataReadyAt bounds when the value exists.
	needsData   bool
	dataReadyAt int64
}

// vreg is the vector-register scoreboard entry (same semantics as the
// reference simulator's).
type vreg struct {
	writeStart    int64
	writeReady    int64
	chainable     bool
	readBusyUntil int64
}

// drain tracks an in-flight QMOV that is emptying the AVDQ head region.
type drain struct {
	seq    int64
	doneAt int64
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// involvesA reports whether the instruction reads or writes an address
// register, which routes it to the AP.
func involvesA(in *isa.Inst) bool {
	return in.Dst.Kind == isa.RegA || in.Src1.Kind == isa.RegA || in.Src2.Kind == isa.RegA
}

// countSSources counts S-register source operands (operands the AP must
// receive through the SAAQ when the instruction executes there). For
// stores, Dst is the data source and is not counted here.
func countSSources(in *isa.Inst) int {
	n := 0
	if in.Src1.Kind == isa.RegS {
		n++
	}
	if in.Src2.Kind == isa.RegS {
		n++
	}
	return n
}
