package dva

import (
	"fmt"
	"math"

	"decvec/internal/disamb"
	"decvec/internal/isa"
	"decvec/internal/sim"
)

// stepAP advances the address processor by one cycle: it issues at most one
// instruction from the APIQ, in order. The AP performs all memory accesses
// and all address arithmetic (§4.2). Vector stores only deposit their
// address into the VSAQ here; the store itself is performed later by the
// store engine.
func (m *machine) stepAP() {
	u, ok := m.apIQ.Head(m.now)
	if !ok {
		return
	}
	if m.flushWaitSeq >= 0 {
		// A prior load found a hazard: every store up to the youngest
		// offender must reach memory before the AP resumes (§4.2).
		if m.oldestPendingStoreSeq() <= m.flushWaitSeq {
			m.stall(sim.StallAPFlush)
			return
		}
		m.flushWaitSeq = -1
	}
	in := u.in
	if m.rec != nil {
		seq, class, pops := in.Seq, in.Class, m.apIQ.Pops()
		defer func() {
			if m.apIQ.Pops() > pops {
				m.rec.Issue(m.now, sim.ProcAP, seq, class.String())
			}
		}()
	}
	switch in.Class {
	case isa.ClassScalarALU:
		m.apScalarALU(in)
	case isa.ClassBranch:
		m.apBranch(in)
	case isa.ClassScalarLoad:
		m.apScalarLoad(in)
	case isa.ClassScalarStore:
		m.apScalarStore(in)
	case isa.ClassVectorLoad, isa.ClassGather:
		m.apVectorLoad(in)
	case isa.ClassVectorStore, isa.ClassScatter:
		m.apVectorStore(in)
	default: // declint:nonexhaustive — the front end routes only memory, branch and scalar-ALU classes here; anything else is a routing bug
		panic(fmt.Sprintf("dva: AP cannot execute %s", in))
	}
}

// apSrcsReady checks the A-register sources and the SAAQ-delivered S
// sources of an AP instruction. It does not consume anything.
func (m *machine) apSrcsReady(in *isa.Inst) bool {
	for _, src := range [...]isa.Reg{in.Src1, in.Src2} {
		if src.Kind == isa.RegA && m.aReady[src.Idx] > m.now {
			return false
		}
	}
	if n := countSSources(in); n > 0 {
		// The S operands travel through the SAAQ in program order.
		for i := 0; i < n; i++ {
			s, ok := m.saaq.PeekAt(m.now, i)
			if !ok || s.readyAt > m.now {
				return false
			}
		}
	}
	return true
}

// apConsumeSrcs pops the SAAQ entries the instruction consumed.
func (m *machine) apConsumeSrcs(in *isa.Inst) {
	for i, n := 0, countSSources(in); i < n; i++ {
		if _, ok := m.saaq.Pop(m.now); !ok {
			panic("dva: SAAQ underflow at AP issue")
		}
	}
}

func (m *machine) apScalarALU(in *isa.Inst) {
	if !m.apSrcsReady(in) {
		m.stall(sim.StallAPData)
		return
	}
	m.apConsumeSrcs(in)
	if in.Dst.Kind == isa.RegA {
		m.aReady[in.Dst.Idx] = m.now + 1
	}
	m.popIQ(&m.apIQ)
	m.progress()
}

func (m *machine) apBranch(in *isa.Inst) {
	if !m.apSrcsReady(in) {
		m.stall(sim.StallAPData)
		return
	}
	if m.afbq.Full() {
		m.stall(sim.StallAPAFBQ)
		return
	}
	m.apConsumeSrcs(in)
	if !m.afbq.Push(m.now, in.Seq) {
		panic("dva: AFBQ push failed after capacity check")
	}
	m.popIQ(&m.apIQ)
	m.progress()
}

// disambCheck disambiguates the load against the pending stores, memoizing
// the verdict. Check is a pure function of the load and the visible
// store-queue entries, so a load re-checking while stalled (on the bus, a
// full data queue, ...) reuses the cached verdict as long as neither store
// queue has pushed or popped and the cached scan saw every queued entry.
func (m *machine) disambCheck(in *isa.Inst) disamb.Conflict {
	// Pushes+Pops over both queues strictly increases on any queue movement,
	// so equality means the queue contents are untouched.
	ver := m.ssaq.Pushes() + m.ssaq.Pops() + m.vsaq.Pushes() + m.vsaq.Pops()
	if m.disambOK && m.disambSeq == in.Seq && m.disambVer == ver {
		return m.disambRes
	}
	c := disamb.Check(in, m.pendingStores())
	m.disambSeq, m.disambVer, m.disambRes = in.Seq, ver, c
	// Entries pushed this very cycle are invisible to the scan but become
	// visible next cycle without any counter movement; only a fully-visible
	// snapshot may be reused.
	m.disambOK = m.ssaq.AllVisible(m.now) && m.vsaq.AllVisible(m.now)
	return c
}

// pendingStores snapshots both store address queues for disambiguation.
// The returned slice is scratch storage owned by the machine; it is only
// valid until the next call.
func (m *machine) pendingStores() []disamb.PendingStore {
	ps := m.psScratch[:0]
	m.ssaq.All(m.now, func(st *storeAddr) bool {
		ps = append(ps, disamb.PendingStore{Inst: st.inst, Range: st.rng})
		return true
	})
	m.vsaq.All(m.now, func(st *storeAddr) bool {
		ps = append(ps, disamb.PendingStore{Inst: st.inst, Range: st.rng})
		return true
	})
	m.psScratch = ps
	return ps
}

// oldestPendingStoreSeq returns the smallest sequence number still waiting
// in either store address queue, or MaxInt64 when both are empty.
func (m *machine) oldestPendingStoreSeq() int64 {
	oldest := int64(math.MaxInt64)
	if st, ok := m.ssaq.Head(m.now); ok && st.seq < oldest {
		oldest = st.seq
	}
	if st, ok := m.vsaq.Head(m.now); ok && st.seq < oldest {
		oldest = st.seq
	}
	return oldest
}

func (m *machine) apScalarLoad(in *isa.Inst) {
	if !m.apSrcsReady(in) {
		m.stall(sim.StallAPData)
		return
	}
	if c := m.disambCheck(in); c.Hazard {
		// Scalar loads never bypass; drain the offending stores. Initiating
		// the flush mutates state on a stall path (the next cycle stalls as
		// StallAPFlush, not StallAPHazard), so it must block the idle skip.
		m.flushWaitSeq = c.YoungestSeq
		m.flushes++
		m.mutated = true
		m.rec.Flush(m.now, c.YoungestSeq)
		m.stall(sim.StallAPHazard)
		return
	}
	toS := in.Dst.Kind == isa.RegS
	if toS && m.asdq.Full() {
		m.stall(sim.StallAPASDQ)
		return
	}
	var dataAt int64
	if m.cache.WouldHit(in.Base) {
		m.cache.Lookup(in.Base)
		dataAt = m.now + 1
	} else {
		if !m.bus.FreeAt(m.now) {
			m.stall(sim.StallAPBus)
			return
		}
		m.cache.Lookup(in.Base)
		m.bus.Reserve(m.now, 1)
		m.rec.BusGrant(m.now, sim.ProcAP, in.Seq, 1)
		m.traffic.LoadElems++
		dataAt = m.now + 1 + m.cfg.AccessLatency(in.Base, in.Seq)
	}
	m.apConsumeSrcs(in)
	if toS {
		if !m.asdq.Push(m.now, sslot{seq: in.Seq, readyAt: dataAt}) {
			panic("dva: ASDQ push failed after capacity check")
		}
	} else {
		m.aReady[in.Dst.Idx] = dataAt
	}
	m.popIQ(&m.apIQ)
	m.progress()
}

func (m *machine) apScalarStore(in *isa.Inst) {
	if !m.apSrcsReady(in) {
		m.stall(sim.StallAPData)
		return
	}
	if m.ssaq.Full() {
		m.stall(sim.StallAPSSAQ)
		return
	}
	entry := storeAddr{
		seq:  in.Seq,
		rng:  disamb.RangeOf(in),
		vl:   1,
		inst: in,
	}
	if in.Dst.Kind == isa.RegS {
		entry.needsData = true
	} else {
		// A-register data: the AP itself owns the value.
		entry.dataReadyAt = max64(m.now+1, m.aReady[in.Dst.Idx])
	}
	m.apConsumeSrcs(in)
	m.cache.Store(in.Base)
	if !m.ssaq.Push(m.now, entry) {
		panic("dva: SSAQ push failed after capacity check")
	}
	m.popIQ(&m.apIQ)
	m.progress()
}

func (m *machine) apVectorLoad(in *isa.Inst) {
	if !m.apSrcsReady(in) {
		m.stall(sim.StallAPData)
		return
	}
	if m.avdq.Full() {
		m.stall(sim.StallAPAVDQ)
		return
	}
	vl := int64(in.VL)
	c := m.disambCheck(in)
	if c.Hazard {
		if m.cfg.Bypass && c.BypassSeq >= 0 && c.BypassSeq == c.YoungestSeq {
			m.apTryBypass(in, c.BypassSeq, vl)
			return
		}
		// Flush initiation mutates state on a stall path; see apScalarLoad.
		m.flushWaitSeq = c.YoungestSeq
		m.flushes++
		m.mutated = true
		m.rec.Flush(m.now, c.YoungestSeq)
		m.stall(sim.StallAPHazard)
		return
	}
	if !m.bus.FreeAt(m.now) {
		m.stall(sim.StallAPBus)
		return
	}
	m.apConsumeSrcs(in)
	m.bus.Reserve(m.now, vl)
	m.rec.BusGrant(m.now, sim.ProcAP, in.Seq, vl)
	m.traffic.LoadElems += vl
	if !m.avdq.Push(m.now, vslot{seq: in.Seq, vl: vl, readyAt: m.now + m.cfg.AccessLatency(in.Base, in.Seq) + vl}) {
		panic("dva: AVDQ push failed after capacity check")
	}
	m.popIQ(&m.apIQ)
	m.progress()
}

// apTryBypass services a load identical to a queued store by copying the
// store's data from the VADQ into the AVDQ, VL cycles inside the processor
// (§7). The memory port is left free, so an independent memory access can
// proceed in parallel — the "illusion of two memory ports".
func (m *machine) apTryBypass(in *isa.Inst, storeSeq, vl int64) {
	if m.now < m.bypassBusyUntil {
		m.stall(sim.StallAPBypassUnit)
		return
	}
	// The store's data must have arrived in the VADQ.
	dataReady := false
	m.vadq.All(m.now, func(v *vslot) bool {
		if v.seq == storeSeq {
			dataReady = v.readyAt <= m.now
			return false
		}
		return true
	})
	if !dataReady {
		m.stall(sim.StallAPBypassData)
		return
	}
	m.apConsumeSrcs(in)
	m.bypassBusyUntil = m.now + vl
	if !m.avdq.Push(m.now, vslot{
		seq:      in.Seq,
		vl:       vl,
		readyAt:  m.now + m.cfg.QMovDepth + vl,
		bypassed: true,
	}) {
		panic("dva: AVDQ push failed after capacity check")
	}
	m.bypasses++
	m.bypElems += vl
	m.rec.Bypass(m.now, in.Seq, vl)
	m.popIQ(&m.apIQ)
	m.progress()
}

func (m *machine) apVectorStore(in *isa.Inst) {
	if !m.apSrcsReady(in) {
		m.stall(sim.StallAPData)
		return
	}
	if m.vsaq.Full() {
		m.stall(sim.StallAPVSAQ)
		return
	}
	m.apConsumeSrcs(in)
	m.invalidateRange(in)
	if !m.vsaq.Push(m.now, storeAddr{
		seq:       in.Seq,
		rng:       disamb.RangeOf(in),
		vl:        int64(in.VL),
		isVector:  true,
		needsData: true,
		inst:      in,
	}) {
		panic("dva: VSAQ push failed after capacity check")
	}
	m.popIQ(&m.apIQ)
	m.progress()
}

func (m *machine) invalidateRange(in *isa.Inst) {
	if in.Class == isa.ClassScatter {
		return
	}
	m.cache.InvalidateStrided(in.Base, in.Stride*isa.ElemSize, in.VL)
}

// stepStoreEngine performs queued stores "behind the back" of the AP: when
// the oldest pending store's data has reached its data queue and the memory
// bus is free, the store proceeds, occupying the bus for VL cycles (one for
// scalars). Stores execute in strict program order across both queues.
func (m *machine) stepStoreEngine() {
	if m.storeActive {
		if m.now < m.storeDoneAt {
			return
		}
		m.completeStore()
		m.storeActive = false
		m.progress()
		// The bus is still reserved through this cycle; a new store can
		// begin next cycle.
		return
	}
	sHead, sok := m.ssaq.Head(m.now)
	vHead, vok := m.vsaq.Head(m.now)
	var st *storeAddr
	switch {
	case sok && (!vok || sHead.seq < vHead.seq):
		st = sHead
	case vok:
		st = vHead
	default:
		return
	}
	if !m.storeDataReady(st) {
		m.stall(sim.StallSTData)
		return
	}
	if !m.bus.FreeAt(m.now) {
		m.stall(sim.StallSTBus)
		return
	}
	m.bus.Reserve(m.now, st.vl)
	if m.rec != nil {
		m.rec.BusGrant(m.now, sim.ProcST, st.seq, st.vl)
		m.rec.Issue(m.now, sim.ProcST, st.seq, st.inst.Class.String())
	}
	m.traffic.StoreElems += st.vl
	m.storeActive = true
	m.storeIsVector = st.isVector
	m.storeDoneAt = m.now + st.vl
	m.progress()
}

// storeDataReady reports whether the store's data is available.
func (m *machine) storeDataReady(st *storeAddr) bool {
	if !st.needsData {
		return st.dataReadyAt <= m.now
	}
	if st.isVector {
		v, ok := m.vadq.Head(m.now)
		if !ok {
			return false
		}
		if v.seq != st.seq {
			panic(fmt.Sprintf("dva: VADQ head seq %d does not match store seq %d", v.seq, st.seq))
		}
		return v.readyAt <= m.now
	}
	s, ok := m.sadq.Head(m.now)
	if !ok {
		return false
	}
	if s.seq != st.seq {
		panic(fmt.Sprintf("dva: SADQ head seq %d does not match store seq %d", s.seq, st.seq))
	}
	return s.readyAt <= m.now
}

// completeStore retires the store that just finished: its address queue
// entry and (if any) its data queue entry are released.
func (m *machine) completeStore() {
	if m.storeIsVector {
		if _, ok := m.vsaq.Pop(m.now); !ok {
			panic("dva: VSAQ underflow at store completion")
		}
		if _, ok := m.vadq.Pop(m.now); !ok {
			panic("dva: VADQ underflow at store completion")
		}
		return
	}
	st, ok := m.ssaq.Pop(m.now)
	if !ok {
		panic("dva: SSAQ underflow at store completion")
	}
	if st.needsData {
		if _, ok := m.sadq.Pop(m.now); !ok {
			panic("dva: SADQ underflow at store completion")
		}
	}
}
