package dva

import (
	"fmt"

	"decvec/internal/disamb"
	"decvec/internal/isa"
	"decvec/internal/queue"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// Runner is a reusable DVA/BYP simulation arena: one machine's worth of
// queues, scoreboards, scratch slices and histograms kept alive across runs.
// A zero Runner is ready to use; the first run builds the machine and later
// runs reset it in place (see the Reset contract in internal/sim/arena.go),
// so a recorder-off steady-state run performs no heap allocation. A Runner
// is not safe for concurrent use; pool idle Runners in a sim.RunPool.
type Runner struct {
	m *machine
}

// NewRunner returns an empty Runner.
func NewRunner() *Runner { return &Runner{} }

// Run simulates the trace under cfg on the pooled machine and returns a
// freshly allocated result (safe to retain; never aliases Runner state).
func (r *Runner) Run(src trace.Source, cfg sim.Config) (*sim.Result, error) {
	res := new(sim.Result)
	if err := r.RunRecordedInto(res, src, cfg, nil); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto simulates the trace under cfg, writing the measurements into res.
// Every field of res is overwritten; its slice and histogram storage is
// reused when the geometry matches, so a warmed (res, Runner) pair runs
// without allocating.
func (r *Runner) RunInto(res *sim.Result, src trace.Source, cfg sim.Config) error {
	return r.RunRecordedInto(res, src, cfg, nil)
}

// RunRecordedInto is RunInto with an optional event recorder. Recording is
// passive: res is bit-identical to a recorder-off run.
func (r *Runner) RunRecordedInto(res *sim.Result, src trace.Source, cfg sim.Config, rec *sim.Recorder) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if r.m == nil {
		r.m = newMachine(src, cfg)
	} else {
		r.m.reset(src, cfg)
	}
	m := r.m
	if rec != nil {
		m.rec = rec
		for _, q := range m.allQueues() {
			q.SetObserver(rec)
		}
	}
	if err := m.run(); err != nil {
		return fmt.Errorf("dva: %s on %s: %w", cfg.String(), src.Name(), err)
	}
	m.assembleResult(res)
	return nil
}

// setStream starts a fresh pass over src. The common in-memory Slice source
// replays through its shared predecoded dispatch plan (built on first use,
// cached on the Slice), so a new pass neither allocates nor re-routes; any
// other Source falls back to Stream() with per-instruction routing.
func (m *machine) setStream(src trace.Source) {
	if sl, ok := src.(*trace.Slice); ok {
		m.plan = m.planFor(sl)
		m.planPos = 0
		m.stream = nil
		return
	}
	m.plan = nil
	m.stream = src.Stream()
}

// reset restores the machine to power-on state for a new run over src under
// cfg, reusing every allocation whose geometry still matches. The observable
// behaviour after reset is bit-identical to a machine fresh from newMachine
// — results, event streams and statistics — which the arena-reuse
// equivalence suite pins across the program × latency × queue grid.
func (m *machine) reset(src trace.Source, cfg sim.Config) {
	sq := cfg.ScalarQSize
	m.cfg = cfg
	m.now = 0

	// Memory system: Init reuses the backing arrays when the geometry is
	// unchanged.
	m.bus.Init(cfg.MemPorts)
	m.cache.Init(cfg.ScalarCacheLines, cfg.ScalarCacheLineBytes)

	// Fetch processor.
	m.setStream(src)
	m.streamDone = false
	m.pending = nil
	m.hasPending = false
	m.pushScratch = m.pushScratch[:0]
	m.needScratch = m.needScratch[:0]

	// Queues. Init reuses the ring when the capacity is unchanged and
	// drops any observer a recorded run installed.
	m.apIQ.Init("APIQ", cfg.IQSize)
	m.spIQ.Init("SPIQ", cfg.IQSize)
	m.vpIQ.Init("VPIQ", cfg.IQSize)
	m.avdq.Init("AVDQ", cfg.AVDQSize)
	m.vadq.Init("VADQ", cfg.VADQSize)
	m.asdq.Init("ASDQ", sq)
	m.sadq.Init("SADQ", sq)
	m.svdq.Init("SVDQ", sq)
	m.vsdq.Init("VSDQ", sq)
	m.saaq.Init("SAAQ", sq)
	m.ssaq.Init("SSAQ", sq)
	m.vsaq.Init("VSAQ", cfg.EffVSAQSize())
	m.afbq.Init("AFBQ", sq)
	m.sfbq.Init("SFBQ", sq)

	// Address processor.
	m.aReady = [isa.NumARegs]int64{}
	m.flushWaitSeq = -1
	m.bypassBusyUntil = 0
	m.psScratch = m.psScratch[:0]
	m.disambSeq, m.disambVer = 0, 0
	m.disambRes = disamb.Conflict{}
	m.disambOK = false

	// Store engine.
	m.storeActive, m.storeIsVector, m.storeDoneAt = false, false, 0

	// Scalar processor.
	m.sReady = [isa.NumSRegs]int64{}

	// Vector processor.
	m.vRegs = [isa.NumVRegs]vreg{}
	m.fu1Busy, m.fu2Busy = 0, 0
	if len(m.qmovBusy) != cfg.QMovUnits {
		m.qmovBusy = make([]int64, cfg.QMovUnits)
	} else {
		for i := range m.qmovBusy {
			m.qmovBusy[i] = 0
		}
	}
	if len(m.drains) != cfg.AVDQSize {
		m.drains = make([]drain, cfg.AVDQSize)
	}
	// Stale ring entries past drainLen are never read before being
	// overwritten by pushDrain, so they need no zeroing.
	m.drainHead, m.drainLen = 0, 0

	// Measurements.
	m.states = sim.StateStats{}
	m.counts = sim.Counts{}
	m.traffic = sim.MemTraffic{}
	if len(m.avdqHist.Buckets) != cfg.AVDQSize+1 {
		m.avdqHist = sim.NewHistogram(cfg.AVDQSize)
	} else {
		m.avdqHist.Reset()
	}
	if len(m.vadqHist.Buckets) != cfg.VADQSize+1 {
		m.vadqHist = sim.NewHistogram(cfg.VADQSize)
	} else {
		m.vadqHist.Reset()
	}
	m.bypasses, m.bypElems, m.flushes = 0, 0, 0
	m.stalls = sim.StallCounts{}
	m.rec = nil

	// Loop bookkeeping.
	m.lastProgress = 0
	m.nCycleStalls = 0
	m.mutated = false
	m.dispBlocked, m.iqFreed = false, false
	m.drainBusy = -1

	// Wake wheel: every unit due at cycle 0, no dirty bits, no cached
	// stalls — bit-identical to a machine fresh from newMachine. The queues'
	// wake wiring is structural (Init preserves it), so it is not redone
	// here.
	m.wake = [numUnits]int64{}
	m.dirty = 0
	m.stallCache = [numUnits][2]sim.StallReason{}
	m.stallN = [numUnits]int8{}
	m.lastStep = [numUnits]int64{}
	m.progressCount = 0
}

// appendQueueStat appends one queue's occupancy summary to qs.
func appendQueueStat[T any](qs []sim.QueueStat, q *queue.Q[T], now int64) []sim.QueueStat {
	return append(qs, sim.QueueStat{
		Name:       q.Name(),
		Cap:        q.Cap(),
		Pushes:     q.Pushes(),
		Pops:       q.Pops(),
		Peak:       q.PeakLen(),
		MeanLen:    q.MeanLen(now),
		FullCycles: q.FullCycles(now),
	})
}

// queueStatsInto summarizes every queue's occupancy over the finished run
// into qs's storage (same order as allQueues), growing it only on first use.
func (m *machine) queueStatsInto(qs []sim.QueueStat) []sim.QueueStat {
	qs = qs[:0]
	now := m.now
	qs = appendQueueStat(qs, &m.apIQ, now)
	qs = appendQueueStat(qs, &m.spIQ, now)
	qs = appendQueueStat(qs, &m.vpIQ, now)
	qs = appendQueueStat(qs, &m.avdq, now)
	qs = appendQueueStat(qs, &m.vadq, now)
	qs = appendQueueStat(qs, &m.asdq, now)
	qs = appendQueueStat(qs, &m.sadq, now)
	qs = appendQueueStat(qs, &m.svdq, now)
	qs = appendQueueStat(qs, &m.vsdq, now)
	qs = appendQueueStat(qs, &m.saaq, now)
	qs = appendQueueStat(qs, &m.ssaq, now)
	qs = appendQueueStat(qs, &m.vsaq, now)
	qs = appendQueueStat(qs, &m.afbq, now)
	qs = appendQueueStat(qs, &m.sfbq, now)
	return qs
}

// assembleResult writes the finished run's measurements into res,
// overwriting every field. Histograms are copied out of the machine (not
// aliased) so res stays valid after the machine's next run.
func (m *machine) assembleResult(res *sim.Result) {
	arch := "DVA"
	if m.cfg.Bypass {
		arch = "BYP"
	}
	res.Arch = arch
	res.Config = m.cfg
	res.Cycles = m.now
	res.States = m.states
	if m.plan != nil {
		// A plan-driven run dispatches every instruction of the trace, so
		// the plan's whole-trace tally is exactly the incremental one.
		res.Counts = m.plan.counts
	} else {
		res.Counts = m.counts
	}
	res.Traffic = m.traffic
	res.AVDQBusy = m.avdqHist.CloneInto(res.AVDQBusy)
	res.VADQBusy = m.vadqHist.CloneInto(res.VADQBusy)
	res.Bypasses = m.bypasses
	res.BypassedElems = m.bypElems
	res.Flushes = m.flushes
	res.ScalarCacheHits = m.cache.Hits
	res.ScalarCacheMisses = m.cache.Misses
	res.Stalls = m.stalls
	res.Queues = m.queueStatsInto(res.Queues)
}
