package dva

import (
	"fmt"

	"decvec/internal/isa"
	"decvec/internal/sim"
)

// stepVP advances the vector processor by one cycle. The VP is the vector
// part of the reference architecture plus two QMOV units that move data
// between the vector registers and the AVDQ/VADQ (§4.3). Issue is in order,
// at most one instruction per cycle.
func (m *machine) stepVP() {
	u, ok := m.vpIQ.Head(m.now)
	if !ok {
		return
	}
	if m.rec != nil {
		seq, label, pops := u.in.Seq, uopLabel(u), m.vpIQ.Pops()
		defer func() {
			if m.vpIQ.Pops() > pops {
				m.rec.Issue(m.now, sim.ProcVP, seq, label)
			}
		}()
	}
	in := u.in
	switch u.kind {
	case uExec:
		m.vpExec(in)
	case uQMovAVtoV:
		m.vpQMovLoad(in)
	case uQMovVtoVA:
		m.vpQMovStore(in)
	default: // declint:nonexhaustive — the scalar-side QMOVs (S-register traffic) dispatch to the SP, never here
		panic(fmt.Sprintf("dva: VP cannot execute %s of %s", u.kind, in))
	}
}

// completeDrains releases AVDQ slots whose draining QMOV has finished.
// Slots are freed in FIFO order, so a short drain behind a long one waits.
func (m *machine) completeDrains() {
	for m.drainLen > 0 && m.drainFront().doneAt <= m.now {
		v, ok := m.avdq.Pop(m.now)
		if !ok {
			panic("dva: AVDQ underflow at drain completion")
		}
		if v.seq != m.drainFront().seq {
			panic(fmt.Sprintf("dva: AVDQ head seq %d at drain of %d", v.seq, m.drainFront().seq))
		}
		m.popDrain()
		m.progress()
	}
}

// freeQMovUnit returns the index of a free QMOV unit, or -1.
func (m *machine) freeQMovUnit() int {
	for i := range m.qmovBusy {
		if m.qmovBusy[i] <= m.now {
			return i
		}
	}
	return -1
}

// vDstReady checks the WAW/WAR hazards for writing a vector register.
func (m *machine) vDstReady(r isa.Reg) bool {
	v := &m.vRegs[r.Idx]
	return v.writeReady <= m.now && v.readBusyUntil <= m.now
}

// vSrcReady reports whether a consumer may start reading vector register r
// at this cycle, honouring the chaining rules.
func (m *machine) vSrcReady(r isa.Reg) bool {
	v := &m.vRegs[r.Idx]
	if v.chainable {
		return v.writeStart+m.cfg.ChainDelay <= m.now
	}
	return v.writeReady <= m.now
}

func (m *machine) markVRead(r isa.Reg, vl int64) {
	if r.Kind == isa.RegV {
		v := &m.vRegs[r.Idx]
		v.readBusyUntil = max64(v.readBusyUntil, m.now+vl)
	}
}

// vpQMovLoad drains the AVDQ head into a vector register. The data cannot
// be consumed from the AVDQ until its last element has arrived (§4.2), but
// once the QMOV is under way, downstream functional units may chain off the
// register being filled.
func (m *machine) vpQMovLoad(in *isa.Inst) {
	// The next undrained AVDQ entry must be this QMOV's vector.
	idx := m.drainLen
	v, ok := m.avdq.PeekAt(m.now, idx)
	if !ok || v.readyAt > m.now {
		m.stall(sim.StallVPAVDQ)
		return
	}
	if v.seq != in.Seq {
		panic(fmt.Sprintf("dva: AVDQ entry seq %d for QMOV of %d", v.seq, in.Seq))
	}
	unit := m.freeQMovUnit()
	if unit < 0 {
		m.stall(sim.StallVPQMovUnit)
		return
	}
	if !m.vDstReady(in.Dst) {
		m.stall(sim.StallVPDstHazard)
		return
	}
	vl := int64(in.VL)
	m.qmovBusy[unit] = m.now + vl
	m.pushDrain(drain{seq: in.Seq, doneAt: m.now + vl})
	reg := &m.vRegs[in.Dst.Idx]
	reg.writeStart = m.now
	reg.writeReady = m.now + m.cfg.QMovDepth + vl
	reg.chainable = true
	m.popIQ(&m.vpIQ)
	m.progress()
}

// vpQMovStore moves a vector register into a VADQ slot reserved at issue.
// It can chain off a functional unit still producing the register.
func (m *machine) vpQMovStore(in *isa.Inst) {
	if m.vadq.Full() {
		m.stall(sim.StallVPVADQ)
		return
	}
	unit := m.freeQMovUnit()
	if unit < 0 {
		m.stall(sim.StallVPQMovUnit)
		return
	}
	if !m.vSrcReady(in.Dst) { // store data register travels in Dst
		m.stall(sim.StallVPData)
		return
	}
	vl := int64(in.VL)
	m.qmovBusy[unit] = m.now + vl
	m.markVRead(in.Dst, vl)
	if !m.vadq.Push(m.now, vslot{seq: in.Seq, vl: vl, readyAt: m.now + m.cfg.QMovDepth + vl}) {
		panic("dva: VADQ push failed after capacity check")
	}
	m.popIQ(&m.vpIQ)
	m.progress()
}

// vpExec issues a vector computation (ALU or reduction) on FU1 or FU2.
func (m *machine) vpExec(in *isa.Inst) {
	vl := int64(in.VL)
	// Vector register sources.
	for _, src := range [...]isa.Reg{in.Src1, in.Src2} {
		if src.Kind == isa.RegV && !m.vSrcReady(src) {
			m.stall(sim.StallVPData)
			return
		}
	}
	// A scalar operand arrives through the SVDQ.
	usesSVDQ := in.Src2.Kind == isa.RegS
	if usesSVDQ {
		s, ok := m.svdq.Peek(m.now)
		if !ok || s.readyAt > m.now {
			m.stall(sim.StallVPSVDQ)
			return
		}
		if s.seq != in.Seq {
			panic(fmt.Sprintf("dva: SVDQ head seq %d for %s", s.seq, in))
		}
	}
	// Destination.
	isReduce := in.Class == isa.ClassReduce
	if isReduce {
		if m.vsdq.Full() {
			m.stall(sim.StallVPVSDQ)
			return
		}
	} else if !m.vDstReady(in.Dst) {
		m.stall(sim.StallVPDstHazard)
		return
	}
	// Functional unit: prefer FU1 for FU1-capable work so FU2 stays free
	// for multiplies, divisions and square roots.
	switch {
	case in.Op.FU1Capable() && m.fu1Busy <= m.now:
		m.fu1Busy = m.now + vl
	case m.fu2Busy <= m.now:
		m.fu2Busy = m.now + vl
	default:
		m.stall(sim.StallVPFU)
		return
	}
	if usesSVDQ {
		m.svdq.Pop(m.now)
	}
	m.markVRead(in.Src1, vl)
	m.markVRead(in.Src2, vl)
	if isReduce {
		if !m.vsdq.Push(m.now, sslot{seq: in.Seq, readyAt: m.now + m.cfg.Depth(in.Op) + vl}) {
			panic("dva: VSDQ push failed after capacity check")
		}
	} else {
		reg := &m.vRegs[in.Dst.Idx]
		reg.writeStart = m.now
		reg.writeReady = m.now + m.cfg.Depth(in.Op) + vl
		reg.chainable = true
	}
	m.popIQ(&m.vpIQ)
	m.progress()
}
