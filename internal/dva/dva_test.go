package dva

import (
	"testing"

	"decvec/internal/isa"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

func testCfg(latency int64) sim.Config {
	cfg := sim.DefaultConfig(latency)
	cfg.AddDepth = 2
	cfg.MulDepth = 3
	cfg.DivDepth = 5
	cfg.SqrtDepth = 5
	cfg.QMovDepth = 1
	return cfg
}

func mkTrace(insts ...isa.Inst) *trace.Slice {
	for i := range insts {
		insts[i].Seq = int64(i)
	}
	return &trace.Slice{TraceName: "test", Insts: insts}
}

func run(t *testing.T, cfg sim.Config, insts ...isa.Inst) *sim.Result {
	t.Helper()
	tr := mkTrace(insts...)
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("invalid test trace: %v", err)
	}
	r, err := Run(tr, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func vadd(dst, s1, s2 isa.Reg, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpAdd, Dst: dst, Src1: s1, Src2: s2, VL: vl}
}

func vmul(dst, s1, s2 isa.Reg, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpMul, Dst: dst, Src1: s1, Src2: s2, VL: vl}
}

func vld(dst isa.Reg, base uint64, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorLoad, Dst: dst, Base: base, VL: vl, Stride: 1}
}

func vst(data isa.Reg, base uint64, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorStore, Dst: data, Base: base, VL: vl, Stride: 1}
}

func TestEmptyTrace(t *testing.T) {
	r := run(t, testCfg(10))
	if r.Cycles != 0 {
		t.Errorf("Cycles = %d, want 0", r.Cycles)
	}
}

func TestSingleScalarInstruction(t *testing.T) {
	// FP dispatches at cycle 0 (SPIQ, visible at 1); SP executes at 1.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(0)})
	if r.Cycles < 2 || r.Cycles > 4 {
		t.Errorf("Cycles = %d, want a small dispatch+execute count", r.Cycles)
	}
	if r.Counts.ScalarInsts != 1 {
		t.Errorf("counts: %+v", r.Counts)
	}
}

func TestSingleVectorLoadTiming(t *testing.T) {
	// One load: FP at 0, AP issues at 1 or 2, data complete L+vl later,
	// QMOV drains vl. The total must track L exactly: no slip is possible
	// with a single load.
	mk := func() []isa.Inst { return []isa.Inst{vld(isa.V(0), 0x1000, 8)} }
	r10 := run(t, testCfg(10), mk()...)
	r50 := run(t, testCfg(50), mk()...)
	if d := r50.Cycles - r10.Cycles; d != 40 {
		t.Errorf("latency delta = %d, want 40", d)
	}
	if r10.Traffic.LoadElems != 8 {
		t.Errorf("LoadElems = %d", r10.Traffic.LoadElems)
	}
}

func TestLoadDataNotConsumableBeforeArrival(t *testing.T) {
	// §4.2: data cannot be consumed from the AVDQ until the last element
	// arrives. The dependent add therefore starts only after L+vl+drain.
	r := run(t, testCfg(30),
		vld(isa.V(0), 0x1000, 8),
		vadd(isa.V(1), isa.V(0), isa.None, 8))
	// Lower bound: AP issue (>=1) + L(30) + vl(8) + chain into add + vl.
	if r.Cycles < 30+8+8 {
		t.Errorf("Cycles = %d, impossibly fast", r.Cycles)
	}
}

func TestDecouplingHidesLatencyAcrossIndependentLoads(t *testing.T) {
	// Many independent load+use pairs: the AP slips ahead and loads
	// overlap, so the cost of latency is paid once, not per load. The REF
	// machine pays it per load (head-of-line blocking).
	var insts []isa.Inst
	for i := 0; i < 8; i++ {
		dst := isa.V(i % 4)
		use := isa.V(4 + i%4)
		insts = append(insts,
			vld(dst, 0x1000+uint64(i)*0x100, 8),
			vadd(use, dst, isa.None, 8))
	}
	d := run(t, testCfg(60), insts...)
	tr := mkTrace(insts...)
	rr, err := ref.Run(tr, testCfg(60))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycles >= rr.Cycles {
		t.Errorf("DVA (%d) should beat REF (%d) on independent load-use pairs", d.Cycles, rr.Cycles)
	}
	// REF pays roughly L per pair; DVA roughly once.
	if ratio := float64(rr.Cycles) / float64(d.Cycles); ratio < 1.5 {
		t.Errorf("expected a large speedup, got %.2f (ref=%d dva=%d)", ratio, rr.Cycles, d.Cycles)
	}
}

func TestStoreTwoStepCompletes(t *testing.T) {
	// A store's data arrives via the VP QMOV after the address is queued;
	// the run must drain both queues and count the traffic once.
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x1000, 8))
	if r.Traffic.StoreElems != 8 {
		t.Errorf("StoreElems = %d", r.Traffic.StoreElems)
	}
}

func TestStoreLatencyInvisible(t *testing.T) {
	mk := func() []isa.Inst {
		return []isa.Inst{
			vadd(isa.V(0), isa.V(1), isa.V(2), 8),
			vst(isa.V(0), 0x1000, 8),
		}
	}
	a := run(t, testCfg(10), mk()...)
	b := run(t, testCfg(90), mk()...)
	if a.Cycles != b.Cycles {
		t.Errorf("store latency visible: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestOverlapHazardFlushes(t *testing.T) {
	// The load overlaps the queued store (same range, different length →
	// not identical): the store must drain first.
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x1000, 8),
		vld(isa.V(3), 0x1000, 4))
	if r.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", r.Flushes)
	}
	if r.Bypasses != 0 {
		t.Errorf("Bypasses = %d, want 0 (bypass disabled)", r.Bypasses)
	}
}

func TestIdenticalLoadFlushesWithoutBypass(t *testing.T) {
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x1000, 8),
		vld(isa.V(3), 0x1000, 8))
	if r.Flushes != 1 || r.Bypasses != 0 {
		t.Errorf("flushes=%d bypasses=%d", r.Flushes, r.Bypasses)
	}
	if r.Traffic.LoadElems != 8 {
		t.Errorf("LoadElems = %d (load must go to memory)", r.Traffic.LoadElems)
	}
}

func TestBypassServicesIdenticalLoad(t *testing.T) {
	cfg := testCfg(10)
	cfg.Bypass = true
	r := run(t, cfg,
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x1000, 8),
		vld(isa.V(3), 0x1000, 8))
	if r.Bypasses != 1 || r.BypassedElems != 8 {
		t.Errorf("bypasses=%d elems=%d", r.Bypasses, r.BypassedElems)
	}
	if r.Flushes != 0 {
		t.Errorf("Flushes = %d, want 0", r.Flushes)
	}
	// The load never reaches memory; the store still does.
	if r.Traffic.LoadElems != 0 || r.Traffic.StoreElems != 8 {
		t.Errorf("traffic: %+v", r.Traffic)
	}
}

func TestBypassFasterAtHighLatency(t *testing.T) {
	mk := func() []isa.Inst {
		return []isa.Inst{
			vadd(isa.V(0), isa.V(1), isa.V(2), 8),
			vst(isa.V(0), 0x1000, 8),
			vld(isa.V(3), 0x1000, 8),
			vadd(isa.V(4), isa.V(3), isa.None, 8),
		}
	}
	cfg := testCfg(80)
	noByp := run(t, cfg, mk()...)
	cfg.Bypass = true
	byp := run(t, cfg, mk()...)
	if byp.Cycles >= noByp.Cycles {
		t.Errorf("bypass (%d) should beat flush (%d) at L=80", byp.Cycles, noByp.Cycles)
	}
	// The bypassed chain avoids memory latency entirely: the gap should
	// be on the order of L.
	if noByp.Cycles-byp.Cycles < 40 {
		t.Errorf("bypass saved only %d cycles", noByp.Cycles-byp.Cycles)
	}
}

func TestBypassRequiresIdentical(t *testing.T) {
	cfg := testCfg(10)
	cfg.Bypass = true
	// Overlapping but different stride: must flush, not bypass.
	ld := isa.Inst{Class: isa.ClassVectorLoad, Dst: isa.V(3), Base: 0x1000, VL: 8, Stride: 2}
	r := run(t, cfg,
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x1000, 8),
		ld)
	if r.Bypasses != 0 || r.Flushes != 1 {
		t.Errorf("bypasses=%d flushes=%d", r.Bypasses, r.Flushes)
	}
}

func TestGatherDrainsStoreQueue(t *testing.T) {
	// A gather conservatively aliases all memory: any queued store forces
	// a flush even at an unrelated address.
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x8000, 8),
		isa.Inst{Class: isa.ClassGather, Dst: isa.V(3), Base: 0x1000, VL: 8, Stride: 1})
	if r.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", r.Flushes)
	}
}

func TestScalarLoadToSPViaASDQ(t *testing.T) {
	// Scalar load (AP) feeds an S register (SP) through the ASDQ; the
	// dependent scalar op runs after the data round-trip.
	r := run(t, testCfg(20),
		isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(0), Base: 0x1000},
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(1), Src1: isa.S(0)})
	if r.Cycles < 20 {
		t.Errorf("Cycles = %d: scalar miss latency not paid", r.Cycles)
	}
	if r.ScalarCacheMisses != 1 {
		t.Errorf("misses = %d", r.ScalarCacheMisses)
	}
}

func TestScalarStoreFromSPViaSADQ(t *testing.T) {
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(0)},
		isa.Inst{Class: isa.ClassScalarStore, Dst: isa.S(0), Base: 0x1000})
	if r.Traffic.StoreElems != 1 {
		t.Errorf("StoreElems = %d", r.Traffic.StoreElems)
	}
}

func TestScalarStoreFromAPDirect(t *testing.T) {
	// A-register store data never travels through the SADQ.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.A(1)},
		isa.Inst{Class: isa.ClassScalarStore, Dst: isa.A(1), Base: 0x1000})
	if r.Traffic.StoreElems != 1 {
		t.Errorf("StoreElems = %d", r.Traffic.StoreElems)
	}
}

func TestScalarOperandViaSVDQ(t *testing.T) {
	// A vector instruction with an S operand waits for the SP to push it
	// through the SVDQ.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(1)},
		vmul(isa.V(1), isa.V(0), isa.S(1), 8))
	if r.Counts.VectorInsts != 1 {
		t.Errorf("counts: %+v", r.Counts)
	}
}

func TestReductionRoundTrip(t *testing.T) {
	// Reduce (VP) -> VSDQ -> SP; the dependent scalar op completes.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassReduce, Op: isa.OpAdd, Dst: isa.S(0), Src1: isa.V(0), VL: 8},
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(1), Src1: isa.S(0)})
	if r.Cycles < 8 {
		t.Errorf("Cycles = %d, too fast for a reduction round trip", r.Cycles)
	}
}

func TestAPReceivesSOperandViaSAAQ(t *testing.T) {
	// Address arithmetic reading an S register: the SP forwards the value
	// through the SAAQ (the DYFESM lockstep path).
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(1)},
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.A(1), Src1: isa.A(1), Src2: isa.S(1)},
		vld(isa.V(0), 0x1000, 8))
	if r.Cycles == 0 {
		t.Error("no cycles")
	}
}

func TestLockstepRecurrenceNotFasterThanREF(t *testing.T) {
	// The distance-1 reduction recurrence: every iteration's load address
	// depends on the previous reduction. The DVA cannot slip and should
	// not beat REF meaningfully (paper §5, DYFESM).
	var insts []isa.Inst
	for i := 0; i < 12; i++ {
		insts = append(insts,
			isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.A(1), Src1: isa.A(1), Src2: isa.S(1)},
			vld(isa.V(0), 0x1000+uint64(i)*0x100, 8),
			vmul(isa.V(1), isa.V(0), isa.S(1), 8),
			isa.Inst{Class: isa.ClassReduce, Op: isa.OpAdd, Dst: isa.S(1), Src1: isa.V(1), VL: 8})
	}
	d := run(t, testCfg(60), insts...)
	rr, err := ref.Run(mkTrace(insts...), testCfg(60))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(rr.Cycles) / float64(d.Cycles); ratio > 1.15 {
		t.Errorf("lockstep loop should not speed up, got %.2f (ref=%d dva=%d)", ratio, rr.Cycles, d.Cycles)
	}
}

func TestAVDQHistogramCoversEveryCycle(t *testing.T) {
	r := run(t, testCfg(30),
		vld(isa.V(0), 0x1000, 8),
		vld(isa.V(1), 0x2000, 8),
		vadd(isa.V(2), isa.V(0), isa.V(1), 8))
	if r.AVDQBusy == nil || r.AVDQBusy.Total() != r.Cycles {
		t.Errorf("AVDQ histogram total %v != cycles %d", r.AVDQBusy.Total(), r.Cycles)
	}
	if r.VADQBusy == nil || r.VADQBusy.Total() != r.Cycles {
		t.Error("VADQ histogram mismatch")
	}
}

func TestStateAccountingSumsToTotal(t *testing.T) {
	r := run(t, testCfg(30),
		vld(isa.V(0), 0x1000, 16),
		vadd(isa.V(1), isa.V(0), isa.None, 16),
		vmul(isa.V(2), isa.V(1), isa.None, 16),
		vst(isa.V(2), 0x8000, 16))
	if got := r.States.Total(); got != r.Cycles {
		t.Errorf("state cycles %d != total %d", got, r.Cycles)
	}
}

func TestSmallAVDQBackpressures(t *testing.T) {
	// With a 1-slot AVDQ the AP cannot run ahead; with 256 it can. Many
	// independent loads must therefore run slower with the small queue.
	var insts []isa.Inst
	for i := 0; i < 10; i++ {
		insts = append(insts, vld(isa.V(i%8), 0x1000+uint64(i)*0x100, 8))
	}
	small := testCfg(50)
	small.AVDQSize = 1
	big := testCfg(50)
	a := run(t, small, insts...)
	b := run(t, big, insts...)
	if a.Cycles <= b.Cycles {
		t.Errorf("1-slot AVDQ (%d) should be slower than 256 (%d)", a.Cycles, b.Cycles)
	}
}

func TestStrictStoreOrdering(t *testing.T) {
	// A scalar store between two vector stores: all three drain (strict
	// program order across both queues) and the run terminates.
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x1000, 8),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(0)},
		isa.Inst{Class: isa.ClassScalarStore, Dst: isa.S(0), Base: 0x4000},
		vst(isa.V(0), 0x2000, 8))
	if r.Traffic.StoreElems != 17 {
		t.Errorf("StoreElems = %d, want 17", r.Traffic.StoreElems)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []isa.Inst {
		return []isa.Inst{
			vld(isa.V(0), 0x1000, 16),
			vmul(isa.V(1), isa.V(0), isa.None, 16),
			vst(isa.V(1), 0x2000, 16),
			vld(isa.V(2), 0x2000, 16),
		}
	}
	a := run(t, testCfg(30), mk()...)
	b := run(t, testCfg(30), mk()...)
	if a.Cycles != b.Cycles || a.States != b.States || a.Traffic != b.Traffic {
		t.Error("DVA runs are not deterministic")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := testCfg(10)
	cfg.IQSize = 0
	if _, err := Run(mkTrace(), cfg); err == nil {
		t.Error("expected configuration error")
	}
}

func TestBranchesDoNotStallFetch(t *testing.T) {
	// Perfect branch prediction: a branch-heavy trace executes at about
	// one instruction per cycle.
	var insts []isa.Inst
	for i := 0; i < 50; i++ {
		insts = append(insts,
			isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(0)},
			isa.Inst{Class: isa.ClassBranch, Op: isa.OpCmp, Src1: isa.S(0), BBEnd: true})
	}
	r := run(t, testCfg(10), insts...)
	if r.Cycles > int64(len(insts))+20 {
		t.Errorf("Cycles = %d for %d instructions: branches are stalling fetch", r.Cycles, len(insts))
	}
	if r.Counts.BasicBlocks != 50 {
		t.Errorf("BasicBlocks = %d", r.Counts.BasicBlocks)
	}
}

func TestLoadStreakCannotStarveStores(t *testing.T) {
	// Alternating store/load pairs with a tiny VSAQ. Loads normally win
	// every bus race (the AP steps before the store engine), so each pair
	// queues a store while draining none: without the storePressure
	// priority flip the VSAQ fills and the AP stalls on store pushes. The
	// flip hands the store engine the bus as soon as a queue is half full,
	// so a store push must never find the VSAQ full.
	cfg := testCfg(20)
	cfg.VSAQSize = 4
	cfg.VADQSize = 4
	var insts []isa.Inst
	insts = append(insts, vadd(isa.V(0), isa.None, isa.None, 8))
	for i := 0; i < 24; i++ {
		insts = append(insts,
			vst(isa.V(0), 0x10_0000+uint64(i)*0x100, 8),
			vld(isa.V(1+i%4), 0x80_0000+uint64(i)*0x100, 8))
	}
	r := run(t, cfg, insts...)

	if n := r.Stalls[sim.StallAPVSAQ]; n != 0 {
		t.Errorf("AP stalled %d cycles on a full VSAQ; pressure arbitration must bound the backlog", n)
	}
	q, ok := r.QueueStatNamed("VSAQ")
	if !ok {
		t.Fatal("no VSAQ stats")
	}
	if q.Pushes != 24 {
		t.Errorf("VSAQ pushes = %d, want 24", q.Pushes)
	}
	if r.Traffic.StoreElems != 24*8 {
		t.Errorf("StoreElems = %d, want %d", r.Traffic.StoreElems, 24*8)
	}
}
