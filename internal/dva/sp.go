package dva

import (
	"fmt"

	"decvec/internal/isa"
	"decvec/internal/sim"
)

// stepSP advances the scalar processor by one cycle. The SP issues one
// instruction per cycle and every scalar instruction completes in exactly
// one cycle (§4.4); the exceptions are the QMOV instructions, which block
// when their queue is empty or full.
func (m *machine) stepSP() {
	u, ok := m.spIQ.Head(m.now)
	if !ok {
		return
	}
	if m.rec != nil {
		seq, label, pops := u.in.Seq, uopLabel(u), m.spIQ.Pops()
		defer func() {
			if m.spIQ.Pops() > pops {
				m.rec.Issue(m.now, sim.ProcSP, seq, label)
			}
		}()
	}
	in := u.in
	switch u.kind {
	case uExec:
		m.spExec(in)
	case uQMovAStoS:
		// ASDQ -> S register: the result of a scalar load.
		s, ok := m.asdq.Peek(m.now)
		if !ok || s.readyAt > m.now {
			m.stall(sim.StallSPASDQ)
			return
		}
		if s.seq != in.Seq {
			panic(fmt.Sprintf("dva: ASDQ head seq %d for QMOV of %d", s.seq, in.Seq))
		}
		m.asdq.Pop(m.now)
		m.sReady[in.Dst.Idx] = m.now + 1
		m.popIQ(&m.spIQ)
		m.progress()
	case uQMovVStoS:
		// VSDQ -> S register: a reduction result computed by the VP.
		s, ok := m.vsdq.Peek(m.now)
		if !ok || s.readyAt > m.now {
			m.stall(sim.StallSPVSDQ)
			return
		}
		if s.seq != in.Seq {
			panic(fmt.Sprintf("dva: VSDQ head seq %d for QMOV of %d", s.seq, in.Seq))
		}
		m.vsdq.Pop(m.now)
		m.sReady[in.Dst.Idx] = m.now + 1
		m.popIQ(&m.spIQ)
		m.progress()
	case uQMovStoSA:
		// S register -> SADQ: scalar store data. The data register of a
		// store travels in Dst.
		m.spMoveOut(in, in.Dst, &m.sadq)
	case uQMovStoSV:
		// S register -> SVDQ: the scalar operand of a vector instruction.
		m.spMoveOut(in, in.Src2, &m.svdq)
	case uQMovStoSAA:
		// S register -> SAAQ: an operand the AP is waiting for.
		src := in.Src1
		if src.Kind != isa.RegS {
			src = in.Src2
		}
		m.spMoveOut(in, src, &m.saaq)
	default: // declint:nonexhaustive — the inbound vector-side QMOVs (uQMovAVtoV, uQMovVtoVA) dispatch to the VP, never here
		panic(fmt.Sprintf("dva: SP cannot execute %s of %s", u.kind, in))
	}
}

// spMoveOut implements the blocking S-register-to-queue QMOVs.
func (m *machine) spMoveOut(in *isa.Inst, src isa.Reg, q interface {
	Full() bool
	Push(int64, sslot) bool
}) {
	if src.Kind != isa.RegS {
		panic(fmt.Sprintf("dva: QMOV out of non-S register %v in %s", src, in))
	}
	if m.sReady[src.Idx] > m.now {
		m.stall(sim.StallSPData)
		return
	}
	if q.Full() {
		m.stall(sim.StallSPQueueFull)
		return
	}
	if !q.Push(m.now, sslot{seq: in.Seq, readyAt: m.now + 1}) {
		panic("dva: QMOV push failed after capacity check")
	}
	m.popIQ(&m.spIQ)
	m.progress()
}

// spExec executes an ordinary scalar instruction on the SP.
func (m *machine) spExec(in *isa.Inst) {
	// All sources must be S registers (the trace generator never routes
	// A-register code to the SP).
	for _, src := range [...]isa.Reg{in.Src1, in.Src2} {
		switch src.Kind {
		case isa.RegS:
			if m.sReady[src.Idx] > m.now {
				m.stall(sim.StallSPData)
				return
			}
		case isa.RegA:
			panic(fmt.Sprintf("dva: SP instruction reads A register: %s", in))
		default: // declint:nonexhaustive — RegNone means the operand is unused; vector operands never reach spExec
		}
	}
	switch in.Class {
	case isa.ClassNop, isa.ClassVSetVL, isa.ClassVSetVS:
		// One cycle, no register effects.
	case isa.ClassScalarALU:
		if in.Dst.Kind == isa.RegS {
			m.sReady[in.Dst.Idx] = m.now + 1
		}
	case isa.ClassBranch:
		if m.sfbq.Full() {
			m.stall(sim.StallSPSFBQ)
			return
		}
		if !m.sfbq.Push(m.now, in.Seq) {
			panic("dva: SFBQ push failed after capacity check")
		}
	default: // declint:nonexhaustive — memory and vector classes route to the AP/VP; reaching here is a routing bug
		panic(fmt.Sprintf("dva: SP cannot execute class %s", in.Class))
	}
	m.popIQ(&m.spIQ)
	m.progress()
}
