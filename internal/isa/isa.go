// Package isa defines the vector instruction set architecture shared by the
// reference and decoupled simulators.
//
// The ISA is modeled on the Convex C3400 as described in the paper
// "Decoupled Vector Architectures" (Espasa & Valero, HPCA 1996): eight
// address registers (A0-A7), eight scalar registers (S0-S7), eight vector
// registers (V0-V7) of MaxVL 64-bit elements each, a vector length register
// and a vector stride register. Vector registers are grouped in banks of
// two, each bank sharing two read ports and one write port; the compiler
// (here, the trace generator) allocates registers so that no port conflicts
// arise, as the paper assumes.
package isa

import "fmt"

// MaxVL is the number of 64-bit elements held by one vector register.
const MaxVL = 128

// NumARegs, NumSRegs and NumVRegs are the sizes of the three register files.
const (
	NumARegs = 8
	NumSRegs = 8
	NumVRegs = 8
)

// RegKind distinguishes the three register files.
type RegKind uint8

// Register file kinds.
const (
	RegNone RegKind = iota // no register (unused operand slot)
	RegA                   // address register, lives in the AP
	RegS                   // scalar register, lives in the SP
	RegV                   // vector register, lives in the VP
)

// String returns the file prefix letter ("A", "S", "V") or "-" for RegNone.
func (k RegKind) String() string {
	switch k {
	case RegNone:
		return "-"
	case RegA:
		return "A"
	case RegS:
		return "S"
	case RegV:
		return "V"
	default:
		return "-"
	}
}

// Reg names one architectural register.
type Reg struct {
	Kind RegKind
	Idx  uint8
}

// Common register constructors.
func A(i int) Reg { return Reg{RegA, uint8(i)} }
func S(i int) Reg { return Reg{RegS, uint8(i)} }
func V(i int) Reg { return Reg{RegV, uint8(i)} }

// None is the zero Reg, meaning "operand not used".
var None = Reg{}

// Valid reports whether r names an existing register.
func (r Reg) Valid() bool {
	switch r.Kind {
	case RegNone:
		return false
	case RegA:
		return r.Idx < NumARegs
	case RegS:
		return r.Idx < NumSRegs
	case RegV:
		return r.Idx < NumVRegs
	default:
		return false
	}
}

// IsVector reports whether r is a vector register.
func (r Reg) IsVector() bool { return r.Kind == RegV }

// Bank returns the register-bank index of a vector register. Every two
// vector registers share a bank (V0/V1 -> bank 0, V2/V3 -> bank 1, ...).
// Bank panics if r is not a vector register.
func (r Reg) Bank() int {
	if r.Kind != RegV {
		panic("isa: Bank on non-vector register " + r.String())
	}
	return int(r.Idx) / 2
}

// String returns the assembly name of the register, e.g. "V3".
func (r Reg) String() string {
	if r.Kind == RegNone {
		return "-"
	}
	return fmt.Sprintf("%s%d", r.Kind, r.Idx)
}

// Class is the coarse instruction category used for routing by the fetch
// processor and for resource selection by the simulators.
type Class uint8

// Instruction classes.
const (
	ClassNop         Class = iota
	ClassScalarALU         // A/S-register arithmetic, one cycle
	ClassScalarLoad        // load into an A or S register (through scalar cache)
	ClassScalarStore       // store from an A or S register
	ClassVectorALU         // element-wise vector operation
	ClassVectorLoad        // strided vector load (stride may be 1)
	ClassVectorStore       // strided vector store
	ClassGather            // indexed vector load
	ClassScatter           // indexed vector store
	ClassReduce            // vector reduction producing a scalar (into an S reg)
	ClassVSetVL            // set the vector length register
	ClassVSetVS            // set the vector stride register
	ClassBranch            // conditional or unconditional control transfer
	numClasses
)

var classNames = [...]string{
	ClassNop:         "nop",
	ClassScalarALU:   "salu",
	ClassScalarLoad:  "sload",
	ClassScalarStore: "sstore",
	ClassVectorALU:   "valu",
	ClassVectorLoad:  "vload",
	ClassVectorStore: "vstore",
	ClassGather:      "gather",
	ClassScatter:     "scatter",
	ClassReduce:      "vreduce",
	ClassVSetVL:      "vsetvl",
	ClassVSetVS:      "vsetvs",
	ClassBranch:      "branch",
}

// String returns the mnemonic stem for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMemory reports whether instructions of this class access memory (and are
// therefore routed to the address processor in the DVA).
func (c Class) IsMemory() bool {
	switch c {
	case ClassScalarLoad, ClassScalarStore, ClassVectorLoad, ClassVectorStore,
		ClassGather, ClassScatter:
		return true
	case ClassNop, ClassScalarALU, ClassBranch, ClassVectorALU, ClassReduce,
		ClassVSetVL, ClassVSetVS:
		return false
	}
	return false
}

// IsVectorMemory reports whether the class is a vector memory access.
func (c Class) IsVectorMemory() bool {
	switch c {
	case ClassVectorLoad, ClassVectorStore, ClassGather, ClassScatter:
		return true
	case ClassNop, ClassScalarALU, ClassScalarLoad, ClassScalarStore,
		ClassBranch, ClassVectorALU, ClassReduce, ClassVSetVL, ClassVSetVS:
		return false
	}
	return false
}

// IsLoad reports whether the class reads memory.
func (c Class) IsLoad() bool {
	switch c {
	case ClassScalarLoad, ClassVectorLoad, ClassGather:
		return true
	case ClassNop, ClassScalarALU, ClassScalarStore, ClassBranch,
		ClassVectorALU, ClassVectorStore, ClassScatter, ClassReduce,
		ClassVSetVL, ClassVSetVS:
		return false
	}
	return false
}

// IsStore reports whether the class writes memory.
func (c Class) IsStore() bool {
	switch c {
	case ClassScalarStore, ClassVectorStore, ClassScatter:
		return true
	case ClassNop, ClassScalarALU, ClassScalarLoad, ClassBranch,
		ClassVectorALU, ClassVectorLoad, ClassGather, ClassReduce,
		ClassVSetVL, ClassVSetVS:
		return false
	}
	return false
}

// IsVectorCompute reports whether the class executes on a vector functional
// unit (FU1 or FU2).
func (c Class) IsVectorCompute() bool {
	return c == ClassVectorALU || c == ClassReduce
}

// Opcode identifies the detailed operation of an ALU-class instruction. Its
// main architectural consequence is functional-unit eligibility: FU1 is a
// restricted unit that executes everything except multiplication, division
// and square root; FU2 is general purpose.
type Opcode uint8

// Opcodes.
const (
	OpNone Opcode = iota
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShift
	OpCmp
	OpMin
	OpMax
	OpMul
	OpDiv
	OpSqrt
	OpMulAdd // treated as FU2-only, like multiplication
	numOpcodes
)

var opcodeNames = [...]string{
	OpNone:   "none",
	OpAdd:    "add",
	OpSub:    "sub",
	OpAnd:    "and",
	OpOr:     "or",
	OpXor:    "xor",
	OpShift:  "shift",
	OpCmp:    "cmp",
	OpMin:    "min",
	OpMax:    "max",
	OpMul:    "mul",
	OpDiv:    "div",
	OpSqrt:   "sqrt",
	OpMulAdd: "muladd",
}

// String returns the mnemonic for the opcode.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// FU1Capable reports whether the restricted functional unit FU1 can execute
// the opcode. FU1 executes all vector instructions except multiplication,
// division and square root.
func (o Opcode) FU1Capable() bool {
	switch o {
	case OpMul, OpDiv, OpSqrt, OpMulAdd:
		return false
	case OpNone, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShift, OpCmp, OpMin, OpMax:
		return true
	}
	return true
}

// ElemSize is the access granularity of every memory reference, in bytes
// (the paper's architecture works on 64-bit elements).
const ElemSize = 8

// Inst is one dynamic instruction of a trace. The trace generator fills in
// the vector length, stride and base address at generation time, mirroring
// the information Dixie extracted from real executions (basic blocks, VL
// values, VS values, memory reference addresses).
type Inst struct {
	// Seq is the dynamic sequence number, dense from 0 within a trace.
	Seq int64
	// Class routes the instruction; Op refines ALU/reduce classes.
	Class Class
	Op    Opcode

	// Dst is the destination register. For stores it is the data source
	// register (there is no written register). For branches it is None.
	Dst Reg
	// Src1, Src2 are register sources; either may be None.
	Src1, Src2 Reg

	// VL is the vector length of a vector instruction (1..MaxVL). Zero for
	// scalar instructions. For ClassVSetVL it is the value being set.
	VL int
	// Stride is the element stride of a strided vector memory reference, in
	// elements. For ClassVSetVS it is the value being set.
	Stride int64
	// Base is the base byte address of a memory reference.
	Base uint64

	// Spill marks trace-generator-inserted register spill traffic. The
	// simulators ignore it; statistics use it to report spill fractions.
	Spill bool
	// BBEnd marks the last instruction of a basic block, used only for the
	// basic-block counts of Table 1.
	BBEnd bool
}

// IsVector reports whether the instruction carries a vector length.
func (in *Inst) IsVector() bool {
	switch in.Class {
	case ClassVectorALU, ClassVectorLoad, ClassVectorStore, ClassGather,
		ClassScatter, ClassReduce:
		return true
	case ClassNop, ClassScalarALU, ClassScalarLoad, ClassScalarStore,
		ClassBranch, ClassVSetVL, ClassVSetVS:
		return false
	}
	return false
}

// Ops returns the number of architectural operations the instruction
// performs: VL for vector instructions, 1 otherwise (Table 1 distinguishes
// vector instructions from vector operations this way).
func (in *Inst) Ops() int64 {
	if in.IsVector() {
		return int64(in.VL)
	}
	return 1
}

// String formats the instruction for debug output.
func (in *Inst) String() string {
	switch in.Class {
	case ClassVectorLoad, ClassGather:
		return fmt.Sprintf("#%d %s %s, [%#x + %d*i] vl=%d", in.Seq, in.Class, in.Dst, in.Base, in.Stride, in.VL)
	case ClassVectorStore, ClassScatter:
		return fmt.Sprintf("#%d %s [%#x + %d*i], %s vl=%d", in.Seq, in.Class, in.Base, in.Stride, in.Dst, in.VL)
	case ClassScalarLoad:
		return fmt.Sprintf("#%d %s %s, [%#x]", in.Seq, in.Class, in.Dst, in.Base)
	case ClassScalarStore:
		return fmt.Sprintf("#%d %s [%#x], %s", in.Seq, in.Class, in.Base, in.Dst)
	case ClassVectorALU, ClassReduce:
		return fmt.Sprintf("#%d %s.%s %s, %s, %s vl=%d", in.Seq, in.Class, in.Op, in.Dst, in.Src1, in.Src2, in.VL)
	case ClassVSetVL:
		return fmt.Sprintf("#%d vsetvl %d", in.Seq, in.VL)
	case ClassVSetVS:
		return fmt.Sprintf("#%d vsetvs %d", in.Seq, in.Stride)
	default: // declint:nonexhaustive — nop, scalar ALU and branch share the generic three-operand format

		return fmt.Sprintf("#%d %s.%s %s, %s, %s", in.Seq, in.Class, in.Op, in.Dst, in.Src1, in.Src2)
	}
}

// Validate checks internal consistency of the instruction and returns a
// descriptive error for the first violated invariant.
//
// The checks are plain comparisons with the formatting pushed into invalidf,
// evaluated only on failure: every generated instruction is validated at
// emit time, so a success path that boxed format arguments (a variadic
// helper called unconditionally did exactly that) allocates once per
// instruction of every trace built.
func (in *Inst) Validate() error {
	if in.IsVector() {
		if in.VL < 1 || in.VL > MaxVL {
			return in.invalidf("vector length %d out of [1,%d]", in.VL, MaxVL)
		}
	} else if in.Class != ClassVSetVL && in.VL != 0 {
		return in.invalidf("non-vector instruction carries VL=%d", in.VL)
	}
	for _, r := range [...]Reg{in.Dst, in.Src1, in.Src2} {
		if r.Kind != RegNone && !r.Valid() {
			return in.invalidf("bad register %v", r)
		}
	}
	switch in.Class {
	case ClassVectorALU, ClassReduce:
		if in.Op == OpNone {
			return in.invalidf("ALU instruction without opcode")
		}
		if in.Class == ClassReduce {
			if in.Dst.Kind != RegS {
				return in.invalidf("reduction must target an S register, got %v", in.Dst)
			}
			if in.Src1.Kind != RegV {
				return in.invalidf("reduction must read a V register, got %v", in.Src1)
			}
		} else if in.Dst.Kind != RegV {
			return in.invalidf("vector ALU must target a V register, got %v", in.Dst)
		}
	case ClassVectorLoad, ClassGather:
		if in.Dst.Kind != RegV {
			return in.invalidf("vector load must target a V register, got %v", in.Dst)
		}
	case ClassVectorStore, ClassScatter:
		if in.Dst.Kind != RegV {
			return in.invalidf("vector store must read a V register, got %v", in.Dst)
		}
	case ClassScalarLoad:
		if in.Dst.Kind != RegA && in.Dst.Kind != RegS {
			return in.invalidf("scalar load must target A or S, got %v", in.Dst)
		}
	case ClassScalarStore:
		if in.Dst.Kind != RegA && in.Dst.Kind != RegS {
			return in.invalidf("scalar store must read A or S, got %v", in.Dst)
		}
	default: // declint:nonexhaustive — nop, scalar ALU, branch and vsetvl/vsetvs carry no class-specific register invariants
	}
	return nil
}

// invalidf builds the descriptive Validate error. Kept out of line so the
// success path never evaluates (or boxes) the format arguments.
func (in *Inst) invalidf(format string, args ...any) error {
	return fmt.Errorf("isa: invalid %s: %s", in, fmt.Sprintf(format, args...))
}
