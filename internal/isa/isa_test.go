package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	cases := []struct {
		reg  Reg
		kind RegKind
		idx  uint8
		str  string
	}{
		{A(0), RegA, 0, "A0"},
		{A(7), RegA, 7, "A7"},
		{S(3), RegS, 3, "S3"},
		{V(5), RegV, 5, "V5"},
	}
	for _, c := range cases {
		if c.reg.Kind != c.kind || c.reg.Idx != c.idx {
			t.Errorf("%s: got kind=%v idx=%d", c.str, c.reg.Kind, c.reg.Idx)
		}
		if got := c.reg.String(); got != c.str {
			t.Errorf("String: got %q want %q", got, c.str)
		}
		if !c.reg.Valid() {
			t.Errorf("%s should be valid", c.str)
		}
	}
}

func TestRegValidity(t *testing.T) {
	if None.Valid() {
		t.Error("None must not be valid")
	}
	if None.String() != "-" {
		t.Errorf("None.String() = %q", None.String())
	}
	for _, bad := range []Reg{A(8), S(8), V(8), {Kind: 99, Idx: 0}} {
		if bad.Valid() {
			t.Errorf("%v should be invalid", bad)
		}
	}
}

func TestRegBank(t *testing.T) {
	// Every two vector registers share a bank.
	wantBanks := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, want := range wantBanks {
		if got := V(i).Bank(); got != want {
			t.Errorf("V%d.Bank() = %d, want %d", i, got, want)
		}
	}
}

func TestRegBankPanicsOnScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bank on an S register must panic")
		}
	}()
	_ = S(0).Bank()
}

func TestIsVector(t *testing.T) {
	if !V(0).IsVector() || A(0).IsVector() || S(0).IsVector() {
		t.Error("IsVector misclassifies")
	}
}

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                                      Class
		mem, vmem, load, store, vcomp, isaVect bool
	}{
		{ClassNop, false, false, false, false, false, false},
		{ClassScalarALU, false, false, false, false, false, false},
		{ClassScalarLoad, true, false, true, false, false, false},
		{ClassScalarStore, true, false, false, true, false, false},
		{ClassVectorALU, false, false, false, false, true, true},
		{ClassVectorLoad, true, true, true, false, false, true},
		{ClassVectorStore, true, true, false, true, false, true},
		{ClassGather, true, true, true, false, false, true},
		{ClassScatter, true, true, false, true, false, true},
		{ClassReduce, false, false, false, false, true, true},
		{ClassVSetVL, false, false, false, false, false, false},
		{ClassVSetVS, false, false, false, false, false, false},
		{ClassBranch, false, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.c.IsMemory() != c.mem {
			t.Errorf("%s.IsMemory() = %v", c.c, !c.mem)
		}
		if c.c.IsVectorMemory() != c.vmem {
			t.Errorf("%s.IsVectorMemory() = %v", c.c, !c.vmem)
		}
		if c.c.IsLoad() != c.load {
			t.Errorf("%s.IsLoad() = %v", c.c, !c.load)
		}
		if c.c.IsStore() != c.store {
			t.Errorf("%s.IsStore() = %v", c.c, !c.store)
		}
		if c.c.IsVectorCompute() != c.vcomp {
			t.Errorf("%s.IsVectorCompute() = %v", c.c, !c.vcomp)
		}
		in := Inst{Class: c.c}
		if in.IsVector() != c.isaVect {
			t.Errorf("Inst{%s}.IsVector() = %v", c.c, !c.isaVect)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassVectorLoad.String() != "vload" {
		t.Errorf("got %q", ClassVectorLoad.String())
	}
	if !strings.Contains(Class(200).String(), "200") {
		t.Errorf("unknown class should render its number, got %q", Class(200).String())
	}
}

func TestOpcodeFU1Capability(t *testing.T) {
	// FU1 executes everything except multiplication, division and sqrt.
	fu2Only := map[Opcode]bool{OpMul: true, OpDiv: true, OpSqrt: true, OpMulAdd: true}
	for op := OpNone; op < numOpcodes; op++ {
		want := !fu2Only[op]
		if got := op.FU1Capable(); got != want {
			t.Errorf("%s.FU1Capable() = %v, want %v", op, got, want)
		}
	}
}

func TestOpcodeString(t *testing.T) {
	if OpMul.String() != "mul" || OpSqrt.String() != "sqrt" {
		t.Error("opcode names wrong")
	}
	if !strings.Contains(Opcode(250).String(), "250") {
		t.Error("unknown opcode should render its number")
	}
}

func TestInstOps(t *testing.T) {
	v := Inst{Class: ClassVectorALU, VL: 64}
	if v.Ops() != 64 {
		t.Errorf("vector Ops() = %d", v.Ops())
	}
	s := Inst{Class: ClassScalarALU}
	if s.Ops() != 1 {
		t.Errorf("scalar Ops() = %d", s.Ops())
	}
}

func validVectorAdd() Inst {
	return Inst{Class: ClassVectorALU, Op: OpAdd, Dst: V(0), Src1: V(1), Src2: V(2), VL: 16}
}

func TestInstValidateAccepts(t *testing.T) {
	good := []Inst{
		validVectorAdd(),
		{Class: ClassVectorLoad, Dst: V(0), Src1: A(1), VL: 128, Stride: 1},
		{Class: ClassVectorStore, Dst: V(3), Src1: A(1), VL: 1, Stride: -2},
		{Class: ClassScalarLoad, Dst: S(0), Src1: A(1)},
		{Class: ClassScalarLoad, Dst: A(5), Src1: A(1)},
		{Class: ClassScalarStore, Dst: S(2)},
		{Class: ClassReduce, Op: OpAdd, Dst: S(1), Src1: V(2), VL: 8},
		{Class: ClassVSetVL, VL: 64},
		{Class: ClassVSetVS, Stride: 4},
		{Class: ClassBranch, Op: OpCmp, Src1: A(0)},
		{Class: ClassGather, Dst: V(1), Src1: A(2), VL: 32},
	}
	for i, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("case %d: unexpected error: %v", i, err)
		}
	}
}

func TestInstValidateRejects(t *testing.T) {
	bad := []Inst{
		{Class: ClassVectorALU, Op: OpAdd, Dst: V(0), VL: 0},              // VL out of range
		{Class: ClassVectorALU, Op: OpAdd, Dst: V(0), VL: MaxVL + 1},      // VL too big
		{Class: ClassScalarALU, Op: OpAdd, Dst: S(0), VL: 7},              // scalar with VL
		{Class: ClassVectorALU, Op: OpNone, Dst: V(0), VL: 4},             // missing opcode
		{Class: ClassVectorALU, Op: OpAdd, Dst: S(0), VL: 4},              // wrong dst file
		{Class: ClassReduce, Op: OpAdd, Dst: V(0), Src1: V(1), VL: 4},     // reduce to V
		{Class: ClassReduce, Op: OpAdd, Dst: S(0), Src1: S(1), VL: 4},     // reduce from S
		{Class: ClassVectorLoad, Dst: S(0), VL: 4},                        // load to S
		{Class: ClassVectorStore, Dst: A(0), VL: 4},                       // store from A
		{Class: ClassScalarLoad, Dst: V(0)},                               // scalar load to V
		{Class: ClassScalarStore, Dst: V(0)},                              // scalar store from V
		{Class: ClassVectorALU, Op: OpAdd, Dst: V(0), Src1: V(9), VL: 4},  // bad register index
		{Class: ClassVectorALU, Op: OpAdd, Dst: V(0), Src1: A(12), VL: 4}, // bad A index
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%s): expected validation error", i, in.String())
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want []string
	}{
		{Inst{Seq: 7, Class: ClassVectorLoad, Dst: V(2), Base: 0x100, Stride: 2, VL: 8}, []string{"#7", "vload", "V2", "0x100", "vl=8"}},
		{Inst{Class: ClassVectorStore, Dst: V(1), Base: 0x80, VL: 4}, []string{"vstore", "V1", "0x80"}},
		{Inst{Class: ClassVectorALU, Op: OpMul, Dst: V(0), Src1: V(1), Src2: S(2), VL: 16}, []string{"valu.mul", "V0", "V1", "S2"}},
		{Inst{Class: ClassVSetVL, VL: 32}, []string{"vsetvl 32"}},
		{Inst{Class: ClassVSetVS, Stride: -4}, []string{"vsetvs -4"}},
		{Inst{Class: ClassScalarLoad, Dst: S(4), Base: 0x20}, []string{"sload", "S4", "0x20"}},
		{Inst{Class: ClassScalarStore, Dst: S(4), Base: 0x28}, []string{"sstore", "0x28", "S4"}},
		{Inst{Class: ClassBranch, Op: OpCmp, Src1: A(0)}, []string{"branch", "A0"}},
	}
	for _, c := range cases {
		got := c.in.String()
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("String() = %q, missing %q", got, w)
			}
		}
	}
}

func TestMakeStateRoundTrip_Quick(t *testing.T) {
	// Property: a register constructed from any small index is valid and
	// round-trips through its string name.
	f := func(n uint8) bool {
		i := int(n % NumVRegs)
		r := V(i)
		return r.Valid() && r.Bank() == i/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
