package disamb

import (
	"testing"
	"testing/quick"

	"decvec/internal/isa"
)

func vload(seq int64, base uint64, vl int, stride int64) *isa.Inst {
	return &isa.Inst{Seq: seq, Class: isa.ClassVectorLoad, Dst: isa.V(0), Base: base, VL: vl, Stride: stride}
}

func vstore(seq int64, base uint64, vl int, stride int64) *isa.Inst {
	return &isa.Inst{Seq: seq, Class: isa.ClassVectorStore, Dst: isa.V(1), Base: base, VL: vl, Stride: stride}
}

func TestRangeOfUnitStride(t *testing.T) {
	r := RangeOf(vload(0, 0x1000, 16, 1))
	// 16 elements of 8 bytes: [0x1000, 0x1080).
	if r.Lo != 0x1000 || r.Hi != 0x1080 || r.All {
		t.Errorf("got %v", r)
	}
	if r.Bytes() != 128 {
		t.Errorf("Bytes() = %d", r.Bytes())
	}
}

func TestRangeOfStride(t *testing.T) {
	r := RangeOf(vload(0, 0x1000, 4, 4))
	// Elements at 0x1000, 0x1020, 0x1040, 0x1060; range ends 0x1068.
	if r.Lo != 0x1000 || r.Hi != 0x1068 {
		t.Errorf("got %v", r)
	}
}

func TestRangeOfNegativeStride(t *testing.T) {
	r := RangeOf(vload(0, 0x1000, 4, -2))
	// Elements at 0x1000, 0xfF0, 0xfe0, 0xfd0: lowest 0xfd0, Hi 0x1008.
	if r.Lo != 0xfd0 || r.Hi != 0x1008 {
		t.Errorf("got %v", r)
	}
}

func TestRangeOfScalar(t *testing.T) {
	in := &isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(0), Base: 0x500}
	r := RangeOf(in)
	if r.Lo != 0x500 || r.Hi != 0x508 {
		t.Errorf("got %v", r)
	}
}

func TestRangeOfGatherScatterIsAll(t *testing.T) {
	g := &isa.Inst{Class: isa.ClassGather, Dst: isa.V(0), Base: 0x100, VL: 4, Stride: 1}
	if !RangeOf(g).All {
		t.Error("gather must define all memory")
	}
	s := &isa.Inst{Class: isa.ClassScatter, Dst: isa.V(0), Base: 0x100, VL: 4, Stride: 1}
	if !RangeOf(s).All {
		t.Error("scatter must define all memory")
	}
	if RangeOf(g).Bytes() != 0 {
		t.Error("All range has no finite extent")
	}
}

func TestRangeOfPanicsOnNonMemory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	RangeOf(&isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpAdd, Dst: isa.V(0), VL: 4})
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{Range{Lo: 0, Hi: 8}, Range{Lo: 8, Hi: 16}, false},   // adjacent
		{Range{Lo: 0, Hi: 9}, Range{Lo: 8, Hi: 16}, true},    // one byte
		{Range{Lo: 0, Hi: 100}, Range{Lo: 40, Hi: 50}, true}, // contained
		{Range{All: true}, Range{Lo: 1, Hi: 2}, true},        // all
		{Range{Lo: 1, Hi: 2}, Range{All: true}, true},
		{Range{Lo: 16, Hi: 24}, Range{Lo: 0, Hi: 8}, false}, // disjoint
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: %v overlaps %v = %v", i, c.a, c.b, got)
		}
	}
}

func TestOverlapsSymmetric_Quick(t *testing.T) {
	f := func(aLo, aLen, bLo, bLen uint16) bool {
		a := Range{Lo: uint64(aLo), Hi: uint64(aLo) + uint64(aLen) + 1}
		b := Range{Lo: uint64(bLo), Hi: uint64(bLo) + uint64(bLen) + 1}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapsSelf_Quick(t *testing.T) {
	f := func(lo uint32, length uint16) bool {
		r := Range{Lo: uint64(lo), Hi: uint64(lo) + uint64(length) + 1}
		return r.Overlaps(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentical(t *testing.T) {
	ld := vload(5, 0x2000, 32, 2)
	cases := []struct {
		st   *isa.Inst
		want bool
	}{
		{vstore(1, 0x2000, 32, 2), true},
		{vstore(1, 0x2008, 32, 2), false}, // different base
		{vstore(1, 0x2000, 16, 2), false}, // different length
		{vstore(1, 0x2000, 32, 4), false}, // different stride
	}
	for i, c := range cases {
		if got := Identical(ld, c.st); got != c.want {
			t.Errorf("case %d: Identical = %v", i, got)
		}
	}
	// Single-element accesses match regardless of stride.
	if !Identical(vload(0, 0x100, 1, 7), vstore(0, 0x100, 1, 3)) {
		t.Error("VL=1 loads should match ignoring stride")
	}
	// Gathers never bypass.
	g := &isa.Inst{Class: isa.ClassGather, Dst: isa.V(0), Base: 0x2000, VL: 32, Stride: 2}
	if Identical(g, vstore(0, 0x2000, 32, 2)) {
		t.Error("gather must not be bypass-eligible")
	}
	// Scatters are not bypass sources.
	sc := &isa.Inst{Class: isa.ClassScatter, Dst: isa.V(0), Base: 0x2000, VL: 32, Stride: 2}
	if Identical(ld, sc) {
		t.Error("scatter must not be a bypass source")
	}
}

func pend(sts ...*isa.Inst) []PendingStore {
	var ps []PendingStore
	for _, st := range sts {
		ps = append(ps, PendingStore{Inst: st, Range: RangeOf(st)})
	}
	return ps
}

func TestCheckNoHazard(t *testing.T) {
	ld := vload(10, 0x9000, 16, 1)
	c := Check(ld, pend(vstore(1, 0x1000, 16, 1), vstore(2, 0x2000, 16, 1)))
	if c.Hazard {
		t.Errorf("unexpected hazard: %+v", c)
	}
	if c.YoungestSeq != -1 || c.BypassSeq != -1 {
		t.Errorf("sentinels wrong: %+v", c)
	}
}

func TestCheckYoungestWins(t *testing.T) {
	ld := vload(10, 0x1000, 16, 1)
	// Two overlapping stores; the youngest determines the drain point.
	c := Check(ld, pend(vstore(3, 0x1000, 16, 1), vstore(7, 0x1040, 16, 1)))
	if !c.Hazard || c.YoungestSeq != 7 {
		t.Errorf("got %+v", c)
	}
	// Youngest (seq 7) is not identical, so no bypass even though seq 3 is.
	if c.BypassSeq != -1 {
		t.Errorf("bypass should be cleared by a younger non-identical store: %+v", c)
	}
}

func TestCheckBypassEligible(t *testing.T) {
	ld := vload(10, 0x1000, 16, 1)
	c := Check(ld, pend(vstore(2, 0x5000, 8, 1), vstore(5, 0x1000, 16, 1)))
	if !c.Hazard || c.YoungestSeq != 5 || c.BypassSeq != 5 {
		t.Errorf("got %+v", c)
	}
}

func TestCheckOrderIndependent(t *testing.T) {
	ld := vload(10, 0x1000, 16, 1)
	a := pend(vstore(3, 0x1000, 16, 1), vstore(7, 0x1040, 16, 1))
	b := pend(vstore(7, 0x1040, 16, 1), vstore(3, 0x1000, 16, 1))
	ca, cb := Check(ld, a), Check(ld, b)
	if ca != cb {
		t.Errorf("order dependence: %+v vs %+v", ca, cb)
	}
}

func TestCheckScalarLoadAgainstVectorStore(t *testing.T) {
	ld := &isa.Inst{Seq: 9, Class: isa.ClassScalarLoad, Dst: isa.S(0), Base: 0x1010}
	c := Check(ld, pend(vstore(4, 0x1000, 16, 1)))
	if !c.Hazard || c.YoungestSeq != 4 {
		t.Errorf("got %+v", c)
	}
	// Scalar loads can never be identical to a vector store.
	if c.BypassSeq != -1 {
		t.Errorf("scalar load must not be bypass-eligible: %+v", c)
	}
}

// Property: Check's hazard decision equals the existence of an overlapping
// store, and YoungestSeq is the max overlapping sequence number.
func TestCheckMatchesBruteForce_Quick(t *testing.T) {
	f := func(loBase uint16, stores [4]struct {
		Base uint16
		VL   uint8
	}) bool {
		ld := vload(100, 0x1000+uint64(loBase), 8, 1)
		var ps []PendingStore
		var wantHazard bool
		wantYoungest := int64(-1)
		for i, s := range stores {
			vl := int(s.VL%32) + 1
			st := vstore(int64(i), 0x1000+uint64(s.Base), vl, 1)
			ps = append(ps, PendingStore{Inst: st, Range: RangeOf(st)})
			if RangeOf(ld).Overlaps(RangeOf(st)) {
				wantHazard = true
				if int64(i) > wantYoungest {
					wantYoungest = int64(i)
				}
			}
		}
		c := Check(ld, ps)
		return c.Hazard == wantHazard && (!wantHazard || c.YoungestSeq == wantYoungest)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A negative-stride reference whose span reaches below address 0 must clamp
// Lo at 0 instead of wrapping around. Pre-clamp, Lo wrapped to ~2^64 and the
// range became empty (Lo > Hi), so every conflict against it was missed.
func TestRangeOfNegativeStrideUnderflow(t *testing.T) {
	// Elements at 0x20, then stepping down 0x80 bytes per element: the
	// second element is already below address 0.
	ld := vload(0, 0x20, 8, -16)
	r := RangeOf(ld)
	if r.Lo > r.Hi {
		t.Fatalf("inverted range %v: Lo must be clamped, not wrapped", r)
	}
	if r.Lo != 0 || r.Hi != 0x28 {
		t.Errorf("got %v, want [0x0,0x28)", r)
	}
}

// The underflow also has to be caught by Check: a store near address 0 must
// conflict with an underflowing negative-stride load.
func TestCheckNegativeStrideUnderflowConflict(t *testing.T) {
	ld := vload(10, 0x20, 8, -16)
	st := vstore(4, 0x0, 4, 1) // [0x0, 0x20)
	c := Check(ld, pend(st))
	if !c.Hazard || c.YoungestSeq != 4 {
		t.Errorf("underflowing load must conflict with store near 0: %+v", c)
	}
}

// Property: RangeOf never produces an inverted interval, whatever the base,
// length and stride.
func TestRangeOfNeverInverted_Quick(t *testing.T) {
	f := func(base uint32, vl uint8, stride int16) bool {
		ld := vload(0, uint64(base), int(vl%64)+1, int64(stride))
		r := RangeOf(ld)
		return r.Lo <= r.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// One-element vectors: the range is a single element regardless of stride,
// and conflicts behave like scalar accesses.
func TestRangeOfOneElement(t *testing.T) {
	for _, stride := range []int64{1, 7, -7, -1000} {
		r := RangeOf(vload(0, 0x1000, 1, stride))
		if r.Lo != 0x1000 || r.Hi != 0x1000+isa.ElemSize {
			t.Errorf("stride %d: got %v", stride, r)
		}
	}
	// A one-element load against a one-element store at the same address.
	c := Check(vload(10, 0x1000, 1, -5), pend(vstore(3, 0x1000, 1, 9)))
	if !c.Hazard || c.YoungestSeq != 3 || c.BypassSeq != 3 {
		t.Errorf("VL=1 same-address pair must hazard and bypass: %+v", c)
	}
}

// Gathers and scatters define all memory, so they conflict with everything —
// including each other and one-element accesses far away.
func TestCheckGatherScatterAllMemory(t *testing.T) {
	g := &isa.Inst{Seq: 10, Class: isa.ClassGather, Dst: isa.V(0), Base: 0x100, VL: 4, Stride: 1}
	sc := &isa.Inst{Seq: 2, Class: isa.ClassScatter, Dst: isa.V(1), Base: 0xffff_0000, VL: 4, Stride: 1}
	c := Check(g, pend(sc))
	if !c.Hazard || c.YoungestSeq != 2 {
		t.Errorf("gather vs scatter must always conflict: %+v", c)
	}
	if c.BypassSeq != -1 {
		t.Errorf("gather must never be bypass-eligible: %+v", c)
	}
	// Scatter also blocks a distant strided load.
	c = Check(vload(10, 0x5000, 4, 1), pend(sc))
	if !c.Hazard {
		t.Errorf("scatter must conflict with any load: %+v", c)
	}
}

// Bypass eligibility is a property of the youngest overlapping store only:
// an older identical store shadowed by a younger overlapping non-identical
// one must not offer its stale data, while a younger identical store over
// an older overlap restores eligibility. In all cases BypassSeq is either -1
// or equal to YoungestSeq.
func TestCheckBypassShadowing(t *testing.T) {
	ld := vload(10, 0x1000, 16, 1)
	identicalOld := vstore(3, 0x1000, 16, 1)   // identical to the load
	overlapYoung := vstore(7, 0x1040, 16, 1)   // overlaps, not identical
	identicalYoung := vstore(8, 0x1000, 16, 1) // identical again, youngest

	c := Check(ld, pend(identicalOld, overlapYoung))
	if !c.Hazard || c.YoungestSeq != 7 || c.BypassSeq != -1 {
		t.Errorf("shadowed identical store must not bypass: %+v", c)
	}

	c = Check(ld, pend(identicalOld, overlapYoung, identicalYoung))
	if !c.Hazard || c.YoungestSeq != 8 || c.BypassSeq != 8 {
		t.Errorf("youngest identical store must restore bypass: %+v", c)
	}
	if c.BypassSeq != c.YoungestSeq {
		t.Errorf("BypassSeq must equal YoungestSeq when eligible: %+v", c)
	}
}

// Property: BypassSeq is -1 or YoungestSeq — never an older store.
func TestCheckBypassIsYoungest_Quick(t *testing.T) {
	f := func(loBase uint16, stores [4]struct {
		Base uint16
		VL   uint8
	}) bool {
		ld := vload(100, 0x1000+uint64(loBase), 8, 1)
		var ps []PendingStore
		for i, s := range stores {
			st := vstore(int64(i), 0x1000+uint64(s.Base), int(s.VL%32)+1, 1)
			ps = append(ps, PendingStore{Inst: st, Range: RangeOf(st)})
		}
		c := Check(ld, ps)
		return c.BypassSeq == -1 || c.BypassSeq == c.YoungestSeq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
