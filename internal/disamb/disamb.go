// Package disamb implements the dynamic memory disambiguation logic of the
// decoupled vector architecture.
//
// The paper (§4.2) defines the memory range of a strided vector reference
// with base address BA, vector length VL, vector stride VS and access
// granularity S bytes as all locations between BA and BA + (VL-1)*VS + S
// (terms inverted for negative strides). Two references conflict when their
// ranges overlap in at least one byte. Scatters and gathers cannot be
// characterized by a range and conservatively "define all memory".
package disamb

import (
	"fmt"

	"decvec/internal/isa"
)

// Range is the closed-open byte interval [Lo, Hi) touched by a memory
// reference. All reports a scatter/gather, which conservatively overlaps
// everything.
type Range struct {
	Lo, Hi uint64
	All    bool
}

// RangeOf computes the memory range accessed by a memory instruction.
// It panics if the instruction is not a memory access.
// declint:hotpath
func RangeOf(in *isa.Inst) Range {
	switch in.Class {
	case isa.ClassGather, isa.ClassScatter:
		return Range{All: true}
	case isa.ClassScalarLoad, isa.ClassScalarStore:
		return Range{Lo: in.Base, Hi: in.Base + isa.ElemSize}
	case isa.ClassVectorLoad, isa.ClassVectorStore:
		span := int64(in.VL-1) * in.Stride * isa.ElemSize
		if span >= 0 {
			return Range{Lo: in.Base, Hi: in.Base + uint64(span) + isa.ElemSize}
		}
		// Negative stride: the last element is at the lowest address. A
		// reference whose span reaches below address 0 is clamped there
		// instead of wrapping around (which would produce Lo > Hi and make
		// Overlaps silently miss every conflict).
		lo := uint64(0)
		if down := uint64(-span); down <= in.Base {
			lo = in.Base - down
		}
		return Range{Lo: lo, Hi: in.Base + isa.ElemSize}
	default: // declint:nonexhaustive — non-memory classes carry no address range; callers must filter with IsMemory first
		panic(fmt.Sprintf("disamb: RangeOf on non-memory instruction %s", in))
	}
}

// Overlaps reports whether two ranges share at least one byte.
func (r Range) Overlaps(o Range) bool {
	if r.All || o.All {
		return true
	}
	return r.Lo < o.Hi && o.Lo < r.Hi
}

// Bytes returns the extent of the range in bytes (0 for All, whose extent is
// unbounded).
func (r Range) Bytes() uint64 {
	if r.All {
		return 0
	}
	return r.Hi - r.Lo
}

// String formats the range for debug output.
func (r Range) String() string {
	if r.All {
		return "[all memory]"
	}
	return fmt.Sprintf("[%#x,%#x)", r.Lo, r.Hi)
}

// Identical reports whether a load is element-for-element identical to a
// store, i.e. same base address, same effective element sequence (length and
// stride) and both strided accesses. Only identical pairs are eligible for
// the VADQ->AVDQ bypass of §7; gathers/scatters never are.
// declint:hotpath
func Identical(load, store *isa.Inst) bool {
	if load.Class != isa.ClassVectorLoad || store.Class != isa.ClassVectorStore {
		return false
	}
	if load.Base != store.Base || load.VL != store.VL {
		return false
	}
	// A one-element access matches regardless of stride.
	return load.VL == 1 || load.Stride == store.Stride
}

// PendingStore is one entry of a store address queue as seen by the
// disambiguator: the instruction that created it plus its queue position
// (older entries have smaller Seq by construction of in-order APs).
type PendingStore struct {
	Inst  *isa.Inst
	Range Range
}

// Conflict is the result of disambiguating a load against the store queues.
type Conflict struct {
	// Hazard is true when the load overlaps at least one pending store and
	// therefore cannot be issued before the offending stores are drained.
	Hazard bool
	// YoungestSeq is the sequence number of the youngest overlapping store;
	// all stores up to and including it must be written to memory first.
	// Valid only when Hazard is true.
	YoungestSeq int64
	// BypassSeq is the sequence number of a pending store identical to the
	// load, if any (-1 otherwise). When the youngest overlapping store is an
	// identical one, the load may be serviced by bypass instead of draining.
	BypassSeq int64
}

// Check disambiguates a load (scalar or vector) against the pending stores
// of both store address queues. The stores slice may be in any order; the
// decision depends only on range overlap and sequence numbers.
// declint:hotpath
func Check(load *isa.Inst, stores []PendingStore) Conflict {
	c := Conflict{YoungestSeq: -1, BypassSeq: -1}
	lr := RangeOf(load)
	for _, st := range stores {
		if !lr.Overlaps(st.Range) {
			continue
		}
		c.Hazard = true
		if st.Inst.Seq > c.YoungestSeq {
			c.YoungestSeq = st.Inst.Seq
			if Identical(load, st.Inst) {
				c.BypassSeq = st.Inst.Seq
			} else {
				c.BypassSeq = -1
			}
		}
	}
	return c
}
