// Package workload provides synthetic models of the thirteen Perfect Club
// programs the paper characterizes (Table 1), six of which it simulates:
// ARC2D, FLO52, BDNA, SPEC77, TRFD and DYFESM.
//
// Each model composes tracegen kernels so that the resulting trace matches
// the program's published characteristics: degree of vectorization, average
// vector length, spill-code fraction (from the paper's reference [5]:
// BDNA 69.5 %, ARC2D 12.2 %, FLO52 11.9 %, SPEC77 3 %), and the structural
// traits the paper calls out (DYFESM's chime-bound main loop and distance-1
// reduction recurrences; SPEC77's heavy use of load-queue slots). Paper
// Table 1 values that are illegible in the scanned source are reconstructed
// from the column arithmetic and marked Approx.
package workload

import (
	"fmt"
	"sync"

	"decvec/internal/trace"
	"decvec/internal/tracegen"
)

// PaperRow is one row of the paper's Table 1, in millions of events.
type PaperRow struct {
	BBs    float64 // basic blocks executed
	SInsts float64 // scalar instructions
	VInsts float64 // vector instructions
	VOps   float64 // vector operations
	Vect   float64 // % vectorization
	AvgVL  float64 // average vector length
	Approx bool    // reconstructed from partial data
}

// Program is one benchmark model.
type Program struct {
	Name        string
	Description string
	// Simulated marks the six programs the paper runs through the
	// simulators (> 70 % vectorized).
	Simulated bool
	// Paper is the Table 1 row.
	Paper PaperRow
	// TargetSpill is the spill fraction of memory operations the model
	// aims for (0 when the paper gives none).
	TargetSpill float64

	build func(b *tracegen.Builder, u int)
}

// DefaultScale yields traces of roughly 30k-90k dynamic instructions per
// program — large enough for steady-state behaviour, small enough that the
// full experiment suite runs in minutes.
const DefaultScale = 1.0

// Trace synthesizes the program's trace at the given scale (1.0 = default
// size; iteration counts grow linearly). Traces are deterministic: equal
// (program, scale) always yields the identical instruction sequence.
func (p *Program) Trace(scale float64) *trace.Slice {
	if scale <= 0 {
		scale = DefaultScale
	}
	u := int(scale * 16)
	if u < 1 {
		u = 1
	}
	b := tracegen.New(p.Name, seedFor(p.Name))
	p.build(b, u)
	return b.Trace()
}

// cached traces, statistics and content hashes for the common
// (program, scale) pairs used by experiments. Stats and hashes derive from
// the trace alone, so caching them beside the trace means Table 1 and the
// figure drivers never re-drain a scaled trace, and the persistent result
// cache hashes each trace once per process.
var (
	cacheMu    sync.Mutex
	cache      = map[string]*traceEntry{}
	statsCache = map[string]*trace.Stats{}
	hashCache  = map[string][32]byte{}
)

// traceEntry memoizes one (program, scale) trace. Generation runs inside the
// entry's once, outside the map lock, so different programs materialize
// concurrently while duplicate requests for one key still generate exactly
// once (Suite.WarmCtx fans materialization across the CPUs at cold start).
type traceEntry struct {
	once sync.Once
	t    *trace.Slice
}

// CachedTrace is Trace with memoization; the returned Slice must be treated
// as read-only (trace sources are replayable, so simulators never mutate).
func (p *Program) CachedTrace(scale float64) *trace.Slice {
	key := fmt.Sprintf("%s@%g", p.Name, scale)
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &traceEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.t = p.Trace(scale) })
	return e.t
}

// CachedStats returns the trace statistics at the given scale, collected at
// most once per (program, scale): traces are deterministic and read-only, so
// the stats never go stale. The returned Stats must be treated as read-only.
func (p *Program) CachedStats(scale float64) *trace.Stats {
	key := fmt.Sprintf("%s@%g", p.Name, scale)
	cacheMu.Lock()
	st, ok := statsCache[key]
	cacheMu.Unlock()
	if ok {
		return st
	}
	st = trace.Collect(p.CachedTrace(scale))
	cacheMu.Lock()
	statsCache[key] = st
	cacheMu.Unlock()
	return st
}

// CachedTraceHash returns the SHA-256 content hash of the trace's binary
// encoding at the given scale (the trace component of persistent cache
// keys), computed at most once per (program, scale).
func (p *Program) CachedTraceHash(scale float64) ([32]byte, error) {
	key := fmt.Sprintf("%s@%g", p.Name, scale)
	cacheMu.Lock()
	h, ok := hashCache[key]
	cacheMu.Unlock()
	if ok {
		return h, nil
	}
	h, err := trace.Hash(p.CachedTrace(scale))
	if err != nil {
		return [32]byte{}, err
	}
	cacheMu.Lock()
	hashCache[key] = h
	cacheMu.Unlock()
	return h, nil
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h
}

// Get returns the program with the given name.
func Get(name string) (*Program, error) {
	for _, p := range All {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown program %q", name)
}

// Simulated returns the six programs the paper simulates, in paper order.
func Simulated() []*Program {
	var ps []*Program
	for _, p := range All {
		if p.Simulated {
			ps = append(ps, p)
		}
	}
	return ps
}

// All lists the thirteen Perfect Club models in Table 1 order (the four
// fully legible rows first, as in the paper's table, then the rest).
var All = []*Program{
	{
		Name:        "ARC2D",
		Description: "2-D fluid dynamics solver: long-vector stencil sweeps, near-total vectorization",
		Simulated:   true,
		Paper:       PaperRow{BBs: 5.2, SInsts: 63.3, VInsts: 42.9, VOps: 4086.5, Vect: 98.5, AvgVL: 95},
		TargetSpill: 0.122,
		build:       buildARC2D,
	},
	{
		Name:        "FLO52",
		Description: "transonic flow solver: medium vectors, multigrid-like sweeps",
		Simulated:   true,
		Paper:       PaperRow{BBs: 5.7, SInsts: 37.7, VInsts: 22.8, VOps: 1242.0, Vect: 97.1, AvgVL: 54},
		TargetSpill: 0.119,
		build:       buildFLO52,
	},
	{
		Name:        "BDNA",
		Description: "molecular dynamics of DNA: register-pressure-heavy bodies, 69.5% of memory ops are spill code",
		Simulated:   true,
		Paper:       PaperRow{BBs: 47.0, SInsts: 239.0, VInsts: 19.6, VOps: 1589.9, Vect: 86.9, AvgVL: 81, Approx: true},
		TargetSpill: 0.695,
		build:       buildBDNA,
	},
	{
		Name:        "TRFD",
		Description: "two-electron integral transform: short vectors, large scalar component, spill-heavy kernels",
		Simulated:   true,
		Paper:       PaperRow{BBs: 44.8, SInsts: 352.2, VInsts: 49.5, VOps: 1095.3, Vect: 75.7, AvgVL: 22},
		TargetSpill: 0.30,
		build:       buildTRFD,
	},
	{
		Name:        "DYFESM",
		Description: "structural dynamics: chime-bound main loop (68% of vector ops) plus two distance-1 reduction recurrences (7.1% each)",
		Simulated:   true,
		Paper:       PaperRow{BBs: 34.5, SInsts: 236.1, VInsts: 40.1, VOps: 1082.7, Vect: 82.1, AvgVL: 27, Approx: true},
		TargetSpill: 0.32,
		build:       buildDYFESM,
	},
	{
		Name:        "SPEC77",
		Description: "spectral weather model: short vectors, bursts of independent loads that fill the load queue",
		Simulated:   true,
		Paper:       PaperRow{BBs: 166.2, SInsts: 1147.8, VInsts: 213.4, VOps: 3841.6, Vect: 77.0, AvgVL: 18, Approx: true},
		TargetSpill: 0.03,
		build:       buildSPEC77,
	},
	{
		Name:        "MG3D",
		Description: "seismic migration: moderately vectorized, below the paper's 70% selection threshold",
		Paper:       PaperRow{BBs: 452.1, SInsts: 11066.8, VInsts: 310.0, VOps: 18000.0, Vect: 61.9, AvgVL: 58, Approx: true},
		build:       buildMG3D,
	},
	{
		Name:        "MDG",
		Description: "liquid water molecular dynamics: dominated by scalar neighbour-list code",
		Paper:       PaperRow{BBs: 185.9, SInsts: 4446.6, VInsts: 80.0, VOps: 3000.0, Vect: 40.3, AvgVL: 38, Approx: true},
		build:       buildMDG,
	},
	{
		Name:        "ADM",
		Description: "air pollution model: mixed scalar/vector with short vectors",
		Paper:       PaperRow{BBs: 42.4, SInsts: 709.0, VInsts: 25.0, VOps: 450.0, Vect: 38.8, AvgVL: 18, Approx: true},
		build:       buildADM,
	},
	{
		Name:        "OCEAN",
		Description: "ocean circulation: FFT-like phases with strided access",
		Paper:       PaperRow{BBs: 165.6, SInsts: 4414.3, VInsts: 120.0, VOps: 5400.0, Vect: 55.0, AvgVL: 45, Approx: true},
		build:       buildOCEAN,
	},
	{
		Name:        "QCD",
		Description: "lattice gauge theory: mostly scalar with occasional short vectors",
		Paper:       PaperRow{BBs: 80.1, SInsts: 1079.8, VInsts: 25.0, VOps: 375.0, Vect: 25.8, AvgVL: 15, Approx: true},
		build:       buildQCD,
	},
	{
		Name:        "TRACK",
		Description: "missile tracking: branchy scalar code, minimal vectorization",
		Paper:       PaperRow{BBs: 50.7, SInsts: 506.0, VInsts: 10.0, VOps: 130.0, Vect: 20.4, AvgVL: 13, Approx: true},
		build:       buildTRACK,
	},
	{
		Name:        "SPICE",
		Description: "circuit simulation: pointer-chasing scalar code, essentially unvectorized",
		Paper:       PaperRow{BBs: 31.1, SInsts: 279.1, VInsts: 2.5, VOps: 25.0, Vect: 8.2, AvgVL: 10, Approx: true},
		build:       buildSPICE,
	},
}
