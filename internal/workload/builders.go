package workload

import "decvec/internal/tracegen"

// The build functions compose tracegen kernels into phase mixes calibrated
// against Table 1 (see the calibration tests for the tolerance checks).
// Each outer repetition interleaves the program's characteristic phases the
// way real execution phases alternate; `u` scales the repetition count.
//
// Calibration targets per program: the scalar-instructions-per-vector-
// instruction ratio from Table 1 (e.g. BDNA 239/19.6 ≈ 12.2), the average
// vector length, and the spill fraction of memory operations from the
// paper's reference [5].

func buildARC2D(b *tracegen.Builder, u int) {
	// 1.48 scalar instructions per vector instruction, avg VL 95,
	// 12.2% spill.
	for r := 0; r < u*2; r++ {
		b.Stencil(112, 6)
		b.ScalarBlock(26, 25, 15)
		b.Daxpy(96, 3)
		b.ScalarBlock(26, 25, 15)
		b.Spill(112, 4, 1, 10)
		b.ScalarBlock(26, 25, 15)
		b.SoftPipeDaxpy(64, 6)
		b.ScalarBlock(26, 25, 15)
	}
}

func buildFLO52(b *tracegen.Builder, u int) {
	// 1.65 scalar per vector instruction, avg VL 54, 11.9% spill.
	for r := 0; r < u*3; r++ {
		b.Stencil(56, 6)
		b.ScalarBlock(35, 25, 10)
		b.SoftPipeDaxpy(52, 5)
		b.ScalarBlock(35, 25, 10)
		b.Daxpy(48, 5)
		b.ScalarBlock(35, 25, 10)
		b.SpillPipelined(52, 6, 1)
		b.ScalarBlock(35, 25, 10)
	}
}

func buildBDNA(b *tracegen.Builder, u int) {
	// 12.2 scalar per vector instruction, avg VL 81, 69.5% spill:
	// register-pressure-heavy vector bodies spill three temporaries per
	// iteration, and the abundant scalar glue spills too.
	for r := 0; r < u; r++ {
		for seg := 0; seg < 6; seg++ {
			b.Spill(82, 2, 1, 6)
			b.ScalarBlockSpan(290, 4, 70, 4096)
		}
		b.Daxpy(72, 2)
		b.ScalarBlockSpan(90, 4, 70, 4096)
	}
}

func buildTRFD(b *tracegen.Builder, u int) {
	// 7.1 scalar per vector instruction, avg VL 22; spill-heavy kernels
	// (Figure 8 shows the largest traffic reduction together with DYFESM).
	for r := 0; r < u; r++ {
		b.Daxpy(24, 6)
		b.ScalarBlock(220, 8, 60)
		b.ComputeBound(20, 4, 4)
		b.ScalarBlock(220, 8, 60)
		b.Spill(24, 6, 2, 2)
		b.ScalarBlock(220, 8, 60)
		b.SpillPipelined(22, 6, 2)
		b.ScalarBlock(225, 8, 60)
		b.DotReduce(20, 3, false)
		b.ScalarBlock(225, 8, 60)
	}
}

func buildDYFESM(b *tracegen.Builder, u int) {
	// 5.9 scalar per vector instruction, avg VL 27. The dominant loop
	// (~68% of vector operations) is chime-bound on both architectures and
	// carries a cross-iteration spill; two loops have the distance-1
	// reduction recurrence (§5: the processors run in lockstep there).
	for r := 0; r < u; r++ {
		b.SpillPipelined(28, 11, 2)
		b.ScalarBlock(320, 8, 50)
		b.SpillPipelined(28, 11, 2)
		b.ScalarBlock(320, 8, 50)
		b.DotReduce(28, 4, true)
		b.ScalarBlock(320, 8, 50)
		b.DotReduce(28, 4, true)
		b.SoftPipeDaxpy(24, 3)
		b.ScalarBlock(320, 8, 50)
	}
}

func buildSPEC77(b *tracegen.Builder, u int) {
	// 5.4 scalar per vector instruction, avg VL 18, only 3% spill. Bursts
	// of independent loads let the AP run far ahead, filling the AVDQ
	// (Figure 6); a 4-slot load queue hurts this program (§7).
	for r := 0; r < u; r++ {
		b.LoadBurst(18, 10, 6)
		b.ScalarBlock(245, 10, 5)
		b.LoadBurst(16, 6, 5)
		b.ScalarBlock(245, 10, 5)
		b.Daxpy(18, 6)
		b.ScalarBlock(245, 10, 5)
		b.DotReduce(18, 6, false)
		b.Spill(18, 1, 1, 0)
		b.ScalarBlock(245, 10, 5)
	}
}

func buildMG3D(b *tracegen.Builder, u int) {
	for r := 0; r < u; r++ {
		b.Daxpy(58, 8)
		b.StridedSweep(58, 4, 8)
		b.ScalarBlock(1700, 25, 0)
		b.ScalarRecurrence(40)
	}
}

func buildMDG(b *tracegen.Builder, u int) {
	for r := 0; r < u; r++ {
		b.Daxpy(38, 4)
		b.GatherScatter(38, 2)
		b.ScalarBlock(1250, 25, 0)
		b.ScalarRecurrence(60)
	}
}

func buildADM(b *tracegen.Builder, u int) {
	for r := 0; r < u; r++ {
		b.Daxpy(18, 4)
		b.ComputeBound(18, 2, 3)
		b.ScalarBlock(780, 25, 0)
	}
}

func buildOCEAN(b *tracegen.Builder, u int) {
	for r := 0; r < u; r++ {
		b.StridedSweep(45, 6, 16)
		b.Daxpy(45, 4)
		b.ScalarBlock(1250, 25, 0)
		b.ScalarRecurrence(30)
	}
}

func buildQCD(b *tracegen.Builder, u int) {
	for r := 0; r < u; r++ {
		b.Daxpy(15, 3)
		b.ScalarBlock(500, 25, 0)
		b.ScalarRecurrence(50)
	}
}

func buildTRACK(b *tracegen.Builder, u int) {
	for r := 0; r < u; r++ {
		b.Daxpy(13, 2)
		b.ScalarBlock(260, 25, 0)
		b.ScalarRecurrence(70)
	}
}

func buildSPICE(b *tracegen.Builder, u int) {
	for r := 0; r < u; r++ {
		b.Daxpy(10, 1)
		b.ScalarBlock(180, 25, 0)
		b.ScalarRecurrence(110)
	}
}
