package workload

import (
	"math"
	"sync"
	"testing"
	"time"

	"decvec/internal/trace"
	"decvec/internal/tracegen"
)

func TestThirteenPrograms(t *testing.T) {
	if len(All) != 13 {
		t.Fatalf("have %d programs, the Perfect Club has 13", len(All))
	}
	seen := map[string]bool{}
	for _, p := range All {
		if seen[p.Name] {
			t.Errorf("duplicate program %q", p.Name)
		}
		seen[p.Name] = true
		if p.Description == "" {
			t.Errorf("%s lacks a description", p.Name)
		}
	}
}

func TestSimulatedAreTheSix(t *testing.T) {
	want := map[string]bool{
		"ARC2D": true, "FLO52": true, "BDNA": true,
		"SPEC77": true, "TRFD": true, "DYFESM": true,
	}
	sims := Simulated()
	if len(sims) != 6 {
		t.Fatalf("%d simulated programs", len(sims))
	}
	for _, p := range sims {
		if !want[p.Name] {
			t.Errorf("unexpected simulated program %s", p.Name)
		}
	}
}

func TestGet(t *testing.T) {
	p, err := Get("TRFD")
	if err != nil || p.Name != "TRFD" {
		t.Fatalf("Get: %v %v", p, err)
	}
	if _, err := Get("NOPE"); err == nil {
		t.Error("expected error for unknown program")
	}
}

func TestAllTracesValidate(t *testing.T) {
	for _, p := range All {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			if err := trace.Validate(p.Trace(0.5)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTraceDeterminism(t *testing.T) {
	p, _ := Get("DYFESM")
	a, b := p.Trace(1), p.Trace(1)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestCachedTraceIsStable(t *testing.T) {
	p, _ := Get("ARC2D")
	if p.CachedTrace(1) != p.CachedTrace(1) {
		t.Error("cache returns different objects")
	}
	if p.CachedTrace(1) == p.CachedTrace(2) {
		t.Error("different scales must not share a cache entry")
	}
}

func TestScaleGrowsTrace(t *testing.T) {
	p, _ := Get("FLO52")
	small := p.Trace(0.5).Len()
	big := p.Trace(2).Len()
	if big <= small {
		t.Errorf("scale 2 (%d) not larger than scale 0.5 (%d)", big, small)
	}
}

// TestCalibration locks the six simulated models to the paper's Table 1
// ratios: vectorization within 3 percentage points, average vector length
// within 12%, and the spill fraction for the four programs the paper's
// reference [5] quantifies within 8 percentage points.
func TestCalibration(t *testing.T) {
	spillKnown := map[string]float64{
		"BDNA":   0.695,
		"ARC2D":  0.122,
		"FLO52":  0.119,
		"SPEC77": 0.03,
	}
	for _, p := range Simulated() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			st := trace.Collect(p.CachedTrace(1))
			vect := 100 * st.Vectorization()
			if d := math.Abs(vect - p.Paper.Vect); d > 3 {
				t.Errorf("vectorization %.1f%% vs paper %.1f%% (|d|=%.1f)", vect, p.Paper.Vect, d)
			}
			avgVL := st.AvgVL()
			if rel := math.Abs(avgVL-p.Paper.AvgVL) / p.Paper.AvgVL; rel > 0.12 {
				t.Errorf("avg VL %.1f vs paper %.0f (%.0f%% off)", avgVL, p.Paper.AvgVL, 100*rel)
			}
			if want, ok := spillKnown[p.Name]; ok {
				got := st.SpillFraction()
				if d := math.Abs(got - want); d > 0.08 {
					t.Errorf("spill fraction %.3f vs paper %.3f", got, want)
				}
			}
			// Tables need a meaningful trace size at scale 1.
			if st.ScalarInsts+st.VectorInsts < 5000 {
				t.Errorf("trace too small: %d instructions", st.ScalarInsts+st.VectorInsts)
			}
		})
	}
}

// TestNonSimulatedBelowThreshold checks the paper's selection criterion:
// the seven unsimulated programs fall below 70% vectorization.
func TestNonSimulatedBelowThreshold(t *testing.T) {
	for _, p := range All {
		if p.Simulated {
			continue
		}
		st := trace.Collect(p.CachedTrace(0.5))
		if v := st.Vectorization(); v >= 0.70 {
			t.Errorf("%s: vectorization %.2f should be < 0.70", p.Name, v)
		}
	}
}

// TestSimulatedAboveThreshold checks the inverse for the chosen six.
func TestSimulatedAboveThreshold(t *testing.T) {
	for _, p := range Simulated() {
		st := trace.Collect(p.CachedTrace(1))
		if v := st.Vectorization(); v < 0.70 {
			t.Errorf("%s: vectorization %.2f should be >= 0.70", p.Name, v)
		}
	}
}

func TestPaperRowsArithmetic(t *testing.T) {
	// The Table 1 columns must be mutually consistent: %Vect equals
	// VOps/(SInsts+VOps) and avg VL equals VOps/VInsts, within rounding.
	for _, p := range All {
		r := p.Paper
		wantVect := 100 * r.VOps / (r.SInsts + r.VOps)
		if math.Abs(wantVect-r.Vect) > 1.5 {
			t.Errorf("%s: paper vect %.1f inconsistent with counts (%.1f)", p.Name, r.Vect, wantVect)
		}
		wantVL := r.VOps / r.VInsts
		if math.Abs(wantVL-r.AvgVL)/r.AvgVL > 0.12 {
			t.Errorf("%s: paper avg VL %.0f inconsistent with counts (%.1f)", p.Name, r.AvgVL, wantVL)
		}
	}
}

func TestSeedForIsStable(t *testing.T) {
	if seedFor("BDNA") != seedFor("BDNA") {
		t.Error("seed not stable")
	}
	if seedFor("BDNA") == seedFor("TRFD") {
		t.Error("different names share a seed")
	}
}

// TestCachedTraceGeneratesConcurrently pins the materialization fix of the
// warm() cold-start path: trace generation for different programs must not
// serialize on the global cache lock. The two fixture builds rendezvous —
// each waits until the other is also mid-generation — so this test
// deadlocks (and fails on the watchdog) if generation ever moves back
// under cacheMu.
func TestCachedTraceGeneratesConcurrently(t *testing.T) {
	arrive := make(chan string, 2)
	release := make(chan struct{})
	mk := func(name string) *Program {
		return &Program{
			Name:        name,
			Description: "concurrency fixture",
			build: func(b *tracegen.Builder, u int) {
				arrive <- name
				<-release
			},
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, p := range []*Program{mk("conc-fixture-a"), mk("conc-fixture-b")} {
			wg.Add(1)
			go func(p *Program) {
				defer wg.Done()
				p.CachedTrace(1)
			}(p)
		}
		wg.Wait()
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-arrive:
		case <-time.After(10 * time.Second):
			t.Fatal("only one trace generation in flight: CachedTrace serializes generation under the global cache lock")
		}
	}
	close(release)
	<-done
}
