package mem

import (
	"testing"
	"testing/quick"
)

func TestBusReserveAndBusy(t *testing.T) {
	var b Bus
	if !b.FreeAt(0) || b.BusyAt(0) {
		t.Fatal("fresh bus should be free")
	}
	b.Reserve(5, 4) // busy [5, 9)
	for c := int64(5); c < 9; c++ {
		if !b.BusyAt(c) {
			t.Errorf("cycle %d should be busy", c)
		}
	}
	if b.BusyAt(9) || !b.FreeAt(9) {
		t.Error("cycle 9 should be free")
	}
	if b.FreeCycle() != 9 {
		t.Errorf("FreeCycle = %d", b.FreeCycle())
	}
	if b.BusyCycles != 4 {
		t.Errorf("BusyCycles = %d", b.BusyCycles)
	}
}

func TestBusReservePanicsWhenBusy(t *testing.T) {
	var b Bus
	b.Reserve(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b.Reserve(5, 1)
}

func TestBusReservePanicsOnZeroLength(t *testing.T) {
	var b Bus
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b.Reserve(0, 0)
}

func TestBusReset(t *testing.T) {
	var b Bus
	b.Reserve(0, 8)
	b.Reset()
	if !b.FreeAt(0) || b.BusyCycles != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewCache(0, 32)
}

func TestCacheMissThenHit(t *testing.T) {
	c := NewCache(16, 32)
	if c.Lookup(0x1000) {
		t.Fatal("first touch must miss")
	}
	if !c.Lookup(0x1000) {
		t.Fatal("second touch must hit")
	}
	// Same line, different word.
	if !c.Lookup(0x1008) {
		t.Fatal("same-line access must hit")
	}
	// Different line.
	if c.Lookup(0x1020) {
		t.Fatal("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	c := NewCache(4, 32) // 4 lines of 32B: addresses 128B apart conflict
	c.Lookup(0x0)
	c.Lookup(0x80) // maps to the same index, evicts
	if c.Lookup(0x0) {
		t.Fatal("evicted line must miss")
	}
}

func TestCacheWouldHitDoesNotAllocate(t *testing.T) {
	c := NewCache(8, 32)
	if c.WouldHit(0x40) {
		t.Fatal("cold cache cannot hit")
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("WouldHit must not count")
	}
	if c.Lookup(0x40) {
		t.Fatal("WouldHit must not have allocated")
	}
	if !c.WouldHit(0x40) {
		t.Fatal("line should now be present")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(8, 32)
	c.Lookup(0x100)
	c.Invalidate(0x100)
	if c.WouldHit(0x100) {
		t.Fatal("invalidate failed")
	}
	// Invalidating an absent or mismatched line is a no-op.
	c.Invalidate(0x9999)
}

func TestCacheReset(t *testing.T) {
	c := NewCache(8, 32)
	c.Lookup(0x100)
	c.Reset()
	if c.WouldHit(0x100) || c.Hits != 0 || c.Misses != 0 {
		t.Fatal("reset incomplete")
	}
}

// Property: WouldHit always predicts the hit/miss outcome of the next
// Lookup of the same address.
func TestWouldHitPredictsLookup_Quick(t *testing.T) {
	c := NewCache(16, 32)
	f := func(addr uint16) bool {
		a := uint64(addr)
		pred := c.WouldHit(a)
		return c.Lookup(a) == pred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the bus is busy exactly for the reserved window.
func TestBusWindow_Quick(t *testing.T) {
	f := func(start uint16, n uint8) bool {
		var b Bus
		s, d := int64(start), int64(n%64)+1
		b.Reserve(s, d)
		// The model only answers BusyAt for cycles >= the reservation
		// point (earlier cycles are never queried by the simulators).
		return b.BusyAt(s) && b.BusyAt(s+d-1) && !b.BusyAt(s+d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiPortBus(t *testing.T) {
	b := NewBus(2)
	b.Reserve(0, 10) // port 0 busy [0,10)
	if !b.FreeAt(5) {
		t.Fatal("second port should be free")
	}
	b.Reserve(5, 10) // port 1 busy [5,15)
	if b.FreeAt(7) {
		t.Fatal("both ports busy at 7")
	}
	if !b.BusyAt(7) {
		t.Fatal("BusyAt should report full occupancy")
	}
	// Port 0 frees at 10.
	if b.FreeCycle() != 10 {
		t.Fatalf("FreeCycle = %d", b.FreeCycle())
	}
	if !b.FreeAt(10) || b.BusyAt(12) {
		t.Fatal("port 0 should be free from 10")
	}
	if b.BusyCycles != 20 {
		t.Fatalf("BusyCycles = %d", b.BusyCycles)
	}
	b.Reset()
	if !b.FreeAt(0) || b.BusyCycles != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMultiPortReservePanicsWhenAllBusy(t *testing.T) {
	b := NewBus(2)
	b.Reserve(0, 10)
	b.Reserve(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b.Reserve(5, 1)
}

func TestNewBusSinglePortEquivalence(t *testing.T) {
	a := NewBus(1)
	var z Bus
	a.Reserve(3, 4)
	z.Reserve(3, 4)
	if a.FreeCycle() != z.FreeCycle() || a.BusyAt(5) != z.BusyAt(5) {
		t.Fatal("NewBus(1) must behave like the zero value")
	}
}
