// Package mem models the memory system shared by both architectures: a
// single pipelined memory port with a common address bus, a fixed load
// latency, latency-free stores, and a small direct-mapped scalar cache that
// holds scalar data only (vector accesses always go to main memory, §4.2).
package mem

import (
	"fmt"

	"decvec/internal/isa"
)

// Bus is the address bus of the memory system. The paper's machines have a
// single pipelined port; a multi-port configuration (the "what if we just
// added a second port?" comparison against the §7 bypass) widens it to
// several independent ports. A vector reference occupies one port for
// exactly VL cycles; a scalar reference for one cycle. Reservations are
// made only at the current cycle when some port is free, so port i is busy
// at cycle c exactly when c < busyUntil[i].
//
// The zero value is a single-port bus, matching the paper.
type Bus struct {
	busyUntil []int64 // lazily sized; nil means one port
	single    [1]int64
	// BusyCycles is the total number of port-cycles occupied.
	BusyCycles int64
}

// NewBus returns a bus with the given number of ports (minimum one).
func NewBus(ports int) *Bus {
	b := &Bus{}
	b.Init(ports)
	return b
}

// Init (re)initializes b in place to an idle bus with the given number of
// ports (minimum one), reusing the existing port array when it already fits.
// The embed-by-value counterpart of NewBus.
func (b *Bus) Init(ports int) {
	if ports > 1 {
		if len(b.busyUntil) != ports {
			b.busyUntil = make([]int64, ports)
		}
	} else {
		b.busyUntil = nil
	}
	b.Reset()
}

// ports returns the per-port busy-until slice, defaulting to one port.
func (b *Bus) ports() []int64 {
	if b.busyUntil == nil {
		return b.single[:]
	}
	return b.busyUntil
}

// FreeAt reports whether some port can accept a new reference at cycle now.
func (b *Bus) FreeAt(now int64) bool {
	for _, u := range b.ports() {
		if now >= u {
			return true
		}
	}
	return false
}

// BusyAt reports whether every port is occupied at cycle now (the LD bit of
// the paper's state accounting: the memory subsystem cannot accept work).
func (b *Bus) BusyAt(now int64) bool { return !b.FreeAt(now) }

// Reserve occupies a free port for n cycles starting at now. It panics if
// no port is free — callers must check FreeAt first.
func (b *Bus) Reserve(now int64, n int64) {
	if n < 1 {
		panic(fmt.Sprintf("mem: bus reservation of %d cycles", n))
	}
	ps := b.ports()
	for i, u := range ps {
		if now >= u {
			ps[i] = now + n
			b.BusyCycles += n
			return
		}
	}
	panic(fmt.Sprintf("mem: bus reserved at %d while all ports busy", now))
}

// FreeCycle returns the first cycle at which some port is free.
func (b *Bus) FreeCycle() int64 {
	ps := b.ports()
	min := ps[0]
	for _, u := range ps[1:] {
		if u < min {
			min = u
		}
	}
	return min
}

// Ports returns the number of ports the bus was built with.
func (b *Bus) Ports() int {
	if b.busyUntil == nil {
		return 1
	}
	return len(b.busyUntil)
}

// Reset clears the bus state.
func (b *Bus) Reset() {
	for i := range b.ports() {
		b.ports()[i] = 0
	}
	b.BusyCycles = 0
}

// Cache is the direct-mapped scalar cache. It filters scalar loads; scalar
// stores are write-through and always reach memory (they still update a
// present line). Vector references bypass it entirely.
type Cache struct {
	lineBytes uint64
	tags      []uint64
	valid     []bool

	Hits   int64
	Misses int64
}

// NewCache returns a direct-mapped cache with the given geometry.
func NewCache(lines, lineBytes int) *Cache {
	c := &Cache{}
	c.Init(lines, lineBytes)
	return c
}

// Init (re)initializes c in place to an empty cache with the given geometry,
// reusing the existing tag and valid arrays when the line count already
// matches. The embed-by-value counterpart of NewCache.
func (c *Cache) Init(lines, lineBytes int) {
	if lines < 1 || lineBytes < isa.ElemSize {
		panic(fmt.Sprintf("mem: bad cache geometry %dx%dB", lines, lineBytes))
	}
	c.lineBytes = uint64(lineBytes)
	if len(c.tags) != lines {
		c.tags = make([]uint64, lines)
		c.valid = make([]bool, lines)
	}
	c.Reset()
}

// Lines returns the number of cache lines.
func (c *Cache) Lines() int { return len(c.tags) }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return int(c.lineBytes) }

// Lookup probes the cache for a scalar load at addr: on a miss the line is
// allocated. It returns whether the access hit.
func (c *Cache) Lookup(addr uint64) bool {
	line := addr / c.lineBytes
	idx := line % uint64(len(c.tags))
	if c.valid[idx] && c.tags[idx] == line {
		c.Hits++
		return true
	}
	c.Misses++
	c.valid[idx] = true
	c.tags[idx] = line
	return false
}

// WouldHit probes the cache for addr without updating contents or
// statistics. Schedulers use it to decide whether an access will need the
// memory bus before committing to the access.
func (c *Cache) WouldHit(addr uint64) bool {
	line := addr / c.lineBytes
	idx := line % uint64(len(c.tags))
	return c.valid[idx] && c.tags[idx] == line
}

// Store records a scalar store at addr. Stores are write-through with
// write-allocate: the stored line becomes (or stays) resident, so a reload
// of freshly written data — register spill traffic above all — hits.
// Stores never stall on the cache.
func (c *Cache) Store(addr uint64) {
	line := addr / c.lineBytes
	idx := line % uint64(len(c.tags))
	c.valid[idx] = true
	c.tags[idx] = line
}

// Invalidate drops the line covering addr, if present. Vector stores that
// overlap scalar-cached data use this to stay coherent.
func (c *Cache) Invalidate(addr uint64) {
	line := addr / c.lineBytes
	idx := line % uint64(len(c.tags))
	if c.valid[idx] && c.tags[idx] == line {
		c.valid[idx] = false
	}
}

// InvalidateStrided invalidates every line touched by n accesses starting at
// base and advancing step bytes each (a vector store's element sweep). The
// final cache state is exactly that of n individual Invalidate calls —
// invalidation is idempotent — but when the step is smaller than a line the
// touched lines form one contiguous range (consecutive elements are never a
// full line apart), so the sweep walks lines instead of elements: a
// unit-stride store of 128 elements over 32-byte lines does 32 probes, not
// 128.
func (c *Cache) InvalidateStrided(base uint64, step int64, n int) {
	if n <= 0 {
		return
	}
	if step > 0 && uint64(step) < c.lineBytes {
		first := base / c.lineBytes
		last := (base + uint64(step)*uint64(n-1)) / c.lineBytes
		if last-first+1 >= uint64(len(c.tags)) {
			// The range covers every index at least once, so walking it
			// would probe each entry repeatedly; sweep the (smaller) cache
			// instead and drop entries whose resident line falls inside.
			for idx := range c.tags {
				if c.valid[idx] && c.tags[idx] >= first && c.tags[idx] <= last {
					c.valid[idx] = false
				}
			}
			return
		}
		for line := first; line <= last; line++ {
			idx := line % uint64(len(c.tags))
			if c.valid[idx] && c.tags[idx] == line {
				c.valid[idx] = false
			}
		}
		return
	}
	// Wide or non-positive steps: element lines are disjoint (or wrap), so
	// per-element probing is already minimal.
	addr := base
	for i := 0; i < n; i++ {
		c.Invalidate(addr)
		addr += uint64(step)
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses = 0, 0
}
