// Package ideal computes the paper's lower bound on execution time (§5):
// ignoring all dependencies, every operation is attributed to one of the
// five machine resources — FU1, FU2, the memory port, the scalar processor
// and the scalar cache — and the busiest resource determines the minimum
// possible execution time.
package ideal

import (
	"decvec/internal/isa"
	"decvec/internal/trace"
)

// Bound holds the per-resource cycle totals and the resulting lower bound.
type Bound struct {
	// FU1 and FU2 are the balanced per-unit cycle loads: work only FU2 can
	// do (mul/div/sqrt) is pinned there, and FU1-capable work is split so
	// the maximum of the two is minimized.
	FU1, FU2 int64
	// MemPort is the address-bus occupancy: VL cycles per vector memory
	// reference, one per scalar reference (cache hits included — every
	// reference needs its address generated, but only misses and stores
	// reach memory; the paper's resource is the port, so we count bus
	// slots: scalar cache hits are excluded).
	MemPort int64
	// ScalarProc is one cycle per scalar instruction.
	ScalarProc int64
	// ScalarCache is one cycle per scalar memory access.
	ScalarCache int64
	// Cycles is the lower bound: the maximum of the five resources.
	Cycles int64
}

// Compute scans one pass of the trace and returns the bound.
//
// The memory-port estimate assumes every scalar load misses the scalar
// cache on first touch only; because the bound must stay below any
// simulated time, scalar loads are charged to the cache resource and only
// vector references and scalar stores are charged to the port. This keeps
// the bound conservative (never above the true minimum).
// declint:hotpath
func Compute(src trace.Source) Bound {
	var b Bound
	var fu2Only, fuAny int64
	// The common in-memory Slice source is scanned directly over its
	// instruction slab: no stream allocation, no interface call per
	// instruction. Any other Source streams.
	if sl, ok := src.(*trace.Slice); ok {
		for i := range sl.Insts {
			accumulate(&b, &fuAny, &fu2Only, &sl.Insts[i])
		}
	} else {
		st := src.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			accumulate(&b, &fuAny, &fu2Only, in)
		}
	}
	b.FU1, b.FU2 = balance(fuAny, fu2Only)
	b.Cycles = maxOf(b.FU1, b.FU2, b.MemPort, b.ScalarProc, b.ScalarCache)
	return b
}

// accumulate charges one instruction to its resources.
// declint:hotpath
func accumulate(b *Bound, fuAny, fu2Only *int64, in *isa.Inst) {
	switch in.Class {
	case isa.ClassVectorALU, isa.ClassReduce:
		if in.Op.FU1Capable() {
			*fuAny += int64(in.VL)
		} else {
			*fu2Only += int64(in.VL)
		}
	case isa.ClassVectorLoad, isa.ClassVectorStore, isa.ClassGather, isa.ClassScatter:
		b.MemPort += int64(in.VL)
	case isa.ClassScalarLoad:
		b.ScalarCache++
		b.ScalarProc++
	case isa.ClassScalarStore:
		b.ScalarCache++
		b.ScalarProc++
		b.MemPort++
	default: // declint:nonexhaustive — nop, scalar ALU, branch and vsetvl/vsetvs cost one scalar-processor slot each
		b.ScalarProc++
	}
}

// balance splits `any` cycles of FU1-capable work across the two units,
// FU2 already carrying `fu2Only` cycles, minimizing the maximum load.
func balance(any, fu2Only int64) (fu1, fu2 int64) {
	total := any + fu2Only
	fu2 = total / 2
	if fu2 < fu2Only {
		fu2 = fu2Only
	}
	return total - fu2, fu2
}

func maxOf(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
