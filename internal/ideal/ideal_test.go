package ideal

import (
	"testing"
	"testing/quick"

	"decvec/internal/isa"
	"decvec/internal/trace"
)

func mkTrace(insts ...isa.Inst) *trace.Slice {
	for i := range insts {
		insts[i].Seq = int64(i)
	}
	return &trace.Slice{TraceName: "t", Insts: insts}
}

func TestBalance(t *testing.T) {
	cases := []struct {
		any, fu2Only, wantFU1, wantFU2 int64
	}{
		{10, 0, 5, 5},
		{3, 10, 3, 10},
		{11, 1, 6, 6},
		{0, 0, 0, 0},
		{0, 7, 0, 7},
		{1, 0, 1, 0},
	}
	for _, c := range cases {
		fu1, fu2 := balance(c.any, c.fu2Only)
		if fu1+fu2 != c.any+c.fu2Only {
			t.Errorf("balance(%d,%d) loses work: %d+%d", c.any, c.fu2Only, fu1, fu2)
		}
		if fu1 != c.wantFU1 || fu2 != c.wantFU2 {
			t.Errorf("balance(%d,%d) = (%d,%d), want (%d,%d)", c.any, c.fu2Only, fu1, fu2, c.wantFU1, c.wantFU2)
		}
	}
}

func TestBalanceProperties_Quick(t *testing.T) {
	f := func(a, b uint16) bool {
		any, fu2Only := int64(a), int64(b)
		fu1, fu2 := balance(any, fu2Only)
		if fu1+fu2 != any+fu2Only || fu2 < fu2Only || fu1 < 0 {
			return false
		}
		// The max must be minimal: it cannot be below ceil(total/2) nor
		// below the pinned FU2 work.
		maxLoad := fu1
		if fu2 > maxLoad {
			maxLoad = fu2
		}
		lower := (any + fu2Only + 1) / 2
		if fu2Only > lower {
			lower = fu2Only
		}
		return maxLoad == lower
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeMemoryBound(t *testing.T) {
	// Three vector loads of 32 elements and one add of 32: the port (96)
	// dominates the balanced FU work (16/16).
	b := Compute(mkTrace(
		isa.Inst{Class: isa.ClassVectorLoad, Dst: isa.V(0), VL: 32, Stride: 1},
		isa.Inst{Class: isa.ClassVectorLoad, Dst: isa.V(1), VL: 32, Stride: 1},
		isa.Inst{Class: isa.ClassVectorLoad, Dst: isa.V(2), VL: 32, Stride: 1},
		isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpAdd, Dst: isa.V(3), Src1: isa.V(0), VL: 32},
	))
	if b.MemPort != 96 {
		t.Errorf("MemPort = %d", b.MemPort)
	}
	if b.FU1 != 16 || b.FU2 != 16 {
		t.Errorf("FU split = %d/%d", b.FU1, b.FU2)
	}
	if b.Cycles != 96 {
		t.Errorf("Cycles = %d", b.Cycles)
	}
}

func TestComputeFUBound(t *testing.T) {
	// Four muls (FU2-only) of 32 vs one 32-element load: FU2 = 128 wins.
	insts := []isa.Inst{
		{Class: isa.ClassVectorLoad, Dst: isa.V(0), VL: 32, Stride: 1},
	}
	for i := 0; i < 4; i++ {
		insts = append(insts, isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpMul, Dst: isa.V(1), Src1: isa.V(0), VL: 32})
	}
	b := Compute(mkTrace(insts...))
	if b.FU2 != 128 || b.FU1 != 0 {
		t.Errorf("FU = %d/%d", b.FU1, b.FU2)
	}
	if b.Cycles != 128 {
		t.Errorf("Cycles = %d", b.Cycles)
	}
}

func TestComputeScalarBound(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 50; i++ {
		insts = append(insts, isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(0)})
	}
	b := Compute(mkTrace(insts...))
	if b.ScalarProc != 50 || b.Cycles != 50 {
		t.Errorf("ScalarProc=%d Cycles=%d", b.ScalarProc, b.Cycles)
	}
}

func TestComputeScalarMemoryAccounting(t *testing.T) {
	b := Compute(mkTrace(
		isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(0), Base: 0x10},
		isa.Inst{Class: isa.ClassScalarStore, Dst: isa.S(0), Base: 0x18},
	))
	// Loads are charged to the cache; stores also occupy the port.
	if b.ScalarCache != 2 || b.MemPort != 1 || b.ScalarProc != 2 {
		t.Errorf("got %+v", b)
	}
}

func TestComputeCountsReduceAndGather(t *testing.T) {
	b := Compute(mkTrace(
		isa.Inst{Class: isa.ClassReduce, Op: isa.OpAdd, Dst: isa.S(0), Src1: isa.V(0), VL: 16},
		isa.Inst{Class: isa.ClassGather, Dst: isa.V(1), VL: 16, Stride: 1},
		isa.Inst{Class: isa.ClassScatter, Dst: isa.V(1), VL: 16, Stride: 1},
	))
	if b.MemPort != 32 {
		t.Errorf("MemPort = %d", b.MemPort)
	}
	if b.FU1 != 8 || b.FU2 != 8 {
		t.Errorf("reduce not balanced: %d/%d", b.FU1, b.FU2)
	}
}

func TestComputeEmpty(t *testing.T) {
	b := Compute(mkTrace())
	if b.Cycles != 0 {
		t.Errorf("Cycles = %d", b.Cycles)
	}
}
