package queue

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New[int]("bad", 0)
}

func TestPushPopVisibility(t *testing.T) {
	q := New[int]("q", 4)
	if !q.Push(10, 42) {
		t.Fatal("push failed")
	}
	// Not visible in the same cycle.
	if _, ok := q.Pop(10); ok {
		t.Fatal("entry visible at push cycle")
	}
	if q.CanPop(10) {
		t.Fatal("CanPop true at push cycle")
	}
	// Visible the next cycle.
	v, ok := q.Pop(11)
	if !ok || v != 42 {
		t.Fatalf("Pop = %v, %v", v, ok)
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestCapacityAndFull(t *testing.T) {
	q := New[int]("q", 2)
	if !q.Push(0, 1) || !q.Push(0, 2) {
		t.Fatal("pushes failed")
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Push(0, 3) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("Len=%d Cap=%d", q.Len(), q.Cap())
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New[int]("q", 8)
	for i := 0; i < 8; i++ {
		q.Push(int64(i), i)
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Pop(100)
		if !ok || v != i {
			t.Fatalf("pop %d: got %v, %v", i, v, ok)
		}
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	q := New[string]("q", 2)
	q.Push(0, "a")
	if v, ok := q.Peek(1); !ok || v != "a" {
		t.Fatalf("Peek = %q, %v", v, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed")
	}
}

func TestPeekAt(t *testing.T) {
	q := New[int]("q", 4)
	q.Push(0, 10)
	q.Push(0, 20)
	q.Push(5, 30) // visible only from cycle 6
	if v, ok := q.PeekAt(1, 0); !ok || v != 10 {
		t.Fatalf("PeekAt(1,0) = %v, %v", v, ok)
	}
	if v, ok := q.PeekAt(1, 1); !ok || v != 20 {
		t.Fatalf("PeekAt(1,1) = %v, %v", v, ok)
	}
	if _, ok := q.PeekAt(1, 2); ok {
		t.Fatal("entry pushed at 5 visible at 1")
	}
	if v, ok := q.PeekAt(6, 2); !ok || v != 30 {
		t.Fatalf("PeekAt(6,2) = %v, %v", v, ok)
	}
	if _, ok := q.PeekAt(6, 3); ok {
		t.Fatal("out-of-range index")
	}
	if _, ok := q.PeekAt(6, -1); ok {
		t.Fatal("negative index")
	}
}

func TestVisibleLen(t *testing.T) {
	q := New[int]("q", 4)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(3, 3)
	if got := q.VisibleLen(1); got != 2 {
		t.Fatalf("VisibleLen(1) = %d", got)
	}
	if got := q.VisibleLen(4); got != 3 {
		t.Fatalf("VisibleLen(4) = %d", got)
	}
	if got := q.VisibleLen(0); got != 0 {
		t.Fatalf("VisibleLen(0) = %d", got)
	}
}

func TestHeadMutation(t *testing.T) {
	q := New[int]("q", 2)
	q.Push(0, 5)
	h, ok := q.Head(1)
	if !ok {
		t.Fatal("no head")
	}
	*h = 9
	if v, _ := q.Pop(1); v != 9 {
		t.Fatalf("mutation lost: %d", v)
	}
}

func TestAllStopsAtInvisible(t *testing.T) {
	q := New[int]("q", 8)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(10, 3)
	var seen []int
	q.All(5, func(v *int) bool {
		seen = append(seen, *v)
		return true
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("seen = %v", seen)
	}
	// Early stop.
	seen = nil
	q.All(5, func(v *int) bool {
		seen = append(seen, *v)
		return false
	})
	if len(seen) != 1 {
		t.Fatalf("early stop failed: %v", seen)
	}
}

func TestStatsAndReset(t *testing.T) {
	q := New[int]("q", 3)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Pop(1)
	if q.Pushes() != 2 || q.Pops() != 1 || q.PeakLen() != 2 {
		t.Fatalf("stats: pushes=%d pops=%d peak=%d", q.Pushes(), q.Pops(), q.PeakLen())
	}
	q.Reset()
	if !q.Empty() || q.Pushes() != 0 || q.Pops() != 0 || q.PeakLen() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestString(t *testing.T) {
	q := New[int]("AVDQ", 4)
	q.Push(0, 1)
	if got := q.String(); got != "AVDQ[1/4]" {
		t.Fatalf("String = %q", got)
	}
	if q.Name() != "AVDQ" {
		t.Fatalf("Name = %q", q.Name())
	}
}

// Property: any interleaving of pushes and (always later) pops preserves
// FIFO order and never exceeds capacity.
func TestFIFOProperty_Quick(t *testing.T) {
	f := func(vals []uint8) bool {
		q := New[uint8]("q", 16)
		var pushed, popped []uint8
		now := int64(0)
		for _, v := range vals {
			now++
			if v%3 == 0 {
				if got, ok := q.Pop(now); ok {
					popped = append(popped, got)
				}
			} else if q.Push(now, v) {
				pushed = append(pushed, v)
			}
			if q.Len() > q.Cap() {
				return false
			}
		}
		// Drain the rest.
		now += 1
		for {
			got, ok := q.Pop(now)
			if !ok {
				break
			}
			popped = append(popped, got)
		}
		if len(pushed) != len(popped) {
			return false
		}
		for i := range pushed {
			if pushed[i] != popped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanLenAndFullCycles(t *testing.T) {
	q := New[int]("q", 2)
	// Empty cycles 0..9, then one entry for 10 cycles, then full for 5.
	q.Push(10, 1)
	q.Push(20, 2)
	q.Pop(25)
	q.Pop(25)
	// Occupancy integral: 0*10 + 1*10 + 2*5 = 20 over 25 cycles.
	if got := q.MeanLen(25); got != 20.0/25.0 {
		t.Errorf("MeanLen(25) = %v, want %v", got, 20.0/25.0)
	}
	if got := q.FullCycles(25); got != 5 {
		t.Errorf("FullCycles(25) = %d, want 5", got)
	}
	// Asking at a later time extends the (now empty) integral.
	if got := q.FullCycles(100); got != 5 {
		t.Errorf("FullCycles(100) = %d, want 5", got)
	}
	if got := q.MeanLen(100); got != 20.0/100.0 {
		t.Errorf("MeanLen(100) = %v, want %v", got, 20.0/100.0)
	}
}

func TestMeanLenEmptyQueue(t *testing.T) {
	q := New[int]("q", 2)
	if got := q.MeanLen(0); got != 0 {
		t.Errorf("MeanLen(0) = %v, want 0", got)
	}
	if got := q.FullCycles(50); got != 0 {
		t.Errorf("FullCycles = %v, want 0", got)
	}
}

type obsEvent struct {
	now    int64
	name   string
	push   bool
	newLen int
}

type captureObserver struct{ events []obsEvent }

func (c *captureObserver) QueueEvent(now int64, name string, push bool, newLen int) {
	c.events = append(c.events, obsEvent{now, name, push, newLen})
}

func TestObserverSeesPushesAndPops(t *testing.T) {
	q := New[int]("OBS", 4)
	var c captureObserver
	q.SetObserver(&c)
	q.Push(1, 10)
	q.Push(2, 20)
	q.Pop(5)
	want := []obsEvent{
		{1, "OBS", true, 1},
		{2, "OBS", true, 2},
		{5, "OBS", false, 1},
	}
	if len(c.events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(c.events), len(want), c.events)
	}
	for i, e := range c.events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	// Failed pushes and pops emit nothing.
	q2 := New[int]("OBS2", 2)
	var c2 captureObserver
	q2.SetObserver(&c2)
	q2.Push(6, 1)
	q2.Push(6, 2)
	if q2.Push(6, 3) { // full: fails
		t.Fatal("push into full queue succeeded")
	}
	if _, ok := q2.Pop(6); ok { // entries not yet visible
		t.Fatal("pop of invisible entry succeeded")
	}
	if len(c2.events) != 2 {
		t.Errorf("failed operations must not notify: %+v", c2.events)
	}
}

func TestResetClearsOccupancyStats(t *testing.T) {
	q := New[int]("q", 2)
	q.Push(1, 1)
	q.Push(2, 2)
	q.Pop(10)
	q.Reset()
	if q.MeanLen(100) != 0 || q.FullCycles(100) != 0 {
		t.Errorf("Reset must clear occupancy stats: mean=%v full=%d",
			q.MeanLen(100), q.FullCycles(100))
	}
}
