package queue

import "testing"

// TestOccupancyIntegralAcrossTimeJump checks the property the idle-skip fast
// path relies on: the occupancy statistics accumulate lazily from timestamped
// push/pop deltas, so a simulator jumping its clock forward over an idle span
// (no queue operations inside it) gets exactly the same MeanLen and
// FullCycles as one that ticks through every cycle.
func TestOccupancyIntegralAcrossTimeJump(t *testing.T) {
	build := func() *Q[int] {
		q := New[int]("TQ", 2)
		q.Push(0, 1) // occupancy 1 over [0, 5)
		q.Push(5, 2) // occupancy 2 (full) over [5, 105)
		return q
	}
	// ticked exercises the per-cycle path: touch the integral every cycle
	// through the public stats accessors.
	ticked := build()
	for c := int64(0); c <= 105; c++ {
		ticked.MeanLen(c)
	}
	jumped := build() // integral queried only once, after the jump
	if got, want := jumped.MeanLen(105), ticked.MeanLen(105); got != want {
		t.Fatalf("MeanLen after jump = %v, ticked = %v", got, want)
	}
	if got, want := jumped.FullCycles(105), ticked.FullCycles(105); got != want {
		t.Fatalf("FullCycles after jump = %d, ticked = %d", got, want)
	}
	if got, want := jumped.FullCycles(105), int64(100); got != want {
		t.Fatalf("FullCycles = %d, want %d (full over [5,105))", got, want)
	}
}
