// Package queue provides the bounded FIFO queues that connect the
// processors of the decoupled vector architecture.
//
// Queues carry cycle-visibility semantics: an entry pushed at cycle c
// becomes visible to the consumer at cycle c+1. This models the one-cycle
// transfer through an architectural queue and, just as importantly, makes
// the simulation independent of the order in which processors are stepped
// within a cycle.
package queue

import "fmt"

// entry wraps a queued value with the cycle at which it becomes visible.
type entry[T any] struct {
	val     T
	visible int64
}

// Observer receives a callback after every successful push or pop, with the
// queue's new length. Observers must be strictly passive: they are invoked
// on the simulation hot path and must not touch the queue.
type Observer interface {
	QueueEvent(now int64, name string, push bool, newLen int)
}

// Q is a bounded FIFO of T with cycle visibility, backed by a fixed ring
// buffer (hardware queues do not reallocate). The zero value is not usable;
// create queues with New.
type Q[T any] struct {
	name string
	ring []entry[T]
	head int
	n    int

	pushes int64
	pops   int64
	// peakLen is the maximum occupancy ever observed.
	peakLen int

	// Occupancy integral: lenCycles accumulates len*dt and fullCycles the
	// cycles spent completely full, both up to lastT. Updated incrementally
	// on every push/pop, so occupancy statistics cost O(1) per operation
	// instead of a per-cycle sweep.
	lenCycles  int64
	fullCycles int64
	lastT      int64

	obs Observer

	// wakeWord/wake are the queue's wake-scheduler wiring: after a
	// successful push or pop the applicable wake masks are OR-ed into the
	// word. The owning machine points every queue at its packed dirty word
	// (low half = current-cycle dirty bits, high half = next-cycle bits, one
	// per unit) with masks naming the units whose decisions read this queue,
	// so a mutation wakes exactly those units at this cycle and the next —
	// the next-cycle half covers the one-cycle visibility delay. The wiring
	// is structural (pointers into the machine itself), so Init and Reset
	// preserve it across arena reuse; see SetWake.
	wakeWord *uint32
	wake     Wake
}

// Wake describes which wake-scheduler bits a queue mutation raises — the
// dirty-bit refinement that keeps a sleeping unit asleep through mutations
// that provably cannot flip its decision:
//
//   - PushAlways / PopAlways fire on every push / pop: for units whose
//     predicates scan the queue's whole visible contents (a disambiguation
//     or bypass scan), any insertion or removal can change the answer.
//   - PushBelow fires only when the pre-push length is below BelowN: a unit
//     that reads just the first BelowN entries (1 for a head consumer)
//     cannot be affected by a push landing deeper, because entries ahead of
//     it can only leave through that unit's own pops — which are its own
//     actions. The length used is the raw occupancy, a lower bound on when
//     the consumer could ever see the new entry, so firing is conservative.
//   - PopFull fires only when the pre-pop length equals the capacity: a
//     producer blocks on a full queue, so only the pop that breaks fullness
//     can unblock it (the generalized blocked-dispatch gate).
type Wake struct {
	PushAlways uint32
	PushBelow  uint32
	BelowN     int
	PopAlways  uint32
	PopFull    uint32
}

// New returns an empty queue with the given name (for diagnostics) and
// capacity. Capacity must be positive.
func New[T any](name string, capacity int) *Q[T] {
	q := new(Q[T])
	q.Init(name, capacity)
	return q
}

// Init (re)initializes q in place to an empty queue with the given name and
// capacity, reusing the existing ring when its capacity already matches. It
// is the embed-by-value counterpart of New: simulators that hold queues as
// struct fields call Init from their constructors and reset paths so a
// machine's queues live inside the machine allocation instead of behind a
// pointer each. Capacity must be positive.
func (q *Q[T]) Init(name string, capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: non-positive capacity %d for %s", capacity, name))
	}
	if len(q.ring) != capacity {
		q.ring = make([]entry[T], capacity)
	}
	q.name = name
	q.obs = nil
	q.Reset()
}

// Name returns the queue's diagnostic name.
func (q *Q[T]) Name() string { return q.name }

// SetObserver installs the push/pop observer (nil to disable).
func (q *Q[T]) SetObserver(o Observer) { q.obs = o }

// SetWake wires the queue to a wake scheduler: successful pushes and pops
// OR the applicable masks of w into *word (nil word disables). Unlike the
// observer, the wiring survives Init and Reset — it is part of the owning
// machine's structure, established once at construction, not per-run state.
func (q *Q[T]) SetWake(word *uint32, w Wake) {
	q.wakeWord = word
	q.wake = w
}

// account brings the occupancy integral up to cycle now. Callers pass
// monotonically non-decreasing cycles.
// declint:hotpath
func (q *Q[T]) account(now int64) {
	if dt := now - q.lastT; dt > 0 {
		q.lenCycles += int64(q.n) * dt
		if q.n == len(q.ring) {
			q.fullCycles += dt
		}
		q.lastT = now
	}
}

// MeanLen returns the time-averaged occupancy over [0, now).
func (q *Q[T]) MeanLen(now int64) float64 {
	if now <= 0 {
		return 0
	}
	q.account(now)
	return float64(q.lenCycles) / float64(now)
}

// FullCycles returns the number of cycles in [0, now) the queue spent
// completely full.
func (q *Q[T]) FullCycles(now int64) int64 {
	q.account(now)
	return q.fullCycles
}

// Cap returns the queue capacity in entries.
func (q *Q[T]) Cap() int { return len(q.ring) }

// Len returns the current number of entries, visible or not.
func (q *Q[T]) Len() int { return q.n }

// Full reports whether a push would fail.
func (q *Q[T]) Full() bool { return q.n >= len(q.ring) }

// Empty reports whether the queue holds no entries at all.
func (q *Q[T]) Empty() bool { return q.n == 0 }

// at returns a pointer to the i-th entry (0 = head) without bounds checks
// beyond the ring arithmetic; callers validate i against q.n. head and i are
// both below the capacity, so one conditional subtraction replaces the
// modulo — this sits on the simulators' innermost loop.
func (q *Q[T]) at(i int) *entry[T] {
	j := q.head + i
	if j >= len(q.ring) {
		j -= len(q.ring)
	}
	return &q.ring[j]
}

// Push appends v, visible from cycle now+1. It reports whether the push
// succeeded; it fails (returning false) when the queue is full.
// declint:hotpath
func (q *Q[T]) Push(now int64, v T) bool {
	if q.Full() {
		return false
	}
	q.account(now)
	*q.at(q.n) = entry[T]{val: v, visible: now + 1}
	q.n++
	q.pushes++
	if q.n > q.peakLen {
		q.peakLen = q.n
	}
	if q.wakeWord != nil {
		mask := q.wake.PushAlways
		if q.n-1 < q.wake.BelowN {
			mask |= q.wake.PushBelow
		}
		*q.wakeWord |= mask
	}
	if q.obs != nil {
		q.obs.QueueEvent(now, q.name, true, q.n)
	}
	return true
}

// CanPop reports whether the head entry exists and is visible at cycle now.
// The body is a self-contained leaf (no at() call) so it inlines into the
// simulators' per-cycle probes.
func (q *Q[T]) CanPop(now int64) bool {
	return q.n > 0 && q.ring[q.head].visible <= now
}

// Peek returns the head entry without removing it. ok is false when the
// queue is empty or the head is not yet visible at cycle now. Leaf body so
// the call inlines on the simulators' innermost loops.
// declint:hotpath
func (q *Q[T]) Peek(now int64) (v T, ok bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	e := &q.ring[q.head]
	if e.visible > now {
		var zero T
		return zero, false
	}
	return e.val, true
}

// PeekAt returns the i-th entry (0 = head) if it exists and is visible.
// declint:hotpath
func (q *Q[T]) PeekAt(now int64, i int) (v T, ok bool) {
	if i < 0 || i >= q.n || q.at(i).visible > now {
		var zero T
		return zero, false
	}
	return q.at(i).val, true
}

// VisibleLen returns how many entries are visible at cycle now. Because
// visibility is monotone in push order, the visible entries are always a
// prefix of the queue.
func (q *Q[T]) VisibleLen(now int64) int {
	for i := 0; i < q.n; i++ {
		if q.at(i).visible > now {
			return i
		}
	}
	return q.n
}

// AllVisible reports whether every queued entry is visible at cycle now.
// Visibility is monotone in push order, so only the youngest entry needs
// checking; an empty queue is trivially all-visible.
func (q *Q[T]) AllVisible(now int64) bool {
	return q.n == 0 || q.at(q.n-1).visible <= now
}

// Pop removes and returns the head entry. ok is false when the queue is
// empty or the head is not yet visible at cycle now.
// declint:hotpath
func (q *Q[T]) Pop(now int64) (v T, ok bool) {
	if !q.CanPop(now) {
		var zero T
		return zero, false
	}
	q.account(now)
	e := q.at(0)
	v = e.val
	var zero T
	e.val = zero // release references for the garbage collector
	if q.head++; q.head >= len(q.ring) {
		q.head = 0
	}
	q.n--
	q.pops++
	if q.wakeWord != nil {
		mask := q.wake.PopAlways
		if q.n+1 == len(q.ring) {
			mask |= q.wake.PopFull
		}
		*q.wakeWord |= mask
	}
	if q.obs != nil {
		q.obs.QueueEvent(now, q.name, false, q.n)
	}
	return v, true
}

// Head returns a pointer to the head entry's value for in-place mutation
// (used by multi-cycle operations that update queue-resident state). ok is
// false when the queue is empty or the head is not visible at cycle now.
// Every simulator unit probes its instruction queue's head every cycle, so
// the body is a self-contained leaf that inlines at those call sites.
// declint:hotpath
func (q *Q[T]) Head(now int64) (v *T, ok bool) {
	if q.n == 0 {
		return nil, false
	}
	e := &q.ring[q.head]
	if e.visible > now {
		return nil, false
	}
	return &e.val, true
}

// All calls fn for every entry visible at cycle now, oldest first, stopping
// early if fn returns false.
// declint:hotpath
func (q *Q[T]) All(now int64, fn func(v *T) bool) {
	for i := 0; i < q.n; i++ {
		e := q.at(i)
		if e.visible > now {
			return
		}
		if !fn(&e.val) {
			return
		}
	}
}

// Pushes returns the lifetime number of successful pushes.
func (q *Q[T]) Pushes() int64 { return q.pushes }

// Pops returns the lifetime number of pops.
func (q *Q[T]) Pops() int64 { return q.pops }

// PeakLen returns the maximum occupancy ever observed.
func (q *Q[T]) PeakLen() int { return q.peakLen }

// Reset empties the queue and clears its statistics.
func (q *Q[T]) Reset() {
	var zero entry[T]
	for i := range q.ring {
		q.ring[i] = zero
	}
	q.head, q.n = 0, 0
	q.pushes, q.pops = 0, 0
	q.peakLen = 0
	q.lenCycles, q.fullCycles, q.lastT = 0, 0, 0
}

// String summarizes the queue state for diagnostics.
func (q *Q[T]) String() string {
	return fmt.Sprintf("%s[%d/%d]", q.name, q.n, len(q.ring))
}
