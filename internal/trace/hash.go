package trace

import (
	"crypto/sha256"
	"fmt"
)

// Hash returns the SHA-256 of the trace's canonical binary encoding (the
// Write format). Because the encoding is deterministic, equal traces always
// hash equal; the persistent simulation cache uses this as the trace
// component of its content-addressed keys.
func Hash(s *Slice) ([sha256.Size]byte, error) {
	h := sha256.New()
	if err := Write(h, s); err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("trace: hashing: %w", err)
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}
