package trace

import (
	"bytes"
	"strings"
	"testing"

	"decvec/internal/isa"
)

func TestBinaryRoundTrip(t *testing.T) {
	src := &Slice{TraceName: "roundtrip", Insts: sampleInsts()}
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceName != src.TraceName || got.Len() != src.Len() {
		t.Fatalf("header mismatch: %q/%d", got.TraceName, got.Len())
	}
	for i := range src.Insts {
		if got.Insts[i] != src.Insts[i] {
			t.Errorf("instruction %d: %s != %s", i, got.Insts[i].String(), src.Insts[i].String())
		}
	}
}

func TestBinaryRoundTripLarge(t *testing.T) {
	// A realistic trace with negative strides, large addresses, gathers
	// and every class.
	var insts []isa.Inst
	base := uint64(0xdeadbeef000)
	for i := 0; i < 500; i++ {
		switch i % 5 {
		case 0:
			insts = append(insts, isa.Inst{Class: isa.ClassVectorLoad, Dst: isa.V(i % 8), Src1: isa.A(1), Base: base + uint64(i)*512, VL: 1 + i%128, Stride: int64(1 + i%7)})
		case 1:
			insts = append(insts, isa.Inst{Class: isa.ClassVectorStore, Dst: isa.V(i % 8), Base: base - uint64(i)*64, VL: 1 + i%128, Stride: -int64(1 + i%3)})
		case 2:
			insts = append(insts, isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpMul, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.S(2), VL: 1 + i%128})
		case 3:
			insts = append(insts, isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(i % 8), Base: base + uint64(i), Spill: i%2 == 0})
		default:
			insts = append(insts, isa.Inst{Class: isa.ClassBranch, Op: isa.OpCmp, Src1: isa.A(0), BBEnd: true})
		}
	}
	for i := range insts {
		insts[i].Seq = int64(i)
	}
	src := &Slice{TraceName: "large", Insts: insts}
	if err := Validate(src); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	// Loop-structured traces should compress well below the in-memory size.
	perInst := float64(buf.Len()) / float64(len(insts))
	if perInst > 16 {
		t.Errorf("encoding too large: %.1f bytes/instruction", perInst)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Insts {
		if got.Insts[i] != src.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE!\nxxxxx")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	src := &Slice{TraceName: "trunc", Insts: sampleInsts()}
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) - 1, len(data) / 2, len(binaryMagic) + 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryRejectsCorruptInstruction(t *testing.T) {
	src := &Slice{TraceName: "x", Insts: sampleInsts()}
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Smash the class byte of the first instruction into garbage that
	// fails Validate (vector load with VL intact but broken registers).
	idx := len(binaryMagic) + 1 + len("x") + 1 // name-len, name, count
	data[idx+3] = 0xff                         // destination register byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corrupt register byte accepted")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	src := &Slice{TraceName: "empty"}
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.TraceName != "empty" {
		t.Errorf("got %q/%d", got.TraceName, got.Len())
	}
}
