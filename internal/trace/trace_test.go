package trace

import (
	"testing"

	"decvec/internal/isa"
)

func sampleInsts() []isa.Inst {
	return []isa.Inst{
		{Seq: 0, Class: isa.ClassVSetVL, VL: 8},
		{Seq: 1, Class: isa.ClassVectorLoad, Dst: isa.V(0), Base: 0x1000, VL: 8, Stride: 1, Spill: true},
		{Seq: 2, Class: isa.ClassVectorALU, Op: isa.OpAdd, Dst: isa.V(1), Src1: isa.V(0), VL: 8},
		{Seq: 3, Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(0)},
		{Seq: 4, Class: isa.ClassBranch, Op: isa.OpCmp, Src1: isa.S(0), BBEnd: true},
	}
}

func TestSliceStream(t *testing.T) {
	s := &Slice{TraceName: "t", Insts: sampleInsts()}
	if s.Name() != "t" || s.Len() != 5 {
		t.Fatalf("Name=%q Len=%d", s.Name(), s.Len())
	}
	st := s.Stream()
	var seqs []int64
	for {
		in, ok := st.Next()
		if !ok {
			break
		}
		seqs = append(seqs, in.Seq)
	}
	if len(seqs) != 5 {
		t.Fatalf("got %d instructions", len(seqs))
	}
	for i, seq := range seqs {
		if seq != int64(i) {
			t.Errorf("position %d has seq %d", i, seq)
		}
	}
	// A second pass replays identically.
	st2 := s.Stream()
	in, ok := st2.Next()
	if !ok || in.Seq != 0 {
		t.Error("stream not replayable")
	}
}

func TestMaterialize(t *testing.T) {
	src := &Slice{TraceName: "src", Insts: sampleInsts()}
	dup := Materialize("copy", src.Stream())
	if dup.Name() != "copy" || dup.Len() != src.Len() {
		t.Fatalf("materialize: %q %d", dup.Name(), dup.Len())
	}
	for i := range dup.Insts {
		if dup.Insts[i] != src.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestCollect(t *testing.T) {
	s := &Slice{TraceName: "t", Insts: sampleInsts()}
	st := Collect(s)
	if st.ScalarInsts != 3 { // vsetvl, salu, branch
		t.Errorf("ScalarInsts = %d", st.ScalarInsts)
	}
	if st.VectorInsts != 2 || st.VectorOps != 16 {
		t.Errorf("V insts/ops = %d/%d", st.VectorInsts, st.VectorOps)
	}
	if st.MemInsts != 1 || st.SpillMemOps != 1 {
		t.Errorf("mem/spill = %d/%d", st.MemInsts, st.SpillMemOps)
	}
	if st.BasicBlocks != 1 {
		t.Errorf("bbs = %d", st.BasicBlocks)
	}
	if st.AvgVL() != 8 {
		t.Errorf("AvgVL = %v", st.AvgVL())
	}
	want := 16.0 / 19.0
	if got := st.Vectorization(); got != want {
		t.Errorf("Vectorization = %v want %v", got, want)
	}
	if st.SpillFraction() != 1 {
		t.Errorf("SpillFraction = %v", st.SpillFraction())
	}
	if st.VLHist[8] != 2 {
		t.Errorf("VLHist[8] = %d", st.VLHist[8])
	}
}

func TestStatsZeroValues(t *testing.T) {
	var st Stats
	if st.Vectorization() != 0 || st.AvgVL() != 0 || st.SpillFraction() != 0 {
		t.Error("zero stats should not divide by zero")
	}
	if st.String() == "" {
		t.Error("String should render")
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	s := &Slice{TraceName: "t", Insts: sampleInsts()}
	if err := Validate(s); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestValidateRejectsBadSeq(t *testing.T) {
	insts := sampleInsts()
	insts[2].Seq = 99
	s := &Slice{TraceName: "t", Insts: insts}
	if err := Validate(s); err == nil {
		t.Error("expected sequence error")
	}
}

func TestValidateRejectsBadInst(t *testing.T) {
	insts := sampleInsts()
	insts[1].VL = 0 // invalid vector load
	s := &Slice{TraceName: "t", Insts: insts}
	if err := Validate(s); err == nil {
		t.Error("expected instruction error")
	}
}
