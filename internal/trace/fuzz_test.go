package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the binary trace parser: arbitrary input must either
// parse into a valid trace or return an error — never panic, never return
// instructions that fail validation.
func FuzzRead(f *testing.F) {
	// Seed with a real encoding and a few mutations.
	var buf bytes.Buffer
	if err := Write(&buf, &Slice{TraceName: "seed", Insts: sampleInsts()}); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(binaryMagic))
	f.Add([]byte("DVTR1\n\x03abc\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that parses must be a valid trace.
		if err := Validate(s); err != nil {
			t.Fatalf("Read accepted an invalid trace: %v", err)
		}
	})
}

// FuzzRoundTrip checks that every valid single instruction survives
// encode/decode exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(1), uint8(16), int64(2), uint64(0x1000), false)
	f.Fuzz(func(t *testing.T, class, op, vl uint8, stride int64, base uint64, spill bool) {
		src := &Slice{TraceName: "fz", Insts: sampleInsts()}
		// Mutate the vector load with fuzzed fields, keeping it valid.
		in := &src.Insts[1]
		in.VL = int(vl%128) + 1
		in.Stride = stride
		in.Base = base
		in.Spill = spill
		var buf bytes.Buffer
		if err := Write(&buf, src); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		for i := range src.Insts {
			if got.Insts[i] != src.Insts[i] {
				t.Fatalf("instruction %d changed in round trip", i)
			}
		}
	})
}
