// Package trace defines the dynamic instruction trace abstraction consumed
// by the simulators, playing the role of the Dixie traces the paper used:
// a stream of instructions annotated with vector lengths, vector strides
// and memory reference addresses.
package trace

import (
	"fmt"
	"sync/atomic"

	"decvec/internal/isa"
)

// Stream produces instructions in dynamic program order. Next returns the
// next instruction, or ok=false at the end of the trace. The returned
// pointer stays valid — and the instruction immutable — for the lifetime of
// the pass, so simulators may hold it in their in-flight structures instead
// of copying the Inst through every queue.
type Stream interface {
	Next() (in *isa.Inst, ok bool)
}

// Source is a replayable trace: each call to Stream starts a fresh pass
// over the same dynamic instruction sequence. Simulators run a Source many
// times under different configurations.
type Source interface {
	// Name identifies the trace (e.g. the benchmark program name).
	Name() string
	// Stream starts a new pass over the trace.
	Stream() Stream
}

// Slice is an in-memory trace. It implements Source.
type Slice struct {
	TraceName string
	Insts     []isa.Inst

	// aux caches one consumer-computed annotation derived from the
	// (immutable) instruction sequence — for example a simulator's
	// predecoded dispatch plan — so it is computed once per trace rather
	// than once per run. See Aux/SetAux.
	aux atomic.Value
}

// Aux returns the annotation published by SetAux, or nil.
func (s *Slice) Aux() any { return s.aux.Load() }

// SetAux publishes an annotation derived from the instruction sequence.
// Because Insts is immutable for the lifetime of the trace, concurrent
// writers necessarily derive equivalent values, so losing a publication
// race is harmless. All stores must use one concrete type.
func (s *Slice) SetAux(v any) { s.aux.Store(v) }

// Name implements Source.
func (s *Slice) Name() string { return s.TraceName }

// Stream implements Source.
func (s *Slice) Stream() Stream { return &SliceStream{insts: s.Insts} }

// Len returns the number of dynamic instructions.
func (s *Slice) Len() int { return len(s.Insts) }

// SliceStream is one pass over a Slice. Pooled simulator machines embed it
// by value and Reset it per run, so starting a pass costs no allocation.
type SliceStream struct {
	insts []isa.Inst
	pos   int
}

// Reset points the stream at the start of s.
func (st *SliceStream) Reset(s *Slice) {
	st.insts = s.Insts
	st.pos = 0
}

// Next implements Stream.
// declint:hotpath
func (st *SliceStream) Next() (*isa.Inst, bool) {
	if st.pos >= len(st.insts) {
		return nil, false
	}
	in := &st.insts[st.pos]
	st.pos++
	return in, true
}

// Materialize drains a stream into a Slice with the given name.
func Materialize(name string, st Stream) *Slice {
	s := &Slice{TraceName: name}
	for {
		in, ok := st.Next()
		if !ok {
			break
		}
		s.Insts = append(s.Insts, *in)
	}
	return s
}

// Stats are the Table 1 columns for one trace.
type Stats struct {
	Name        string
	BasicBlocks int64 // #bbs
	ScalarInsts int64 // #insns S
	VectorInsts int64 // #insns V
	VectorOps   int64 // #ops V
	MemInsts    int64
	SpillMemOps int64
	// VLHist is the distribution of vector lengths used.
	VLHist [isa.MaxVL + 1]int64
}

// Vectorization is the degree of vectorization: vector ops over total ops.
func (s *Stats) Vectorization() float64 {
	total := float64(s.ScalarInsts + s.VectorOps)
	if total == 0 {
		return 0
	}
	return float64(s.VectorOps) / total
}

// AvgVL is vector operations per vector instruction.
func (s *Stats) AvgVL() float64 {
	if s.VectorInsts == 0 {
		return 0
	}
	return float64(s.VectorOps) / float64(s.VectorInsts)
}

// SpillFraction is the fraction of memory instructions marked as spill
// traffic by the generator.
func (s *Stats) SpillFraction() float64 {
	if s.MemInsts == 0 {
		return 0
	}
	return float64(s.SpillMemOps) / float64(s.MemInsts)
}

// String formats the stats as one Table 1 row.
func (s *Stats) String() string {
	return fmt.Sprintf("%-8s bbs=%d S=%d V=%d Vops=%d vect=%.1f%% avgVL=%.0f",
		s.Name, s.BasicBlocks, s.ScalarInsts, s.VectorInsts, s.VectorOps,
		100*s.Vectorization(), s.AvgVL())
}

// Collect computes trace statistics by draining one pass of the source.
func Collect(src Source) *Stats {
	st := src.Stream()
	stats := &Stats{Name: src.Name()}
	for {
		in, ok := st.Next()
		if !ok {
			break
		}
		if in.IsVector() {
			stats.VectorInsts++
			stats.VectorOps += int64(in.VL)
			stats.VLHist[in.VL]++
		} else {
			stats.ScalarInsts++
		}
		if in.Class.IsMemory() {
			stats.MemInsts++
			if in.Spill {
				stats.SpillMemOps++
			}
		}
		if in.BBEnd {
			stats.BasicBlocks++
		}
	}
	return stats
}

// Validate checks every instruction of one pass and the sequence-number
// invariant (dense, ascending from 0). It returns the first problem found.
func Validate(src Source) error {
	st := src.Stream()
	var want int64
	for {
		in, ok := st.Next()
		if !ok {
			return nil
		}
		if in.Seq != want {
			return fmt.Errorf("trace %s: sequence %d where %d expected", src.Name(), in.Seq, want)
		}
		want++
		if err := in.Validate(); err != nil {
			return fmt.Errorf("trace %s: %w", src.Name(), err)
		}
	}
}
