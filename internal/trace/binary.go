package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"decvec/internal/isa"
)

// Binary trace serialization — the role Dixie's trace files played in the
// paper's methodology: traces are generated once, written to disk, and
// replayed into the simulators any number of times.
//
// Format: a magic header, the trace name, the instruction count, then one
// varint-encoded record per instruction. Sequence numbers are implicit
// (dense from zero), base addresses and strides are delta-encoded against
// the previous memory reference, and VL values are encoded directly —
// loop-structured traces compress to a few bytes per instruction.

// binaryMagic identifies the file format and its version.
const binaryMagic = "DVTR1\n"

// flag bits of the per-instruction header byte that follows class/opcode.
const (
	flagSpill = 1 << 0
	flagBBEnd = 1 << 1
)

// Write serializes the trace to w.
func Write(w io.Writer, s *Slice) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(s.TraceName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(s.TraceName); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(s.Insts))); err != nil {
		return err
	}
	var prevBase uint64
	var prevStride int64
	for i := range s.Insts {
		in := &s.Insts[i]
		flags := byte(0)
		if in.Spill {
			flags |= flagSpill
		}
		if in.BBEnd {
			flags |= flagBBEnd
		}
		if err := bw.WriteByte(byte(in.Class)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(in.Op)); err != nil {
			return err
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		for _, r := range [...]isa.Reg{in.Dst, in.Src1, in.Src2} {
			if err := bw.WriteByte(byte(r.Kind)<<4 | r.Idx); err != nil {
				return err
			}
		}
		if err := putUvarint(uint64(in.VL)); err != nil {
			return err
		}
		if err := putVarint(in.Stride - prevStride); err != nil {
			return err
		}
		prevStride = in.Stride
		if err := putVarint(int64(in.Base) - int64(prevBase)); err != nil {
			return err
		}
		prevBase = in.Base
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Slice, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: count: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible instruction count %d", count)
	}
	// Cap the preallocation: a hostile header must not allocate gigabytes
	// before the (then truncated) body fails to parse.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	s := &Slice{TraceName: string(name), Insts: make([]isa.Inst, 0, prealloc)}
	var prevBase uint64
	var prevStride int64
	for i := uint64(0); i < count; i++ {
		var hdr [6]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: instruction %d header: %w", i, err)
		}
		in := isa.Inst{
			Seq:   int64(i),
			Class: isa.Class(hdr[0]),
			Op:    isa.Opcode(hdr[1]),
			Spill: hdr[2]&flagSpill != 0,
			BBEnd: hdr[2]&flagBBEnd != 0,
		}
		regs := [3]*isa.Reg{&in.Dst, &in.Src1, &in.Src2}
		for j, b := range hdr[3:6] {
			regs[j].Kind = isa.RegKind(b >> 4)
			regs[j].Idx = b & 0x0f
		}
		vl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: instruction %d VL: %w", i, err)
		}
		if vl > isa.MaxVL {
			return nil, fmt.Errorf("trace: instruction %d VL %d out of range", i, vl)
		}
		in.VL = int(vl)
		dStride, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: instruction %d stride: %w", i, err)
		}
		in.Stride = prevStride + dStride
		prevStride = in.Stride
		dBase, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: instruction %d base: %w", i, err)
		}
		in.Base = uint64(int64(prevBase) + dBase)
		prevBase = in.Base
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("trace: instruction %d: %w", i, err)
		}
		s.Insts = append(s.Insts, in)
	}
	return s, nil
}
