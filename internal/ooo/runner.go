package ooo

import (
	"fmt"

	"decvec/internal/mem"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// Runner is a reusable OOO simulation arena: the issue window, the renamed
// value chunks, the rename tables and the memory system kept alive across
// runs. A zero Runner is ready to use; every run resets the machine in place
// (see the Reset contract in internal/sim/arena.go). A Runner is not safe
// for concurrent use; pool idle Runners in a sim.RunPool.
type Runner struct {
	m  machine
	ss trace.SliceStream
}

// NewRunner returns an empty Runner.
func NewRunner() *Runner { return &Runner{} }

// Run simulates the trace under cfg on the pooled machine and returns a
// freshly allocated result (safe to retain; never aliases Runner state).
func (r *Runner) Run(src trace.Source, cfg Config) (*sim.Result, error) {
	res := new(sim.Result)
	if err := r.RunInto(res, src, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto simulates the trace under cfg, overwriting every field of res.
func (r *Runner) RunInto(res *sim.Result, src trace.Source, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m := &r.m
	m.reset(cfg)
	if sl, ok := src.(*trace.Slice); ok {
		r.ss.Reset(sl)
		m.stream = &r.ss
	} else {
		m.stream = src.Stream()
	}
	if err := m.run(); err != nil {
		return fmt.Errorf("ooo: on %s: %w", src.Name(), err)
	}
	*res = sim.Result{
		Arch:              "OOO",
		Config:            cfg.Config,
		Cycles:            m.now,
		States:            m.states,
		Counts:            m.counts,
		Traffic:           m.traffic,
		ScalarCacheHits:   m.cache.Hits,
		ScalarCacheMisses: m.cache.Misses,
	}
	return nil
}

// reset restores the machine to power-on state for a new run under cfg,
// reusing the window ring, value chunks and memory system when their
// geometry still matches. The observable behaviour after reset is
// bit-identical to a fresh machine, which the arena-reuse equivalence suite
// pins. Stale window-ring entries past wLen need no zeroing: fetch
// overwrites a recycled slot wholesale before any read.
func (m *machine) reset(cfg Config) {
	m.cfg = cfg
	ports := cfg.MemPorts
	if ports < 1 {
		ports = 1
	}
	if m.bus == nil || m.bus.Ports() != ports {
		m.bus = mem.NewBus(cfg.MemPorts)
	} else {
		m.bus.Reset()
	}
	if m.cache == nil || m.cache.Lines() != cfg.ScalarCacheLines || m.cache.LineBytes() != cfg.ScalarCacheLineBytes {
		m.cache = mem.NewCache(cfg.ScalarCacheLines, cfg.ScalarCacheLineBytes)
	} else {
		m.cache.Reset()
	}
	m.now = 0
	m.stream = nil
	m.streamDone = false
	m.pending = nil
	m.hasPending = false
	if len(m.win) != cfg.Window {
		m.win = make([]wentry, cfg.Window)
	}
	m.wHead, m.wLen = 0, 0
	m.arena.reset()
	for i := range m.vRename {
		m.vRename[i] = &zeroValue
	}
	for i := range m.sValues {
		m.sValues[i] = &zeroValue
	}
	for i := range m.aValues {
		m.aValues[i] = &zeroValue
	}
	m.freePhys = cfg.PhysRegs
	m.fu1Busy, m.fu2Busy = 0, 0
	m.states = sim.StateStats{}
	m.counts = sim.Counts{}
	m.traffic = sim.MemTraffic{}
	m.maxDone, m.lastProgress = 0, 0

	// Wake wheel: every unit due at cycle 0 with no dirty bits —
	// bit-identical to a fresh machine.
	m.wake = [numUnits]int64{}
	m.dirty = 0
	m.progressCount = 0
}
