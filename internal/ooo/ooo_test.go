package ooo

import (
	"testing"

	"decvec/internal/isa"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/trace"
	"decvec/internal/tracegen"
)

func testCfg(latency int64) Config {
	cfg := DefaultConfig(latency)
	cfg.AddDepth = 2
	cfg.MulDepth = 3
	cfg.QMovDepth = 1
	return cfg
}

func mkTrace(insts ...isa.Inst) *trace.Slice {
	for i := range insts {
		insts[i].Seq = int64(i)
	}
	return &trace.Slice{TraceName: "test", Insts: insts}
}

func vld(dst isa.Reg, base uint64, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorLoad, Dst: dst, Base: base, VL: vl, Stride: 1}
}

func vadd(dst, s1, s2 isa.Reg, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpAdd, Dst: dst, Src1: s1, Src2: s2, VL: vl}
}

func vst(data isa.Reg, base uint64, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorStore, Dst: data, Base: base, VL: vl, Stride: 1}
}

func run(t *testing.T, cfg Config, insts ...isa.Inst) *sim.Result {
	t.Helper()
	r, err := Run(mkTrace(insts...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidate(t *testing.T) {
	cfg := testCfg(10)
	cfg.Window = 0
	if _, err := Run(mkTrace(), cfg); err == nil {
		t.Error("window 0 accepted")
	}
	cfg = testCfg(10)
	cfg.PhysRegs = 4
	if _, err := Run(mkTrace(), cfg); err == nil {
		t.Error("too few physical registers accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	r := run(t, testCfg(10))
	if r.Cycles != 0 {
		t.Errorf("Cycles = %d", r.Cycles)
	}
}

func TestHoistsIndependentLoadPastUse(t *testing.T) {
	// ld V0; add V1<-V0 (waits); ld V2 — the out-of-order machine issues
	// the second load under the stalled add; the reference one cannot.
	mk := func() []isa.Inst {
		return []isa.Inst{
			vld(isa.V(0), 0x1000, 8),
			vadd(isa.V(1), isa.V(0), isa.None, 8),
			vld(isa.V(2), 0x2000, 8),
		}
	}
	o := run(t, testCfg(50), mk()...)
	rr, err := ref.Run(mkTrace(mk()...), testCfg(50).Config)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cycles >= rr.Cycles {
		t.Errorf("OOO (%d) should beat REF (%d) by hoisting the load", o.Cycles, rr.Cycles)
	}
	// The hoisted load overlaps the first's latency: the gap is about L.
	if rr.Cycles-o.Cycles < 30 {
		t.Errorf("hoisting saved only %d cycles", rr.Cycles-o.Cycles)
	}
}

func TestRenamingRemovesWAW(t *testing.T) {
	// Two independent adds to the same architectural register: the
	// renamed machine runs them concurrently on both units.
	o := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.None, 8),
		vadd(isa.V(0), isa.V(2), isa.None, 8))
	// Issue at 0 and 1; completions 10 and 11.
	if o.Cycles != 11 {
		t.Errorf("Cycles = %d, want 11 (WAW should be renamed away)", o.Cycles)
	}
}

func TestMemoryOrderingLoadAfterOverlappingStore(t *testing.T) {
	// The load overlaps the older store and must not pass it.
	o := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.None, 8),
		vst(isa.V(0), 0x1000, 8),
		vld(isa.V(2), 0x1000, 8),
		vadd(isa.V(3), isa.V(2), isa.None, 8))
	// Store chains off the add at 1, bus [1,9); load earliest 9; data at
	// 9+10+8 = 27; final add completes 27+2+8 = 37.
	if o.Cycles != 37 {
		t.Errorf("Cycles = %d, want 37", o.Cycles)
	}
}

func TestLoadsMayPassDisjointStore(t *testing.T) {
	// A load at a disjoint address may issue before an older store whose
	// data is not ready yet.
	mk := func(loadBase uint64) []isa.Inst {
		return []isa.Inst{
			vld(isa.V(4), 0x9000, 8),              // keeps V0's producer busy
			vadd(isa.V(0), isa.V(4), isa.None, 8), // store data, waits on load
			vst(isa.V(0), 0x1000, 8),
			vld(isa.V(2), loadBase, 8),
		}
	}
	disjoint := run(t, testCfg(50), mk(0x5000)...)
	overlapping := run(t, testCfg(50), mk(0x1000)...)
	if disjoint.Cycles >= overlapping.Cycles {
		t.Errorf("disjoint load (%d) should finish before overlapping one (%d)",
			disjoint.Cycles, overlapping.Cycles)
	}
}

func TestWindowScaling(t *testing.T) {
	// More window never hurts; for a burst of dependent pairs it helps.
	var insts []isa.Inst
	for i := 0; i < 8; i++ {
		insts = append(insts,
			vld(isa.V(i%4), 0x1000+uint64(i)*0x200, 8),
			vadd(isa.V(4+i%4), isa.V(i%4), isa.None, 8))
	}
	var prev int64 = 1 << 62
	for _, w := range []int{1, 4, 16, 64} {
		cfg := testCfg(60)
		cfg.Window = w
		r, err := Run(mkTrace(insts...), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles > prev {
			t.Errorf("window %d slower than smaller window: %d > %d", w, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

func TestPhysRegPressure(t *testing.T) {
	// With only 8 physical registers (= architectural) renaming cannot
	// run ahead; with 32 it can. Independent load bursts show it.
	var insts []isa.Inst
	for i := 0; i < 12; i++ {
		insts = append(insts, vld(isa.V(i%8), 0x1000+uint64(i)*0x200, 8))
	}
	small := testCfg(60)
	small.PhysRegs = 8
	big := testCfg(60)
	big.PhysRegs = 64
	a := run(t, small, insts...)
	b := run(t, big, insts...)
	if a.Cycles < b.Cycles {
		t.Errorf("fewer physical registers cannot be faster: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestStateAccounting(t *testing.T) {
	r := run(t, testCfg(30),
		vld(isa.V(0), 0x1000, 16),
		vadd(isa.V(1), isa.V(0), isa.None, 16),
		vst(isa.V(1), 0x2000, 16))
	if r.States.Total() != r.Cycles {
		t.Errorf("state total %d != cycles %d", r.States.Total(), r.Cycles)
	}
}

func TestRandomTracesTerminateAndConserve(t *testing.T) {
	for seed := int64(300); seed < 330; seed++ {
		tr := tracegen.Random(seed, 300).Trace()
		cfg := testCfg(1 + (seed*11)%100)
		if seed%3 == 0 {
			cfg.Window = 4
		}
		r, err := Run(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var storeElems int64
		st := tr.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			if in.Class.IsStore() {
				storeElems += in.Ops()
			}
		}
		if r.Traffic.StoreElems != storeElems {
			t.Errorf("seed %d: store traffic %d != %d", seed, r.Traffic.StoreElems, storeElems)
		}
		if r.States.Total() != r.Cycles {
			t.Errorf("seed %d: state accounting off", seed)
		}
		// Determinism.
		again, err := Run(tr, cfg)
		if err != nil || again.Cycles != r.Cycles {
			t.Errorf("seed %d: not deterministic", seed)
		}
	}
}

func TestScalarChainsExecute(t *testing.T) {
	r := run(t, testCfg(20),
		isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(0), Base: 0x100},
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(1), Src1: isa.S(0)},
		isa.Inst{Class: isa.ClassScalarStore, Dst: isa.S(1), Base: 0x200},
		isa.Inst{Class: isa.ClassBranch, Op: isa.OpCmp, Src1: isa.S(1), BBEnd: true})
	if r.Counts.ScalarInsts != 4 || r.Counts.BasicBlocks != 1 {
		t.Errorf("counts: %+v", r.Counts)
	}
	if r.Traffic.StoreElems != 1 {
		t.Errorf("traffic: %+v", r.Traffic)
	}
}
