// Package ooo implements an out-of-order issue, register-renaming variant
// of the reference vector architecture — the comparison the paper names as
// its future work (§8: "we are now currently working in the comparison of
// decoupling with techniques such as out-of-order execution and register
// renaming").
//
// The machine keeps the reference datapath — two pipelined vector units
// (FU1 restricted), one memory port, flexible FU-to-FU and FU-to-store
// chaining, no chaining after vector loads — but replaces the in-order
// single-issue dispatch with a window: instructions enter in order (one per
// cycle), rename their destinations to a physical register pool (removing
// WAW and WAR hazards entirely), and issue oldest-first as soon as their
// operands, functional unit, memory port and memory ordering allow. Memory
// ordering uses the same range-based disambiguation as the DVA: a memory
// instruction may not issue before every older, overlapping memory
// instruction has issued.
package ooo

import (
	"fmt"

	"decvec/internal/disamb"
	"decvec/internal/isa"
	"decvec/internal/mem"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// Config extends the shared simulator configuration with the out-of-order
// parameters.
type Config struct {
	sim.Config
	// Window is the number of in-flight instructions the issue logic can
	// choose from. The reference architecture is the degenerate Window=1.
	Window int
	// PhysRegs is the size of the vector physical register pool renaming
	// draws from (the architectural file has 8). Fetch stalls when no
	// physical register is free.
	PhysRegs int
}

// DefaultConfig returns an out-of-order configuration with a 16-entry
// window and 32 physical vector registers at the given latency.
func DefaultConfig(latency int64) Config {
	return Config{Config: sim.DefaultConfig(latency), Window: 16, PhysRegs: 32}
}

// Validate extends the base validation.
func (c *Config) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Window < 1 {
		return fmt.Errorf("ooo: window %d < 1", c.Window)
	}
	if c.PhysRegs < isa.NumVRegs {
		return fmt.Errorf("ooo: %d physical registers < %d architectural", c.PhysRegs, isa.NumVRegs)
	}
	return nil
}

// value describes a renamed result: when it starts being produced, when it
// completes, and whether consumers may chain.
type value struct {
	start     int64
	ready     int64
	chainable bool
	valid     bool
}

// wentry is one window entry.
type wentry struct {
	in     *isa.Inst
	issued bool
	// src values are snapshot at rename time (pointing at physical
	// values), so later writers of the same architectural register can
	// never be confused with them.
	src1, src2, data *value
	// dst is the physical value this instruction produces (nil for stores
	// and branches).
	dst *value
	// rng is the memory range for memory ordering (memory classes only).
	rng disamb.Range
	// mem and load cache the instruction's class tests for the per-cycle
	// memory-ordering scan.
	mem, load bool
	// phys is the physical register index held by dst (for release).
	phys int
}

type machine struct {
	cfg   Config
	bus   *mem.Bus
	cache *mem.Cache
	now   int64

	stream     trace.Stream
	streamDone bool
	pending    *isa.Inst
	hasPending bool

	// win is the issue window as a fixed ring buffer: the wLen live
	// entries, oldest first, are win[wHead], win[wHead+1], ... modulo
	// len(win). Entries are stored by value and recycled in place, so the
	// steady-state dispatch loop never allocates a window entry.
	win   []wentry
	wHead int
	wLen  int

	// arena hands out renamed values. Values outlive their window entry
	// (source snapshots and the rename tables keep them), so they cannot be
	// recycled with the ring; the arena amortizes their allocation instead.
	arena valueArena

	// Rename state.
	vRename  [isa.NumVRegs]*value
	sValues  [isa.NumSRegs]*value
	aValues  [isa.NumARegs]*value
	freePhys int

	fu1Busy, fu2Busy int64

	states  sim.StateStats
	counts  sim.Counts
	traffic sim.MemTraffic

	maxDone      int64
	lastProgress int64

	// Wake wheel (see sched.go): per-unit wake times, the dirty byte the
	// tick wrapper raises along the fetch→issue→retire→fetch action edges,
	// and the per-cycle action counter tick uses to detect that a step
	// function did something.
	wake          [numUnits]int64
	dirty         uint8
	progressCount int64
}

var zeroValue = value{valid: true, chainable: false}

// valueArena allocates values in chunks so the dispatch loop performs one
// heap allocation per chunk instead of one per renamed destination. Within a
// run spent values are never returned — a value's lifetime is data-dependent
// (source snapshots keep it past retirement) — but once a run has completed
// nothing references into the chunks, so a pooled machine recycles all of
// them with reset instead of leaving them to the garbage collector.
type valueArena struct {
	chunks [][]value
	// The next value handed out is chunks[ci][vi].
	ci, vi int
}

const valueChunk = 1024

func (a *valueArena) alloc() *value {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]value, valueChunk))
	}
	v := &a.chunks[a.ci][a.vi]
	if a.vi++; a.vi == valueChunk {
		a.ci++
		a.vi = 0
	}
	return v
}

// reset recycles every chunk for the next run, zeroing exactly the slots the
// previous run used so a recycled value is indistinguishable from a fresh
// one. Only safe between runs, when nothing references into the chunks.
func (a *valueArena) reset() {
	var zero value
	for i := 0; i < len(a.chunks); i++ {
		if i > a.ci {
			break
		}
		n := valueChunk
		if i == a.ci {
			n = a.vi
		}
		c := a.chunks[i]
		for j := 0; j < n; j++ {
			c[j] = zero
		}
	}
	a.ci, a.vi = 0, 0
}

// Run simulates the trace on the out-of-order vector architecture.
func Run(src trace.Source, cfg Config) (*sim.Result, error) {
	var r Runner
	res := new(sim.Result)
	if err := r.RunInto(res, src, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// declint:hotpath
func (m *machine) run() error {
	window := 64*(m.cfg.MemLatency+isa.MaxVL+m.cfg.DivDepth) + 4096
	fast := !m.cfg.SlowTick
	// idleSteps counts progress-free loop iterations; with the idle-skip
	// fast path active every such iteration spans at least one cycle, so the
	// per-cycle deadlock window stays a valid (conservative) bound.
	var idleSteps int64
	for {
		if fast {
			m.tick(oFetch)
			m.tick(oIssue)
			m.tick(oRetire)
		} else {
			m.fetch()
			m.issueOne()
			m.retire()
		}
		if m.finished() {
			return nil
		}
		m.sample()
		progressed := m.lastProgress == m.now
		m.now++
		if progressed {
			idleSteps = 0
			continue
		}
		idleSteps++
		if idleSteps >= window {
			return fmt.Errorf("deadlock at cycle %d (window %d entries)", m.now, m.wLen)
		}
		// Idle skip: on a progress-free cycle every dirty bit is clear (bits
		// are only raised by acting steps, and each unit's tick consumed any
		// bit left from the previous cycle), so the machine repeats the cycle
		// verbatim until the earliest wake time — jump there, accounting the
		// constant (FU2, FU1, LD) state in bulk. Unlike the old horizon scan
		// this is a three-entry minimum, not a window rescan, so it runs on
		// the first idle cycle. SlowTick keeps the plain per-cycle loop as
		// the equivalence suite's reference mode.
		if fast {
			if h := m.nextWake(); h > m.now {
				m.states.ObserveN(sim.MakeState(m.now < m.fu2Busy, m.now < m.fu1Busy, m.bus.BusyAt(m.now)), h-m.now)
				m.now = h
			}
		}
	}
}

func (m *machine) progress() {
	m.lastProgress = m.now
	m.progressCount++
}

func (m *machine) finished() bool {
	if !m.streamDone || m.hasPending || m.wLen > 0 {
		return false
	}
	return m.now >= m.maxDone
}

func (m *machine) sample() {
	m.states.Observe(sim.MakeState(m.now < m.fu2Busy, m.now < m.fu1Busy, m.bus.BusyAt(m.now)))
}

func (m *machine) done(c int64) {
	if c > m.maxDone {
		m.maxDone = c
	}
}

// winAt returns the i-th oldest live window entry (0 <= i < m.wLen).
func (m *machine) winAt(i int) *wentry {
	return &m.win[(m.wHead+i)%len(m.win)]
}

// fetch renames and inserts at most one instruction per cycle.
func (m *machine) fetch() {
	if !m.hasPending {
		in, ok := m.stream.Next()
		if !ok {
			m.streamDone = true
			return
		}
		m.pending = in
		m.hasPending = true
		m.count(m.pending)
	}
	if m.wLen >= m.cfg.Window {
		return
	}
	in := m.pending
	needsPhys := !in.Class.IsStore() && in.Dst.Kind == isa.RegV
	if needsPhys && m.freePhys == 0 {
		return // no physical register: fetch stalls
	}
	// Recycle the ring slot in place; the previous occupant retired long ago.
	e := m.winAt(m.wLen)
	*e = wentry{in: in}
	// Source snapshot (renaming: later redefinitions cannot disturb it).
	e.src1 = m.lookup(in.Src1)
	e.src2 = m.lookup(in.Src2)
	if in.Class.IsStore() || in.Class == isa.ClassBranch {
		e.data = m.lookup(in.Dst)
	}
	if in.Class.IsMemory() {
		e.rng = disamb.RangeOf(in)
		e.mem = true
		e.load = in.Class.IsLoad()
	}
	// Destination rename.
	if needsPhys {
		m.freePhys--
		e.dst = m.arena.alloc()
		m.vRename[in.Dst.Idx] = e.dst
	} else if !in.Class.IsStore() && in.Dst.Kind != isa.RegNone {
		e.dst = m.arena.alloc()
		switch in.Dst.Kind {
		case isa.RegS:
			m.sValues[in.Dst.Idx] = e.dst
		case isa.RegA:
			m.aValues[in.Dst.Idx] = e.dst
		default: // declint:nonexhaustive — RegNone is excluded by the enclosing if; RegV takes the needsPhys rename path
		}
	}
	m.wLen++
	m.hasPending = false
	m.progress()
}

func (m *machine) lookup(r isa.Reg) *value {
	switch r.Kind {
	case isa.RegV:
		return m.vRename[r.Idx]
	case isa.RegS:
		return m.sValues[r.Idx]
	case isa.RegA:
		return m.aValues[r.Idx]
	default: // declint:nonexhaustive — RegNone operands read as an always-ready zero value
		return &zeroValue
	}
}

// srcReady reports whether a source value can begin to be consumed now.
func (m *machine) srcReady(v *value) bool {
	if v == nil {
		return true
	}
	if !v.valid {
		return false // producer has not issued yet
	}
	if v.chainable {
		return v.start+m.cfg.ChainDelay <= m.now
	}
	return v.ready <= m.now
}

// memOrderOK reports whether every older overlapping memory instruction has
// issued.
func (m *machine) memOrderOK(idx int) bool {
	e := m.winAt(idx)
	eLoad := e.load
	for j := 0; j < idx; j++ {
		o := m.winAt(j)
		if o.issued || !o.mem {
			continue
		}
		// Two loads may reorder freely; anything involving a store may not
		// when the ranges overlap.
		if eLoad && o.load {
			continue
		}
		if e.rng.Overlaps(o.rng) {
			return false
		}
	}
	return true
}

// issueOne issues the oldest ready instruction, if any (one per cycle, the
// same issue bandwidth as the reference architecture).
func (m *machine) issueOne() {
	for idx := 0; idx < m.wLen; idx++ {
		e := m.winAt(idx)
		if e.issued {
			continue
		}
		if m.tryIssue(idx, e) {
			e.issued = true
			m.progress()
			return
		}
	}
}

func (m *machine) tryIssue(idx int, e *wentry) bool {
	in := e.in
	if !m.srcReady(e.src1) || !m.srcReady(e.src2) || !m.srcReady(e.data) {
		return false
	}
	vl := int64(in.VL)
	switch in.Class {
	case isa.ClassNop, isa.ClassVSetVL, isa.ClassVSetVS, isa.ClassBranch:
		m.done(m.now + 1)
		return true

	case isa.ClassScalarALU:
		if e.dst != nil {
			*e.dst = value{start: m.now, ready: m.now + 1, valid: true}
		}
		m.done(m.now + 1)
		return true

	case isa.ClassScalarLoad:
		if !m.memOrderOK(idx) {
			return false
		}
		hit := m.cache.WouldHit(in.Base)
		if !hit && !m.bus.FreeAt(m.now) {
			return false
		}
		m.cache.Lookup(in.Base)
		ready := m.now + 1
		if !hit {
			m.bus.Reserve(m.now, 1)
			m.traffic.LoadElems++
			ready = m.now + 1 + m.cfg.AccessLatency(in.Base, in.Seq)
		}
		if e.dst != nil {
			*e.dst = value{start: m.now, ready: ready, valid: true}
		}
		m.done(ready)
		return true

	case isa.ClassScalarStore:
		if !m.memOrderOK(idx) || !m.bus.FreeAt(m.now) {
			return false
		}
		m.bus.Reserve(m.now, 1)
		m.traffic.StoreElems++
		m.cache.Store(in.Base)
		m.done(m.now + 1)
		return true

	case isa.ClassVectorLoad, isa.ClassGather:
		if !m.memOrderOK(idx) || !m.bus.FreeAt(m.now) {
			return false
		}
		m.bus.Reserve(m.now, vl)
		m.traffic.LoadElems += vl
		*e.dst = value{start: m.now, ready: m.now + m.cfg.AccessLatency(in.Base, in.Seq) + vl, chainable: false, valid: true}
		m.done(e.dst.ready)
		return true

	case isa.ClassVectorStore, isa.ClassScatter:
		if !m.memOrderOK(idx) || !m.bus.FreeAt(m.now) {
			return false
		}
		m.bus.Reserve(m.now, vl)
		m.traffic.StoreElems += vl
		m.invalidateRange(in)
		m.done(m.now + vl)
		return true

	case isa.ClassVectorALU, isa.ClassReduce:
		fu1 := in.Op.FU1Capable() && m.fu1Busy <= m.now
		if !fu1 && m.fu2Busy > m.now {
			return false
		}
		if fu1 {
			m.fu1Busy = m.now + vl
		} else {
			m.fu2Busy = m.now + vl
		}
		if e.dst != nil {
			*e.dst = value{start: m.now, ready: m.now + m.cfg.Depth(in.Op) + vl, chainable: true, valid: true}
			m.done(e.dst.ready)
		}
		m.done(m.now + vl)
		return true

	default:
		panic(fmt.Sprintf("ooo: unhandled class in %s", in))
	}
}

func (m *machine) invalidateRange(in *isa.Inst) {
	if in.Class == isa.ClassScatter {
		return
	}
	m.cache.InvalidateStrided(in.Base, in.Stride*isa.ElemSize, in.VL)
}

// retire removes completed instructions from the head of the window,
// releasing their physical registers. Retirement is in order, so a
// physical register is freed only when its instruction and everything
// older have completed.
func (m *machine) retire() {
	for m.wLen > 0 {
		e := m.winAt(0)
		if !e.issued {
			return
		}
		if e.dst != nil && (!e.dst.valid || e.dst.ready > m.now) {
			return
		}
		if e.dst != nil && e.in.Dst.Kind == isa.RegV {
			m.freePhys++
		}
		m.wHead = (m.wHead + 1) % len(m.win)
		m.wLen--
		m.progress()
	}
}

func (m *machine) count(in *isa.Inst) {
	if in.IsVector() {
		m.counts.VectorInsts++
		m.counts.VectorOps += int64(in.VL)
	} else {
		m.counts.ScalarInsts++
	}
	if in.Class.IsMemory() {
		m.counts.MemInsts++
		if in.Spill {
			m.counts.SpillMemOps++
		}
	}
	if in.BBEnd {
		m.counts.BasicBlocks++
	}
}
