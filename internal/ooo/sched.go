package ooo

// This file is the out-of-order core's instance of the per-unit wake
// scheduler (see internal/dva/sched.go for the full contract). The machine
// has three units — fetch/rename, issue, retire — coupled through the
// window ring instead of architectural queues, so dirty bits are raised
// directly by the tick wrapper from the action graph rather than by queue
// hooks: a fetch inserts an entry the issue scan must see (same cycle — the
// window has no visibility delay), an issue flips the flags and value
// timestamps retirement and younger issues read (same cycle), and a
// retirement frees the window slot and physical register fetch is blocked
// on (next cycle — fetch's slot has already run, so the bit survives to the
// following tick). The OOO core records no stall events, so a sleeping unit
// replays nothing; only the stepping decisions matter, and those follow the
// same rule as the DVA: waking early is safe, every predicate is
// "timestamp <= now" over state that only the owning unit rewrites, and the
// bus and functional units only ever extend their busy spans.

// Unit indices of the wake wheel; the within-cycle order is fetch, issue,
// retire, matching the SlowTick reference loop.
const (
	oFetch = iota
	oIssue
	oRetire
	numUnits
)

// infCycle is the "never" wake time, matching the sentinel the horizon scan
// used so deadlocked machines run the window out with identical arithmetic.
const infCycle = int64(1)<<62 - 1

// tick runs unit u's slot of the current cycle: step it when due or dirty,
// raise the dirty bits of the units its action feeds, and put it back to
// sleep at the earliest future timestamp it reads otherwise.
// declint:hotpath
func (m *machine) tick(u int) {
	if m.dirty&(1<<u) == 0 && m.now < m.wake[u] {
		return
	}
	wasDirty := m.dirty&(1<<u) != 0
	m.dirty &^= 1 << u
	p0 := m.progressCount
	switch u {
	case oFetch:
		m.fetch()
	case oIssue:
		m.issueOne()
	case oRetire:
		m.retire()
	default:
		panic("ooo: unknown scheduler unit")
	}
	if m.progressCount != p0 {
		m.wake[u] = m.now + 1
		switch u {
		case oFetch:
			m.dirty |= 1 << oIssue
		case oIssue:
			m.dirty |= 1 << oRetire
		case oRetire:
			m.dirty |= 1 << oFetch
		default:
			panic("ooo: unknown scheduler unit")
		}
		return
	}
	if wasDirty {
		// Dirty-triggered stall: mid-burst, a predicate scan would be
		// wasted — stay due (early waking is safe) and scan at the first
		// clean stall instead.
		m.wake[u] = m.now + 1
		return
	}
	m.wake[u] = m.unitWake(u)
}

// unitWake computes unit u's wake time after a step that did not act — the
// per-unit partition of the old horizon() scan.
// declint:hotpath
func (m *machine) unitWake(u int) int64 {
	switch u {
	case oFetch:
		// Fetch waits only on a window slot or a physical register, both
		// freed by retirement — a dirty-bit site, not a timestamp.
		return infCycle
	case oIssue:
		return m.wakeIssue()
	case oRetire:
		return m.wakeRetire()
	default:
		panic("ooo: unknown scheduler unit")
	}
}

// lowerFuture folds candidate timestamp t into the running minimum h,
// counting only strictly-future cycles.
func lowerFuture(h, now, t int64) int64 {
	if t > now && t < h {
		return t
	}
	return h
}

// lowerValue folds a renamed value's wake points into h: its completion
// and, for chainable producers, its chain-start point. Values whose
// producers have not issued carry no timestamp — they wake only through an
// issue, which raises the dirty bit instead.
func (m *machine) lowerValue(h int64, v *value) int64 {
	if v != nil && v.valid {
		h = lowerFuture(h, m.now, v.ready)
		if v.chainable {
			h = lowerFuture(h, m.now, v.start+m.cfg.ChainDelay)
		}
	}
	return h
}

// wakeIssue collects the issue logic's timestamp set: the functional units,
// the bus, and every unissued window entry's source-value snapshot. Memory
// ordering, source validity and cache state move only through issues, which
// are self-actions.
// declint:hotpath
func (m *machine) wakeIssue() int64 {
	now := m.now
	h := infCycle
	h = lowerFuture(h, now, m.fu1Busy)
	h = lowerFuture(h, now, m.fu2Busy)
	h = lowerFuture(h, now, m.bus.FreeCycle())
	for i := 0; i < m.wLen; i++ {
		e := m.winAt(i)
		if e.issued {
			continue
		}
		h = m.lowerValue(h, e.src1)
		h = m.lowerValue(h, e.src2)
		h = m.lowerValue(h, e.data)
	}
	return h
}

// wakeRetire collects retirement's one timestamp: the head entry's result
// completion. An unissued head wakes through issue's dirty bit.
// declint:hotpath
func (m *machine) wakeRetire() int64 {
	if m.wLen == 0 {
		return infCycle
	}
	e := m.winAt(0)
	if !e.issued || e.dst == nil || !e.dst.valid {
		return infCycle
	}
	return lowerFuture(infCycle, m.now, e.dst.ready)
}

// nextWake returns the idle-skip target: the earliest wake time across the
// wheel, floored by the sampling and termination boundaries — the
// functional-unit and bus-port releases (the (FU2, FU1, LD) state must be
// constant over a bulk-accounted span) and maxDone (the drained machine
// finishes exactly there).
// declint:hotpath
func (m *machine) nextWake() int64 {
	h := m.wake[oFetch]
	if m.wake[oIssue] < h {
		h = m.wake[oIssue]
	}
	if m.wake[oRetire] < h {
		h = m.wake[oRetire]
	}
	now := m.now
	h = lowerFuture(h, now, m.fu1Busy)
	h = lowerFuture(h, now, m.fu2Busy)
	h = lowerFuture(h, now, m.bus.FreeCycle())
	h = lowerFuture(h, now, m.maxDone)
	return h
}
