package sim

import (
	"fmt"
	"strings"
)

// State encodes the occupation of the three vector resources the paper's §3
// analysis tracks: FU2, FU1 and the memory port (LD). It is a 3-bit mask.
type State uint8

// Bit positions inside State.
const (
	StateLD  State = 1 << 0
	StateFU1 State = 1 << 1
	StateFU2 State = 1 << 2
	// NumStates is the number of distinct states (the 8 bars of Figure 1).
	NumStates = 8
)

// MakeState builds a State from the three busy flags.
func MakeState(fu2, fu1, ld bool) State {
	var s State
	if fu2 {
		s |= StateFU2
	}
	if fu1 {
		s |= StateFU1
	}
	if ld {
		s |= StateLD
	}
	return s
}

// String renders the state as the paper's 3-tuple, e.g. "<FU2, , LD>".
func (s State) String() string {
	part := func(on bool, name string) string {
		if on {
			return name
		}
		return ""
	}
	return fmt.Sprintf("<%s,%s,%s>",
		part(s&StateFU2 != 0, "FU2"),
		part(s&StateFU1 != 0, "FU1"),
		part(s&StateLD != 0, "LD"))
}

// StateStats accumulates, per state, the number of cycles spent in it.
type StateStats struct {
	Cycles [NumStates]int64
}

// Observe adds one cycle in the given state.
// declint:hotpath
func (st *StateStats) Observe(s State) { st.Cycles[s]++ }

// ObserveN adds n cycles in the given state — the bulk form of Observe used
// by the idle-skip fast path, which accounts a whole skipped span at once.
// ObserveN(s, n) is exactly equivalent to n repeated Observe(s) calls; n <= 0
// is a no-op.
// declint:hotpath
func (st *StateStats) ObserveN(s State, n int64) {
	if n <= 0 {
		return
	}
	st.Cycles[s] += n
}

// Total returns the total number of observed cycles.
func (st *StateStats) Total() int64 {
	var t int64
	for _, c := range st.Cycles {
		t += c
	}
	return t
}

// Idle returns the cycles spent in state < , , > — all three units idle.
func (st *StateStats) Idle() int64 { return st.Cycles[0] }

// LDIdle returns the cycles in the four states where the memory port is
// idle; the paper's §3 argues these are the cycles decoupling can reclaim.
func (st *StateStats) LDIdle() int64 {
	var t int64
	for s := State(0); s < NumStates; s++ {
		if s&StateLD == 0 {
			t += st.Cycles[s]
		}
	}
	return t
}

// PeakFP returns the cycles in the two peak floating-point states
// (<FU2,FU1,LD> and <FU2,FU1, >).
func (st *StateStats) PeakFP() int64 {
	return st.Cycles[StateFU2|StateFU1] + st.Cycles[StateFU2|StateFU1|StateLD]
}

// Fraction returns the fraction of cycles spent in state s, or 0 when no
// cycles were observed.
func (st *StateStats) Fraction(s State) float64 {
	t := st.Total()
	if t == 0 {
		return 0
	}
	return float64(st.Cycles[s]) / float64(t)
}

// String summarizes the breakdown, largest states first omitted for
// stability: fixed state order 0..7.
func (st *StateStats) String() string {
	var b strings.Builder
	for s := State(0); s < NumStates; s++ {
		if s > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", s, st.Cycles[s])
	}
	return b.String()
}

// Histogram counts observations of small non-negative integers, clamping
// anything beyond its size into the last bucket. It backs the Figure 6
// busy-slot distributions.
type Histogram struct {
	Buckets []int64
	// Clamped counts observations that exceeded the last bucket.
	Clamped int64
}

// NewHistogram returns a histogram with buckets 0..max.
func NewHistogram(max int) *Histogram {
	if max < 0 {
		panic("sim: negative histogram size")
	}
	return &Histogram{Buckets: make([]int64, max+1)}
}

// Observe adds one observation of value v (v < 0 panics).
// declint:hotpath
func (h *Histogram) Observe(v int) {
	if v < 0 {
		panic("sim: negative histogram observation")
	}
	if v >= len(h.Buckets) {
		h.Clamped++
		v = len(h.Buckets) - 1
	}
	h.Buckets[v]++
}

// ObserveN adds n observations of value v — the bulk form of Observe used by
// the idle-skip fast path (a skipped span repeats one occupancy for its whole
// length). ObserveN(v, n) is exactly equivalent to n repeated Observe(v)
// calls; n <= 0 is a no-op, v < 0 panics.
// declint:hotpath
func (h *Histogram) ObserveN(v int, n int64) {
	if v < 0 {
		panic("sim: negative histogram observation")
	}
	if n <= 0 {
		return
	}
	if v >= len(h.Buckets) {
		h.Clamped += n
		v = len(h.Buckets) - 1
	}
	h.Buckets[v] += n
}

// CloneInto copies h into dst and returns it, reusing dst's storage when the
// bucket counts match (allocating otherwise, including dst == nil). Pooled
// machines use it to hand a caller an independent snapshot of a histogram
// the machine itself will keep mutating on its next run.
func (h *Histogram) CloneInto(dst *Histogram) *Histogram {
	if dst == nil || len(dst.Buckets) != len(h.Buckets) {
		dst = &Histogram{Buckets: make([]int64, len(h.Buckets))}
	}
	copy(dst.Buckets, h.Buckets)
	dst.Clamped = h.Clamped
	return dst
}

// Reset clears every bucket, keeping the bucket storage for reuse.
func (h *Histogram) Reset() {
	for i := range h.Buckets {
		h.Buckets[i] = 0
	}
	h.Clamped = 0
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Buckets {
		t += c
	}
	return t
}

// Max returns the largest value ever observed (clamped to the last bucket),
// or -1 when empty.
func (h *Histogram) Max() int {
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if h.Buckets[i] > 0 {
			return i
		}
	}
	return -1
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var sum int64
	for v, c := range h.Buckets {
		sum += int64(v) * c
	}
	return float64(sum) / float64(t)
}

// MemTraffic accumulates memory-port traffic in elements, split by kind.
// The §7 bypass saves LoadElems traffic for every bypassed load.
type MemTraffic struct {
	LoadElems  int64 // elements moved memory -> processor
	StoreElems int64 // elements moved processor -> memory
}

// Total returns the total element traffic.
func (t MemTraffic) Total() int64 { return t.LoadElems + t.StoreElems }

// Counts tallies the dynamic instruction mix of a run.
type Counts struct {
	ScalarInsts int64 // scalar instructions (incl. scalar memory, branches)
	VectorInsts int64 // vector instructions
	VectorOps   int64 // operations performed by vector instructions
	BasicBlocks int64 // basic blocks executed
	SpillMemOps int64 // memory instructions marked as spill traffic
	MemInsts    int64 // all memory-accessing instructions
}

// Vectorization returns the paper's degree of vectorization: vector
// operations over total operations.
func (c Counts) Vectorization() float64 {
	total := float64(c.ScalarInsts + c.VectorOps)
	if total == 0 {
		return 0
	}
	return float64(c.VectorOps) / total
}

// AvgVL returns the average vector length used by vector instructions.
func (c Counts) AvgVL() float64 {
	if c.VectorInsts == 0 {
		return 0
	}
	return float64(c.VectorOps) / float64(c.VectorInsts)
}

// Result is the outcome of one simulation run.
type Result struct {
	Arch   string // "REF", "DVA" or "BYP"
	Config Config

	// Cycles is the total execution time.
	Cycles int64
	// States is the per-cycle (FU2, FU1, LD) breakdown.
	States StateStats
	// Counts is the dynamic instruction mix that was executed.
	Counts Counts
	// Traffic is the memory-port traffic.
	Traffic MemTraffic

	// AVDQBusy is the per-cycle busy-slot histogram of the vector load data
	// queue (DVA only; nil for REF).
	AVDQBusy *Histogram
	// VADQBusy is the per-cycle busy-slot histogram of the vector store
	// data queue (DVA only; nil for REF).
	VADQBusy *Histogram

	// Bypasses counts loads serviced by the VADQ->AVDQ bypass.
	Bypasses int64
	// BypassedElems is the element traffic those loads avoided.
	BypassedElems int64
	// Flushes counts loads that forced a store-queue drain because of an
	// overlap hazard.
	Flushes int64
	// ScalarCacheHits / Misses count scalar memory accesses by outcome.
	ScalarCacheHits   int64
	ScalarCacheMisses int64

	// Stalls attributes stall cycles to their enumerated causes. For the
	// DVA each entry is a cycle in which that unit could not make progress;
	// for REF it is the cycles the dispatch unit waited before an issue,
	// attributed to the binding hazard.
	Stalls StallCounts

	// Queues summarizes the occupancy of every architectural queue (DVA
	// only; nil for REF, which has no queues).
	Queues []QueueStat
}

// QueueStatNamed returns the stats of the named queue, if present.
func (r *Result) QueueStatNamed(name string) (QueueStat, bool) {
	for _, q := range r.Queues {
		if q.Name == name {
			return q, true
		}
	}
	return QueueStat{}, false
}

// IPC returns executed instructions (scalar + vector) per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Counts.ScalarInsts+r.Counts.VectorInsts) / float64(r.Cycles)
}

// String gives a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d cycles, %.2f IPC, traffic=%d elems",
		r.Arch, r.Cycles, r.IPC(), r.Traffic.Total())
}
