// Package sim holds the configuration and measurement infrastructure shared
// by the reference and decoupled architecture simulators.
package sim

import (
	"fmt"

	"decvec/internal/isa"
)

// Default queue lengths from the paper (§5): all instruction queues 16
// entries, all scalar data queues 256 entries, vector load queue (AVDQ) 256
// slots, vector store queue (VADQ/VSAQ) 16 slots.
const (
	DefaultIQSize      = 16
	DefaultScalarQSize = 256
	DefaultAVDQSize    = 256
	DefaultVADQSize    = 16
)

// Config parametrizes a simulation run. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// MemLatency is L, the number of cycles between a load's address issue
	// and the arrival of its first element. Stores never observe latency
	// (§4.2). The paper sweeps L over 1..100.
	MemLatency int64

	// Pipeline start-up depths per operation group, in cycles. A vector
	// operation started at cycle t delivers element i at t+depth+i.
	AddDepth   int64 // add/sub/logic/compare/min/max
	MulDepth   int64 // multiplication and multiply-add
	DivDepth   int64 // division
	SqrtDepth  int64 // square root
	QMovDepth  int64 // DVA queue-move units
	ChainDelay int64 // cycles a chained consumer trails its producer

	// ScalarCacheLines and ScalarCacheLineBytes size the direct-mapped
	// scalar cache that filters scalar memory accesses.
	ScalarCacheLines     int
	ScalarCacheLineBytes int

	// Decoupled-architecture queue sizes.
	IQSize      int // APIQ, SPIQ, VPIQ instruction queues
	ScalarQSize int // ASDQ, SADQ, SVDQ, VSDQ, SAAQ, SSAQ, SFBQ, AFBQ
	AVDQSize    int // vector load data queue, in vector-register slots
	VADQSize    int // vector store data queue, in vector-register slots
	VSAQSize    int // vector store address queue; 0 means "same as VADQSize"

	// MemPorts is the number of memory ports (address buses). The paper's
	// machines have exactly one; the extension-ports experiment widens it
	// to compare a real second port against the §7 bypass's "illusion of
	// two memory ports".
	MemPorts int

	// QMovUnits is the number of queue-move units in the VP. The paper's
	// §4.3 chose two, "because otherwise the VP would be paying a high
	// overhead in some very common sequences of code"; the ablation-qmov
	// experiment reproduces that design decision.
	QMovUnits int

	// Bypass enables the §7 VADQ->AVDQ bypass unit.
	Bypass bool

	// LatencyJitter adds a deterministic per-access excess latency in
	// [0, LatencyJitter] cycles to loads, modeling memory-module and
	// interconnect conflicts in a multiprocessor (see AccessLatency).
	LatencyJitter int64

	// SlowTick disables the idle-skip (event-horizon) fast path and forces
	// the simulators to advance one cycle at a time. Results are bit-identical
	// in both modes — SlowTick exists as the reference mode the equivalence
	// suite checks the fast path against (see DESIGN.md "Idle-skip
	// advancement"); it costs wall-clock time, never accuracy.
	SlowTick bool
}

// DefaultConfig returns the configuration used for the paper's main DVA
// experiments (Figure 3) at the given memory latency.
func DefaultConfig(latency int64) Config {
	return Config{
		MemLatency:           latency,
		AddDepth:             6,
		MulDepth:             7,
		DivDepth:             20,
		SqrtDepth:            20,
		QMovDepth:            2,
		ChainDelay:           1,
		ScalarCacheLines:     256,
		ScalarCacheLineBytes: 32,
		IQSize:               DefaultIQSize,
		ScalarQSize:          DefaultScalarQSize,
		AVDQSize:             DefaultAVDQSize,
		VADQSize:             DefaultVADQSize,
		QMovUnits:            2,
		MemPorts:             1,
	}
}

// BypassConfig returns a §7 bypass configuration "BYP load/store": loadQ
// slots in the AVDQ and storeQ slots in the VADQ/VSAQ pair.
func BypassConfig(latency int64, loadQ, storeQ int) Config {
	c := DefaultConfig(latency)
	c.Bypass = true
	c.AVDQSize = loadQ
	c.VADQSize = storeQ
	return c
}

// EffVSAQSize returns the vector store address queue size, defaulting to the
// store data queue size.
func (c *Config) EffVSAQSize() int {
	if c.VSAQSize > 0 {
		return c.VSAQSize
	}
	return c.VADQSize
}

// Depth returns the pipeline start-up depth for an opcode.
func (c *Config) Depth(op isa.Opcode) int64 {
	switch op {
	case isa.OpMul, isa.OpMulAdd:
		return c.MulDepth
	case isa.OpDiv:
		return c.DivDepth
	case isa.OpSqrt:
		return c.SqrtDepth
	default: // declint:nonexhaustive — every other opcode (add/logic/compare family) runs at the short add depth
		return c.AddDepth
	}
}

// Validate reports the first invalid field of the configuration.
func (c *Config) Validate() error {
	switch {
	case c.MemLatency < 1:
		return fmt.Errorf("sim: memory latency %d < 1", c.MemLatency)
	case c.AddDepth < 1 || c.MulDepth < 1 || c.DivDepth < 1 || c.SqrtDepth < 1:
		return fmt.Errorf("sim: pipeline depths must be >= 1")
	case c.QMovDepth < 1:
		return fmt.Errorf("sim: QMOV depth %d < 1", c.QMovDepth)
	case c.ChainDelay < 1:
		return fmt.Errorf("sim: chain delay %d < 1", c.ChainDelay)
	case c.ScalarCacheLines < 1 || c.ScalarCacheLineBytes < int(isa.ElemSize):
		return fmt.Errorf("sim: scalar cache %dx%dB too small", c.ScalarCacheLines, c.ScalarCacheLineBytes)
	case c.IQSize < 2:
		return fmt.Errorf("sim: instruction queues need >= 2 slots, got %d", c.IQSize)
	case c.ScalarQSize < 1:
		return fmt.Errorf("sim: scalar queue size %d < 1", c.ScalarQSize)
	case c.AVDQSize < 1:
		return fmt.Errorf("sim: AVDQ size %d < 1", c.AVDQSize)
	case c.VADQSize < 1:
		return fmt.Errorf("sim: VADQ size %d < 1", c.VADQSize)
	case c.QMovUnits < 1:
		return fmt.Errorf("sim: QMOV unit count %d < 1", c.QMovUnits)
	case c.MemPorts < 1:
		return fmt.Errorf("sim: memory port count %d < 1", c.MemPorts)
	}
	return nil
}

// String names the configuration in the paper's style, e.g. "DVA 256/16" or
// "BYP 4/8 L=30".
func (c *Config) String() string {
	kind := "DVA"
	if c.Bypass {
		kind = "BYP"
	}
	return fmt.Sprintf("%s %d/%d L=%d", kind, c.AVDQSize, c.VADQSize, c.MemLatency)
}

// AccessLatency returns the effective memory latency of a load issued with
// the given base address and sequence number. With LatencyJitter zero it is
// simply MemLatency; otherwise a deterministic per-access excess in
// [0, LatencyJitter] is added, modeling conflicts in the memory modules and
// interconnection network of a vector multiprocessor (the paper's §1
// motivation). The excess is a hash of (address, sequence), so runs stay
// bit-reproducible and both architectures observe identical per-access
// latencies.
func (c *Config) AccessLatency(base uint64, seq int64) int64 {
	if c.LatencyJitter <= 0 {
		return c.MemLatency
	}
	x := base ^ uint64(seq)*0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return c.MemLatency + int64(x%uint64(c.LatencyJitter+1))
}
