package sim

import "sync"

// This file is the run-arena layer shared by the simulator cores: a pool of
// reusable per-run machines plus the Reset contract they implement. A
// simulation run allocates a machine-sized working set (fourteen ring-buffer
// queues, scoreboards, scratch slices, memo tables, histograms); sweeps run
// thousands of such runs back to back, so the cores expose pooled Runner
// types that keep one machine alive across runs and reset it in place.
//
// The Reset contract: after Reset, a reused machine must be bit-identical —
// in every observable output (results, event streams, statistics) — to a
// freshly constructed one. Retained memory (ring capacity, scratch-slice
// capacity, memo tables, pooled event payloads) is invisible to the model:
// it may only ever amortize allocation, never leak state between runs. The
// arena-reuse equivalence suite pins this by running every core twice on the
// same pooled machine across the program × latency × queue grid and
// comparing results and event streams byte for byte against fresh machines.

// RunPool is a concurrency-safe free list of per-run machines (the cores'
// Runner types). Unlike sync.Pool it never drops entries on GC pressure
// asynchronously — a bounded, deterministic arena is easier to reason about
// in tests — but it is still only an amortization: Get returning ok=false
// simply means the caller constructs a fresh machine.
type RunPool[M any] struct {
	mu   sync.Mutex
	free []M
}

// Get pops a pooled machine, reporting ok=false when the pool is empty.
func (p *RunPool[M]) Get() (m M, ok bool) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		var zero M
		p.free[n-1] = zero // release the reference
		p.free = p.free[:n-1]
		ok = true
	}
	p.mu.Unlock()
	return m, ok
}

// Put returns a machine to the pool. The machine must be idle: the caller
// guarantees no run is in flight on it.
func (p *RunPool[M]) Put(m M) {
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// Len returns the number of pooled machines.
func (p *RunPool[M]) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
