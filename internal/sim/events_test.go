package sim

import "testing"

func TestStallReasonTablesComplete(t *testing.T) {
	for r := StallReason(0); r < NumStallReasons; r++ {
		if r.String() == "" || r.String() == "stall?" {
			t.Errorf("reason %d has no name", r)
		}
		if r.Proc() >= NumProcs {
			t.Errorf("reason %s has no processor", r)
		}
	}
	for p := Proc(0); p < NumProcs; p++ {
		if p.String() == "?" {
			t.Errorf("proc %d has no name", p)
		}
	}
	// Out-of-range values degrade gracefully.
	if StallReason(200).String() != "stall?" || Proc(200).String() != "?" {
		t.Error("out-of-range values must not panic")
	}
}

func TestStallCountsTotals(t *testing.T) {
	var s StallCounts
	s.Add(StallAPBus, 10)
	s.Add(StallAPData, 5)
	s.Add(StallVPFU, 3)
	if s.Total() != 18 {
		t.Errorf("Total = %d, want 18", s.Total())
	}
	if s.ProcTotal(ProcAP) != 15 {
		t.Errorf("ProcTotal(AP) = %d, want 15", s.ProcTotal(ProcAP))
	}
	if s.ProcTotal(ProcSP) != 0 {
		t.Errorf("ProcTotal(SP) = %d, want 0", s.ProcTotal(ProcSP))
	}
	nz := s.Nonzero()
	if len(nz) != 3 {
		t.Fatalf("Nonzero len = %d, want 3", len(nz))
	}
	for i := 1; i < len(nz); i++ {
		if nz[i].Cycles > nz[i-1].Cycles {
			t.Errorf("Nonzero not sorted: %+v", nz)
		}
	}
	if nz[0].Reason != StallAPBus || nz[0].Cycles != 10 {
		t.Errorf("top reason = %+v, want AP.bus x10", nz[0])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	// Every method must be a no-op, not a panic.
	r.Issue(1, ProcAP, 0, "x")
	r.Stall(1, StallAPBus)
	r.StallN(1, StallAPBus, 5)
	r.BusGrant(1, ProcAP, 0, 8)
	r.Bypass(1, 0, 8)
	r.Flush(1, 0)
	r.QueueEvent(1, "q", true, 1)
	if r.Len() != 0 || r.Events() != nil || r.Count(EvIssue) != 0 {
		t.Error("nil recorder must be empty")
	}
}

func TestStallCoalescing(t *testing.T) {
	r := NewRecorder()
	// Three consecutive cycles of the same reason coalesce into one event.
	r.Stall(10, StallAPBus)
	r.Stall(11, StallAPBus)
	r.Stall(12, StallAPBus)
	// A gap starts a new event.
	r.Stall(20, StallAPBus)
	// A different reason interleaved keeps its own run.
	r.Stall(21, StallVPData)
	r.Stall(21, StallAPBus)
	r.Stall(22, StallVPData)

	var stalls []Event
	for _, e := range r.Events() {
		if e.Kind == EvStall {
			stalls = append(stalls, e)
		}
	}
	want := []struct {
		cycle, n int64
		reason   StallReason
	}{
		{10, 3, StallAPBus},
		{20, 2, StallAPBus}, // 20 and 21 coalesce despite the VP event between
		{21, 2, StallVPData},
	}
	if len(stalls) != len(want) {
		t.Fatalf("got %d stall events, want %d: %+v", len(stalls), len(want), stalls)
	}
	for i, w := range want {
		e := stalls[i]
		if e.Cycle != w.cycle || e.N != w.n || e.Reason != w.reason {
			t.Errorf("stall %d = {cycle %d, n %d, %s}, want {%d, %d, %s}",
				i, e.Cycle, e.N, e.Reason, w.cycle, w.n, w.reason)
		}
	}
}

func TestMaxEventsDrops(t *testing.T) {
	r := NewRecorder()
	r.MaxEvents = 3
	for i := int64(0); i < 10; i++ {
		r.Issue(i, ProcFP, i, "x")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if r.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", r.Dropped)
	}
	// Coalescing into an already-stored stall still works at the bound.
	r2 := NewRecorder()
	r2.MaxEvents = 1
	r2.Stall(5, StallAPBus)
	r2.Stall(6, StallAPBus)
	if r2.Len() != 1 || r2.Events()[0].N != 2 {
		t.Errorf("coalescing at the bound broken: %+v", r2.Events())
	}
	if r2.Dropped != 0 {
		t.Errorf("coalesced cycles must not count as dropped: %d", r2.Dropped)
	}
}

func TestRecorderCountsAndKinds(t *testing.T) {
	r := NewRecorder()
	r.Issue(1, ProcAP, 7, "VLoad")
	r.BusGrant(1, ProcAP, 7, 8)
	r.Bypass(2, 9, 16)
	r.Flush(3, 4)
	r.QueueEvent(4, "AVDQ", true, 1)
	r.QueueEvent(5, "AVDQ", false, 0)
	if r.Count(EvIssue) != 1 || r.Count(EvBusGrant) != 1 || r.Count(EvBypass) != 1 ||
		r.Count(EvFlush) != 1 || r.Count(EvQueuePush) != 1 || r.Count(EvQueuePop) != 1 {
		t.Errorf("kind counts wrong: %+v", r.Events())
	}
	for k := EventKind(0); k < NumEventKinds; k++ {
		if k.String() == "event?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	ev := r.Events()[0]
	if ev.Proc != ProcAP || ev.Seq != 7 || ev.Label != "VLoad" {
		t.Errorf("issue event fields wrong: %+v", ev)
	}
}
