package sim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Versioned binary codec for Result — the on-disk representation behind the
// persistent simulation cache (internal/simcache). The encoding is fully
// deterministic: equal results always produce identical bytes, so cache
// verification can compare encodings instead of walking the struct.
//
// Canonicalization: Config.SlowTick is encoded as false. The fast and slow
// tick modes are bit-identical (see DESIGN.md "Idle-skip advancement"), the
// cache keys normalize SlowTick out, and a canonical encoding keeps
// byte-comparisons between a stored result and a re-simulated one meaningful
// whichever mode produced them.
//
// Versioning: the magic carries the format version. The codec only ever needs
// to read bytes written by the same model fingerprint (a fingerprint change
// invalidates every cache key), so a format change simply bumps the magic and
// old entries become cache misses.

// resultMagic identifies the serialized-result format and its version.
const resultMagic = "DVRES1\n"

// Decoder sanity caps: a corrupt or hostile header must not drive
// allocations beyond what a genuine result could ever hold.
const (
	maxCodecName    = 256     // queue/arch name length
	maxCodecBuckets = 1 << 24 // histogram buckets
	maxCodecQueues  = 1 << 12 // queue stats per result
)

// EncodeResult writes the canonical binary encoding of r to w.
func EncodeResult(w io.Writer, r *Result) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(resultMagic); err != nil {
		return err
	}
	e := &resultEncoder{w: bw}
	e.string(r.Arch)
	e.config(&r.Config)
	e.varint(r.Cycles)
	for s := 0; s < NumStates; s++ {
		e.varint(r.States.Cycles[s])
	}
	e.varint(r.Counts.ScalarInsts)
	e.varint(r.Counts.VectorInsts)
	e.varint(r.Counts.VectorOps)
	e.varint(r.Counts.BasicBlocks)
	e.varint(r.Counts.SpillMemOps)
	e.varint(r.Counts.MemInsts)
	e.varint(r.Traffic.LoadElems)
	e.varint(r.Traffic.StoreElems)
	e.histogram(r.AVDQBusy)
	e.histogram(r.VADQBusy)
	e.varint(r.Bypasses)
	e.varint(r.BypassedElems)
	e.varint(r.Flushes)
	e.varint(r.ScalarCacheHits)
	e.varint(r.ScalarCacheMisses)
	e.uvarint(uint64(NumStallReasons))
	for i := 0; i < int(NumStallReasons); i++ {
		e.varint(r.Stalls[i])
	}
	e.queues(r.Queues)
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// resultEncoder accumulates the first write error so the field encoders can
// chain without per-call error handling.
type resultEncoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *resultEncoder) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *resultEncoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *resultEncoder) byte(b byte) {
	if e.err != nil {
		return
	}
	e.err = e.w.WriteByte(b)
}

func (e *resultEncoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *resultEncoder) string(s string) {
	e.uvarint(uint64(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

func (e *resultEncoder) float(f float64) {
	if e.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	_, e.err = e.w.Write(b[:])
}

// config encodes every Config field in declaration order, with SlowTick
// canonicalized to false. codec_test pins the field count so a new Config
// field cannot be forgotten here silently.
func (e *resultEncoder) config(c *Config) {
	e.varint(c.MemLatency)
	e.varint(c.AddDepth)
	e.varint(c.MulDepth)
	e.varint(c.DivDepth)
	e.varint(c.SqrtDepth)
	e.varint(c.QMovDepth)
	e.varint(c.ChainDelay)
	e.varint(int64(c.ScalarCacheLines))
	e.varint(int64(c.ScalarCacheLineBytes))
	e.varint(int64(c.IQSize))
	e.varint(int64(c.ScalarQSize))
	e.varint(int64(c.AVDQSize))
	e.varint(int64(c.VADQSize))
	e.varint(int64(c.VSAQSize))
	e.varint(int64(c.MemPorts))
	e.varint(int64(c.QMovUnits))
	e.bool(c.Bypass)
	e.varint(c.LatencyJitter)
	e.bool(false) // SlowTick, canonicalized
}

func (e *resultEncoder) histogram(h *Histogram) {
	if h == nil {
		e.byte(0)
		return
	}
	e.byte(1)
	e.uvarint(uint64(len(h.Buckets)))
	for _, c := range h.Buckets {
		e.varint(c)
	}
	e.varint(h.Clamped)
}

func (e *resultEncoder) queues(qs []QueueStat) {
	if qs == nil {
		e.byte(0)
		return
	}
	e.byte(1)
	e.uvarint(uint64(len(qs)))
	for _, q := range qs {
		e.string(q.Name)
		e.varint(int64(q.Cap))
		e.varint(q.Pushes)
		e.varint(q.Pops)
		e.varint(int64(q.Peak))
		e.float(q.MeanLen)
		e.varint(q.FullCycles)
	}
}

// DecodeResult reads a result written by EncodeResult. Any malformed input —
// truncation, bad magic, implausible lengths — returns an error; the decoder
// never panics, so corrupt cache entries degrade into misses.
func DecodeResult(r io.Reader) (*Result, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(resultMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sim: result magic: %w", err)
	}
	if string(magic) != resultMagic {
		return nil, fmt.Errorf("sim: bad result magic %q", magic)
	}
	d := &resultDecoder{r: br}
	res := &Result{}
	res.Arch = d.string(maxCodecName)
	d.configInto(&res.Config)
	res.Cycles = d.varint()
	for s := 0; s < NumStates; s++ {
		res.States.Cycles[s] = d.varint()
	}
	res.Counts.ScalarInsts = d.varint()
	res.Counts.VectorInsts = d.varint()
	res.Counts.VectorOps = d.varint()
	res.Counts.BasicBlocks = d.varint()
	res.Counts.SpillMemOps = d.varint()
	res.Counts.MemInsts = d.varint()
	res.Traffic.LoadElems = d.varint()
	res.Traffic.StoreElems = d.varint()
	res.AVDQBusy = d.histogram()
	res.VADQBusy = d.histogram()
	res.Bypasses = d.varint()
	res.BypassedElems = d.varint()
	res.Flushes = d.varint()
	res.ScalarCacheHits = d.varint()
	res.ScalarCacheMisses = d.varint()
	if n := d.uvarint(1 << 8); d.err == nil && n != uint64(NumStallReasons) {
		return nil, fmt.Errorf("sim: result has %d stall reasons, this model has %d", n, NumStallReasons)
	}
	for i := 0; i < int(NumStallReasons); i++ {
		res.Stalls[i] = d.varint()
	}
	res.Queues = d.queues()
	if d.err != nil {
		return nil, fmt.Errorf("sim: decoding result: %w", d.err)
	}
	// The encoding must end exactly here; trailing bytes mean a mismatched
	// writer and a checksum that no longer covers what we decoded.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("sim: trailing bytes after result")
	}
	return res, nil
}

type resultDecoder struct {
	r   *bufio.Reader
	err error
}

func (d *resultDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *resultDecoder) uvarint(max uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	if v > max {
		d.err = fmt.Errorf("length %d exceeds cap %d", v, max)
		return 0
	}
	return v
}

func (d *resultDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

func (d *resultDecoder) bool() bool {
	switch b := d.byte(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("bad bool byte %d", b)
		}
		return false
	}
}

func (d *resultDecoder) string(max uint64) string {
	n := d.uvarint(max)
	if d.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

func (d *resultDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		d.err = err
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

func (d *resultDecoder) configInto(c *Config) {
	c.MemLatency = d.varint()
	c.AddDepth = d.varint()
	c.MulDepth = d.varint()
	c.DivDepth = d.varint()
	c.SqrtDepth = d.varint()
	c.QMovDepth = d.varint()
	c.ChainDelay = d.varint()
	c.ScalarCacheLines = int(d.varint())
	c.ScalarCacheLineBytes = int(d.varint())
	c.IQSize = int(d.varint())
	c.ScalarQSize = int(d.varint())
	c.AVDQSize = int(d.varint())
	c.VADQSize = int(d.varint())
	c.VSAQSize = int(d.varint())
	c.MemPorts = int(d.varint())
	c.QMovUnits = int(d.varint())
	c.Bypass = d.bool()
	c.LatencyJitter = d.varint()
	c.SlowTick = d.bool()
}

func (d *resultDecoder) histogram() *Histogram {
	if d.byte() == 0 {
		return nil
	}
	n := d.uvarint(maxCodecBuckets)
	if d.err != nil {
		return nil
	}
	h := &Histogram{Buckets: make([]int64, n)}
	for i := range h.Buckets {
		h.Buckets[i] = d.varint()
	}
	h.Clamped = d.varint()
	return h
}

func (d *resultDecoder) queues() []QueueStat {
	if d.byte() == 0 {
		return nil
	}
	n := d.uvarint(maxCodecQueues)
	if d.err != nil {
		return nil
	}
	qs := make([]QueueStat, 0, n)
	for i := uint64(0); i < n; i++ {
		q := QueueStat{
			Name:   d.string(maxCodecName),
			Cap:    int(d.varint()),
			Pushes: d.varint(),
			Pops:   d.varint(),
			Peak:   int(d.varint()),
		}
		q.MeanLen = d.float()
		q.FullCycles = d.varint()
		if d.err != nil {
			return nil
		}
		qs = append(qs, q)
	}
	return qs
}
