package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"decvec/internal/isa"
)

func TestDefaultConfigValid(t *testing.T) {
	for _, l := range []int64{1, 30, 100} {
		cfg := DefaultConfig(l)
		if err := cfg.Validate(); err != nil {
			t.Errorf("L=%d: %v", l, err)
		}
		if cfg.MemLatency != l {
			t.Errorf("latency not set")
		}
		if cfg.IQSize != DefaultIQSize || cfg.AVDQSize != DefaultAVDQSize || cfg.VADQSize != DefaultVADQSize {
			t.Error("paper queue defaults wrong")
		}
	}
}

func TestBypassConfig(t *testing.T) {
	cfg := BypassConfig(30, 4, 8)
	if !cfg.Bypass || cfg.AVDQSize != 4 || cfg.VADQSize != 8 {
		t.Errorf("got %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	if got := cfg.String(); got != "BYP 4/8 L=30" {
		t.Errorf("String = %q", got)
	}
	def := DefaultConfig(50)
	if got := def.String(); got != "DVA 256/16 L=50" {
		t.Errorf("String = %q", got)
	}
}

func TestEffVSAQSize(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.EffVSAQSize() != cfg.VADQSize {
		t.Error("VSAQ should default to VADQ size")
	}
	cfg.VSAQSize = 7
	if cfg.EffVSAQSize() != 7 {
		t.Error("explicit VSAQ size ignored")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.MemLatency = 0 },
		func(c *Config) { c.AddDepth = 0 },
		func(c *Config) { c.QMovDepth = 0 },
		func(c *Config) { c.ChainDelay = 0 },
		func(c *Config) { c.ScalarCacheLines = 0 },
		func(c *Config) { c.ScalarCacheLineBytes = 4 },
		func(c *Config) { c.IQSize = 1 },
		func(c *Config) { c.ScalarQSize = 0 },
		func(c *Config) { c.AVDQSize = 0 },
		func(c *Config) { c.VADQSize = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig(10)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestDepth(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.Depth(isa.OpAdd) != cfg.AddDepth {
		t.Error("add depth")
	}
	if cfg.Depth(isa.OpMul) != cfg.MulDepth || cfg.Depth(isa.OpMulAdd) != cfg.MulDepth {
		t.Error("mul depth")
	}
	if cfg.Depth(isa.OpDiv) != cfg.DivDepth {
		t.Error("div depth")
	}
	if cfg.Depth(isa.OpSqrt) != cfg.SqrtDepth {
		t.Error("sqrt depth")
	}
	if cfg.Depth(isa.OpAnd) != cfg.AddDepth {
		t.Error("logic ops use the add pipeline")
	}
}

func TestMakeState(t *testing.T) {
	if MakeState(false, false, false) != 0 {
		t.Error("empty state")
	}
	if MakeState(true, true, true) != StateFU2|StateFU1|StateLD {
		t.Error("full state")
	}
	if MakeState(true, false, false) != StateFU2 {
		t.Error("fu2 only")
	}
	if got := MakeState(true, false, true).String(); got != "<FU2,,LD>" {
		t.Errorf("String = %q", got)
	}
	if got := State(0).String(); got != "<,,>" {
		t.Errorf("String = %q", got)
	}
}

func TestStateStats(t *testing.T) {
	var st StateStats
	st.Observe(0)
	st.Observe(0)
	st.Observe(StateLD)
	st.Observe(StateFU2 | StateFU1)
	st.Observe(StateFU2 | StateFU1 | StateLD)
	if st.Total() != 5 {
		t.Errorf("Total = %d", st.Total())
	}
	if st.Idle() != 2 {
		t.Errorf("Idle = %d", st.Idle())
	}
	// LD idle: states 0 (x2) and <FU2,FU1, > (x1).
	if st.LDIdle() != 3 {
		t.Errorf("LDIdle = %d", st.LDIdle())
	}
	if st.PeakFP() != 2 {
		t.Errorf("PeakFP = %d", st.PeakFP())
	}
	if got := st.Fraction(StateLD); got != 0.2 {
		t.Errorf("Fraction = %v", got)
	}
	if !strings.Contains(st.String(), "<,,>=2") {
		t.Errorf("String = %q", st.String())
	}
	var empty StateStats
	if empty.Fraction(0) != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 2, 9} { // 9 clamps into bucket 4
		h.Observe(v)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Clamped != 1 {
		t.Errorf("Clamped = %d", h.Clamped)
	}
	if h.Max() != 4 {
		t.Errorf("Max = %d", h.Max())
	}
	want := (0.0 + 1 + 1 + 2 + 4) / 5
	if got := h.Mean(); got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(4)
	if h.Max() != -1 || h.Mean() != 0 || h.Total() != 0 {
		t.Error("empty histogram")
	}
}

func TestHistogramPanics(t *testing.T) {
	h := NewHistogram(4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	h.Observe(-1)
}

func TestCounts(t *testing.T) {
	c := Counts{ScalarInsts: 100, VectorInsts: 10, VectorOps: 900}
	if got := c.Vectorization(); got != 0.9 {
		t.Errorf("Vectorization = %v", got)
	}
	if got := c.AvgVL(); got != 90 {
		t.Errorf("AvgVL = %v", got)
	}
	var zero Counts
	if zero.Vectorization() != 0 || zero.AvgVL() != 0 {
		t.Error("zero counts")
	}
}

func TestMemTraffic(t *testing.T) {
	tr := MemTraffic{LoadElems: 7, StoreElems: 5}
	if tr.Total() != 12 {
		t.Errorf("Total = %d", tr.Total())
	}
}

func TestResultIPC(t *testing.T) {
	r := Result{Cycles: 100, Counts: Counts{ScalarInsts: 30, VectorInsts: 20}}
	if got := r.IPC(); got != 0.5 {
		t.Errorf("IPC = %v", got)
	}
	var zero Result
	if zero.IPC() != 0 {
		t.Error("zero-cycle IPC")
	}
	if !strings.Contains(r.String(), "cycles") {
		t.Error("Result.String")
	}
}

// Property: a histogram's total always equals the number of observations
// and its mean is within the observed bucket range.
func TestHistogramInvariants_Quick(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(16)
		for _, v := range vals {
			h.Observe(int(v % 24))
		}
		if h.Total() != int64(len(vals)) {
			return false
		}
		if len(vals) == 0 {
			return true
		}
		return h.Mean() >= 0 && h.Mean() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MakeState round-trips its three flags.
func TestMakeStateRoundTrip_Quick(t *testing.T) {
	f := func(fu2, fu1, ld bool) bool {
		s := MakeState(fu2, fu1, ld)
		return (s&StateFU2 != 0) == fu2 && (s&StateFU1 != 0) == fu1 && (s&StateLD != 0) == ld
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
