package sim

import "sort"

// This file is the observability layer shared by the simulators: a typed,
// cycle-stamped event stream (issue, stall, queue push/pop, bus grant,
// bypass, flush) plus the enumerated stall-reason taxonomy that replaces the
// old ad-hoc string-keyed stall map. Recording is strictly passive — a
// machine driven with a nil *Recorder takes the same decisions, produces
// bit-identical results and allocates nothing on the hot path.

// Proc identifies one of the units that can issue work or stall. The DVA has
// four processors plus the store engine; the reference architecture's single
// in-order dispatch unit is ProcREF.
type Proc uint8

// Processors and units.
const (
	ProcFP  Proc = iota // fetch processor (dispatch)
	ProcAP              // address processor
	ProcSP              // scalar processor
	ProcVP              // vector processor
	ProcST              // store engine
	ProcREF             // reference architecture dispatch unit
	NumProcs
)

var procNames = [NumProcs]string{"FP", "AP", "SP", "VP", "ST", "REF"}

// String returns the unit's short name.
func (p Proc) String() string {
	if int(p) < len(procNames) {
		return procNames[p]
	}
	return "?"
}

// StallReason enumerates the distinct causes for which a unit can fail to
// make progress in a cycle. Every reason belongs to exactly one Proc.
type StallReason uint8

// Stall reasons, grouped by processor.
const (
	// Fetch processor.
	StallFPDispatch StallReason = iota // a destination queue lacks room

	// Address processor.
	StallAPFlush      // draining stores after a memory hazard
	StallAPData       // A/S source operand not ready
	StallAPAFBQ       // branch result queue full
	StallAPHazard     // load overlaps a queued store (flush initiated)
	StallAPASDQ       // scalar load data queue full
	StallAPBus        // address bus busy
	StallAPSSAQ       // scalar store address queue full
	StallAPAVDQ       // vector load data queue full
	StallAPVSAQ       // vector store address queue full
	StallAPBypassUnit // bypass unit busy with a previous copy
	StallAPBypassData // bypassable store data not yet in the VADQ

	// Scalar processor.
	StallSPASDQ      // waiting on scalar load data
	StallSPVSDQ      // waiting on a reduction result
	StallSPData      // S source register not ready
	StallSPQueueFull // outbound queue (SADQ/SVDQ/SAAQ) full
	StallSPSFBQ      // branch result queue full

	// Vector processor.
	StallVPAVDQ      // vector load data not yet arrived
	StallVPQMovUnit  // both QMOV units busy
	StallVPDstHazard // WAW/WAR hazard on the destination register
	StallVPData      // vector source register not ready
	StallVPVADQ      // vector store data queue full
	StallVPSVDQ      // scalar operand not yet in the SVDQ
	StallVPVSDQ      // reduction result queue full
	StallVPFU        // no eligible functional unit free

	// Store engine.
	StallSTData // oldest store's data not yet in its data queue
	StallSTBus  // address bus busy

	// Reference architecture: cycles the dispatch unit waited before issue,
	// attributed to the binding hazard.
	StallRefData // source operand (scalar or vector) not ready
	StallRefDst  // destination WAW/WAR hazard
	StallRefFU   // no eligible functional unit free
	StallRefBus  // memory port busy

	NumStallReasons
)

var stallNames = [NumStallReasons]string{
	StallFPDispatch:   "FP.dispatch",
	StallAPFlush:      "AP.flush",
	StallAPData:       "AP.data",
	StallAPAFBQ:       "AP.afbq",
	StallAPHazard:     "AP.hazard",
	StallAPASDQ:       "AP.asdq",
	StallAPBus:        "AP.bus",
	StallAPSSAQ:       "AP.ssaq",
	StallAPAVDQ:       "AP.avdq",
	StallAPVSAQ:       "AP.vsaq",
	StallAPBypassUnit: "AP.bypassUnit",
	StallAPBypassData: "AP.bypassData",
	StallSPASDQ:       "SP.asdq",
	StallSPVSDQ:       "SP.vsdq",
	StallSPData:       "SP.data",
	StallSPQueueFull:  "SP.queueFull",
	StallSPSFBQ:       "SP.sfbq",
	StallVPAVDQ:       "VP.avdq",
	StallVPQMovUnit:   "VP.qmovUnit",
	StallVPDstHazard:  "VP.dstHazard",
	StallVPData:       "VP.data",
	StallVPVADQ:       "VP.vadq",
	StallVPSVDQ:       "VP.svdq",
	StallVPVSDQ:       "VP.vsdq",
	StallVPFU:         "VP.fu",
	StallSTData:       "ST.data",
	StallSTBus:        "ST.bus",
	StallRefData:      "REF.data",
	StallRefDst:       "REF.dstHazard",
	StallRefFU:        "REF.fu",
	StallRefBus:       "REF.bus",
}

var stallProcs = [NumStallReasons]Proc{
	StallFPDispatch:   ProcFP,
	StallAPFlush:      ProcAP,
	StallAPData:       ProcAP,
	StallAPAFBQ:       ProcAP,
	StallAPHazard:     ProcAP,
	StallAPASDQ:       ProcAP,
	StallAPBus:        ProcAP,
	StallAPSSAQ:       ProcAP,
	StallAPAVDQ:       ProcAP,
	StallAPVSAQ:       ProcAP,
	StallAPBypassUnit: ProcAP,
	StallAPBypassData: ProcAP,
	StallSPASDQ:       ProcSP,
	StallSPVSDQ:       ProcSP,
	StallSPData:       ProcSP,
	StallSPQueueFull:  ProcSP,
	StallSPSFBQ:       ProcSP,
	StallVPAVDQ:       ProcVP,
	StallVPQMovUnit:   ProcVP,
	StallVPDstHazard:  ProcVP,
	StallVPData:       ProcVP,
	StallVPVADQ:       ProcVP,
	StallVPSVDQ:       ProcVP,
	StallVPVSDQ:       ProcVP,
	StallVPFU:         ProcVP,
	StallSTData:       ProcST,
	StallSTBus:        ProcST,
	StallRefData:      ProcREF,
	StallRefDst:       ProcREF,
	StallRefFU:        ProcREF,
	StallRefBus:       ProcREF,
}

// String returns the canonical "Proc.cause" name of the reason.
func (r StallReason) String() string {
	if int(r) < len(stallNames) {
		return stallNames[r]
	}
	return "stall?"
}

// Proc returns the unit the reason belongs to.
func (r StallReason) Proc() Proc {
	if int(r) < len(stallProcs) {
		return stallProcs[r]
	}
	return NumProcs
}

// StallCounts is the per-reason stall-cycle accumulator of a run. Indexing
// by StallReason is allocation-free, so the simulators can count stalls
// unconditionally.
type StallCounts [NumStallReasons]int64

// Add accumulates n stall cycles for the reason.
// declint:hotpath
func (s *StallCounts) Add(r StallReason, n int64) { s[r] += n }

// Total returns the stall cycles summed over all reasons.
func (s *StallCounts) Total() int64 {
	var t int64
	for _, c := range s {
		t += c
	}
	return t
}

// Proc returns the stall cycles summed over the reasons of one unit.
func (s *StallCounts) ProcTotal(p Proc) int64 {
	var t int64
	for r, c := range s {
		if StallReason(r).Proc() == p {
			t += c
		}
	}
	return t
}

// StallCount pairs a reason with its cycle count, for sorted reports.
type StallCount struct {
	Reason StallReason
	Cycles int64
}

// Nonzero returns the reasons with at least one stall cycle, most cycles
// first (ties broken by reason order, so output is deterministic).
func (s *StallCounts) Nonzero() []StallCount {
	var out []StallCount
	for r, c := range s {
		if c > 0 {
			out = append(out, StallCount{Reason: StallReason(r), Cycles: c})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// QueueStat is the occupancy summary of one architectural queue over a run.
type QueueStat struct {
	Name   string // queue name (AVDQ, VSAQ, ...)
	Cap    int    // capacity in entries
	Pushes int64  // lifetime successful pushes
	Pops   int64  // lifetime pops
	Peak   int    // maximum occupancy ever observed
	// MeanLen is the time-averaged occupancy in entries.
	MeanLen float64
	// FullCycles is the number of cycles the queue spent completely full —
	// the back-pressure metric: producers may have stalled during them.
	FullCycles int64
}

// Pressure returns the mean occupancy as a fraction of capacity.
func (q QueueStat) Pressure() float64 {
	if q.Cap == 0 {
		return 0
	}
	return q.MeanLen / float64(q.Cap)
}

// EventKind enumerates the event types of the trace stream.
type EventKind uint8

// Event kinds.
const (
	EvIssue     EventKind = iota // a unit issued an instruction or uop
	EvStall                      // a unit could not make progress (N cycles)
	EvQueuePush                  // an entry entered a queue (N = new length)
	EvQueuePop                   // an entry left a queue (N = new length)
	EvBusGrant                   // the address bus was granted for N cycles
	EvBypass                     // a load was serviced by the VADQ->AVDQ bypass
	EvFlush                      // a load hazard forced a store-queue drain
	NumEventKinds
)

var eventKindNames = [NumEventKinds]string{
	"issue", "stall", "push", "pop", "bus", "bypass", "flush",
}

// String returns the kind's short name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event?"
}

// Event is one cycle-stamped occurrence in a machine. Which fields are
// meaningful depends on Kind:
//
//	EvIssue:     Proc, Seq, Label (instruction class or uop name)
//	EvStall:     Proc, Reason, N (consecutive stalled cycles, coalesced)
//	EvQueuePush: Queue, N (occupancy after the push)
//	EvQueuePop:  Queue, N (occupancy after the pop)
//	EvBusGrant:  Proc (requester), Seq, N (cycles reserved)
//	EvBypass:    Seq (load), N (vector length copied)
//	EvFlush:     Proc, Seq (youngest store drained for)
type Event struct {
	Cycle  int64
	Kind   EventKind
	Proc   Proc
	Reason StallReason
	Queue  string
	Seq    int64
	N      int64
	Label  string
}

// Recorder collects the event stream of one run. A nil *Recorder is the
// disabled state: every method is nil-receiver safe and returns immediately,
// so the simulators call them unconditionally.
//
// Consecutive stalls of the same reason are coalesced into a single event
// whose N grows, which keeps long waits (a 100-cycle memory latency) from
// bloating the stream.
type Recorder struct {
	// MaxEvents bounds the stored stream; 0 means unlimited. Events beyond
	// the bound are counted in Dropped instead of stored. Stall coalescing
	// into already-stored events continues even at the bound.
	MaxEvents int
	// Dropped counts events discarded because of MaxEvents.
	Dropped int64

	events []Event
	// lastStall[r] is 1+index of the most recent EvStall event for reason r,
	// used to coalesce consecutive stalled cycles. 0 means none.
	lastStall [NumStallReasons]int
}

// NewRecorder returns an empty, unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Reset empties the recorder for reuse, keeping MaxEvents and the event
// storage. A reset recorder records exactly like a fresh one.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.Dropped = 0
	r.events = r.events[:0]
	r.lastStall = [NumStallReasons]int{}
}

// Enabled reports whether the recorder is collecting (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Events returns the recorded stream in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of stored events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Count returns the number of stored events of one kind.
func (r *Recorder) Count(k EventKind) int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.events {
		if r.events[i].Kind == k {
			n++
		}
	}
	return n
}

func (r *Recorder) record(e Event) {
	if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
		r.Dropped++
		return
	}
	r.events = append(r.events, e)
}

// Issue records that proc issued the instruction with sequence number seq.
// label should be a static string (an instruction class or uop name).
func (r *Recorder) Issue(cycle int64, p Proc, seq int64, label string) {
	if r == nil {
		return
	}
	r.record(Event{Cycle: cycle, Kind: EvIssue, Proc: p, Seq: seq, Label: label})
}

// Stall records one stalled cycle for the reason, coalescing runs of
// consecutive cycles into a single event.
func (r *Recorder) Stall(cycle int64, reason StallReason) {
	if r == nil {
		return
	}
	if i := r.lastStall[reason]; i > 0 {
		e := &r.events[i-1]
		if e.Cycle+e.N == cycle {
			e.N++
			return
		}
	}
	ev := Event{Cycle: cycle, Kind: EvStall, Proc: reason.Proc(), Reason: reason, N: 1}
	if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
		r.Dropped++
		return
	}
	r.events = append(r.events, ev)
	r.lastStall[reason] = len(r.events)
}

// StallSpan records n consecutive stalled cycles starting at cycle as a
// single span, coalescing with the reason's most recent stall event when the
// span is contiguous with it. It is the bulk emitter of the idle-skip fast
// path: a skipped idle window repeats the stall pattern of its first cycle,
// and StallSpan extends the already-recorded events so the stream stays
// bit-identical to the per-cycle (SlowTick) mode, which coalesces the same
// cycles one at a time. The only divergence is the Dropped counter of a
// bounded recorder, which counts one discarded span instead of n discarded
// cycles.
func (r *Recorder) StallSpan(cycle int64, reason StallReason, n int64) {
	if r == nil || n <= 0 {
		return
	}
	if i := r.lastStall[reason]; i > 0 {
		e := &r.events[i-1]
		if e.Cycle+e.N == cycle {
			e.N += n
			return
		}
	}
	if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
		r.Dropped++
		return
	}
	r.events = append(r.events, Event{Cycle: cycle, Kind: EvStall, Proc: reason.Proc(), Reason: reason, N: n})
	r.lastStall[reason] = len(r.events)
}

// StallN records n consecutive stalled cycles starting at cycle (used by the
// reference simulator, which computes waits in closed form).
func (r *Recorder) StallN(cycle int64, reason StallReason, n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.record(Event{Cycle: cycle, Kind: EvStall, Proc: reason.Proc(), Reason: reason, N: n})
}

// BusGrant records that proc reserved the address bus for n cycles.
func (r *Recorder) BusGrant(cycle int64, p Proc, seq, n int64) {
	if r == nil {
		return
	}
	r.record(Event{Cycle: cycle, Kind: EvBusGrant, Proc: p, Seq: seq, N: n})
}

// Bypass records a load serviced by the VADQ->AVDQ bypass unit.
func (r *Recorder) Bypass(cycle, seq, vl int64) {
	if r == nil {
		return
	}
	r.record(Event{Cycle: cycle, Kind: EvBypass, Proc: ProcAP, Seq: seq, N: vl})
}

// Flush records a hazard-forced store-queue drain; seq is the youngest
// store that must reach memory.
func (r *Recorder) Flush(cycle, seq int64) {
	if r == nil {
		return
	}
	r.record(Event{Cycle: cycle, Kind: EvFlush, Proc: ProcAP, Seq: seq})
}

// QueueEvent records a push or pop with the queue's new length. It
// implements the queue package's Observer interface.
func (r *Recorder) QueueEvent(cycle int64, name string, push bool, newLen int) {
	if r == nil {
		return
	}
	k := EvQueuePop
	if push {
		k = EvQueuePush
	}
	r.record(Event{Cycle: cycle, Kind: k, Queue: name, N: int64(newLen)})
}
