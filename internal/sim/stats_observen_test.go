package sim

import (
	"math/rand"
	"testing"
)

// TestStateStatsObserveNEquivalence checks the bulk form's contract: for any
// weight n >= 1, ObserveN(s, n) leaves the counters exactly as n repeated
// Observe(s) calls would. The idle-skip fast path leans on this to account a
// skipped span in one call.
func TestStateStatsObserveNEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var bulk, unit StateStats
	for i := 0; i < 200; i++ {
		s := State(rng.Intn(int(NumStates)))
		n := int64(1 + rng.Intn(50))
		bulk.ObserveN(s, n)
		for k := int64(0); k < n; k++ {
			unit.Observe(s)
		}
	}
	if bulk != unit {
		t.Fatalf("bulk %v != unit %v", bulk.Cycles, unit.Cycles)
	}
}

// TestStateStatsObserveNZeroWeight checks that non-positive weights are
// no-ops rather than corrupting (or panicking on) the counters.
func TestStateStatsObserveNZeroWeight(t *testing.T) {
	var st StateStats
	st.ObserveN(StateFU2, 0)
	st.ObserveN(StateFU1, -7)
	if got := st.Total(); got != 0 {
		t.Fatalf("non-positive weights observed %d cycles, want 0", got)
	}
}

// TestHistogramObserveNEquivalence checks bulk/unit equivalence for the
// occupancy histograms, including the clamping path for out-of-range values
// (whose Clamped counter must also scale with the weight).
func TestHistogramObserveNEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const max = 8
	bulk, unit := NewHistogram(max), NewHistogram(max)
	for i := 0; i < 200; i++ {
		v := rng.Intn(max + 3) // deliberately overshoots to hit clamping
		n := int64(1 + rng.Intn(50))
		bulk.ObserveN(v, n)
		for k := int64(0); k < n; k++ {
			unit.Observe(v)
		}
	}
	if bulk.Clamped != unit.Clamped {
		t.Fatalf("bulk clamped %d != unit clamped %d", bulk.Clamped, unit.Clamped)
	}
	for i := range bulk.Buckets {
		if bulk.Buckets[i] != unit.Buckets[i] {
			t.Fatalf("bucket %d: bulk %d != unit %d", i, bulk.Buckets[i], unit.Buckets[i])
		}
	}
}

// TestHistogramObserveNZeroWeight checks the no-op contract for non-positive
// weights, and that negative values still panic exactly like Observe.
func TestHistogramObserveNZeroWeight(t *testing.T) {
	h := NewHistogram(4)
	h.ObserveN(2, 0)
	h.ObserveN(3, -1)
	if got := h.Total(); got != 0 {
		t.Fatalf("non-positive weights observed %d values, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ObserveN(-1, 1) did not panic")
		}
	}()
	h.ObserveN(-1, 1)
}

// TestHistogramObserveNOccupancyIntegral checks the property the idle-skip
// accounting depends on: compressing a per-cycle occupancy trajectory into
// constant-occupancy spans and observing each span with its length yields the
// same histogram as sampling every cycle, and the histogram's total equals
// the trajectory's length (the occupancy integral's time base).
func TestHistogramObserveNOccupancyIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const max = 6
	spans, unit := NewHistogram(max), NewHistogram(max)
	var elapsed int64
	for i := 0; i < 100; i++ {
		occ := rng.Intn(max + 1)
		dt := int64(1 + rng.Intn(40))
		spans.ObserveN(occ, dt)
		for k := int64(0); k < dt; k++ {
			unit.Observe(occ)
		}
		elapsed += dt
	}
	if got := spans.Total(); got != elapsed {
		t.Fatalf("span histogram covers %d cycles, trajectory lasted %d", got, elapsed)
	}
	for i := range spans.Buckets {
		if spans.Buckets[i] != unit.Buckets[i] {
			t.Fatalf("bucket %d: spans %d != unit %d", i, spans.Buckets[i], unit.Buckets[i])
		}
	}
}
