package sim

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// sampleResult builds a fully-populated DVA-shaped result exercising every
// codec field, including negative-capable counters left at odd values.
func sampleResult() *Result {
	cfg := DefaultConfig(30)
	cfg.Bypass = true
	cfg.LatencyJitter = 7
	cfg.VSAQSize = 12
	r := &Result{
		Arch:   "BYP",
		Config: cfg,
		Cycles: 123456789,
		Counts: Counts{
			ScalarInsts: 1000, VectorInsts: 200, VectorOps: 12800,
			BasicBlocks: 55, SpillMemOps: 70, MemInsts: 400,
		},
		Traffic:           MemTraffic{LoadElems: 9001, StoreElems: 4002},
		AVDQBusy:          NewHistogram(256),
		VADQBusy:          NewHistogram(16),
		Bypasses:          17,
		BypassedElems:     1088,
		Flushes:           3,
		ScalarCacheHits:   31337,
		ScalarCacheMisses: 42,
	}
	for s := State(0); s < NumStates; s++ {
		r.States.Cycles[s] = int64(s) * 1000003
	}
	r.AVDQBusy.ObserveN(5, 120)
	r.AVDQBusy.ObserveN(256, 4)
	r.AVDQBusy.ObserveN(300, 2) // clamps
	r.VADQBusy.ObserveN(0, 99)
	for i := range r.Stalls {
		r.Stalls[i] = int64(i) * 7
	}
	r.Queues = []QueueStat{
		{Name: "AVDQ", Cap: 256, Pushes: 1000, Pops: 998, Peak: 200, MeanLen: 37.25, FullCycles: 12},
		{Name: "VADQ", Cap: 16, Pushes: 400, Pops: 400, Peak: 16, MeanLen: 3.5, FullCycles: 88},
	}
	return r
}

// refResult builds a REF-shaped result: nil histograms, nil queue list.
func refResult() *Result {
	r := &Result{Arch: "REF", Config: DefaultConfig(1), Cycles: 42}
	r.States.Cycles[0] = 40
	r.States.Cycles[StateLD] = 2
	r.Stalls[StallRefBus] = 9
	return r
}

func TestResultCodecRoundTrip(t *testing.T) {
	for _, r := range []*Result{sampleResult(), refResult()} {
		var buf bytes.Buffer
		if err := EncodeResult(&buf, r); err != nil {
			t.Fatalf("%s: encode: %v", r.Arch, err)
		}
		got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", r.Arch, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", r.Arch, got, r)
		}
	}
}

// The encoding canonicalizes SlowTick away: both tick modes are bit-identical
// (the PR 3 equivalence suite pins this), so a result simulated in slow mode
// must serialize to the same bytes as its fast-mode twin.
func TestResultCodecCanonicalizesSlowTick(t *testing.T) {
	fast := sampleResult()
	slow := sampleResult()
	slow.Config.SlowTick = true
	var bFast, bSlow bytes.Buffer
	if err := EncodeResult(&bFast, fast); err != nil {
		t.Fatal(err)
	}
	if err := EncodeResult(&bSlow, slow); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bFast.Bytes(), bSlow.Bytes()) {
		t.Error("SlowTick leaked into the encoding; fast and slow results must serialize identically")
	}
	got, err := DecodeResult(bytes.NewReader(bSlow.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.SlowTick {
		t.Error("decoded result kept SlowTick=true; the codec canonicalizes it to false")
	}
}

// Determinism: the same result must always encode to the same bytes.
func TestResultCodecDeterministic(t *testing.T) {
	r := sampleResult()
	var a, b bytes.Buffer
	if err := EncodeResult(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := EncodeResult(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodings of the same result differ")
	}
}

func TestResultCodecRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, len(resultMagic), len(full) / 2, len(full) - 1} {
			if _, err := DecodeResult(bytes.NewReader(full[:n])); err == nil {
				t.Errorf("truncation to %d bytes decoded without error", n)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, full...)
		bad[0] ^= 0xff
		if _, err := DecodeResult(bytes.NewReader(bad)); err == nil {
			t.Error("corrupted magic decoded without error")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, full...), 0x00)
		if _, err := DecodeResult(bytes.NewReader(bad)); err == nil {
			t.Error("trailing byte decoded without error")
		}
	})
}

// The codec lists Config and Result fields explicitly; these pins force a
// compile-visible failure here when a field is added, so the codec (and the
// cache key derivation in internal/simcache) get updated together.
func TestCodecCoversAllFields(t *testing.T) {
	if n := reflect.TypeOf(Config{}).NumField(); n != 19 {
		t.Errorf("sim.Config has %d fields, codec encodes 19: update codec.go (encoder+decoder) and this pin", n)
	}
	if n := reflect.TypeOf(Result{}).NumField(); n != 15 {
		t.Errorf("sim.Result has %d fields, codec encodes 15: update codec.go (encoder+decoder) and this pin", n)
	}
	if n := reflect.TypeOf(QueueStat{}).NumField(); n != 7 {
		t.Errorf("sim.QueueStat has %d fields, codec encodes 7: update codec.go (encoder+decoder) and this pin", n)
	}
	if n := reflect.TypeOf(Counts{}).NumField(); n != 6 {
		t.Errorf("sim.Counts has %d fields, codec encodes 6: update codec.go (encoder+decoder) and this pin", n)
	}
}

// FuzzDecodeResult asserts the decoder never panics on arbitrary bytes, and
// that anything it accepts re-encodes and re-decodes to the same value (the
// decoded form is a fixed point of the codec).
func FuzzDecodeResult(f *testing.F) {
	for _, r := range []*Result{sampleResult(), refResult()} {
		var buf bytes.Buffer
		if err := EncodeResult(&buf, r); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(resultMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeResult(&buf, r); err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		r2, err := DecodeResult(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		var buf2 bytes.Buffer
		if err := EncodeResult(&buf2, r2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("decode∘encode is not a fixed point")
		}
	})
}

// A decoder reading from a stream must consume exactly the encoding (no
// buffered over-read past a valid result when framed externally); DecodeResult
// takes the whole payload, so here we just pin that encode length is stable.
func TestEncodeLengthStable(t *testing.T) {
	var a bytes.Buffer
	if err := EncodeResult(&a, refResult()); err != nil {
		t.Fatal(err)
	}
	n := a.Len()
	a.Reset()
	if err := EncodeResult(io.Writer(&a), refResult()); err != nil {
		t.Fatal(err)
	}
	if a.Len() != n {
		t.Errorf("encode length unstable: %d vs %d", a.Len(), n)
	}
}
