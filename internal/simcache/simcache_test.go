package simcache

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"decvec/internal/sim"
)

func testResult() *sim.Result {
	r := &sim.Result{
		Arch:   "DVA",
		Config: sim.DefaultConfig(30),
		Cycles: 12345,
		Counts: sim.Counts{ScalarInsts: 100, VectorInsts: 40, VectorOps: 2560, BasicBlocks: 9, SpillMemOps: 3, MemInsts: 25},
		Traffic: sim.MemTraffic{
			LoadElems:  2000,
			StoreElems: 900,
		},
		AVDQBusy: sim.NewHistogram(8),
		Queues: []sim.QueueStat{
			{Name: "AVDQ", Cap: 256, Pushes: 41, Pops: 41, Peak: 12, MeanLen: 3.5, FullCycles: 2},
		},
	}
	r.States.Observe(sim.MakeState(true, false, true))
	r.States.ObserveN(sim.MakeState(false, false, false), 41)
	r.AVDQBusy.Buckets[3] = 7
	r.Stalls[0] = 17
	return r
}

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testKey(s *Store, extra string) Key {
	var th [sha256.Size]byte
	copy(th[:], "trace-hash-for-tests")
	return s.Key(th, "DVA", sim.DefaultConfig(30), extra)
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t, Options{})
	k := testKey(s, "")
	want := testResult()
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, func() *sim.Result {
		// SlowTick is canonicalized out of the stored form.
		w := *want
		w.Config.SlowTick = false
		return &w
	}()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// entryFile returns the single live entry file in the store directory.
func entryFile(t *testing.T, s *Store) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "*"+entryExt))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one entry, got %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestTruncatedEntryIsMissAndQuarantined(t *testing.T) {
	s := testStore(t, Options{})
	k := testKey(s, "")
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: keep the header plus half the payload.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("truncated entry served as a hit")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 corrupt / 1 miss", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still live at %s", path)
	}
	quarantined, _ := filepath.Glob(filepath.Join(s.Dir(), "*"+corruptExt))
	if len(quarantined) != 1 {
		t.Errorf("want 1 quarantined file, got %v", quarantined)
	}
	// The quarantined corpse must not satisfy future lookups.
	if _, ok := s.Get(k); ok {
		t.Fatal("hit after quarantine")
	}
}

func TestBitFlippedEntryIsMissAndQuarantined(t *testing.T) {
	s := testStore(t, Options{})
	k := testKey(s, "")
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the payload so the checksum no longer matches.
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Errorf("stats = %+v, want 1 corrupt", st)
	}
	quarantined, _ := filepath.Glob(filepath.Join(s.Dir(), "*"+corruptExt))
	if len(quarantined) != 1 {
		t.Errorf("want 1 quarantined file, got %v", quarantined)
	}
}

func TestConcurrentWritersOneKey(t *testing.T) {
	// Two Store instances over one directory model two processes sharing a
	// cache. Both hammer the same key; readers must only ever observe
	// complete entries.
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(a, "")
	if k != testKey(b, "") {
		t.Fatal("stores over one dir derive different keys")
	}
	res := testResult()
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put(k, res); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, ok := s.GetBytes(k); !ok {
					t.Error("miss between writes: reader saw a torn entry")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, ok := a.Get(k); !ok || got.Cycles != res.Cycles {
		t.Fatalf("final read: ok=%v", ok)
	}
	// No temp files may be left behind.
	tmps, _ := filepath.Glob(filepath.Join(dir, ".put-*"))
	if len(tmps) != 0 {
		t.Errorf("leaked temp files: %v", tmps)
	}
	if st := a.Stats(); st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 0 corrupt", st)
	}
}

func TestFingerprintChangeIsFullMiss(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, Options{Fingerprint: "mh1:old"})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(old, "")
	if err := old.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := old.Get(k); !ok {
		t.Fatal("warm store missed")
	}
	// A model edit changes the fingerprint; every key the new store derives
	// must land beside, never on, the old entries.
	niu, err := Open(dir, Options{Fingerprint: "mh1:new"})
	if err != nil {
		t.Fatal(err)
	}
	nk := testKey(niu, "")
	if nk == k {
		t.Fatal("fingerprint change did not change the key")
	}
	if _, ok := niu.Get(nk); ok {
		t.Fatal("new fingerprint hit an old entry")
	}
}

func TestGCEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	res := testResult()
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = testKey(s, strings.Repeat("x", i+1))
		if err := s.Put(keys[i], res); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes so LRU order is unambiguous (filesystem mtime
		// granularity can be coarse).
		old := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(s.path(keys[i]), old, old); err != nil {
			t.Fatal(err)
		}
	}
	entrySize := func(k Key) int64 {
		info, err := os.Stat(s.path(k))
		if err != nil {
			t.Fatal(err)
		}
		return info.Size()
	}(keys[0])

	// Cap the store at two entries: GC must remove the two oldest.
	capped, err := Open(dir, Options{MaxBytes: 2 * entrySize})
	if err != nil {
		t.Fatal(err)
	}
	removed, err := capped.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("GC removed %d, want 2", removed)
	}
	for i, k := range keys {
		_, err := os.Stat(s.path(k))
		if gone := os.IsNotExist(err); gone != (i < 2) {
			t.Errorf("entry %d: gone=%v, want oldest two evicted", i, gone)
		}
	}
	if st := capped.Stats(); st.Evicted != 2 {
		t.Errorf("stats = %+v, want 2 evicted", st)
	}
	// A second pass finds the store within budget.
	if removed, err := capped.GC(); err != nil || removed != 0 {
		t.Errorf("second GC: removed %d err %v", removed, err)
	}
}

func TestGCUnboundedNeverEvicts(t *testing.T) {
	s := testStore(t, Options{MaxBytes: -1})
	if err := s.Put(testKey(s, ""), testResult()); err != nil {
		t.Fatal(err)
	}
	if removed, err := s.GC(); err != nil || removed != 0 {
		t.Errorf("GC on unbounded store: removed %d err %v", removed, err)
	}
}

func TestVerifySample(t *testing.T) {
	keys := make([]Key, 0, 256)
	s := testStore(t, Options{})
	var th [sha256.Size]byte
	for i := 0; i < 256; i++ {
		th[0] = byte(i)
		keys = append(keys, s.Key(th, "DVA", sim.DefaultConfig(1), ""))
	}
	for _, k := range keys {
		if VerifySample(k, 0) {
			t.Fatalf("fraction 0 selected %s", k)
		}
		if !VerifySample(k, 1) {
			t.Fatalf("fraction 1 skipped %s", k)
		}
		if VerifySample(k, 0.5) != VerifySample(k, 0.5) {
			t.Fatalf("non-deterministic selection for %s", k)
		}
	}
	// The selection rate should roughly track the fraction.
	n := 0
	for _, k := range keys {
		if VerifySample(k, 0.5) {
			n++
		}
	}
	if n < 64 || n > 192 {
		t.Errorf("fraction 0.5 selected %d/256 keys", n)
	}
}

func TestKeySeparatesInputs(t *testing.T) {
	s := testStore(t, Options{})
	var th, th2 [sha256.Size]byte
	th2[0] = 1
	base := s.Key(th, "DVA", sim.DefaultConfig(30), "")
	cfg2 := sim.DefaultConfig(30)
	cfg2.MemLatency = 31
	distinct := []Key{
		s.Key(th2, "DVA", sim.DefaultConfig(30), ""),
		s.Key(th, "REF", sim.DefaultConfig(30), ""),
		s.Key(th, "DVA", cfg2, ""),
		s.Key(th, "DVA", sim.DefaultConfig(30), "window=16"),
	}
	for i, k := range distinct {
		if k == base {
			t.Errorf("variant %d collided with base key", i)
		}
	}
	// SlowTick is normalized out: both tick modes share one entry.
	slow := sim.DefaultConfig(30)
	slow.SlowTick = true
	if s.Key(th, "DVA", slow, "") != base {
		t.Error("SlowTick changed the key; fast and slow tick must share entries")
	}
}

func TestGCRemovesAgedTempOrphans(t *testing.T) {
	s := testStore(t, Options{})
	k := testKey(s, "")
	if err := s.Put(k, testResult()); err != nil {
		t.Fatal(err)
	}
	// Plant two temp files as a crashed writer would leave them: one aged
	// past the grace period (an orphan), one fresh (an in-flight write).
	orphan := filepath.Join(s.Dir(), ".put-123456")
	fresh := filepath.Join(s.Dir(), ".put-654321")
	for _, p := range []string{orphan, fresh} {
		if err := os.WriteFile(p, []byte("torn partial entry"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempOrphanGrace)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}

	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("GC removed %d files, want 1 (the aged orphan)", removed)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("aged .put-* orphan survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh .put-* temp file was removed; GC must leave in-flight writes alone")
	}
	if st := s.Stats(); st.Orphans != 1 {
		t.Errorf("Stats.Orphans = %d, want 1", st.Orphans)
	}
	// The live entry is untouched and still served.
	if _, ok := s.Get(k); !ok {
		t.Error("live entry lost during orphan sweep")
	}
}

func TestGCOrphanSweepIgnoresSizeCap(t *testing.T) {
	// Orphan removal is lifecycle hygiene, not size enforcement: it happens
	// even when the store is unbounded and under any cap.
	s := testStore(t, Options{MaxBytes: -1})
	orphan := filepath.Join(s.Dir(), ".put-unbounded")
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tempOrphanGrace)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	if removed, err := s.GC(); err != nil || removed != 1 {
		t.Errorf("GC on unbounded store: removed %d err %v, want 1 orphan removed", removed, err)
	}
}
