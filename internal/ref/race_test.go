//go:build race

package ref

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation guards skip under -race: instrumentation defeats the
// escape analysis the guards depend on.
const raceEnabled = true
