//go:build !race

package ref

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
