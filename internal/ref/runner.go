package ref

import (
	"decvec/internal/isa"
	"decvec/internal/mem"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// Runner is a reusable REF simulation arena: the machine's scoreboards,
// memory system and statistics kept alive across runs. A zero Runner is
// ready to use; every run resets the machine in place (see the Reset
// contract in internal/sim/arena.go), so a recorder-off steady-state run
// performs no heap allocation. A Runner is not safe for concurrent use;
// pool idle Runners in a sim.RunPool.
type Runner struct {
	m  machine
	ss trace.SliceStream
}

// NewRunner returns an empty Runner.
func NewRunner() *Runner { return &Runner{} }

// Run simulates the trace under cfg on the pooled machine and returns a
// freshly allocated result (safe to retain; never aliases Runner state).
func (r *Runner) Run(src trace.Source, cfg sim.Config) (*sim.Result, error) {
	res := new(sim.Result)
	if err := r.runInto(res, src, cfg, nil, nil); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto simulates the trace under cfg, overwriting every field of res.
// A warmed (res, Runner) pair runs without allocating.
func (r *Runner) RunInto(res *sim.Result, src trace.Source, cfg sim.Config) error {
	return r.runInto(res, src, cfg, nil, nil)
}

// RunRecordedInto is RunInto with an optional event recorder. Recording is
// passive: res is bit-identical to a recorder-off run.
func (r *Runner) RunRecordedInto(res *sim.Result, src trace.Source, cfg sim.Config, rec *sim.Recorder) error {
	return r.runInto(res, src, cfg, nil, rec)
}

func (r *Runner) runInto(res *sim.Result, src trace.Source, cfg sim.Config, hook func(in *isa.Inst, issued int64), rec *sim.Recorder) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m := &r.m
	m.reset(cfg)
	m.rec = rec
	var st trace.Stream
	if sl, ok := src.(*trace.Slice); ok {
		r.ss.Reset(sl)
		st = &r.ss
	} else {
		st = src.Stream()
	}
	now := m.run(st, hook)
	*res = sim.Result{
		Arch:    "REF",
		Config:  cfg,
		Cycles:  now,
		States:  m.states,
		Counts:  m.counts,
		Traffic: m.traffic,
		Stalls:  m.stalls,

		ScalarCacheHits:   m.cache.Hits,
		ScalarCacheMisses: m.cache.Misses,
	}
	return nil
}

// reset restores the machine to power-on state for a new run under cfg,
// reusing the memory-system allocations when their geometry still matches.
// The observable behaviour after reset is bit-identical to a fresh machine,
// which the arena-reuse equivalence suite pins.
func (m *machine) reset(cfg sim.Config) {
	m.cfg = cfg
	ports := cfg.MemPorts
	if ports < 1 {
		ports = 1
	}
	if m.bus == nil || m.bus.Ports() != ports {
		m.bus = mem.NewBus(cfg.MemPorts)
	} else {
		m.bus.Reset()
	}
	if m.cache == nil || m.cache.Lines() != cfg.ScalarCacheLines || m.cache.LineBytes() != cfg.ScalarCacheLineBytes {
		m.cache = mem.NewCache(cfg.ScalarCacheLines, cfg.ScalarCacheLineBytes)
	} else {
		m.cache.Reset()
	}
	m.aReady = [isa.NumARegs]int64{}
	m.sReady = [isa.NumSRegs]int64{}
	m.vRegs = [isa.NumVRegs]vreg{}
	m.fu1Busy, m.fu2Busy = 0, 0
	m.states = sim.StateStats{}
	m.traffic = sim.MemTraffic{}
	m.counts = sim.Counts{}
	m.stalls = sim.StallCounts{}
	m.rec = nil
	m.maxDone = 0
}
