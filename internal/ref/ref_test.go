package ref

import (
	"testing"

	"decvec/internal/isa"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// testCfg returns a configuration with small, round pipeline depths so the
// expected cycle counts below can be derived by hand:
// add depth 2, mul depth 3, chain delay 1.
func testCfg(latency int64) sim.Config {
	cfg := sim.DefaultConfig(latency)
	cfg.AddDepth = 2
	cfg.MulDepth = 3
	cfg.DivDepth = 5
	cfg.SqrtDepth = 5
	cfg.QMovDepth = 1
	return cfg
}

func mkTrace(insts ...isa.Inst) *trace.Slice {
	for i := range insts {
		insts[i].Seq = int64(i)
	}
	return &trace.Slice{TraceName: "test", Insts: insts}
}

func run(t *testing.T, cfg sim.Config, insts ...isa.Inst) *sim.Result {
	t.Helper()
	tr := mkTrace(insts...)
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("invalid test trace: %v", err)
	}
	r, err := Run(tr, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func vadd(dst, s1, s2 isa.Reg, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpAdd, Dst: dst, Src1: s1, Src2: s2, VL: vl}
}

func vmul(dst, s1, s2 isa.Reg, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorALU, Op: isa.OpMul, Dst: dst, Src1: s1, Src2: s2, VL: vl}
}

func vld(dst isa.Reg, base uint64, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorLoad, Dst: dst, Base: base, VL: vl, Stride: 1}
}

func vst(data isa.Reg, base uint64, vl int) isa.Inst {
	return isa.Inst{Class: isa.ClassVectorStore, Dst: data, Base: base, VL: vl, Stride: 1}
}

func TestScalarALUOneCycle(t *testing.T) {
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(0)})
	if r.Cycles != 1 {
		t.Errorf("Cycles = %d, want 1", r.Cycles)
	}
	if r.Counts.ScalarInsts != 1 || r.Counts.VectorInsts != 0 {
		t.Errorf("counts: %+v", r.Counts)
	}
}

func TestSingleVectorAdd(t *testing.T) {
	// Issue at 0, FU for 8 cycles, register complete at 0+depth(2)+8 = 10.
	r := run(t, testCfg(10), vadd(isa.V(0), isa.V(1), isa.V(2), 8))
	if r.Cycles != 10 {
		t.Errorf("Cycles = %d, want 10", r.Cycles)
	}
	if r.Counts.VectorOps != 8 {
		t.Errorf("VectorOps = %d", r.Counts.VectorOps)
	}
}

func TestTwoIndependentAddsUseBothFUs(t *testing.T) {
	// First add on FU1 at 0; second on FU2 at 1 (dispatch is one per
	// cycle); completes 1+2+8 = 11.
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(4), isa.V(5), 8),
		vadd(isa.V(1), isa.V(6), isa.V(7), 8))
	if r.Cycles != 11 {
		t.Errorf("Cycles = %d, want 11", r.Cycles)
	}
}

func TestFUChaining(t *testing.T) {
	// Dependent add chains one cycle behind its producer:
	// i0 at 0, i1 at 1, completes 1+2+8 = 11.
	r := run(t, testCfg(10),
		vadd(isa.V(2), isa.V(0), isa.V(1), 8),
		vadd(isa.V(3), isa.V(2), isa.V(1), 8))
	if r.Cycles != 11 {
		t.Errorf("Cycles = %d, want 11", r.Cycles)
	}
}

func TestMulGoesToFU2AddToFU1(t *testing.T) {
	// Two FU2-only muls serialize on FU2: second at 8, done 8+3+8 = 19.
	r := run(t, testCfg(10),
		vmul(isa.V(1), isa.V(0), isa.None, 8),
		vmul(isa.V(2), isa.V(0), isa.None, 8))
	if r.Cycles != 19 {
		t.Errorf("Cycles = %d, want 19", r.Cycles)
	}
	// A mul and an add run concurrently on different units.
	r = run(t, testCfg(10),
		vmul(isa.V(1), isa.V(0), isa.None, 8),
		vadd(isa.V(2), isa.V(3), isa.None, 8))
	// mul: 0+3+8 = 11; add issues at 1 on FU1 and also completes 1+2+8 = 11.
	if r.Cycles != 11 {
		t.Errorf("Cycles = %d, want 11", r.Cycles)
	}
}

func TestNoChainingAfterLoad(t *testing.T) {
	// Load at 0, bus 8 cycles, register complete at 0+L+vl = 18 (L=10).
	// The consumer cannot chain; it issues at 18 and completes 18+2+8=28.
	r := run(t, testCfg(10),
		vld(isa.V(0), 0x1000, 8),
		vadd(isa.V(1), isa.V(0), isa.None, 8))
	if r.Cycles != 28 {
		t.Errorf("Cycles = %d, want 28", r.Cycles)
	}
}

func TestLoadLatencySensitivity(t *testing.T) {
	// The same trace at two latencies differs by exactly the delta: the
	// load-use chain is fully exposed in the reference architecture.
	mk := func() []isa.Inst {
		return []isa.Inst{
			vld(isa.V(0), 0x1000, 8),
			vadd(isa.V(1), isa.V(0), isa.None, 8),
		}
	}
	r10 := run(t, testCfg(10), mk()...)
	r50 := run(t, testCfg(50), mk()...)
	if d := r50.Cycles - r10.Cycles; d != 40 {
		t.Errorf("latency delta = %d, want 40", d)
	}
}

func TestBusSerializesLoads(t *testing.T) {
	// Two independent loads share the single memory port: second on the
	// bus at 8, data complete 8+10+8 = 26.
	r := run(t, testCfg(10),
		vld(isa.V(0), 0x1000, 8),
		vld(isa.V(1), 0x2000, 8))
	if r.Cycles != 26 {
		t.Errorf("Cycles = %d, want 26", r.Cycles)
	}
	if r.Traffic.LoadElems != 16 {
		t.Errorf("LoadElems = %d", r.Traffic.LoadElems)
	}
}

func TestStoreChainsFromFU(t *testing.T) {
	// add at 0; store chains at 1, bus [1,9); add completes at 10.
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.V(2), 8),
		vst(isa.V(0), 0x1000, 8))
	if r.Cycles != 10 {
		t.Errorf("Cycles = %d, want 10", r.Cycles)
	}
	if r.Traffic.StoreElems != 8 {
		t.Errorf("StoreElems = %d", r.Traffic.StoreElems)
	}
}

func TestStoreLatencyInvisible(t *testing.T) {
	// Stores never pay memory latency: same cycles at L=10 and L=90.
	mk := func() []isa.Inst {
		return []isa.Inst{
			vadd(isa.V(0), isa.V(1), isa.V(2), 8),
			vst(isa.V(0), 0x1000, 8),
		}
	}
	a := run(t, testCfg(10), mk()...)
	b := run(t, testCfg(90), mk()...)
	if a.Cycles != b.Cycles {
		t.Errorf("store latency visible: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestWAWSerializes(t *testing.T) {
	// Second writer of V0 waits for the first to complete (0+2+8 = 10),
	// then completes 10+2+8 = 20.
	r := run(t, testCfg(10),
		vadd(isa.V(0), isa.V(1), isa.None, 8),
		vadd(isa.V(0), isa.V(2), isa.None, 8))
	if r.Cycles != 20 {
		t.Errorf("Cycles = %d, want 20", r.Cycles)
	}
}

func TestWARBlocksOverwrite(t *testing.T) {
	// add reads V0 until cycle 8; the load may only rewrite V0 then:
	// issue 8, complete 8+10+8 = 26.
	r := run(t, testCfg(10),
		vadd(isa.V(2), isa.V(0), isa.None, 8),
		vld(isa.V(0), 0x1000, 8))
	if r.Cycles != 26 {
		t.Errorf("Cycles = %d, want 26", r.Cycles)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// ld V0 at 0 (done 18); dependent add waits to 18; the next load is
	// stuck behind it in dispatch order and issues at 19 (bus long free),
	// completing 19+10+8 = 37. An out-of-order machine would have hoisted
	// it; the reference architecture cannot.
	r := run(t, testCfg(10),
		vld(isa.V(0), 0x1000, 8),
		vadd(isa.V(1), isa.V(0), isa.None, 8),
		vld(isa.V(2), 0x2000, 8))
	if r.Cycles != 37 {
		t.Errorf("Cycles = %d, want 37", r.Cycles)
	}
}

func TestScalarCacheMissAndHit(t *testing.T) {
	// Miss: bus 1 cycle, S0 at 0+1+10 = 11. Hit on the same line at 1:
	// S1 at 2. The dependent op on S0 issues at 11, done 12.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(0), Base: 0x1000},
		isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(1), Base: 0x1008},
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(2), Src1: isa.S(0)})
	if r.Cycles != 12 {
		t.Errorf("Cycles = %d, want 12", r.Cycles)
	}
	if r.ScalarCacheHits != 1 || r.ScalarCacheMisses != 1 {
		t.Errorf("cache: %d hits, %d misses", r.ScalarCacheHits, r.ScalarCacheMisses)
	}
	if r.Traffic.LoadElems != 1 {
		t.Errorf("LoadElems = %d (hits must not reach memory)", r.Traffic.LoadElems)
	}
}

func TestVectorStoreInvalidatesScalarCache(t *testing.T) {
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(0), Base: 0x1000}, // allocate line
		vst(isa.V(0), 0x1000, 8), // overwrite it
		isa.Inst{Class: isa.ClassScalarLoad, Dst: isa.S(1), Base: 0x1000})
	if r.ScalarCacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (vector store must invalidate)", r.ScalarCacheMisses)
	}
}

func TestReduceProducesScalar(t *testing.T) {
	// Reduce at 0, S0 ready at 0+2+8 = 10; dependent scalar op at 10,
	// done 11.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassReduce, Op: isa.OpAdd, Dst: isa.S(0), Src1: isa.V(0), VL: 8},
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(1), Src1: isa.S(0)})
	if r.Cycles != 11 {
		t.Errorf("Cycles = %d, want 11", r.Cycles)
	}
}

func TestScalarOperandGatesVectorIssue(t *testing.T) {
	// S1 written at 0 (ready 1); the vector mul using it issues at 1.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: isa.S(1)},
		vmul(isa.V(1), isa.V(0), isa.S(1), 8))
	if r.Cycles != 12 { // 1+3+8
		t.Errorf("Cycles = %d, want 12", r.Cycles)
	}
}

func TestStateAccountingSumsToTotal(t *testing.T) {
	r := run(t, testCfg(30),
		vld(isa.V(0), 0x1000, 16),
		vadd(isa.V(1), isa.V(0), isa.None, 16),
		vmul(isa.V(2), isa.V(1), isa.None, 16),
		vst(isa.V(2), 0x8000, 16),
		vld(isa.V(3), 0x2000, 16))
	if got := r.States.Total(); got != r.Cycles {
		t.Errorf("state cycles %d != total %d", got, r.Cycles)
	}
	if r.States.Idle() == 0 {
		t.Error("a load-use chain at L=30 must show idle cycles")
	}
}

func TestBBAndSpillCounts(t *testing.T) {
	ld := vld(isa.V(0), 0x1000, 8)
	ld.Spill = true
	br := isa.Inst{Class: isa.ClassBranch, Op: isa.OpCmp, Src1: isa.A(0), BBEnd: true}
	r := run(t, testCfg(10), ld, br)
	if r.Counts.SpillMemOps != 1 || r.Counts.BasicBlocks != 1 || r.Counts.MemInsts != 1 {
		t.Errorf("counts: %+v", r.Counts)
	}
}

func TestGatherScatterTiming(t *testing.T) {
	// Gathers and scatters occupy the bus for VL cycles like any other
	// vector reference.
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassGather, Dst: isa.V(0), Base: 0x1000, VL: 8, Stride: 1},
		isa.Inst{Class: isa.ClassScatter, Dst: isa.V(1), Base: 0x2000, VL: 8, Stride: 1})
	// Gather: bus [0,8), ready 18. Scatter independent (V1): bus [8,16).
	if r.Cycles != 18 {
		t.Errorf("Cycles = %d, want 18", r.Cycles)
	}
	if r.Traffic.LoadElems != 8 || r.Traffic.StoreElems != 8 {
		t.Errorf("traffic: %+v", r.Traffic)
	}
}

func TestVSetAndBranchAreOneCycle(t *testing.T) {
	r := run(t, testCfg(10),
		isa.Inst{Class: isa.ClassVSetVL, VL: 32},
		isa.Inst{Class: isa.ClassVSetVS, Stride: 2},
		isa.Inst{Class: isa.ClassNop},
		isa.Inst{Class: isa.ClassBranch, Op: isa.OpCmp, Src1: isa.A(0), BBEnd: true})
	if r.Cycles != 4 {
		t.Errorf("Cycles = %d, want 4", r.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []isa.Inst {
		return []isa.Inst{
			vld(isa.V(0), 0x1000, 16),
			vmul(isa.V(1), isa.V(0), isa.None, 16),
			vst(isa.V(1), 0x2000, 16),
		}
	}
	a := run(t, testCfg(30), mk()...)
	b := run(t, testCfg(30), mk()...)
	if a.Cycles != b.Cycles || a.States != b.States || a.Traffic != b.Traffic {
		t.Error("REF runs are not deterministic")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := testCfg(10)
	cfg.MemLatency = 0
	if _, err := Run(mkTrace(), cfg); err == nil {
		t.Error("expected configuration error")
	}
}

func TestRunWithHookSeesEveryInstruction(t *testing.T) {
	var seen []int64
	tr := mkTrace(
		vld(isa.V(0), 0x1000, 8),
		vadd(isa.V(1), isa.V(0), isa.None, 8))
	_, err := RunWithHook(tr, testCfg(10), func(in *isa.Inst, e int64) {
		seen = append(seen, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 18 {
		t.Errorf("hook issue cycles = %v, want [0 18]", seen)
	}
}
