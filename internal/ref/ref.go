// Package ref implements the reference vector architecture of the paper's
// §2.1: a close model of the Convex C3400. One in-order dispatch unit
// issues at most one instruction per cycle; the vector part has two fully
// pipelined computation units (FU1 restricted, FU2 general) and one memory
// port. Chaining between functional units and from functional units to the
// store unit is fully flexible; there is no chaining after a vector load —
// a consumer of a loaded register waits for the load's last element.
package ref

import (
	"fmt"

	"decvec/internal/isa"
	"decvec/internal/mem"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// vreg is the scoreboard entry of one vector register.
type vreg struct {
	// writeStart is when the in-flight (or last) writer started producing
	// elements; writeReady is when the full register is valid.
	writeStart int64
	writeReady int64
	// chainable is true when the writer delivers elements one per cycle
	// from writeStart (functional units and, in the DVA, QMOV units);
	// false for memory loads, which may return elements out of order.
	chainable bool
	// readBusyUntil is the latest cycle at which an in-flight reader is
	// still consuming the register (WAR hazard for the next writer).
	readBusyUntil int64
}

// machine is the simulation state of one run.
type machine struct {
	cfg   sim.Config
	bus   *mem.Bus
	cache *mem.Cache

	aReady [isa.NumARegs]int64
	sReady [isa.NumSRegs]int64
	vRegs  [isa.NumVRegs]vreg

	fu1Busy int64 // cycle until which FU1 is occupied
	fu2Busy int64

	states  sim.StateStats
	traffic sim.MemTraffic
	counts  sim.Counts
	stalls  sim.StallCounts
	// rec is the optional event recorder; nil when disabled.
	rec *sim.Recorder

	// maxDone tracks the latest completion event of anything in flight; the
	// run ends there.
	maxDone int64
}

// Run simulates the trace on the reference architecture under cfg and
// returns the measured result.
func Run(src trace.Source, cfg sim.Config) (*sim.Result, error) {
	return simulate(src, cfg, nil, nil)
}

// RunWithHook is Run with an optional per-instruction callback invoked with
// each instruction and its issue cycle — a debugging and testing aid for
// inspecting the schedule the machine produced.
func RunWithHook(src trace.Source, cfg sim.Config, hook func(in *isa.Inst, issued int64)) (*sim.Result, error) {
	return simulate(src, cfg, hook, nil)
}

// RunRecorded is Run with an optional event recorder. Recording is passive:
// the returned result is bit-identical to a plain Run; the recorder
// additionally collects issue, stall and bus-grant events.
func RunRecorded(src trace.Source, cfg sim.Config, rec *sim.Recorder) (*sim.Result, error) {
	return simulate(src, cfg, nil, rec)
}

func simulate(src trace.Source, cfg sim.Config, hook func(in *isa.Inst, issued int64), rec *sim.Recorder) (*sim.Result, error) {
	var r Runner
	res := new(sim.Result)
	if err := r.runInto(res, src, cfg, hook, rec); err != nil {
		return nil, err
	}
	return res, nil
}

// run is the dispatch loop: it replays the stream instruction by
// instruction and returns the cycle at which the machine drained. The REF
// core is the degenerate one-unit case of the per-unit wake scheduler
// (DESIGN.md §4i): a single in-order dispatch unit whose wake time is the
// closed-form earliestIssue, so the clock jumps straight from issue to
// issue — there is no wheel, no dirty bits, and no per-cycle loop to skip.
//
// declint:hotpath
func (m *machine) run(st trace.Stream, hook func(in *isa.Inst, issued int64)) int64 {
	var now int64 // earliest cycle the next instruction may issue
	for {
		in, ok := st.Next()
		if !ok {
			break
		}
		m.count(in)
		e, why := m.earliestIssue(in, now)
		if wait := e - now; wait > 0 {
			// The dispatch unit sat idle for wait cycles; attribute them to
			// the binding hazard.
			m.stalls.Add(why, wait)
			if m.rec != nil {
				m.rec.StallN(now, why, wait)
			}
		}
		if hook != nil {
			hook(in, e)
		}
		if m.rec != nil {
			m.rec.Issue(e, sim.ProcREF, in.Seq, in.Class.String())
		}
		m.accountStates(now, e)
		m.issue(in, e)
		// In-order single issue: the next instruction cannot issue in the
		// same cycle.
		m.accountStates(e, e+1)
		now = e + 1
	}
	// Drain: account the tail until the last in-flight operation finishes.
	if m.maxDone > now {
		m.accountStates(now, m.maxDone)
		now = m.maxDone
	}
	return now
}

func (m *machine) count(in *isa.Inst) {
	if in.IsVector() {
		m.counts.VectorInsts++
		m.counts.VectorOps += int64(in.VL)
	} else {
		m.counts.ScalarInsts++
	}
	if in.Class.IsMemory() {
		m.counts.MemInsts++
		if in.Spill {
			m.counts.SpillMemOps++
		}
	}
	if in.BBEnd {
		m.counts.BasicBlocks++
	}
}

// scalarReady returns the cycle at which a scalar (A/S) register is valid.
func (m *machine) scalarReady(r isa.Reg) int64 {
	switch r.Kind {
	case isa.RegA:
		return m.aReady[r.Idx]
	case isa.RegS:
		return m.sReady[r.Idx]
	default: // declint:nonexhaustive — RegNone has no readiness and vector readiness lives in srcReadyVector
		return 0
	}
}

func (m *machine) setScalarReady(r isa.Reg, c int64) {
	switch r.Kind {
	case isa.RegA:
		m.aReady[r.Idx] = c
	case isa.RegS:
		m.sReady[r.Idx] = c
	default: // declint:nonexhaustive — only scalar registers have scalar readiness; RegNone/RegV writes land elsewhere
	}
	m.done(c)
}

func (m *machine) done(c int64) {
	if c > m.maxDone {
		m.maxDone = c
	}
}

// srcReadyVector returns the earliest cycle a consumer may start reading
// vector register r, honouring chaining rules.
func (m *machine) srcReadyVector(r isa.Reg) int64 {
	v := &m.vRegs[r.Idx]
	if v.chainable {
		// Flexible chaining: the consumer may start any time after the
		// producer, trailing by the chain delay.
		return v.writeStart + m.cfg.ChainDelay
	}
	return v.writeReady
}

// srcReady returns the data-hazard bound for one source operand.
func (m *machine) srcReady(r isa.Reg) int64 {
	switch r.Kind {
	case isa.RegNone:
		return 0
	case isa.RegV:
		return m.srcReadyVector(r)
	default: // declint:nonexhaustive — RegA and RegS share the scalar scoreboard
		return m.scalarReady(r)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// bump raises *e to cand when cand is later, recording the reason; ties
// keep the earlier-diagnosed cause, exactly mirroring max64's "first
// contributor wins" semantics so issue cycles are unchanged by attribution.
func bump(e *int64, why *sim.StallReason, cand int64, r sim.StallReason) {
	if cand > *e {
		*e = cand
		*why = r
	}
}

// earliestIssue computes the first cycle >= lb at which the instruction can
// issue, considering data, structural and register-file hazards. The second
// result attributes the wait (e - lb, if any) to the binding hazard.
func (m *machine) earliestIssue(in *isa.Inst, lb int64) (int64, sim.StallReason) {
	e := lb
	why := sim.StallRefData
	// Source operands.
	bump(&e, &why, m.srcReady(in.Src1), sim.StallRefData)
	bump(&e, &why, m.srcReady(in.Src2), sim.StallRefData)
	// Stores read their data through Dst.
	if in.Class.IsStore() || in.Class == isa.ClassBranch {
		bump(&e, &why, m.srcReady(in.Dst), sim.StallRefData)
	}
	// Gathers/scatters read an index vector through Src1 (already covered)
	// and their base from Src2 when present.

	// Destination hazards.
	if !in.Class.IsStore() && in.Dst.Kind == isa.RegV {
		v := &m.vRegs[in.Dst.Idx]
		// WAW: the previous writer must have completed; WAR: in-flight
		// readers must have drained the old value.
		bump(&e, &why, v.writeReady, sim.StallRefDst)
		bump(&e, &why, v.readBusyUntil, sim.StallRefDst)
	}
	if !in.Class.IsStore() && (in.Dst.Kind == isa.RegA || in.Dst.Kind == isa.RegS) {
		bump(&e, &why, m.scalarReady(in.Dst), sim.StallRefDst)
	}

	// Structural hazards.
	switch in.Class {
	case isa.ClassVectorALU, isa.ClassReduce:
		bump(&e, &why, m.fuAvail(in.Op, e), sim.StallRefFU)
	case isa.ClassVectorLoad, isa.ClassVectorStore, isa.ClassGather, isa.ClassScatter:
		bump(&e, &why, m.bus.FreeCycle(), sim.StallRefBus)
	case isa.ClassScalarLoad, isa.ClassScalarStore:
		// Cache hits need no bus; conservatively we cannot know hit/miss
		// before probing at issue, but the probe result is deterministic,
		// so peek: misses and stores need the bus.
		if in.Class == isa.ClassScalarStore || !m.peekHit(in.Base) {
			bump(&e, &why, m.bus.FreeCycle(), sim.StallRefBus)
		}
	default: // declint:nonexhaustive — nop, scalar ALU, branch and vsetvl/vsetvs contend for no structural resource
	}
	return e, why
}

// peekHit probes the cache without updating it.
func (m *machine) peekHit(addr uint64) bool {
	// Lookup allocates on miss, so run it on a throwaway check: replicate
	// the index computation via a second probe-free path. To keep the
	// cache encapsulated we accept a tiny model simplification: probing at
	// earliest-issue time equals probing at issue time because nothing
	// between them can change the cache (dispatch is blocked).
	return m.cache.WouldHit(addr)
}

// fuAvail returns the earliest cycle >= e at which some eligible functional
// unit is free, preferring FU1 for FU1-capable work so FU2 stays available
// for multiplies.
func (m *machine) fuAvail(op isa.Opcode, e int64) int64 {
	if !op.FU1Capable() {
		return m.fu2Busy
	}
	// Either unit; take the one that frees first, preferring FU1 on ties.
	if m.fu1Busy <= m.fu2Busy {
		return m.fu1Busy
	}
	return m.fu2Busy
}

// pickFU selects the unit for a vector computation issuing at cycle e and
// marks it busy for vl cycles. FU1-capable work always prefers FU1 when it
// is free, keeping FU2 available for multiplies, divisions and square
// roots. It returns true when FU1 was used.
func (m *machine) pickFU(op isa.Opcode, e int64, vl int64) bool {
	if op.FU1Capable() && m.fu1Busy <= e {
		m.fu1Busy = e + vl
		m.done(m.fu1Busy)
		return true
	}
	m.fu2Busy = e + vl
	m.done(m.fu2Busy)
	return false
}

// issue applies the effects of issuing the instruction at cycle e.
func (m *machine) issue(in *isa.Inst, e int64) {
	vl := int64(in.VL)
	switch in.Class {
	case isa.ClassNop, isa.ClassVSetVL, isa.ClassVSetVS, isa.ClassBranch:
		// One cycle through the scalar part; no architectural timing state.

	case isa.ClassScalarALU:
		if in.Dst.Kind != isa.RegNone {
			m.setScalarReady(in.Dst, e+1)
		}

	case isa.ClassScalarLoad:
		if m.cache.Lookup(in.Base) {
			m.setScalarReady(in.Dst, e+1)
		} else {
			m.bus.Reserve(e, 1)
			m.traffic.LoadElems++
			m.setScalarReady(in.Dst, e+1+m.cfg.AccessLatency(in.Base, in.Seq))
		}

	case isa.ClassScalarStore:
		m.bus.Reserve(e, 1)
		m.traffic.StoreElems++
		m.cache.Store(in.Base)
		m.done(e + 1)

	case isa.ClassVectorLoad, isa.ClassGather:
		m.bus.Reserve(e, vl)
		m.traffic.LoadElems += vl
		v := &m.vRegs[in.Dst.Idx]
		v.writeStart = e
		v.writeReady = e + m.cfg.AccessLatency(in.Base, in.Seq) + vl
		v.chainable = false
		m.done(v.writeReady)

	case isa.ClassVectorStore, isa.ClassScatter:
		m.bus.Reserve(e, vl)
		m.traffic.StoreElems += vl
		v := &m.vRegs[in.Dst.Idx]
		v.readBusyUntil = max64(v.readBusyUntil, e+vl)
		m.invalidateRange(in)
		m.done(e + vl)

	case isa.ClassVectorALU:
		m.pickFU(in.Op, e, vl)
		m.markVectorRead(in.Src1, e, vl)
		m.markVectorRead(in.Src2, e, vl)
		v := &m.vRegs[in.Dst.Idx]
		v.writeStart = e
		v.writeReady = e + m.cfg.Depth(in.Op) + vl
		v.chainable = true
		m.done(v.writeReady)

	case isa.ClassReduce:
		m.pickFU(in.Op, e, vl)
		m.markVectorRead(in.Src1, e, vl)
		m.markVectorRead(in.Src2, e, vl)
		m.setScalarReady(in.Dst, e+m.cfg.Depth(in.Op)+vl)

	default:
		panic(fmt.Sprintf("ref: unhandled class in %s", in))
	}
}

func (m *machine) markVectorRead(r isa.Reg, e, vl int64) {
	if r.Kind == isa.RegV {
		v := &m.vRegs[r.Idx]
		v.readBusyUntil = max64(v.readBusyUntil, e+vl)
	}
}

// invalidateRange drops scalar cache lines covered by a vector store to
// keep the (timing-only) cache model coherent.
func (m *machine) invalidateRange(in *isa.Inst) {
	if in.Class == isa.ClassScatter {
		// Conservatively ignored: the cache holds only scalar data and the
		// workloads never scatter onto scalar-cached addresses.
		return
	}
	m.cache.InvalidateStrided(in.Base, in.Stride*isa.ElemSize, in.VL)
}

// accountStates attributes every cycle of [from, to) to its (FU2, FU1, LD)
// state. Unit occupancy cannot change inside the window (no issues happen
// there), so the window is split only at the units' busy-until boundaries.
// With SlowTick set it instead observes every cycle individually — the
// reference mode the equivalence suite checks the windowed accounting
// against (see DESIGN.md "Idle-skip advancement").
func (m *machine) accountStates(from, to int64) {
	if m.cfg.SlowTick {
		for c := from; c < to; c++ {
			m.states.Observe(sim.MakeState(c < m.fu2Busy, c < m.fu1Busy, m.bus.BusyAt(c)))
		}
		return
	}
	if from >= to {
		return
	}
	busFree := m.bus.FreeCycle()
	if from+1 == to {
		// Single-cycle window (every issue cycle): no boundary scan needed.
		m.states.ObserveN(sim.MakeState(from < m.fu2Busy, from < m.fu1Busy, from < busFree), 1)
		return
	}
	for c := from; c < to; {
		fu2 := c < m.fu2Busy
		fu1 := c < m.fu1Busy
		ld := c < busFree
		next := to
		for _, b := range [...]int64{m.fu2Busy, m.fu1Busy, busFree} {
			if b > c && b < next {
				next = b
			}
		}
		m.states.ObserveN(sim.MakeState(fu2, fu1, ld), next-c)
		c = next
	}
}
