package concdiscipline_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/concdiscipline"
)

func TestConcDiscipline(t *testing.T) {
	analysis.RunTest(t, "../testdata", concdiscipline.Analyzer, "concd/server", "concd/sweep")
}
