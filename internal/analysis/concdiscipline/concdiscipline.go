// Package concdiscipline implements the declint analyzer that polices the
// concurrent layers (internal/server, internal/experiments, internal/sweep):
//
//   - a sync.Mutex/RWMutex must not be held across a channel send, a
//     channel receive, a select without a default clause, or a
//     WaitGroup/Cond Wait — the classic shape of a lock-ordering deadlock
//     (the suite's flightGroup deliberately unlocks before it selects);
//   - a go statement must have a tracked lifecycle: either the immediately
//     preceding statement performs a WaitGroup.Add, or the goroutine body
//     itself defers a WaitGroup.Done (the server's detached-run registry
//     pattern). Fire-and-forget goroutines leak past graceful drain;
//   - a numeric field of a struct that carries its own mutex (a guarded
//     counter, like Suite.sims under Suite.mu) must only be mutated while
//     a lock on the same receiver is held. Methods whose name ends in
//     "Locked" document a caller-holds-the-lock contract and are exempt,
//     as are mutations of objects created locally in the same function.
//
// The analysis is a straight-line approximation: held-lock state flows
// through sequential statements and into nested blocks, and resets at
// function-literal boundaries (a closure generally runs on another
// goroutine). It has no interprocedural view — which is exactly why the
// repository keeps lock regions short and local.
package concdiscipline

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"decvec/internal/analysis"
)

// concurrentPackages is the set of package basenames the analyzer polices.
var concurrentPackages = map[string]bool{
	"server":      true,
	"experiments": true,
	"sweep":       true,
}

// Analyzer is the concurrency-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "concdiscipline",
	Doc:  "no mutex held across channel ops or Wait, no untracked goroutines, no guarded counter mutated outside its lock",
	Applies: func(path string) bool {
		return concurrentPackages[analysis.PathBase(path)]
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := &scanner{
				pass:      pass,
				held:      map[string]bool{},
				body:      fd.Body,
				lockedFn:  strings.HasSuffix(fd.Name.Name, "Locked"),
				emptyFset: token.NewFileSet(),
			}
			sc.block(fd.Body.List)
		}
	}
	return nil
}

// scanner walks one function body with straight-line held-lock state.
type scanner struct {
	pass *analysis.Pass
	// held maps the printed lock expression ("s.mu") to true while a Lock
	// or RLock on it is live in the current statement sequence.
	held map[string]bool
	// body is the enclosing function body, used to recognize locally
	// created objects (their mutations need no lock yet).
	body *ast.BlockStmt
	// lockedFn is true for *Locked methods, which document that the caller
	// holds the receiver's lock.
	lockedFn  bool
	emptyFset *token.FileSet
}

// exprString renders an expression for held-set keys and diagnostics.
func (sc *scanner) exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, sc.emptyFset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// fork returns a scanner sharing the reporting state but with a copied
// held set, for nested blocks whose effects must not leak outward.
func (sc *scanner) fork() *scanner {
	held := make(map[string]bool, len(sc.held))
	for k := range sc.held {
		held[k] = true
	}
	return &scanner{pass: sc.pass, held: held, body: sc.body, lockedFn: sc.lockedFn, emptyFset: sc.emptyFset}
}

// fresh returns a scanner with no held locks, for function literals (which
// typically run on another goroutine or after the region ends).
func (sc *scanner) fresh(body *ast.BlockStmt) *scanner {
	return &scanner{pass: sc.pass, held: map[string]bool{}, body: body, emptyFset: sc.emptyFset}
}

func (sc *scanner) anyHeld() (string, bool) {
	for k := range sc.held {
		return k, true
	}
	return "", false
}

func (sc *scanner) block(stmts []ast.Stmt) {
	var prev ast.Stmt
	for _, s := range stmts {
		sc.stmt(s, prev)
		prev = s
	}
}

func (sc *scanner) stmt(s ast.Stmt, prev ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if base, kind := sc.lockOp(s.X); kind != "" {
			switch kind {
			case "lock":
				sc.held[base] = true
			case "unlock":
				delete(sc.held, base)
			}
			return
		}
		sc.expr(s.X)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held until return; it is not a
		// release point for the straight-line scan. Other deferred calls
		// run at return, outside the region — scan only their arguments.
		if _, kind := sc.lockOp(s.Call); kind != "" {
			return
		}
		for _, arg := range s.Call.Args {
			sc.expr(arg)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sc.fresh(lit.Body).block(lit.Body.List)
		}
	case *ast.SendStmt:
		if lock, held := sc.anyHeld(); held {
			sc.pass.Reportf(s.Pos(), "mutex %s held across channel send: unlock before communicating", lock)
		}
		sc.expr(s.Chan)
		sc.expr(s.Value)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if lock, held := sc.anyHeld(); held && !hasDefault {
			sc.pass.Reportf(s.Pos(), "mutex %s held across blocking select: unlock before communicating", lock)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sc.fork().block(cc.Body)
			}
		}
	case *ast.GoStmt:
		sc.checkGo(s, prev)
		for _, arg := range s.Call.Args {
			sc.expr(arg)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sc.fresh(lit.Body).block(lit.Body.List)
		}
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			sc.checkCounter(s.Pos(), lhs, s.Tok)
		}
		for _, e := range append(append([]ast.Expr{}, s.Lhs...), s.Rhs...) {
			sc.expr(e)
		}
	case *ast.IncDecStmt:
		sc.checkCounter(s.Pos(), s.X, s.Tok)
		sc.expr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.stmt(s.Init, nil)
		}
		sc.expr(s.Cond)
		sc.fork().block(s.Body.List)
		if s.Else != nil {
			sc.fork().stmt(s.Else, nil)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.stmt(s.Init, nil)
		}
		sc.expr(s.Cond)
		sc.fork().block(s.Body.List)
	case *ast.RangeStmt:
		sc.expr(s.X)
		sc.fork().block(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.stmt(s.Init, nil)
		}
		sc.expr(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.fork().block(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.fork().block(cc.Body)
			}
		}
	case *ast.BlockStmt:
		sc.fork().block(s.List)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sc.expr(e)
		}
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		if ls, ok := s.(*ast.LabeledStmt); ok {
			sc.stmt(ls.Stmt, prev)
		}
	default:
	}
}

// expr inspects one expression for channel receives, Wait calls and nested
// function literals. Nested literals are scanned with an empty held set.
func (sc *scanner) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sc.fresh(n.Body).block(n.Body.List)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if lock, held := sc.anyHeld(); held {
					sc.pass.Reportf(n.Pos(), "mutex %s held across channel receive: unlock before communicating", lock)
				}
			}
		case *ast.CallExpr:
			if recv, ok := sc.waitCall(n); ok {
				if lock, held := sc.anyHeld(); held {
					sc.pass.Reportf(n.Pos(), "mutex %s held across %s.Wait: unlock before blocking", lock, recv)
				}
			}
		}
		return true
	})
}

// lockOp classifies e as a Lock/RLock ("lock") or Unlock/RUnlock
// ("unlock") call on a sync.Mutex or sync.RWMutex and returns the printed
// receiver expression as the held-set key.
func (sc *scanner) lockOp(e ast.Expr) (base, kind string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	if !isSyncType(sc.pass.TypeOf(sel.X), "Mutex", "RWMutex") {
		return "", ""
	}
	return sc.exprString(sel.X), kind
}

// waitCall reports whether call is a Wait on a sync.WaitGroup or sync.Cond.
func (sc *scanner) waitCall(call *ast.CallExpr) (recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Wait" {
		return "", false
	}
	if !isSyncType(sc.pass.TypeOf(sel.X), "WaitGroup", "Cond") {
		return "", false
	}
	return sc.exprString(sel.X), true
}

// checkGo flags goroutines without a tracked lifecycle: the statement
// immediately before must Add on a WaitGroup, or the goroutine body must
// defer a WaitGroup.Done.
func (sc *scanner) checkGo(gs *ast.GoStmt, prev ast.Stmt) {
	if prev != nil && sc.hasWaitGroupCall(prev, "Add") {
		return
	}
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		for _, st := range lit.Body.List {
			if d, isDefer := st.(*ast.DeferStmt); isDefer && sc.isWaitGroupCall(d.Call, "Done") {
				return
			}
		}
	}
	sc.pass.Reportf(gs.Pos(),
		"goroutine has no tracked lifecycle: precede it with a WaitGroup.Add or defer Done inside the goroutine so shutdown can join it")
}

func (sc *scanner) hasWaitGroupCall(n ast.Node, method string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && sc.isWaitGroupCall(call, method) {
			found = true
		}
		return !found
	})
	return found
}

func (sc *scanner) isWaitGroupCall(call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	return isSyncType(sc.pass.TypeOf(sel.X), "WaitGroup")
}

// checkCounter flags mutations of numeric fields whose owning struct
// carries a mutex, outside a held lock on the same owner.
func (sc *scanner) checkCounter(pos token.Pos, lhs ast.Expr, tok token.Token) {
	if sc.lockedFn {
		return
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// The mutated field must be numeric.
	ft := sc.pass.TypeOf(sel)
	if ft == nil {
		return
	}
	basic, ok := ft.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return
	}
	// The owner struct must carry a mutex field.
	muName, ok := mutexFieldOf(sc.pass.TypeOf(sel.X))
	if !ok {
		return
	}
	owner := sc.exprString(sel.X)
	for lock := range sc.held {
		if lock == owner+"."+muName || strings.HasPrefix(lock, owner+".") {
			return
		}
	}
	// Freshly constructed local objects are not shared yet.
	if root := rootIdent(sel.X); root != nil {
		if obj, isVar := sc.pass.Info.Uses[root].(*types.Var); isVar && sc.body != nil &&
			obj.Pos() >= sc.body.Pos() && obj.Pos() < sc.body.End() {
			return
		}
	}
	sc.pass.Reportf(pos, "guarded counter %s.%s mutated without holding %s.%s", owner, sel.Sel.Name, owner, muName)
}

// rootIdent returns the leftmost identifier of a selector chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// mutexFieldOf returns the name of the first sync.Mutex/RWMutex field of
// the (possibly pointer-to) struct type t.
func mutexFieldOf(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncType(f.Type(), "Mutex", "RWMutex") {
			return f.Name(), true
		}
	}
	return "", false
}

// isSyncType reports whether t (or its pointee) is one of the named
// sync-package types.
func isSyncType(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
