package ctxdiscipline_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/ctxdiscipline"
)

func TestCtxDiscipline(t *testing.T) {
	analysis.RunTest(t, "../testdata", ctxdiscipline.Analyzer,
		"ctxd/inner", "ctxd/cmd/tool")
}
