// Package ctxdiscipline implements the declint analyzer that keeps
// context.Context flowing end-to-end through the suite and the server:
//
//   - a context parameter must be the first parameter (after the receiver),
//     in every function signature — declarations, literals, interface
//     methods and function types alike;
//   - a named context parameter must be used somewhere in the body; a
//     handler that accepts ctx and drops it silently breaks cancellation
//     for everything it calls (rename it to _ to opt out explicitly);
//   - context.Background() and context.TODO() are reserved for the entry
//     layers — the module root facade, cmd/* and examples/* — everywhere
//     else a fresh root context severs the caller's deadline and
//     cancellation, which is exactly the bug class Suite.RunCtx/WarmCtx
//     and the server handler chains exist to prevent.
//
// Test files are never linted (the loader parses non-test files only), so
// tests remain free to mint context.Background() at will.
package ctxdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"decvec/internal/analysis"
)

// Analyzer is the context-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc:  "context must be the first parameter, must not be dropped, and Background/TODO stay in the entry layers",
	Run:  run,
}

// entryLayer reports whether the package may legitimately mint root
// contexts: the module root facade (a single-segment import path) and any
// package under a cmd/ or examples/ segment.
func entryLayer(path string) bool {
	if !strings.Contains(path, "/") {
		return true
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func run(pass *analysis.Pass) error {
	entry := entryLayer(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkFirst(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkDropped(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkDropped(pass, n.Type, n.Body)
			case *ast.CallExpr:
				if !entry {
					checkRootContext(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkFirst flags context parameters that are not in first position.
// Visiting FuncType covers declarations, literals, interface methods and
// plain function types with one rule.
func checkFirst(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	// Walk fields, tracking the parameter index of each field's first name
	// (an unnamed field counts as one parameter).
	idx := 0
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if t != nil && isContext(t) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		idx += width
	}
}

// checkDropped flags named, non-blank context parameters that the function
// body never uses.
func checkDropped(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isContext(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(body, func(n ast.Node) bool {
				if used {
					return false
				}
				if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					used = true
				}
				return true
			})
			if !used {
				pass.Reportf(name.Pos(), "context parameter %s is dropped: propagate it or rename it to _", name.Name)
			}
		}
	}
}

// checkRootContext flags context.Background()/context.TODO() outside the
// entry layers.
func checkRootContext(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return
	}
	switch sel.Sel.Name {
	case "Background", "TODO":
		pass.Reportf(call.Pos(),
			"context.%s outside the entry layers severs the caller's cancellation: accept a ctx parameter instead", sel.Sel.Name)
	}
}
