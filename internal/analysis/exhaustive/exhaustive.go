// Package exhaustive implements the declint analyzer that keeps switches
// over the simulator enum families (isa.Class, isa.Opcode, isa.RegKind,
// sim.StallReason, sim.EventKind, sim.Proc, dva.uopKind, ...) from silently
// rotting when a constant is added.
//
// A switch whose tag is an enum type — a defined integer type with at least
// two package-level constants, sentinel counters like numClasses or NumProcs
// excluded — must either cover every declared constant or carry an explicit
// default clause annotated with a `// declint:nonexhaustive` justification
// comment. A bare default is not enough: the annotation records that the
// fall-through is a reviewed decision, not an accident.
package exhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"decvec/internal/analysis"
)

// Directive is the annotation that marks a reviewed non-exhaustive default.
const Directive = "declint:nonexhaustive"

// Analyzer is the exhaustive-switch check. It applies to every package.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "switches over simulator enums must cover every constant or carry a `// declint:nonexhaustive` default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, file, sw)
			return true
		})
	}
	return nil
}

// enumInfo describes one enum family: the defined type and its declared
// constants by value.
type enumInfo struct {
	named *types.Named
	// byValue maps the exact constant value to the declared names carrying
	// it (aliases share a value).
	byValue map[string][]string
}

// enumOf reports whether t is an enum type: a defined (named) type whose
// underlying type is an integer and whose declaring package declares at
// least two non-sentinel constants of exactly that type.
func enumOf(t types.Type) (*enumInfo, bool) {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, false
	}
	scope := named.Obj().Pkg().Scope()
	info := &enumInfo{named: named, byValue: make(map[string][]string)}
	n := 0
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) || sentinel(name) {
			continue
		}
		key := c.Val().ExactString()
		info.byValue[key] = append(info.byValue[key], name)
		n++
	}
	if n < 2 {
		return nil, false
	}
	return info, true
}

// sentinel reports whether a constant name is a count sentinel (NumProcs,
// numClasses, ...) that closes an iota family rather than naming a value.
func sentinel(name string) bool {
	return strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num")
}

func checkSwitch(pass *analysis.Pass, file *ast.File, sw *ast.SwitchStmt) {
	tagType := pass.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	enum, ok := enumOf(tagType)
	if !ok {
		return
	}
	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				// A non-constant case expression makes coverage undecidable;
				// leave the switch to reviewer judgement.
				return
			}
			if tv.Value.Kind() != constant.Int {
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for val, names := range enum.byValue {
		if !covered[val] {
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := fmt.Sprintf("%s.%s", enum.named.Obj().Pkg().Name(), enum.named.Obj().Name())
	if defaultClause == nil {
		pass.Reportf(sw.Pos(),
			"non-exhaustive switch over %s: missing %s and no default; add the missing cases or a default annotated // %s",
			typeName, strings.Join(missing, ", "), Directive)
		return
	}
	if !annotated(pass, file, defaultClause) {
		pass.Reportf(defaultClause.Pos(),
			"default of a non-exhaustive switch over %s (missing %s) must be annotated // %s with a justification",
			typeName, strings.Join(missing, ", "), Directive)
	}
}

// annotated reports whether the default clause carries the nonexhaustive
// directive: a comment inside the clause's source range or on the line of
// the `default:` keyword.
func annotated(pass *analysis.Pass, file *ast.File, dc *ast.CaseClause) bool {
	defLine := pass.Fset.Position(dc.Pos()).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, Directive) {
				continue
			}
			if c.Pos() >= dc.Pos() && c.Pos() <= dc.End() {
				return true
			}
			if pass.Fset.Position(c.Pos()).Line == defLine {
				return true
			}
		}
	}
	return false
}
