package exhaustive_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysis.RunTest(t, "../testdata", exhaustive.Analyzer, "isaenum", "swconsumer")
}
