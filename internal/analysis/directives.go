package analysis

import (
	"go/token"
	"strings"
)

// allowDirective records one `// declint:allow <analyzer>` comment.
type allowDirective struct {
	file     string // file name (full path as seen by the fset)
	line     int    // line the directive appears on
	analyzer string // analyzer it silences, or "*" for all
}

type allowSet []allowDirective

// AllowPrefix introduces a suppression comment. The analyzer name follows,
// then an optional free-form justification:
//
//	m.x = f() // declint:allow determinism — reviewed: order-insensitive
const AllowPrefix = "declint:allow"

// allowDirectives collects the allow-directives of every file in the
// package.
func allowDirectives(pkg *Package) allowSet {
	var out allowSet
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), " \t")
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				name := rest
				if i := strings.IndexAny(rest, " \t—-"); i >= 0 {
					name = rest[:i]
				}
				if name == "" {
					name = "*"
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, allowDirective{file: pos.Filename, line: pos.Line, analyzer: name})
			}
		}
	}
	return out
}

// suppresses reports whether the set contains a directive for the
// diagnostic's analyzer on the diagnostic's line or the line directly above.
func (s allowSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, a := range s {
		if a.file != pos.Filename {
			continue
		}
		if a.line != pos.Line && a.line != pos.Line-1 {
			continue
		}
		if a.analyzer == "*" || a.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}

// PathBase returns the last element of an import path, the package-family
// key the analyzers' Applies filters match on ("decvec/internal/dva" and a
// golden testdata package "dva" both map to "dva").
func PathBase(importPath string) string {
	if i := strings.LastIndexByte(importPath, '/'); i >= 0 {
		return importPath[i+1:]
	}
	return importPath
}
