// Package hotalloc implements the declint analyzer that keeps the model
// packages' per-cycle paths allocation-free. Functions marked with a
// `// declint:hotpath` line in their doc comment are hot roots; every
// function they reach through intra-package static calls is hot too,
// except calls made on error paths (inside panic arguments, fmt.Errorf
// arguments, returns of error-returning functions, or assignments to
// error variables) and String methods — those run once per failure or
// per report, not once per cycle.
//
// Inside a hot function the analyzer flags the allocation shapes that
// dominate the simulator's profiles:
//
//   - slice and map composite literals, and pointer composite literals
//     (&T{...}) of any kind — value struct and array literals are stack
//     material and stay legal;
//   - append to anything that is not a reused scratch slice: allowed
//     targets are struct fields (m.drains), function parameters (the
//     route(ps []push) idiom) and locals resliced from one of those
//     (ps := m.psScratch[:0]);
//   - fmt calls and non-constant string concatenation off the error
//     paths — formatting allocates, so it stays behind failures;
//   - function literals inside loops that capture surrounding state:
//     each iteration allocates a fresh closure.
//
// make/new are deliberately not flagged: amortized growth of a reused
// buffer (arena chunks, scratch capacity doubling) is the legitimate way
// to keep the steady state alloc-free, and the per-iteration signature
// the analyzer hunts is the composite literal, not the occasional grow.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"decvec/internal/analysis"
)

// hotPackages is the set of package basenames the analyzer polices: the
// model packages plus the experiments batch driver, whose pooled-runner
// dispatch sits upstream of every simulation.
var hotPackages = map[string]bool{
	"ref":         true,
	"dva":         true,
	"ooo":         true,
	"ideal":       true,
	"sim":         true,
	"queue":       true,
	"disamb":      true,
	"experiments": true,
}

// Directive marks a function as a hot-path root in its doc comment.
const Directive = "declint:hotpath"

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "declint:hotpath-rooted call closures in model packages must not allocate per cycle",
	Applies: func(path string) bool {
		return hotPackages[analysis.PathBase(path)]
	},
	Run: run,
}

// fnInfo is the per-function record the first pass gathers.
type fnInfo struct {
	decl       *ast.FuncDecl
	returnsErr bool
	// callees are the intra-package functions reached from non-error
	// paths of this function's body.
	callees []*types.Func
}

func run(pass *analysis.Pass) error {
	// Pass 1: index declarations, find roots, collect call edges.
	infos := map[*types.Func]*fnInfo{}
	var roots []*types.Func
	rootName := map[*types.Func]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{decl: fd, returnsErr: returnsError(pass, fd.Type)}
			collectCallees(pass, info)
			infos[fn] = info
			if hasDirective(fd) {
				roots = append(roots, fn)
				rootName[fn] = fd.Name.Name
			}
		}
	}

	// Pass 2: close the hot set over the call graph.
	hot := map[*types.Func]string{} // function -> root it is reached from
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		hot[r] = rootName[r]
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := infos[fn]
		if info == nil {
			continue
		}
		for _, callee := range info.callees {
			key := origin(callee)
			if _, seen := hot[key]; seen {
				continue
			}
			if infos[key] == nil || key.Name() == "String" {
				continue
			}
			hot[key] = hot[fn]
			queue = append(queue, key)
		}
	}

	// Pass 3: flag allocation shapes inside each hot function.
	for fn, root := range hot {
		checkHotFunc(pass, infos[fn], root)
	}
	return nil
}

// hasDirective reports whether the declaration's doc comment carries the
// hotpath marker.
func hasDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(line, Directive) {
			return true
		}
	}
	return false
}

// origin maps an instantiated generic function back to its declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// returnsError reports whether the signature has an error result.
func returnsError(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if isErrorType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// staticCallee resolves a call to a package-level or method function.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// collectCallees records the intra-package static callees of info's body,
// skipping call sites on error paths — a helper only ever invoked while
// building a panic message or an error return stays cold.
func collectCallees(pass *analysis.Pass, info *fnInfo) {
	walkWithStack(info.decl.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if errorPath(pass, stack, info.returnsErr) {
			return
		}
		fn := staticCallee(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
			return
		}
		info.callees = append(info.callees, fn)
	})
}

// errorPath reports whether a node with the given ancestor stack sits on
// an error path: inside panic or fmt.Errorf arguments, inside a return of
// an error-returning function, or inside an assignment to an error.
func errorPath(pass *analysis.Pass, stack []ast.Node, returnsErr bool) bool {
	for _, a := range stack {
		switch a := a.(type) {
		case *ast.ReturnStmt:
			if returnsErr {
				return true
			}
		case *ast.CallExpr:
			if isPanicCall(pass, a) || isFmtCall(pass, a, "Errorf") {
				return true
			}
		case *ast.AssignStmt:
			for _, l := range a.Lhs {
				if isErrorType(pass.TypeOf(l)) {
					return true
				}
			}
		case *ast.FuncLit:
			// Error-return status follows the innermost function literal.
			returnsErr = returnsError(pass, a.Type)
		}
	}
	return false
}

func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// isFmtCall reports whether call is fmt.<name>(...); an empty name matches
// any fmt function.
func isFmtCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return false
	}
	return name == "" || sel.Sel.Name == name
}

// checkHotFunc flags the allocation shapes inside one hot function.
func checkHotFunc(pass *analysis.Pass, info *fnInfo, root string) {
	if info == nil {
		return
	}
	fd := info.decl

	// Prepass: signature-declared objects (receiver and parameters, of the
	// declaration and of every nested literal) and := definitions.
	params := map[types.Object]bool{}
	defineRHS := map[types.Object]ast.Expr{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			addFields(n.Type.Params)
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							defineRHS[obj] = n.Rhs[i]
						}
					}
				}
			}
		}
		return true
	})

	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if errorPath(pass, stack, info.returnsErr) {
			return
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"pointer composite literal allocates in hot path %s: reuse a pooled or preallocated object", root)
				}
			}
		case *ast.CompositeLit:
			if len(stack) > 0 {
				if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
					return // already reported at the & operator
				}
			}
			t := pass.TypeOf(n)
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(),
					"slice composite literal allocates in hot path %s: reuse a scratch slice", root)
			case *types.Map:
				pass.Reportf(n.Pos(),
					"map composite literal allocates in hot path %s: preallocate it outside the loop", root)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					checkAppend(pass, n, params, defineRHS, root)
				}
				return
			}
			if isFmtCall(pass, n, "") {
				sel := n.Fun.(*ast.SelectorExpr)
				pass.Reportf(n.Pos(),
					"fmt.%s in hot path %s: formatting allocates; keep it on error paths", sel.Sel.Name, root)
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return
			}
			if tv, ok := pass.Info.Types[n]; ok && tv.Value != nil {
				return // constant-folded
			}
			t := pass.TypeOf(n)
			if t == nil {
				return
			}
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				pass.Reportf(n.Pos(),
					"string concatenation in hot path %s: formatting allocates; keep it on error paths", root)
			}
		case *ast.FuncLit:
			inLoop := false
			for _, a := range stack {
				switch a.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					inLoop = true
				}
			}
			if !inLoop {
				return
			}
			if name, captures := capturedName(pass, fd, n); captures {
				pass.Reportf(n.Pos(),
					"closure capturing %s inside a loop in hot path %s: each iteration allocates the closure", name, root)
			}
		}
	})
}

// checkAppend flags appends whose target is not a reused scratch slice.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, params map[types.Object]bool, defineRHS map[types.Object]ast.Expr, root string) {
	switch target := call.Args[0].(type) {
	case *ast.SelectorExpr:
		return // m.scratch = append(m.scratch, ...) reuses the field's capacity
	case *ast.Ident:
		obj := pass.Info.Uses[target]
		if obj == nil {
			obj = pass.Info.Defs[target]
		}
		if params[obj] {
			return // the route(ps []push) parameter idiom
		}
		if rhs, ok := defineRHS[obj]; ok {
			if _, isSlice := rhs.(*ast.SliceExpr); isSlice {
				return // ps := m.psScratch[:0] reslice idiom
			}
		}
		pass.Reportf(call.Pos(),
			"append to %s allocates in hot path %s: append to a reused scratch field, a parameter, or a reslice of one", target.Name, root)
	default:
		pass.Reportf(call.Pos(),
			"append target in hot path %s is not a reusable scratch slice", root)
	}
}

// capturedName reports whether lit captures a variable declared in the
// enclosing declaration fd (receiver, parameter or local) outside the
// literal itself, returning one captured name for the diagnostic.
func capturedName(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		pos := obj.Pos()
		if pos >= fd.Pos() && pos < fd.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			name = id.Name
		}
		return true
	})
	return name, name != ""
}

// walkWithStack walks the AST under root, invoking fn with each node and
// its ancestor stack (innermost last, excluding the node itself).
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
