package hotalloc_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysis.RunTest(t, "../testdata", hotalloc.Analyzer, "hot/dva", "hot/experiments")
}
