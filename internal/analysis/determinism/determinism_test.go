package determinism_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysis.RunTest(t, "../testdata", determinism.Analyzer, "dva", "tracegen")
}
