// Package determinism implements the declint analyzer that keeps the
// cycle-accurate model packages bit-reproducible: identical traces must
// always produce identical cycle counts, stall tallies and event streams.
//
// Inside the model packages (dva, ref, ideal, sim, mem, queue, disamb, isa,
// trace) it forbids the constructs whose behaviour varies across runs:
//
//   - ranging over a map (iteration order is randomized per run),
//   - wall-clock reads (time.Now, time.Since, ...),
//   - the globally-seeded math/rand functions (rand.Intn, rand.Int63, ...;
//     an explicitly seeded rand.New(rand.NewSource(seed)) is fine),
//   - spawning goroutines (scheduling order is nondeterministic, and the
//     per-cycle tick/issue paths must stay single-threaded),
//   - importing the persistent result cache (internal/simcache) or the
//     simulation server (internal/server): both sit above the models —
//     simcache serializes model results and the server schedules runs — so
//     a model depending on either would invert the layering, and external
//     state leaking into a simulation would break reproducibility in ways
//     no local check could see.
//
// Concurrency and randomness belong in the packages above the models
// (experiments, tracegen), which seed and order their work explicitly.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"

	"decvec/internal/analysis"
)

// modelPackages is the set of package basenames the analyzer polices; it
// mirrors the simulator-model packages under internal/.
var modelPackages = map[string]bool{
	"dva":    true,
	"ref":    true,
	"ideal":  true,
	"sim":    true,
	"mem":    true,
	"queue":  true,
	"disamb": true,
	"isa":    true,
	"trace":  true,
}

// wallClock lists the time-package functions that read the wall clock or
// schedule against it.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// seededConstructors are the math/rand functions that merely build
// explicitly-seeded generators and are therefore deterministic.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Analyzer is the determinism check for the model packages.
var Analyzer = &analysis.Analyzer{
	Name:    "determinism",
	Doc:     "model packages must not range over maps, read the clock, use global math/rand or spawn goroutines",
	Applies: func(path string) bool { return modelPackages[analysis.PathBase(path)] },
	Run:     run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkImports(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in model package %s: tick/issue paths must stay single-threaded and deterministic", pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}

// upperLayers maps package basenames that sit above the models — and must
// never be imported by them — to the reason the dependency is inverted.
var upperLayers = map[string]string{
	"simcache": "the result cache depends on the models, never the reverse",
	"server":   "the serving layer schedules model runs, never the reverse",
}

// checkImports flags model packages that import a layer above them (the
// persistent result cache or the simulation server). Those layers depend on
// the models; the reverse dependency would be a layering inversion, and any
// external state feeding back into a simulation would silently break
// bit-reproducibility.
func checkImports(pass *analysis.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if reason, ok := upperLayers[analysis.PathBase(path)]; ok {
			pass.Reportf(imp.Pos(), "model package %s imports %s: %s", pass.Pkg.Name(), path, reason)
		}
	}
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(rs.Pos(), "range over map in model package %s: iteration order is nondeterministic; iterate a sorted key slice instead", pass.Pkg.Name())
	}
}

// checkCall flags wall-clock reads and globally-seeded math/rand calls.
// Only package-qualified calls (time.Now(), rand.Intn(n)) are package-level
// functions; method calls on an explicitly constructed *rand.Rand resolve
// through a selection and are allowed.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	fn := sel.Sel.Name
	switch pkgName.Imported().Path() {
	case "time":
		if wallClock[fn] {
			pass.Reportf(call.Pos(), "time.%s in model package %s: simulated time must not depend on the wall clock", fn, pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn] {
			pass.Reportf(call.Pos(), "rand.%s uses the global source in model package %s: use an explicitly seeded rand.New(rand.NewSource(seed))", fn, pass.Pkg.Name())
		}
	}
}
