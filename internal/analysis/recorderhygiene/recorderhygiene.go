// Package recorderhygiene implements the declint analyzer that preserves
// the observability layer's zero-cost-when-off guarantee: a machine driven
// with a nil *sim.Recorder must take the same decisions, produce identical
// results and allocate nothing on the hot path.
//
// In the package that defines the Recorder, every exported pointer-receiver
// method that touches receiver state must open with a nil-receiver guard
// (`if r == nil { return ... }`) so call sites stay unconditionally safe.
//
// At emission sites anywhere in the tree:
//
//   - a `defer` whose closure emits to a Recorder must itself sit behind a
//     nil (or Enabled) check — otherwise the closure and defer frame are
//     paid on every call even with recording off;
//   - event payloads must not be built before the nil/enabled check:
//     allocating argument expressions (fmt.Sprintf and friends, string
//     concatenation, composite literals) are only allowed inside a guard.
package recorderhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"decvec/internal/analysis"
)

// Analyzer is the recorder-hygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "recorderhygiene",
	Doc:  "Recorder methods must be nil-safe; emission sites must not allocate (defers, payloads) outside a nil/Enabled guard",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkRecorderMethods(pass)
	checkEmissionSites(pass)
	return nil
}

// isRecorder reports whether t is (a pointer to) a defined type named
// Recorder.
func isRecorder(t types.Type) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Recorder"
}

// checkRecorderMethods enforces the nil-receiver guard on the defining
// package's exported Recorder methods.
func checkRecorderMethods(pass *analysis.Pass) {
	if pass.Pkg.Scope().Lookup("Recorder") == nil {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if len(fd.Recv.List) != 1 || !isRecorder(pass.TypeOf(fd.Recv.List[0].Type)) {
				continue
			}
			recv := receiverName(fd)
			if recv == "" || !usesReceiverState(fd, recv) {
				continue
			}
			if !startsWithNilGuard(fd, recv) {
				pass.Reportf(fd.Pos(), "exported Recorder method %s touches receiver state without an `if %s == nil` guard as its first statement; nil-recorder calls must be no-ops", fd.Name.Name, recv)
			}
		}
	}
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// usesReceiverState reports whether the body selects a field or method on
// the receiver (a pure `return r != nil` does not).
func usesReceiverState(fd *ast.FuncDecl, recv string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
				found = true
			}
		}
		return !found
	})
	return found
}

// startsWithNilGuard reports whether the first statement is
// `if recv == nil { ... }` (possibly `recv == nil || other`: a disjunction
// still returns whenever the receiver is nil).
func startsWithNilGuard(fd *ast.FuncDecl, recv string) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return nilGuardCond(ifs.Cond, recv)
}

// nilGuardCond matches `recv == nil` and any `||` disjunction containing it.
func nilGuardCond(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		if c.Op.String() == "||" {
			return nilGuardCond(c.X, recv) || nilGuardCond(c.Y, recv)
		}
		return isNilComparison(cond, recv, true)
	case *ast.ParenExpr:
		return nilGuardCond(c.X, recv)
	}
	return false
}

// isNilComparison matches `expr == nil` (eq=true) or `expr != nil`
// (eq=false) where expr prints as target.
func isNilComparison(cond ast.Expr, target string, eq bool) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	op := "!="
	if eq {
		op = "=="
	}
	if be.Op.String() != op {
		return false
	}
	return (types.ExprString(be.X) == target && isNil(be.Y)) ||
		(types.ExprString(be.Y) == target && isNil(be.X))
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// emission is one Recorder method call with its receiver expression and the
// ancestor stack leading to it.
type emission struct {
	call  *ast.CallExpr
	recv  string
	stack []ast.Node
}

// checkEmissionSites enforces guard discipline at Recorder call sites.
func checkEmissionSites(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var stack []ast.Node
			var walk func(n ast.Node)
			walk = func(n ast.Node) {
				if n == nil {
					return
				}
				stack = append(stack, n)
				ast.Inspect(n, func(c ast.Node) bool {
					if c == nil || c == n {
						return c == n
					}
					walk(c)
					return false
				})
				stack = stack[:len(stack)-1]
				if call, ok := n.(*ast.CallExpr); ok {
					if recv, ok := recorderCall(pass, call); ok {
						checkEmission(pass, fd, emission{call: call, recv: recv, stack: append([]ast.Node(nil), stack...)})
					}
				}
			}
			walk(fd.Body)
		}
	}
}

// recorderCall reports whether call is a method call on a *Recorder and
// returns the receiver expression's printed form.
func recorderCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, isMethod := pass.Info.Selections[sel]; !isMethod {
		return "", false
	}
	if !isRecorder(pass.TypeOf(sel.X)) {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func checkEmission(pass *analysis.Pass, fd *ast.FuncDecl, em emission) {
	// Rule 1: deferred emissions allocate a closure and a defer frame even
	// when recording is off. A guard inside the closure does not help — the
	// defer statement itself must sit behind one.
	for _, anc := range em.stack {
		if ds, ok := anc.(*ast.DeferStmt); ok {
			if !deferGuarded(pass, fd, ds, em.recv) {
				pass.Reportf(ds.Pos(), "deferred Recorder emission allocates a closure even when recording is off; hoist the `if %s != nil` guard around the defer statement", em.recv)
			}
			break
		}
	}
	if isGuarded(pass, fd, em) {
		return
	}
	// Rule 2: allocating payload construction outside a guard.
	for _, arg := range em.call.Args {
		if pos, what, found := allocExpr(pass, arg); found {
			pass.Reportf(pos, "%s built in a Recorder call's arguments outside a `%s != nil` (or Enabled) guard: payloads must cost nothing when recording is off", what, em.recv)
		}
	}
}

// isGuarded reports whether the emission is protected: an ancestor
// `if recv != nil` / `if recv.Enabled()` block, or an earlier
// `if recv == nil { return }` early-exit in the same function.
func isGuarded(pass *analysis.Pass, fd *ast.FuncDecl, em emission) bool {
	for i, anc := range em.stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		if !guardCond(ifs.Cond, em.recv) {
			continue
		}
		// The emission must be in the guarded body, not the else branch.
		if i+1 < len(em.stack) && em.stack[i+1] == ifs.Else {
			continue
		}
		if ifs.Body.Pos() <= em.call.Pos() && em.call.Pos() <= ifs.Body.End() {
			return true
		}
	}
	return hasEarlyNilReturn(fd, em.call.Pos(), em.recv)
}

// guardCond matches `recv != nil`, `recv.Enabled()` and conjunctions
// containing either.
func guardCond(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		if c.Op.String() == "&&" {
			return guardCond(c.X, recv) || guardCond(c.Y, recv)
		}
		return isNilComparison(cond, recv, false)
	case *ast.CallExpr:
		return types.ExprString(c.Fun) == recv+".Enabled"
	case *ast.ParenExpr:
		return guardCond(c.X, recv)
	}
	return false
}

// deferGuarded reports whether the defer statement itself sits inside a
// guard block for recv.
func deferGuarded(pass *analysis.Pass, fd *ast.FuncDecl, ds *ast.DeferStmt, recv string) bool {
	guarded := false
	ast.Inspect(fd.Body, func(c ast.Node) bool {
		if guarded {
			return false
		}
		if ifs, ok := c.(*ast.IfStmt); ok && guardCond(ifs.Cond, recv) {
			if ifs.Body.Pos() <= ds.Pos() && ds.Pos() <= ifs.Body.End() {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded || hasEarlyNilReturn(fd, ds.Pos(), recv)
}

// hasEarlyNilReturn reports whether the function body contains, lexically
// before pos at its top level, an `if recv == nil { return ... }` (or
// `if !recv.Enabled() { return ... }`) early exit.
func hasEarlyNilReturn(fd *ast.FuncDecl, pos token.Pos, recv string) bool {
	for _, stmt := range fd.Body.List {
		if stmt.End() > pos {
			break
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || len(ifs.Body.List) == 0 {
			continue
		}
		neg := false
		if ue, ok := ifs.Cond.(*ast.UnaryExpr); ok && ue.Op.String() == "!" {
			if ce, ok := ue.X.(*ast.CallExpr); ok && types.ExprString(ce.Fun) == recv+".Enabled" {
				neg = true
			}
		}
		if !neg && !nilGuardCond(ifs.Cond, recv) {
			continue
		}
		if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

// allocExpr scans an argument expression for allocating constructs.
func allocExpr(pass *analysis.Pass, arg ast.Expr) (pos token.Pos, what string, found bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
						if strings.HasPrefix(sel.Sel.Name, "Sprint") || sel.Sel.Name == "Errorf" {
							pos, what, found = n.Pos(), "fmt."+sel.Sel.Name+" payload", true
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := pass.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pos, what, found = n.Pos(), "string concatenation", true
					}
				}
			}
		case *ast.CompositeLit:
			pos, what, found = n.Pos(), "composite-literal payload", true
		}
		return !found
	})
	return pos, what, found
}
