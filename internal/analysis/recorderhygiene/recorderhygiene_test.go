package recorderhygiene_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/recorderhygiene"
)

func TestRecorderHygiene(t *testing.T) {
	analysis.RunTest(t, "../testdata", recorderhygiene.Analyzer, "sim", "emitter")
}
