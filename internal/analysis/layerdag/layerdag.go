// Package layerdag implements the declint analyzer that enforces the
// repository's package-layer DAG on every import edge. It generalizes the
// determinism analyzer's ad-hoc "models must not import simcache/server"
// bans into a complete declared architecture, and is the gate for the
// planned pkg/ engine split: a package that is not assigned to a layer is
// itself a diagnostic, so new packages must take a position in the DAG
// before they can land.
//
// The layers, bottom-up (each may import itself-as-layer only where the
// table says so — the cores, for instance, may never import each other):
//
//	model    isa, trace, queue, mem, disamb, sim   → model
//	core     ref, dva, ooo, ideal                  → model
//	gen      tracegen, workload                    → model, gen
//	cache    simcache                              → model
//	harness  experiments, sweep                    → model, core, gen, cache, harness
//	report   report                                → model, cache, harness
//	serving  server                                → model, gen, cache, harness, report
//	facade   the module root package               → everything below
//	tooling  analysis and its analyzer subpackages → tooling
//	main     cmd/*, examples/*                     → everything
//
// Module-local import paths are recognized by sharing the importing
// package's leading path segment (the module namespace), with an optional
// internal/ segment stripped; everything else (the standard library) is
// outside the DAG and always allowed.
package layerdag

import (
	"strconv"
	"strings"

	"decvec/internal/analysis"
)

// Layer names. They appear verbatim in diagnostics.
const (
	layerModel   = "model"
	layerCore    = "core"
	layerGen     = "gen"
	layerCache   = "cache"
	layerHarness = "harness"
	layerReport  = "report"
	layerServing = "serving"
	layerFacade  = "facade"
	layerTooling = "tooling"
	layerMain    = "main"
)

// layerOf assigns module-local package basenames to layers. cmd/*,
// examples/*, the analysis tree and the module root are classified
// structurally in classify, not here.
var layerOf = map[string]string{
	"isa":    layerModel,
	"trace":  layerModel,
	"queue":  layerModel,
	"mem":    layerModel,
	"disamb": layerModel,
	"sim":    layerModel,

	"ref":   layerCore,
	"dva":   layerCore,
	"ooo":   layerCore,
	"ideal": layerCore,

	"tracegen": layerGen,
	"workload": layerGen,

	"simcache": layerCache,

	"experiments": layerHarness,
	"sweep":       layerHarness,

	"report": layerReport,

	"server": layerServing,
}

// allowed is the DAG: allowed[L] is the set of layers a package in layer L
// may import. A layer absent from its own set may not import siblings —
// the cores (ref/dva/ooo/ideal) are the canonical case: they must stay
// independent implementations of the same trace contract.
var allowed = map[string]map[string]bool{
	layerModel:   {layerModel: true},
	layerCore:    {layerModel: true},
	layerGen:     {layerModel: true, layerGen: true},
	layerCache:   {layerModel: true},
	layerHarness: {layerModel: true, layerCore: true, layerGen: true, layerCache: true, layerHarness: true},
	layerReport:  {layerModel: true, layerCache: true, layerHarness: true},
	layerServing: {layerModel: true, layerGen: true, layerCache: true, layerHarness: true, layerReport: true},
	layerFacade: {
		layerModel: true, layerCore: true, layerGen: true, layerCache: true,
		layerHarness: true, layerReport: true, layerServing: true,
	},
	layerTooling: {layerTooling: true},
	layerMain: {
		layerModel: true, layerCore: true, layerGen: true, layerCache: true,
		layerHarness: true, layerReport: true, layerServing: true,
		layerFacade: true, layerTooling: true,
	},
}

// Analyzer is the layer-DAG import check.
var Analyzer = &analysis.Analyzer{
	Name: "layerdag",
	Doc:  "every module-local import edge must follow the declared package-layer DAG",
	Run:  run,
}

// classify maps an import path to its layer. ns is the module namespace —
// the leading path segment of the importing package. The second result is
// false for paths outside the module (the standard library); a module-local
// path with no layer returns ("", true), which is itself a violation.
func classify(ns, path string) (layer string, local bool) {
	if path == ns {
		return layerFacade, true
	}
	rest, ok := strings.CutPrefix(path, ns+"/")
	if !ok {
		return "", false
	}
	rest = strings.TrimPrefix(rest, "internal/")
	seg := rest
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		seg = rest[:i]
	}
	switch seg {
	case "cmd", "examples":
		return layerMain, true
	case "analysis":
		return layerTooling, true
	}
	if l, ok := layerOf[seg]; ok {
		return l, true
	}
	return "", true
}

// sortedLayers renders an allowed-set for diagnostics, bottom-up.
func sortedLayers(set map[string]bool) string {
	order := []string{
		layerModel, layerCore, layerGen, layerCache, layerHarness,
		layerReport, layerServing, layerFacade, layerTooling, layerMain,
	}
	var out []string
	for _, l := range order {
		if set[l] {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return "nothing"
	}
	return strings.Join(out, ", ")
}

func run(pass *analysis.Pass) error {
	self := pass.Pkg.Path()
	ns := self
	if i := strings.IndexByte(self, '/'); i >= 0 {
		ns = self[:i]
	}
	selfLayer, _ := classify(ns, self)
	if selfLayer == "" {
		// The package has no position in the DAG. Report once, at the
		// package clause of the first file, and skip the edge checks —
		// there is no allowed-set to check against.
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Package,
				"package %s is not assigned to any layer in the import DAG; add it to the layerdag table before wiring it in", self)
		}
		return nil
	}
	may := allowed[selfLayer]
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			depLayer, local := classify(ns, path)
			if !local {
				continue
			}
			if depLayer == "" {
				pass.Reportf(imp.Pos(),
					"package %s (layer %s) imports %s, which is not assigned to any layer in the import DAG", self, selfLayer, path)
				continue
			}
			if !may[depLayer] {
				pass.Reportf(imp.Pos(),
					"package %s (layer %s) imports %s (layer %s): %s may import only %s",
					self, selfLayer, path, depLayer, selfLayer, sortedLayers(may))
			}
		}
	}
	return nil
}
