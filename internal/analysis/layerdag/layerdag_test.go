package layerdag_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/layerdag"
)

func TestLayerDAG(t *testing.T) {
	analysis.RunTest(t, "../testdata", layerdag.Analyzer,
		"layers/isa", "layers/server", "layers/sim", "layers/dva", "layers/mystery")
}
