package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("decvec/internal/sim", or "sim" under a testdata root)
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errs holds parse or type errors; analyzers are not run on a package
	// with errors.
	Errs []error
}

// Loader resolves import paths to directories and type-checks packages from
// source. Module-local paths resolve under ModuleDir, paths under an extra
// root (the analysistest testdata/src convention) resolve there, and
// everything else (the standard library) is delegated to the stdlib source
// importer. One Loader caches packages for its lifetime, so a driver run
// type-checks each package once.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string // module path from go.mod, e.g. "decvec"
	ModuleDir  string // absolute directory of the module root
	// Roots are extra import roots searched before the standard library;
	// import path P resolves to Roots[i]/P when that directory exists.
	Roots []string

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader rooted at the module in moduleDir. modulePath
// may be empty when only testdata roots are used.
func NewLoader(modulePath, moduleDir string, roots ...string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		Roots:      roots,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}
}

// ModuleInfo reads go.mod in dir (or an ancestor) and returns the module
// path and root directory.
func ModuleInfo(dir string) (modulePath, moduleDir string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// dirFor resolves an import path to a source directory, or "" when the path
// belongs to the standard library.
func (l *Loader) dirFor(path string) string {
	for _, root := range l.Roots {
		d := filepath.Join(root, path)
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d
		}
	}
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
		}
	}
	return ""
}

// Load returns the type-checked package for an import path, loading it and
// its module-local dependencies from source on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: cannot resolve import %q", path)
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	p, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer for the dependencies of a package being
// checked: module-local and testdata-root paths load recursively from
// source; everything else goes to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if len(p.Errs) > 0 {
			return nil, p.Errs[0]
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleDir, 0)
}

// check parses and type-checks the non-test files of the package in dir.
func (l *Loader) check(path, dir string) (*Package, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	p := &Package{Path: path, Name: bp.Name, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			p.Errs = append(p.Errs, err)
			continue
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Errs) > 0 {
		return p, nil
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		Error:    func(err error) { p.Errs = append(p.Errs, err) },
	}
	p.Types, _ = conf.Check(path, l.Fset, p.Files, p.Info)
	return p, nil
}

// LoadPatterns expands the driver's package patterns ("./..." or directory
// paths relative to the module root) and loads every matching package.
// Directories named testdata, hidden directories and directories without
// non-test Go files are skipped.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	addTree := func(root string) error {
		return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) && !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := addTree(l.ModuleDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := addTree(root); err != nil {
				return nil, err
			}
		default:
			d := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
			if !seen[d] && hasGoFiles(d) {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
