// Package tracegen verifies the determinism analyzer's package filter: this
// basename is not a model package, so wall-clock reads are fine here.
package tracegen

import "time"

func Stamp() time.Time {
	return time.Now()
}
