// Package inner is a ctxdiscipline fixture for a policed (non-entry)
// package: nested under ctxd/ it is neither the module facade nor cmd/*.
package inner

import "context"

// Good propagates its context; first position, used in the body.
func Good(ctx context.Context, n int) error {
	return work(ctx, n)
}

// Misplaced takes ctx in second position.
func Misplaced(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	return work(ctx, n)
}

// Dropped accepts a context and never uses it.
func Dropped(ctx context.Context, n int) int { // want "context parameter ctx is dropped"
	return n + 1
}

// Blank opts out of propagation explicitly; no diagnostic.
func Blank(_ context.Context, n int) int {
	return n + 1
}

// Mint severs the caller's cancellation with a fresh root context.
func Mint(n int) error {
	return work(context.Background(), n) // want "context.Background outside the entry layers"
}

// Todo is the same violation via the other constructor.
func Todo(n int) error {
	return work(context.TODO(), n) // want "context.TODO outside the entry layers"
}

// Suppressed shows the allow-directive escape hatch.
func Suppressed(n int) error {
	return work(context.Background(), n) // declint:allow ctxdiscipline — fixture: detached audit task outlives the request
}

// LitMisplaced checks that function literals are policed too.
var LitMisplaced = func(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	return work(ctx, n)
}

// Iface checks interface method signatures.
type Iface interface {
	Run(n int, ctx context.Context) error // want "context.Context must be the first parameter"
}

func work(ctx context.Context, n int) error {
	if n < 0 {
		<-ctx.Done()
	}
	return ctx.Err()
}
