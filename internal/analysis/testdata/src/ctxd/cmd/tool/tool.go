// Package tool is a ctxdiscipline fixture for an entry-layer package: the
// cmd/ segment in its import path licenses minting root contexts.
package tool

import "context"

// Main mints the process root context; legal in cmd/*.
func Main() error {
	ctx := context.Background()
	return ctx.Err()
}
