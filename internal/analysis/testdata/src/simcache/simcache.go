// Package simcache is a golden fixture standing in for the real persistent
// result cache: its basename matches internal/simcache, so importing it from
// a model-package fixture must trip the determinism analyzer's layering rule.
package simcache

// Open mimics the real store constructor.
func Open(dir string) error { return nil }
