// Package isaenum is a golden fixture for the exhaustive analyzer: a scaled
// down replica of the repo's enum families (isa.Class with its numClasses
// sentinel, isa.RegKind without one).
package isaenum

type Class int

const (
	ClassNop Class = iota
	ClassALU
	ClassLoad
	ClassStore
	numClasses
)

type RegKind int

const (
	RegNone RegKind = iota
	RegS
	RegV
)

// missingNoDefault mirrors the pre-fix isa.Class.IsMemory shape: cases
// missing, no default clause.
func missingNoDefault(c Class) string {
	switch c { // want "non-exhaustive switch over isaenum.Class: missing ClassStore and no default"
	case ClassNop:
		return "nop"
	case ClassALU:
		return "alu"
	case ClassLoad:
		return "load"
	}
	return ""
}

// bareDefault mirrors the pre-fix isa.RegKind.String shape: a default that
// hides missing cases without an annotation.
func bareDefault(c Class) string {
	switch c {
	case ClassNop:
		return "nop"
	default: // want "default of a non-exhaustive switch over isaenum.Class .missing ClassALU, ClassLoad, ClassStore."
		return "other"
	}
}

// annotatedDefault is the approved escape hatch.
func annotatedDefault(c Class) string {
	switch c {
	case ClassNop:
		return "nop"
	default: // declint:nonexhaustive — everything but Nop takes the slow path
		return "other"
	}
}

// fullCoverage needs neither default nor annotation; the numClasses sentinel
// does not count as a missing constant.
func fullCoverage(c Class) int {
	switch c {
	case ClassNop:
		return 0
	case ClassALU:
		return 1
	case ClassLoad:
		return 2
	case ClassStore:
		return 3
	}
	return -1
}

// regKinds covers an enum family with no sentinel.
func regKinds(k RegKind) string {
	switch k {
	case RegNone:
		return ""
	case RegS:
		return "s"
	case RegV:
		return "v"
	}
	return ""
}

// nonConstantCase makes coverage undecidable; the analyzer leaves the switch
// to reviewer judgement.
func nonConstantCase(c, pivot Class) bool {
	switch c {
	case pivot:
		return true
	}
	return false
}

// notAnEnum: plain integers are not enum families.
func notAnEnum(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
