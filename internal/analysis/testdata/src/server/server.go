// Package server is a golden fixture standing in for the real simulation
// daemon package: its basename matches internal/server, so importing it from
// a model-package fixture must trip the determinism analyzer's layering rule.
package server

// New mimics the real server constructor.
func New() error { return nil }
