// Package swconsumer exercises the exhaustive analyzer across package
// boundaries: the enum is declared in isaenum, the rotting switch here.
package swconsumer

import "isaenum"

func describe(c isaenum.Class) string {
	switch c { // want "non-exhaustive switch over isaenum.Class: missing ClassALU, ClassLoad, ClassStore and no default"
	case isaenum.ClassNop:
		return "nop"
	}
	return ""
}

func route(c isaenum.Class) int {
	switch c {
	case isaenum.ClassNop:
		return 0
	case isaenum.ClassALU:
		return 1
	case isaenum.ClassLoad, isaenum.ClassStore:
		return 2
	}
	return -1
}
