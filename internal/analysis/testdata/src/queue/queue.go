// Package queue is a golden fixture for the queuediscipline analyzer. Q is
// the compliant shape (mirroring internal/queue.Q): every mutation inside an
// approved mutator and the occupancy integral updated first. B and Drain are
// the violations.
package queue

type Q struct {
	buf  []int
	n    int
	stat int64
}

func New(capacity int) *Q {
	q := new(Q)
	q.Init(capacity)
	return q
}

// Init is the in-place constructor pooled arenas use; an approved mutator.
func (q *Q) Init(capacity int) {
	q.buf = make([]int, 0, capacity)
	q.n = 0
	q.stat = 0
}

func (q *Q) account() {
	q.stat += int64(q.n)
}

func (q *Q) Push(v int) bool {
	if q.n == cap(q.buf) {
		return false
	}
	q.account()
	q.buf = append(q.buf, v)
	q.n++
	return true
}

func (q *Q) Pop() (int, bool) {
	if q.n == 0 {
		return 0, false
	}
	q.account()
	v := q.buf[0]
	q.buf = q.buf[1:]
	q.n--
	return v, true
}

func (q *Q) Reset() {
	q.buf = q.buf[:0]
	q.n = 0
}

func (q *Q) Len() int {
	return q.n
}

// Drain bypasses Push/Pop and writes queue state directly.
func (q *Q) Drain() {
	q.n = 0           // want "queue state mutated outside the approved mutators"
	q.buf = q.buf[:0] // want "queue state mutated outside the approved mutators"
}

// B is a queue whose Push skips the occupancy accounting.
type B struct {
	n    int
	stat int64
}

func (b *B) account() {
	b.stat += int64(b.n)
}

func (b *B) Push(v int) bool { // want "Push mutates queue state without first updating the occupancy integral"
	b.n++
	return true
}

func (b *B) Pop() (int, bool) {
	if b.n == 0 {
		return 0, false
	}
	b.account()
	b.n--
	return 0, true
}

// AllVisible mirrors the read-only visibility probe the idle-skip fast path
// added: it inspects queue state without assigning, so the mutation rules
// must leave it alone.
func (q *Q) AllVisible(now int64) bool {
	return q.n == 0 || q.stat <= now
}

// SkipTo is the bulk-accounting anti-pattern: a time jump that patches the
// occupancy integral by writing the stat field directly instead of going
// through account().
func (q *Q) SkipTo(now int64) {
	q.stat = now * int64(q.n) // want "queue state mutated outside the approved mutators"
}
