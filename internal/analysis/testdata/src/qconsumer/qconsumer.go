// Package qconsumer exercises the call-site half of queuediscipline:
// discarded Push results, both on a concrete queue and through an interface
// (mirroring the dva store-port's pushTarget indirection).
package qconsumer

import "queue"

type sink interface {
	Push(v int) bool
}

func fill(q *queue.Q) {
	q.Push(1)     // want "result of Push discarded"
	_ = q.Push(2) // want "result of Push discarded with _"
	if !q.Push(3) {
		panic("queue full after capacity check")
	}
	ok := q.Push(4)
	if !ok {
		panic("queue full after capacity check")
	}
}

func fillIndirect(s sink) {
	s.Push(1) // want "result of Push discarded"
}

func fillSuppressed(q *queue.Q) {
	q.Push(9) // declint:allow queuediscipline — fixture: drop-on-full is this model's semantics
}
