// Package experiments is a hotalloc fixture for the batch-driver package:
// its basename joined the analyzer's hot set when the pooled-runner batch
// dispatch moved the per-simulation hot loop out of the model packages. The
// fixture pins the regression that motivated the extension — accumulating
// batch results into a fresh slice inside the drain loop.
package experiments

import "fmt"

type result struct{ cycles int64 }

type runner struct{ res result }

type pool struct {
	free    []*runner
	results []result
}

func (p *pool) get() *runner {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	return new(runner) // amortized: only taken until the pool warms up
}

// simulate is the per-cell dispatch onto a pooled machine.
//
// declint:hotpath
func (p *pool) simulate(cost int64) result {
	r := p.get()
	r.res.cycles = cost
	out := r.res
	p.free = append(p.free, r)
	return out
}

// runBatch drains a batch of cells through the pooled machines.
//
// declint:hotpath
func (p *pool) runBatch(costs []int64) []result {
	p.results = p.results[:0]
	var fresh []result
	for _, c := range costs {
		fresh = append(fresh, p.simulate(c)) // want "append to fresh allocates in hot path runBatch"
		p.results = append(p.results, p.simulate(c))
	}
	_ = fresh
	return p.results
}

// report renders a finished batch; it carries no directive and is never
// reached from a hot root, so its formatting stays legal.
func (p *pool) report() string {
	return fmt.Sprintf("%d results", len(p.results))
}
