// Wake-wheel fixture: pins that a heap-allocating scheduler shape is
// rejected on the hot path. The real wheel (internal/dva/sched.go) is a
// fixed-size array in the machine plus a packed dirty word; every rejected
// shape below is a way of "upgrading" it to heap-backed event structures —
// per-tick wheel slices, pushed event nodes, map-keyed wake times — that
// must not survive review.
package dva

type wakeEvent struct {
	unit int
	at   int64
}

type sched struct {
	// The legal shape: wheel storage lives in the machine, fixed size.
	wake  [6]int64
	dirty uint32
	// due is the reusable scratch the legal collect path appends into.
	due []int
}

// tick is the per-cycle scheduler slot of the fixture machine.
//
// declint:hotpath
func (s *sched) tick(now int64) {
	// Legal: fixed-array wheel update and packed dirty-word fold.
	s.wake[0] = now + 1
	s.dirty = (s.dirty | s.dirty>>16) & 0x3f

	// Legal: collecting due units into a reused scratch field.
	s.due = s.due[:0]
	for u := range s.wake {
		if s.wake[u] <= now {
			s.due = append(s.due, u)
		}
	}

	// A per-tick wheel slice rebuilds the schedule on the heap every cycle.
	wheel := []int64{now, now + 1} // want "slice composite literal allocates in hot path tick"
	_ = wheel

	// A pushed event node is the container/heap shape: one allocation per
	// scheduled wake-up.
	ev := &wakeEvent{unit: 0, at: now + 1} // want "pointer composite literal allocates in hot path tick"
	_ = ev

	// A map-keyed wheel allocates on construction and on growth.
	pending := map[int]int64{0: now + 1} // want "map composite literal allocates in hot path tick"
	_ = pending

	// Accumulating due units into a fresh slice instead of machine scratch.
	var dueNow []int
	dueNow = append(dueNow, 0) // want "append to dueNow allocates in hot path tick"
	_ = dueNow
}
