// Package dva is a hotalloc fixture: its basename is a model package, and
// run carries the hotpath directive, so run and everything it reaches off
// the error paths is checked for per-cycle allocations.
package dva

import "fmt"

type machine struct {
	scratch []int
	drains  []int
	n       int
}

// run is the per-cycle loop of the fixture machine.
//
// declint:hotpath
func (m *machine) run() error {
	for i := 0; i < 8; i++ {
		m.step(i)
	}
	if m.n < 0 {
		// Error path: the fmt call and the dump() helper both stay cold.
		return fmt.Errorf("dva: bad state %s", m.dump())
	}
	return nil
}

func (m *machine) step(i int) {
	xs := []int{i} // want "slice composite literal allocates in hot path run"
	_ = xs
	p := &machine{n: i} // want "pointer composite literal allocates in hot path run"
	_ = p
	counts := map[int]int{i: 1} // want "map composite literal allocates in hot path run"
	_ = counts

	// The three legal append shapes: a reused field, a reslice of one,
	// and (in route) a parameter.
	m.drains = append(m.drains, i)
	ps := m.scratch[:0]
	ps = append(ps, i)
	m.scratch = route(ps, i)

	var fresh []int
	fresh = append(fresh, i) // want "append to fresh allocates in hot path run"
	_ = fresh

	fmt.Println(i) // want "fmt.Println in hot path run"

	msg := "cycle " + suffix(i) // want "string concatenation in hot path run"
	_ = msg

	for j := 0; j < i; j++ {
		f := func() int { return m.n + j } // want "closure capturing .* inside a loop in hot path run"
		m.n = f()
	}

	ys := []int{9} // declint:allow hotalloc — fixture: one-time warmup table
	_ = ys

	if i < 0 {
		panic(fmt.Sprintf("dva: negative cycle %d", i)) // clean: panic argument
	}
}

// route appends to its parameter, the scratch-threading idiom.
func route(ps []int, i int) []int {
	return append(ps, i)
}

func suffix(int) string { return "x" }

// dump is reached from run only through the error return, so it is cold
// and may format freely.
func (m *machine) dump() string {
	return fmt.Sprintf("n=%d scratch=%v", m.n, m.scratch)
}

// cold is never reached from a hotpath root.
func cold() []int {
	return []int{1, 2, 3}
}

// String is excluded from the hot closure even when hot code calls it.
func (m *machine) String() string {
	return fmt.Sprintf("m%d", m.n)
}
