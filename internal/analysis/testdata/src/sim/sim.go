// Package sim is a golden fixture for the recorderhygiene analyzer's
// method-side rules: it defines a Recorder whose exported pointer-receiver
// methods must be nil-safe.
package sim

type Payload struct {
	A, B int64
}

type Recorder struct {
	events []Payload
	notes  []string
}

func (r *Recorder) Enabled() bool {
	return r != nil
}

func (r *Recorder) Emit(p Payload) {
	if r == nil {
		return
	}
	r.events = append(r.events, p)
}

// EmitN's guard is a disjunction; nil still implies an early return.
func (r *Recorder) EmitN(p Payload, n int) {
	if r == nil || n <= 0 {
		return
	}
	r.events = append(r.events, p)
}

func (r *Recorder) Note(s string) {
	if r == nil {
		return
	}
	r.notes = append(r.notes, s)
}

func (r *Recorder) Bad(p Payload) { // want "exported Recorder method Bad touches receiver state"
	r.events = append(r.events, p)
}

// EmitSpan is the compliant bulk-accounting shape the idle-skip fast path
// introduced (ObserveN and friends): one call accounts a whole skipped span,
// with the nil check folded into the weight guard.
func (r *Recorder) EmitSpan(p Payload, n int64) {
	if r == nil || n <= 0 {
		return
	}
	p.B = n
	r.events = append(r.events, p)
}

// BadSpan takes the weight guard but skips the nil check.
func (r *Recorder) BadSpan(p Payload, n int64) { // want "exported Recorder method BadSpan touches receiver state"
	if n <= 0 {
		return
	}
	r.events = append(r.events, p)
}
