// Package server is a concdiscipline fixture: its basename places it in
// the policed concurrent layer.
package server

import "sync"

// S is a shared object with a guarded counter, a channel and a WaitGroup.
type S struct {
	mu sync.Mutex
	n  int
	ch chan int
	wg sync.WaitGroup
}

// plain has no mutex field; its counters are exempt.
type plain struct {
	n int
}

func (s *S) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want "mutex s.mu held across channel send"
	s.mu.Unlock()
}

func (s *S) badDeferredReceive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want "mutex s.mu held across channel receive"
}

func (s *S) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "mutex s.mu held across blocking select"
	case v := <-s.ch:
		_ = v
	case s.ch <- 2:
	}
}

func (s *S) badWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want "mutex s.mu held across s.wg.Wait"
}

// goodSend unlocks before communicating.
func (s *S) goodSend() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- 1
}

// goodNonBlockingSelect has a default clause, so the lock never blocks it.
func (s *S) goodNonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 3:
	default:
	}
}

func (s *S) badGo() {
	go func() { // want "goroutine has no tracked lifecycle"
		s.ch <- 1
	}()
}

// goodGoAdd pairs the goroutine with a preceding WaitGroup.Add.
func (s *S) goodGoAdd() {
	s.wg.Add(1)
	go s.drain()
}

// goodGoDone tracks its lifecycle by deferring Done inside the body.
func (s *S) goodGoDone() {
	go func() {
		defer s.wg.Done()
		s.drain()
	}()
}

// allowedGo shows the suppression escape hatch.
func (s *S) allowedGo() {
	go s.drain() // declint:allow concdiscipline — fixture: detached run registered elsewhere
}

func (s *S) drain() {
	for range s.ch {
	}
	s.wg.Done()
}

func (s *S) badCounter() {
	s.n++ // want "guarded counter s.n mutated without holding s.mu"
}

func (s *S) badCounterAssign() {
	s.n += 2 // want "guarded counter s.n mutated without holding s.mu"
}

// goodCounter mutates under the lock.
func (s *S) goodCounter() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// bumpLocked documents a caller-holds-the-lock contract via its name.
func (s *S) bumpLocked() {
	s.n++
}

// goodLocal mutates an object that has not escaped yet.
func goodLocal() *S {
	s := &S{ch: make(chan int)}
	s.n = 1
	return s
}

// goodPlain mutates a counter on a struct without a mutex; out of scope.
func goodPlain(p *plain) {
	p.n++
}
