// Package sweep is a concdiscipline fixture: its basename places it in the
// policed concurrent layer alongside server and experiments. The shapes
// mirror the real coordinator — a chunk channel fed under backpressure, a
// per-worker inflight semaphore, owed-cell bookkeeping under a mutex — in
// both their correct forms and the deadlock-shaped mutations the analyzer
// must keep rejecting.
package sweep

import "sync"

// W is one worker's coordinator-side state: a guarded owed list and
// counter, a chunk channel, an inflight semaphore.
type W struct {
	mu     sync.Mutex
	owed   int
	chunks chan []int
	sem    chan struct{}
	wg     sync.WaitGroup
}

// badFeed dispatches a chunk while still holding the bookkeeping lock —
// with a full channel and a worker blocked on the same lock, that is the
// classic feeder deadlock.
func (w *W) badFeed(chunk []int) {
	w.mu.Lock()
	w.owed += len(chunk)
	w.chunks <- chunk // want "mutex w.mu held across channel send"
	w.mu.Unlock()
}

// goodFeed records first, dispatches unlocked: backpressure can block the
// send for as long as it likes without wedging anyone else.
func (w *W) goodFeed(chunk []int) {
	w.mu.Lock()
	w.owed += len(chunk)
	w.mu.Unlock()
	w.chunks <- chunk
}

// badAcquire blocks on the inflight semaphore with the lock held.
func (w *W) badAcquire() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sem <- struct{}{} // want "mutex w.mu held across channel send"
}

// badDrainWait joins the round's workers while holding the lock they need
// to record their owed cells.
func (w *W) badDrainWait() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wg.Wait() // want "mutex w.mu held across w.wg.Wait"
}

// badDispatch launches an untracked chunk goroutine: it would outlive
// round collection and write results after the merge.
func (w *W) badDispatch(chunk []int) {
	go func() { // want "goroutine has no tracked lifecycle"
		w.chunks <- chunk
	}()
}

// goodDispatch is the coordinator's real shape: semaphore slot, then
// Add immediately before go, Done deferred first in the body.
func (w *W) goodDispatch(chunk []int) {
	w.sem <- struct{}{}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer func() { <-w.sem }()
		w.run(chunk)
	}()
}

// badOwed mutates the guarded counter without the lock — the round
// collector would race the worker.
func (w *W) badOwed(n int) {
	w.owed += n // want "guarded counter w.owed mutated without holding w.mu"
}

// goodOwed takes the lock.
func (w *W) goodOwed(n int) {
	w.mu.Lock()
	w.owed += n
	w.mu.Unlock()
}

func (w *W) run(chunk []int) {
	w.mu.Lock()
	w.owed -= len(chunk)
	w.mu.Unlock()
}
