// Package emitter exercises the emission-site rules of recorderhygiene:
// deferred emissions and payload construction must sit behind a nil or
// Enabled guard (mirroring the pre-fix dva issue-accounting defers).
package emitter

import (
	"fmt"

	"sim"
)

type machine struct {
	rec *sim.Recorder
}

// badDefer guards inside the closure — too late: the closure and defer
// frame are allocated unconditionally.
func (m *machine) badDefer(v int64) {
	defer func() { // want "deferred Recorder emission allocates a closure"
		if m.rec != nil {
			m.rec.Emit(sim.Payload{A: v})
		}
	}()
	v++
}

// goodDefer hoists the guard around the defer statement.
func (m *machine) goodDefer(v int64) {
	if m.rec != nil {
		defer func() { m.rec.Emit(sim.Payload{A: v}) }()
	}
	v++
}

func (m *machine) payloadUnguarded(v int64) {
	m.rec.Emit(sim.Payload{A: v}) // want "composite-literal payload built in a Recorder call"
}

func (m *machine) sprintfUnguarded(v int64) {
	m.rec.Note(fmt.Sprintf("v=%d", v)) // want "fmt.Sprintf payload built in a Recorder call"
}

func (m *machine) concatUnguarded(s string) {
	m.rec.Note("v=" + s) // want "string concatenation built in a Recorder call"
}

func (m *machine) payloadGuarded(v int64) {
	if m.rec != nil {
		m.rec.Emit(sim.Payload{A: v})
	}
}

func (m *machine) enabledGuarded(v int64) {
	if m.rec.Enabled() {
		m.rec.Emit(sim.Payload{A: v})
	}
}

func (m *machine) earlyReturn(v int64) {
	if m.rec == nil {
		return
	}
	m.rec.Emit(sim.Payload{A: v})
}

// cheap arguments need no guard: the nil-safe entry point handles the rest.
func (m *machine) cheapUnguarded(v int64) {
	m.rec.EmitN(sim.Payload{}, 0) // want "composite-literal payload built in a Recorder call"
}

func (m *machine) cheapNote() {
	m.rec.Note("tick")
}

// bulkSpan mirrors the idle-skip accounting call sites: pre-built payloads
// and integer weights are cheap arguments, so no guard is required.
func (m *machine) bulkSpan(p sim.Payload, skipped int64) {
	m.rec.EmitSpan(p, skipped)
}

// bulkSpanUnguarded builds the payload at the call — that allocation must
// still sit behind a guard even on the bulk path.
func (m *machine) bulkSpanUnguarded(lo, hi int64) {
	m.rec.EmitSpan(sim.Payload{A: lo}, hi-lo) // want "composite-literal payload built in a Recorder call"
}

// bulkSpanGuarded is the same site with the guard hoisted, as the machines'
// skipTo helpers do.
func (m *machine) bulkSpanGuarded(lo, hi int64) {
	if m.rec != nil {
		m.rec.EmitSpan(sim.Payload{A: lo}, hi-lo)
	}
}
