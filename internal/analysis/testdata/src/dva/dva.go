// Package dva is a golden fixture for the determinism analyzer: its
// basename matches a model package, so the reproducibility rules apply.
package dva

import (
	"math/rand"
	"time"

	"server"   // want "model package dva imports server: the serving layer schedules model runs, never the reverse"
	"simcache" // want "model package dva imports simcache: the result cache depends on the models, never the reverse"
)

type state struct {
	regs map[int]int64
}

func mapRange(s *state) int64 {
	var sum int64
	for _, v := range s.regs { // want "range over map in model package dva"
		sum += v
	}
	return sum
}

func sortedIteration(s *state, keys []int) int64 {
	var sum int64
	for _, k := range keys {
		sum += s.regs[k]
	}
	return sum
}

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now in model package dva"
	return time.Since(start) // want "time.Since in model package dva"
}

func globalRand() int {
	return rand.Intn(4) // want "rand.Intn uses the global source in model package dva"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}

func spawn(ch chan<- int) {
	go func() { ch <- 1 }() // want "goroutine spawned in model package dva"
}

func persist() error {
	return simcache.Open("/nonexistent")
}

func serve() error {
	return server.New()
}

func suppressed() time.Time {
	return time.Now() // declint:allow determinism — fixture: wall clock feeds a progress log only
}
