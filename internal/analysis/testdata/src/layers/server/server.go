// Package server is a layerdag fixture for the serving layer: importing
// the model layer is fine; nothing below serving may import it back.
package server

import (
	"layers/isa"
)

// Serve uses the model layer, a legal serving→model edge.
func Serve(op isa.Opcode) int {
	return int(op)
}
