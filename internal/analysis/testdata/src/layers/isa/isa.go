// Package isa is a layerdag fixture leaf: basename isa classifies into the
// model layer, which everything above may import.
package isa

// Opcode is a trivial exported symbol so importers have something to use.
type Opcode int
