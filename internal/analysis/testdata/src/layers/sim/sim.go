// Package sim is a layerdag fixture for the model layer. Its import of the
// serving layer is the inversion the analyzer exists to reject: model code
// must never depend on the machinery that schedules it.
package sim

import (
	"layers/isa"
	"layers/server" // want "package layers/sim .layer model. imports layers/server .layer serving.: model may import only model"
)

// Cycles exercises both imports.
func Cycles(op isa.Opcode) int {
	return server.Serve(op)
}
