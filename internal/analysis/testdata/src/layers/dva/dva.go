// Package dva is a layerdag fixture for the core layer: cores may import
// models only — not the serving layer, not unassigned packages, and (by
// omission from the allowed table) not each other.
package dva

import (
	"layers/isa"
	"layers/server" // want "package layers/dva .layer core. imports layers/server .layer serving.: core may import only model"

	_ "layers/mystery" // declint:allow layerdag — fixture: suppressed unassigned-package edge
)

// Step exercises the legal model import and the illegal serving import.
func Step(op isa.Opcode) int {
	return server.Serve(op) + int(op)
}
