// Package mystery is a layerdag fixture with a basename no layer claims;
// the analyzer must demand a DAG assignment before the package is wired in.
package mystery // want "package layers/mystery is not assigned to any layer"

// Hidden exists so importers can reference the package.
const Hidden = 42
