// Package analysis is the declint static-analysis framework: a small,
// dependency-free equivalent of golang.org/x/tools/go/analysis (which this
// repository deliberately does not vendor) built on go/ast and go/types.
//
// An Analyzer inspects one type-checked package and reports Diagnostics.
// The cmd/declint driver loads every package of the module and runs the
// registered analyzers over it; the analysistest-style harness in this
// package (RunTest) checks analyzers against golden packages under
// testdata/src using `// want "regexp"` comments, mirroring the upstream
// analysistest contract.
//
// Suppression directives:
//
//   - `// declint:allow <analyzer> — reason` on the diagnostic's line or the
//     line directly above suppresses one finding of that analyzer.
//   - `// declint:nonexhaustive — reason` inside the default clause of an
//     enum switch marks the default as a deliberate catch-all (understood by
//     the exhaustive analyzer only).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one declint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow-directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces.
	Doc string
	// Applies reports whether the analyzer polices the package with the
	// given import path. A nil Applies polices every package.
	Applies func(importPath string) bool
	// Run inspects the package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed non-test files of the package, with comments.
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info
	// Report records one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// TypeOf is a nil-tolerant shorthand for Pass.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Run applies every analyzer (subject to its Applies filter) to every
// package and returns the surviving diagnostics ordered by position.
// Diagnostics suppressed by `// declint:allow` directives are dropped.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.Errs) > 0 {
			return nil, fmt.Errorf("%s: %w", pkg.Path, pkg.Errs[0])
		}
		allowed := allowDirectives(pkg)
		for _, an := range analyzers {
			if an.Applies != nil && !an.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: an,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = an.Name
				if allowed.suppresses(pkg.Fset, d) {
					return
				}
				diags = append(diags, d)
			}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", an.Name, pkg.Path, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
