package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest loads golden packages from testdataDir/src, runs one analyzer over
// them and checks its diagnostics against `// want "regexp"` comments, the
// analysistest convention: each want comment names, by line, the diagnostics
// the analyzer must report there. Several expectations may share a comment
// (`// want "a" "b"`), every reported diagnostic must be wanted, and every
// want must be matched.
func RunTest(t *testing.T, testdataDir string, an *Analyzer, pkgPaths ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdataDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	modPath, modDir, err := ModuleInfo(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := NewLoader(modPath, modDir, filepath.Join(abs, "src"))
	var pkgs []*Package
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", path, err)
		}
		for _, e := range pkg.Errs {
			t.Errorf("analysistest: %s: %v", path, e)
		}
		pkgs = append(pkgs, pkg)
	}
	if t.Failed() {
		t.Fatalf("analysistest: golden packages must type-check")
	}
	diags, err := Run([]*Analyzer{an}, pkgs)
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", an.Name, err)
	}

	type lineKey struct {
		file string
		line int
	}
	type want struct {
		raw string
		re  *regexp.Regexp
		hit bool
	}
	wants := make(map[lineKey][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, err := parseWants(c.Text)
					if err != nil {
						pos := loader.Fset.Position(c.Pos())
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					if len(patterns) == 0 {
						continue
					}
					pos := loader.Fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
						}
						wants[k] = append(wants[k], &want{raw: p, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: want diagnostic matching %q, got none", k.file, k.line, w.raw)
			}
		}
	}
}

// parseWants extracts the expectation patterns from a `// want "..." "..."`
// comment. Comments not starting with the want keyword yield nothing.
func parseWants(text string) ([]string, error) {
	body := strings.TrimLeft(strings.TrimPrefix(text, "//"), " \t")
	if !strings.HasPrefix(body, "want ") && body != "want" {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, "want"))
	var out []string
	for rest != "" {
		if rest[0] != '"' {
			return nil, fmt.Errorf("want expectation must be a double-quoted Go string, have %q", rest)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want expectation in %q", rest)
		}
		s, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want expectation %q: %v", rest[:end+1], err)
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no expectations")
	}
	return out, nil
}
