package queuediscipline_test

import (
	"testing"

	"decvec/internal/analysis"
	"decvec/internal/analysis/queuediscipline"
)

func TestQueueDiscipline(t *testing.T) {
	analysis.RunTest(t, "../testdata", queuediscipline.Analyzer, "queue", "qconsumer")
}
