// Package queuediscipline implements the declint analyzer that protects the
// architectural-queue invariants behind internal/queue.
//
// The queue's occupancy statistics (the O(1) length/fullness integrals that
// feed the per-queue report tables) are only correct when every state
// change flows through the exported Push/Pop API and brings the integral up
// to date first. The analyzer enforces, inside the queue package:
//
//   - queue struct fields may only be assigned by the approved mutators
//     (the New/Init constructors, Push, Pop, Reset, SetObserver and the
//     account helper);
//   - Push and Pop must call account() before the first state mutation, so
//     the occupancy integral can never be bypassed.
//
// And at every call site in the rest of the tree:
//
//   - the boolean result of Push must not be discarded: a Push that fails
//     on a full queue silently drops an entry, which desynchronizes the
//     machine and corrupts cycle counts. Check the result (panic on the
//     "cannot happen" paths, as the dispatcher does).
package queuediscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"decvec/internal/analysis"
)

// Analyzer is the queue-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "queuediscipline",
	Doc:  "queue state changes only through Push/Pop with the occupancy integral updated; Push results must be checked",
	Run:  run,
}

// approvedMutators are the queue-package functions allowed to touch queue
// fields directly.
var approvedMutators = map[string]bool{
	"New": true, "Init": true, "Push": true, "Pop": true, "Reset": true,
	"SetObserver": true, "SetWake": true, "account": true,
}

func run(pass *analysis.Pass) error {
	if analysis.PathBase(pass.Pkg.Path()) == "queue" {
		checkQueuePackage(pass)
	}
	checkCallSites(pass)
	return nil
}

// queueNamed reports whether t (possibly a pointer) is — or instantiates —
// a defined struct type of a package named "queue" that has both Push and
// Pop methods, and returns its origin.
func queueNamed(t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, false
	}
	if analysis.PathBase(named.Obj().Pkg().Path()) != "queue" {
		return nil, false
	}
	origin := named.Origin()
	if _, ok := origin.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	var hasPush, hasPop bool
	for i := 0; i < origin.NumMethods(); i++ {
		switch origin.Method(i).Name() {
		case "Push":
			hasPush = true
		case "Pop":
			hasPop = true
		}
	}
	return origin, hasPush && hasPop
}

// checkQueuePackage enforces the in-package mutation rules.
func checkQueuePackage(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMutations(pass, fd)
		}
	}
}

// fieldMutation reports whether expr is a selector on a value of the queue
// type (a queue field access used as an assignment target).
func fieldMutation(pass *analysis.Pass, expr ast.Expr) (token.Pos, bool) {
	sel, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return expr.Pos(), false
	}
	if _, isField := pass.Info.Selections[sel]; !isField {
		return expr.Pos(), false
	}
	if _, isQueue := queueNamed(pass.TypeOf(sel.X)); !isQueue {
		return expr.Pos(), false
	}
	return expr.Pos(), true
}

func checkFuncMutations(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	approved := approvedMutators[name]
	var firstMutation ast.Node
	var accountCall ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if pos, ok := fieldMutation(pass, lhs); ok {
					if !approved {
						pass.Reportf(pos, "queue state mutated outside the approved mutators (in %s): route changes through Push/Pop/Reset", name)
					} else if firstMutation == nil {
						firstMutation = n
					}
				}
			}
		case *ast.IncDecStmt:
			if pos, ok := fieldMutation(pass, n.X); ok {
				if !approved {
					pass.Reportf(pos, "queue state mutated outside the approved mutators (in %s): route changes through Push/Pop/Reset", name)
				} else if firstMutation == nil {
					firstMutation = n
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "account" {
				if _, isQueue := queueNamed(pass.TypeOf(sel.X)); isQueue && accountCall == nil {
					accountCall = n
				}
			}
		}
		return true
	})
	if (name == "Push" || name == "Pop") && fd.Recv != nil && firstMutation != nil {
		if accountCall == nil || accountCall.Pos() > firstMutation.Pos() {
			pass.Reportf(fd.Pos(), "%s mutates queue state without first updating the occupancy integral: call account() before the mutation", name)
		}
	}
}

// checkCallSites flags discarded Push results anywhere in the tree. Both
// direct calls on a queue type and calls through an interface are covered:
// any method named Push returning a single bool whose result is dropped.
func checkCallSites(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isBoolPush(pass, call) {
					pass.Reportf(call.Pos(), "result of Push discarded: a full queue silently drops the entry; check the result (e.g. panic after a capacity check)")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBoolPush(pass, call) {
						if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
							pass.Reportf(call.Pos(), "result of Push discarded with _: a full queue silently drops the entry; check the result")
						}
					}
				}
			}
			return true
		})
	}
}

func isBoolPush(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Push" {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	sig, ok := selection.Obj().Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}
