// Package tracegen synthesizes dynamic instruction traces with the same
// information content as the paper's Dixie traces: instruction streams
// annotated with vector lengths, vector strides and memory addresses.
//
// Traces are built from parameterized loop kernels (daxpy-like streams,
// compute-bound kernels, spill-heavy bodies, reductions with loop-carried
// scalar dependencies, gather/scatter, scalar glue code). The workload
// package composes kernels into models of the Perfect Club programs.
package tracegen

import (
	"fmt"
	"math/rand"

	"decvec/internal/isa"
	"decvec/internal/sim"
	"decvec/internal/trace"
)

// emitBufs recycles emit buffers across builders. Workload synthesis builds
// tens of thousands of instructions per trace; growing a fresh buffer from
// nothing for every trace re-pays the whole append-growth ladder each time,
// so Trace right-size-copies the finished instructions and donates the
// (grown) backing buffer to the next builder.
var emitBufs sim.RunPool[[]isa.Inst]

// Builder accumulates a synthetic trace. Create one with New, call kernel
// methods, then Trace to obtain the result.
type Builder struct {
	name  string
	insts []isa.Inst
	// owned marks insts as backed by an emitBufs buffer that no finished
	// trace aliases, so Trace may recycle it.
	owned bool
	seq   int64
	rng   *rand.Rand

	// curVL and curVS mirror the architectural VL/VS registers so kernels
	// emit vsetvl/vsetvs only on change, as compiled code does.
	curVL int
	curVS int64

	// nextAddr is the bump allocator cursor for array placement. Arrays are
	// spaced so that distinct arrays never alias.
	nextAddr uint64
}

// New returns a Builder for a trace with the given name and deterministic
// random seed.
func New(name string, seed int64) *Builder {
	b := &Builder{
		name:     name,
		rng:      rand.New(rand.NewSource(seed)),
		curVL:    -1,
		curVS:    -999,
		nextAddr: 0x10000,
	}
	if buf, ok := emitBufs.Get(); ok {
		b.insts = buf[:0]
		b.owned = true
	}
	return b
}

// Trace finalizes the builder into a replayable in-memory trace. The trace
// receives a right-sized copy of the instructions; the builder's (grown)
// emit buffer goes back to the pool for the next builder. If an owned
// buffer outgrew its pooled backing along the way, ownership simply moved
// to the replacement, so the pool always receives the largest buffer.
func (b *Builder) Trace() *trace.Slice {
	out := make([]isa.Inst, len(b.insts))
	copy(out, b.insts)
	if b.owned {
		emitBufs.Put(b.insts[:0])
	}
	// Keep the builder usable (Len, EndBB, further emits) without aliasing
	// the returned trace: the full slice expression forces any later append
	// to reallocate.
	b.insts = out[:len(out):len(out)]
	b.owned = false
	return &trace.Slice{TraceName: b.name, Insts: out}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Array reserves a region of n 64-bit elements and returns its base
// address. Regions are padded so neighbouring arrays never overlap even
// with large strides.
func (b *Builder) Array(n int) uint64 {
	base := b.nextAddr
	b.nextAddr += uint64(n)*isa.ElemSize + 4096
	return base
}

// Rand exposes the builder's deterministic random source to kernels.
func (b *Builder) Rand() *rand.Rand { return b.rng }

func (b *Builder) emit(in isa.Inst) {
	in.Seq = b.seq
	b.seq++
	if err := in.Validate(); err != nil {
		panic(fmt.Sprintf("tracegen: %v", err))
	}
	b.insts = append(b.insts, in)
}

// SetVL emits a vsetvl if the current vector length differs.
func (b *Builder) SetVL(vl int) {
	if vl == b.curVL {
		return
	}
	if vl < 1 || vl > isa.MaxVL {
		panic(fmt.Sprintf("tracegen: vsetvl %d", vl))
	}
	b.curVL = vl
	b.emit(isa.Inst{Class: isa.ClassVSetVL, VL: vl})
}

// SetVS emits a vsetvs if the current vector stride differs.
func (b *Builder) SetVS(vs int64) {
	if vs == b.curVS {
		return
	}
	b.curVS = vs
	b.emit(isa.Inst{Class: isa.ClassVSetVS, Stride: vs})
}

// VL returns the current vector length.
func (b *Builder) VL() int { return b.curVL }

// AAdd emits address arithmetic dst = src1 (+ src2) on the AP.
func (b *Builder) AAdd(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd, Dst: dst, Src1: src1, Src2: src2})
}

// SOp emits scalar S-register arithmetic on the SP.
func (b *Builder) SOp(op isa.Opcode, dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Class: isa.ClassScalarALU, Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// SLoad emits a scalar load from addr into an A or S register.
func (b *Builder) SLoad(dst isa.Reg, addrReg isa.Reg, addr uint64, spill bool) {
	b.emit(isa.Inst{Class: isa.ClassScalarLoad, Dst: dst, Src1: addrReg, Base: addr, Spill: spill})
}

// SStore emits a scalar store of an A or S register to addr.
func (b *Builder) SStore(data isa.Reg, addrReg isa.Reg, addr uint64, spill bool) {
	b.emit(isa.Inst{Class: isa.ClassScalarStore, Dst: data, Src1: addrReg, Base: addr, Spill: spill})
}

// VLoad emits a vector load of the current VL/VS into dst.
func (b *Builder) VLoad(dst, addrReg isa.Reg, addr uint64, spill bool) {
	b.emit(isa.Inst{
		Class: isa.ClassVectorLoad, Dst: dst, Src1: addrReg,
		Base: addr, VL: b.curVL, Stride: b.curVS, Spill: spill,
	})
}

// VStore emits a vector store of data (a V register) at the current VL/VS.
func (b *Builder) VStore(data, addrReg isa.Reg, addr uint64, spill bool) {
	b.emit(isa.Inst{
		Class: isa.ClassVectorStore, Dst: data, Src1: addrReg,
		Base: addr, VL: b.curVL, Stride: b.curVS, Spill: spill,
	})
}

// Gather emits an indexed vector load (conservatively aliased with all of
// memory by the disambiguator).
func (b *Builder) Gather(dst, addrReg isa.Reg, addr uint64) {
	b.emit(isa.Inst{Class: isa.ClassGather, Dst: dst, Src1: addrReg, Base: addr, VL: b.curVL, Stride: 1})
}

// Scatter emits an indexed vector store.
func (b *Builder) Scatter(data, addrReg isa.Reg, addr uint64) {
	b.emit(isa.Inst{Class: isa.ClassScatter, Dst: data, Src1: addrReg, Base: addr, VL: b.curVL, Stride: 1})
}

// VOp emits an element-wise vector operation dst = src1 op src2. src2 may
// be an S register (a scalar operand fed through the SVDQ in the DVA).
func (b *Builder) VOp(op isa.Opcode, dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Class: isa.ClassVectorALU, Op: op, Dst: dst, Src1: src1, Src2: src2, VL: b.curVL})
}

// Reduce emits a vector reduction of src into the scalar register dst.
func (b *Builder) Reduce(op isa.Opcode, dst, src isa.Reg) {
	b.emit(isa.Inst{Class: isa.ClassReduce, Op: op, Dst: dst, Src1: src, VL: b.curVL})
}

// Branch emits a loop-closing conditional branch reading ctr and ends the
// basic block. Counters in A registers execute on the AP, S registers on
// the SP.
func (b *Builder) Branch(ctr isa.Reg) {
	b.emit(isa.Inst{Class: isa.ClassBranch, Op: isa.OpCmp, Src1: ctr, BBEnd: true})
}

// EndBB marks the previous instruction as a basic-block boundary without
// emitting anything (for straight-line code split by calls).
func (b *Builder) EndBB() {
	if len(b.insts) > 0 {
		b.insts[len(b.insts)-1].BBEnd = true
	}
}
