package tracegen

import (
	"testing"

	"decvec/internal/isa"
	"decvec/internal/trace"
)

// allKernels invokes every kernel once so structural tests cover them all.
func allKernels(b *Builder) {
	b.Daxpy(16, 3)
	b.Copy(16, 2)
	b.ComputeBound(16, 2, 5)
	b.Stencil(16, 2)
	b.Spill(16, 2, 2, 3)
	b.SpillPipelined(16, 5, 2)
	b.SpillEager(16, 5)
	b.SoftPipeDaxpy(16, 4)
	b.DotReduce(16, 3, true)
	b.DotReduce(16, 3, false)
	b.LoadBurst(16, 2, 4)
	b.GatherScatter(16, 2)
	b.ScalarBlock(60, 30, 50)
	b.ScalarRecurrence(5)
	b.StridedSweep(16, 2, 4)
}

func TestAllKernelsProduceValidTraces(t *testing.T) {
	b := New("kernels", 1)
	allKernels(b)
	tr := b.Trace()
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *trace.Slice {
		b := New("d", 42)
		allKernels(b)
		return b.Trace()
	}
	a, c := mk(), mk()
	if a.Len() != c.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), c.Len())
	}
	for i := range a.Insts {
		if a.Insts[i] != c.Insts[i] {
			t.Fatalf("instruction %d differs: %s vs %s", i, a.Insts[i].String(), c.Insts[i].String())
		}
	}
}

func TestSeedChangesScalarBlock(t *testing.T) {
	mk := func(seed int64) *trace.Slice {
		b := New("s", seed)
		b.ScalarBlock(100, 30, 0)
		return b.Trace()
	}
	a, c := mk(1), mk(2)
	same := a.Len() == c.Len()
	if same {
		for i := range a.Insts {
			if a.Insts[i] != c.Insts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical scalar blocks")
	}
}

func TestSetVLDedup(t *testing.T) {
	b := New("vl", 1)
	b.SetVL(16)
	b.SetVL(16) // no-op
	b.SetVL(32)
	tr := b.Trace()
	count := 0
	for _, in := range tr.Insts {
		if in.Class == isa.ClassVSetVL {
			count++
		}
	}
	if count != 2 {
		t.Errorf("vsetvl count = %d, want 2", count)
	}
	if b.VL() != 32 {
		t.Errorf("VL() = %d", b.VL())
	}
}

func TestSetVLPanicsOutOfRange(t *testing.T) {
	b := New("vl", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b.SetVL(isa.MaxVL + 1)
}

func TestArrayRegionsDisjoint(t *testing.T) {
	b := New("arr", 1)
	a1 := b.Array(100)
	a2 := b.Array(100)
	if a2 < a1+100*isa.ElemSize {
		t.Errorf("arrays overlap: %#x then %#x", a1, a2)
	}
}

func TestSpillPairsAreIdentical(t *testing.T) {
	// Every spill reload must exactly match an earlier spill store: same
	// base, VL and stride — that is what makes it bypass-eligible.
	b := New("spill", 1)
	b.Spill(32, 4, 3, 2)
	tr := b.Trace()
	stores := map[uint64]isa.Inst{}
	reloads := 0
	for _, in := range tr.Insts {
		if !in.Spill {
			continue
		}
		switch in.Class {
		case isa.ClassVectorStore:
			stores[in.Base] = in
		case isa.ClassVectorLoad:
			reloads++
			st, ok := stores[in.Base]
			if !ok {
				t.Fatalf("reload %s without a prior store", in.String())
			}
			if st.VL != in.VL || st.Stride != in.Stride {
				t.Fatalf("spill pair mismatch: %s vs %s", st.String(), in.String())
			}
		}
	}
	if reloads != 12 { // 3 spills x 4 iterations
		t.Errorf("reloads = %d, want 12", reloads)
	}
}

func TestSpillPipelinedReloadTrailsStore(t *testing.T) {
	// The reload of iteration i targets the slot stored in iteration i-1.
	b := New("sp", 1)
	b.SpillPipelined(16, 6, 1)
	tr := b.Trace()
	lastStore := map[uint64]int{}
	for i, in := range tr.Insts {
		if !in.Spill {
			continue
		}
		switch in.Class {
		case isa.ClassVectorStore:
			lastStore[in.Base] = i
		case isa.ClassVectorLoad:
			at, ok := lastStore[in.Base]
			if !ok {
				t.Fatalf("reload at %d without prior store", i)
			}
			if i-at > 20 {
				t.Errorf("reload at %d too far from store at %d", i, at)
			}
		}
	}
}

func TestScalarBlockRespectsMemPct(t *testing.T) {
	b := New("sb", 3)
	b.ScalarBlock(2000, 20, 0)
	st := trace.Collect(b.Trace())
	frac := float64(st.MemInsts) / float64(st.ScalarInsts)
	if frac < 0.12 || frac > 0.28 {
		t.Errorf("memory fraction %.2f far from requested 0.20", frac)
	}
}

func TestScalarBlockSpillPairsComplete(t *testing.T) {
	// Every scalar spill store gets a matching reload (possibly in the
	// trailing drain).
	b := New("sb", 3)
	b.ScalarBlock(500, 30, 80)
	var stores, loads int
	for _, in := range b.Trace().Insts {
		if !in.Spill {
			continue
		}
		switch in.Class {
		case isa.ClassScalarStore:
			stores++
		case isa.ClassScalarLoad:
			loads++
		}
	}
	if stores == 0 {
		t.Fatal("no scalar spills generated")
	}
	if stores != loads {
		t.Errorf("spill stores %d != reloads %d", stores, loads)
	}
}

func TestDotReduceCarriedUsesSAAQPath(t *testing.T) {
	// The carried variant must contain address arithmetic reading an S
	// register (the AP-waits-for-SP dependence).
	b := New("dr", 1)
	b.DotReduce(16, 3, true)
	found := false
	for _, in := range b.Trace().Insts {
		if in.Class == isa.ClassScalarALU && in.Dst.Kind == isa.RegA && in.Src2.Kind == isa.RegS {
			found = true
			break
		}
	}
	if !found {
		t.Error("carried reduction lacks the A<-S dependence")
	}
	// The uncarried variant must not have it.
	b2 := New("dr2", 1)
	b2.DotReduce(16, 3, false)
	for _, in := range b2.Trace().Insts {
		if in.Class == isa.ClassScalarALU && in.Dst.Kind == isa.RegA && in.Src2.Kind == isa.RegS {
			t.Error("uncarried reduction has a carried dependence")
		}
	}
}

func TestLoadBurstClampsBurst(t *testing.T) {
	b := New("lb", 1)
	b.LoadBurst(16, 1, 99) // clamped to 6
	loads := 0
	for _, in := range b.Trace().Insts {
		if in.Class == isa.ClassVectorLoad {
			loads++
		}
	}
	if loads != 6 {
		t.Errorf("loads = %d, want 6", loads)
	}
}

func TestStridedSweepUsesStride(t *testing.T) {
	b := New("ss", 1)
	b.StridedSweep(16, 2, 8)
	found := false
	for _, in := range b.Trace().Insts {
		if in.Class == isa.ClassVectorLoad && in.Stride == 8 {
			found = true
		}
	}
	if !found {
		t.Error("no strided load emitted")
	}
}

func TestEndBBMarksLastInstruction(t *testing.T) {
	b := New("bb", 1)
	b.SOp(isa.OpAdd, isa.S(0), isa.S(1), isa.None)
	b.EndBB()
	tr := b.Trace()
	if !tr.Insts[len(tr.Insts)-1].BBEnd {
		t.Error("EndBB did not mark")
	}
}

func TestEmitValidatesInstruction(t *testing.T) {
	b := New("bad", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on invalid instruction")
		}
	}()
	// Vector op without setting VL first (VL = -1 -> invalid).
	b.VOp(isa.OpAdd, isa.V(0), isa.V(1), isa.None)
}
