package tracegen

import (
	"math/rand"

	"decvec/internal/isa"
)

// Random synthesizes a well-formed but otherwise arbitrary trace of about n
// instructions: random mixes of scalar and vector arithmetic, loads, stores
// (including deliberate overlaps and exact store/load pairs to exercise
// disambiguation and the bypass), reductions, scalar operands, gathers,
// scatters and branches. Any trace it produces must simulate to completion
// on both architectures — the cross-simulator property tests rely on that.
func Random(seed int64, n int) *Builder {
	b := New("random", seed)
	r := b.rng
	// A small set of memory regions; reusing them makes address overlap
	// (and therefore hazards, flushes and bypasses) common.
	regions := make([]uint64, 6)
	for i := range regions {
		regions[i] = b.Array(4 * isa.MaxVL)
	}
	region := func() uint64 {
		base := regions[r.Intn(len(regions))]
		return base + uint64(r.Intn(3*isa.MaxVL))*isa.ElemSize
	}
	b.SetVL(1 + r.Intn(isa.MaxVL))
	b.SetVS(1)
	// lastVecStore remembers a recent vector store so a later load can be
	// made exactly identical (the bypass case).
	var lastVecStore *isa.Inst

	for b.Len() < n {
		switch r.Intn(16) {
		case 0:
			b.SetVL(1 + r.Intn(isa.MaxVL))
		case 1:
			stride := int64(1 + r.Intn(4))
			if r.Intn(4) == 0 {
				stride = -stride
			}
			b.SetVS(stride)
		case 2, 3:
			// Vector ALU, sometimes with a scalar operand.
			src2 := isa.V(r.Intn(isa.NumVRegs))
			if r.Intn(4) == 0 {
				src2 = isa.S(r.Intn(isa.NumSRegs))
			}
			op := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd}[r.Intn(5)]
			b.VOp(op, isa.V(r.Intn(isa.NumVRegs)), isa.V(r.Intn(isa.NumVRegs)), src2)
		case 4, 5:
			b.VLoad(isa.V(r.Intn(isa.NumVRegs)), isa.A(1+r.Intn(5)), region(), false)
		case 6:
			addr := region()
			data := isa.V(r.Intn(isa.NumVRegs))
			b.VStore(data, isa.A(1+r.Intn(5)), addr, false)
			last := b.insts[len(b.insts)-1]
			lastVecStore = &last
		case 7:
			// An exact reload of a recent store: bypass-eligible whenever
			// the store is still queued.
			if lastVecStore != nil {
				saved := b.curVL
				b.SetVL(lastVecStore.VL)
				b.SetVS(lastVecStore.Stride)
				b.VLoad(isa.V(r.Intn(isa.NumVRegs)), isa.A(1+r.Intn(5)), lastVecStore.Base, true)
				b.SetVL(saved)
				b.SetVS(1)
			}
		case 8:
			b.Reduce(isa.OpAdd, isa.S(r.Intn(isa.NumSRegs)), isa.V(r.Intn(isa.NumVRegs)))
		case 9:
			// Scalar arithmetic on the SP.
			b.SOp(isa.OpAdd, isa.S(r.Intn(isa.NumSRegs)), isa.S(r.Intn(isa.NumSRegs)), isa.S(r.Intn(isa.NumSRegs)))
		case 10:
			// Address arithmetic on the AP, sometimes with an S operand
			// (the SAAQ path).
			src2 := isa.None
			if r.Intn(3) == 0 {
				src2 = isa.S(r.Intn(isa.NumSRegs))
			}
			b.emit(isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd,
				Dst: isa.A(r.Intn(isa.NumARegs)), Src1: isa.A(r.Intn(isa.NumARegs)), Src2: src2})
		case 11:
			// Scalar load to S or A.
			if r.Intn(2) == 0 {
				b.SLoad(isa.S(r.Intn(isa.NumSRegs)), isa.A(6), region(), false)
			} else {
				b.SLoad(isa.A(r.Intn(isa.NumARegs)), isa.A(6), region(), false)
			}
		case 12:
			// Scalar store from S or A.
			if r.Intn(2) == 0 {
				b.SStore(isa.S(r.Intn(isa.NumSRegs)), isa.A(6), region(), false)
			} else {
				b.SStore(isa.A(r.Intn(isa.NumARegs)), isa.A(6), region(), false)
			}
		case 13:
			if r.Intn(2) == 0 {
				b.Gather(isa.V(r.Intn(isa.NumVRegs)), isa.A(1+r.Intn(5)), region())
			} else {
				b.Scatter(isa.V(r.Intn(isa.NumVRegs)), isa.A(1+r.Intn(5)), region())
			}
		case 14:
			// Branch on either processor.
			if r.Intn(2) == 0 {
				b.Branch(isa.A(r.Intn(isa.NumARegs)))
			} else {
				b.Branch(isa.S(r.Intn(isa.NumSRegs)))
			}
		default:
			b.emit(isa.Inst{Class: isa.ClassNop})
		}
	}
	return b
}

// Rng exposes the deterministic source used by Random (test support).
func (b *Builder) Rng() *rand.Rand { return b.rng }
