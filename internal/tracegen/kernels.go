package tracegen

import "decvec/internal/isa"

// Kernels are the loop templates the workload models compose. Register
// conventions inside kernels: A0 is the loop counter, A1-A5 hold array
// bases, A6/A7 are temporaries; S registers hold scalar values; vector
// registers are double-buffered between iterations so consecutive
// iterations do not serialize on WAW hazards (as a vectorizing compiler
// would allocate them).

// loopCtl emits the loop-control tail of one iteration: the counter update
// on the AP and the closing branch.
func (b *Builder) loopCtl() {
	b.AAdd(isa.A(0), isa.A(0), isa.None)
	b.Branch(isa.A(0))
}

// Daxpy emits a memory-bound daxpy-like loop: z[i] = a*x[i] + y[i].
// Three vector memory references per iteration against two functional-unit
// operations make the memory port the bottleneck; this is the bread and
// butter of the paper's memory-bound benchmarks.
func (b *Builder) Daxpy(vl, iters int) {
	x, y, z := b.Array(vl*iters), b.Array(vl*iters), b.Array(vl*iters)
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	for i := 0; i < iters; i++ {
		// Double-buffer vector registers across iterations.
		v0, v1, v2 := isa.V(0), isa.V(1), isa.V(2)
		if i%2 == 1 {
			v0, v1, v2 = isa.V(4), isa.V(5), isa.V(6)
		}
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(v0, isa.A(1), x+off, false)
		b.AAdd(isa.A(2), isa.A(2), isa.None)
		b.VLoad(v1, isa.A(2), y+off, false)
		b.VOp(isa.OpMul, v2, v0, isa.S(1)) // a*x, scalar operand via SVDQ
		b.VOp(isa.OpAdd, v2, v2, v1)
		b.AAdd(isa.A(3), isa.A(3), isa.None)
		b.VStore(v2, isa.A(3), z+off, false)
		b.loopCtl()
	}
}

// Copy emits a pure copy loop: z[i] = x[i]. Entirely memory-port bound.
func (b *Builder) Copy(vl, iters int) {
	x, z := b.Array(vl*iters), b.Array(vl*iters)
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	for i := 0; i < iters; i++ {
		v := isa.V(0)
		if i%2 == 1 {
			v = isa.V(4)
		}
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(v, isa.A(1), x+off, false)
		b.AAdd(isa.A(2), isa.A(2), isa.None)
		b.VStore(v, isa.A(2), z+off, false)
		b.loopCtl()
	}
}

// ComputeBound emits a loop with `flops` chained vector operations per
// element loaded: one load, a chain of ALU operations alternating
// FU1-capable and FU2-only work, one store. With flops well above 2 the
// functional units, not the port, limit performance; in the DVA this is the
// regime where the VPIQ fills and bounds the AVDQ occupancy (§6).
func (b *Builder) ComputeBound(vl, iters, flops int) {
	if flops < 1 {
		flops = 1
	}
	x, z := b.Array(vl*iters), b.Array(vl*iters)
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	for i := 0; i < iters; i++ {
		v0, v1 := isa.V(0), isa.V(1)
		if i%2 == 1 {
			v0, v1 = isa.V(4), isa.V(5)
		}
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(v0, isa.A(1), x+off, false)
		cur := v0
		for f := 0; f < flops; f++ {
			op := isa.OpAdd
			if f%2 == 1 {
				op = isa.OpMul
			}
			b.VOp(op, v1, cur, isa.None)
			cur, v1 = v1, cur
		}
		b.AAdd(isa.A(2), isa.A(2), isa.None)
		b.VStore(cur, isa.A(2), z+off, false)
		b.loopCtl()
	}
}

// Stencil emits a three-point-stencil-like loop: three loads of the same
// array at shifted offsets, two adds, one multiply by a scalar, one store.
// Heavily memory-bound with some FU overlap — typical of ARC2D/FLO52 sweeps.
func (b *Builder) Stencil(vl, iters int) {
	x, z := b.Array(vl*iters+2), b.Array(vl*iters)
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	for i := 0; i < iters; i++ {
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(isa.V(0), isa.A(1), x+off, false)
		b.VLoad(isa.V(1), isa.A(1), x+off+isa.ElemSize, false)
		b.VLoad(isa.V(2), isa.A(1), x+off+2*isa.ElemSize, false)
		// Distinct destinations let the three operations chain +1 apart.
		b.VOp(isa.OpAdd, isa.V(3), isa.V(0), isa.V(1))
		b.VOp(isa.OpAdd, isa.V(4), isa.V(3), isa.V(2))
		b.VOp(isa.OpMul, isa.V(5+i%2), isa.V(4), isa.S(2))
		b.AAdd(isa.A(2), isa.A(2), isa.None)
		b.VStore(isa.V(5+i%2), isa.A(2), z+off, false)
		b.loopCtl()
	}
}

// Spill emits a loop whose body spills vector temporaries to stack slots
// at its start and reloads them near its end — compiler spill code across
// high-register-pressure regions, the prime beneficiary of the §7 bypass:
// a reload is identical to a queued store whenever the store has not yet
// drained to memory. spills is the number of spill store/reload pairs per
// iteration; work is the number of ALU operations separating the spills
// from the reloads (more work gives the store engine more time to drain).
func (b *Builder) Spill(vl, iters, spills, work int) {
	if spills < 1 {
		spills = 1
	}
	if spills > 3 {
		spills = 3
	}
	x, z := b.Array(vl*iters), b.Array(vl*iters)
	// One set of stack slots, reused every iteration.
	slots := make([]uint64, spills)
	for s := range slots {
		slots[s] = b.Array(vl)
	}
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	for i := 0; i < iters; i++ {
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(isa.V(0), isa.A(1), x+off, false)
		// Produce and spill the temporaries that won't fit in registers.
		for s := 0; s < spills; s++ {
			b.VOp(isa.OpMul, isa.V(1), isa.V(0), isa.S(1))
			b.VStore(isa.V(1), isa.A(4), slots[s], true)
		}
		// The register-hungry middle of the body: independent operations
		// on the loaded vector, alternating destination registers.
		for w := 0; w < work; w++ {
			op := isa.OpAdd
			if w%2 == 1 {
				op = isa.OpMul
			}
			b.VOp(op, isa.V(2+w%2), isa.V(0), isa.None)
		}
		// Reload the spilled temporaries and combine.
		for s := 0; s < spills; s++ {
			ld := isa.V(4 + s%2)
			b.VLoad(ld, isa.A(4), slots[s], true)
			b.VOp(isa.OpAdd, isa.V(6+s%2), ld, isa.V(2))
		}
		b.AAdd(isa.A(3), isa.A(3), isa.None)
		b.VStore(isa.V(6), isa.A(3), z+off, false)
		b.loopCtl()
	}
}

// SpillPipelined emits a software-pipelined stream loop that additionally
// spills one live vector across iterations: iteration i stores a temporary
// to a rotating stack slot and reloads the value iteration i-1 stored —
// the paper's "bypass between data belonging to different iterations of the
// same loop". Without the bypass, the reload's hazard check finds the
// previous iteration's store still queued whenever the AP has slipped
// ahead, forcing a drain that claws the slip back (DYFESM's flat speedup);
// with the bypass the reload is serviced from the queue and the slip —
// and the memory port — are preserved.
func (b *Builder) SpillPipelined(vl, iters, spills int) {
	if spills < 1 {
		spills = 1
	}
	if spills > 2 {
		spills = 2
	}
	x, z := b.Array(vl*(iters+2)), b.Array(vl*(iters+2))
	// Each spill pair rotates over two stack slots.
	var slots [2][2]uint64
	for s := 0; s < spills; s++ {
		slots[s] = [2]uint64{b.Array(vl), b.Array(vl)}
	}
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	// Two register groups rotate: g[0] holds the stream load, g[1] the
	// first spill reload; everything consumed in iteration i was produced
	// in iteration i-1, so the reference architecture hides one iteration's
	// worth of chimes of memory latency, as compiler-scheduled code does.
	groups := [2][2]isa.Reg{
		{isa.V(0), isa.V(1)},
		{isa.V(2), isa.V(3)},
	}
	// The second spill pair rotates over V4/V5.
	extra := [2]isa.Reg{isa.V(4), isa.V(5)}
	for i := 0; i < iters; i++ {
		g, p := groups[i%2], groups[(i+1)%2]
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(g[0], isa.A(1), x+off, false)
		if i >= 1 {
			// Spill temporaries computed from the previous load...
			for s := 0; s < spills; s++ {
				b.VOp(isa.OpMul, isa.V(6), p[0], isa.S(1))
				b.VStore(isa.V(6), isa.A(4), slots[s][i%2], true)
				if i < 2 {
					continue // nothing spilled into the other slot yet
				}
				// ...and reload the ones spilled in the previous iteration.
				dst := g[1]
				if s == 1 {
					dst = extra[i%2]
				}
				b.VLoad(dst, isa.A(4), slots[s][(i-1)%2], true)
			}
		}
		if i >= 3 {
			// Combine the previous iteration's stream load and reloads.
			dst := isa.V(7)
			b.VOp(isa.OpAdd, dst, p[0], p[1])
			if spills > 1 {
				b.VOp(isa.OpAdd, dst, dst, extra[(i-1)%2])
			}
			b.AAdd(isa.A(3), isa.A(3), isa.None)
			b.VStore(dst, isa.A(3), z+off, false)
		}
		b.loopCtl()
	}
}

// DotReduce emits a dot-product-style reduction loop. When carried is
// true, the reduction result feeds both the next iteration's vector
// operation (through the SVDQ) and its address computation (through the
// SAAQ), reproducing DYFESM's distance-1 recurrence: the SP stalls, the AP
// cannot slip ahead, and the three processors run in lockstep (§5).
func (b *Builder) DotReduce(vl, iters int, carried bool) {
	x := b.Array(vl * iters)
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	for i := 0; i < iters; i++ {
		v0, v1 := isa.V(0), isa.V(1)
		if i%2 == 1 {
			v0, v1 = isa.V(4), isa.V(5)
		}
		off := uint64(i) * step
		if carried {
			// Address depends on the previous reduction result: the AP
			// waits for S1 through the SAAQ.
			b.emit(isa.Inst{Class: isa.ClassScalarALU, Op: isa.OpAdd,
				Dst: isa.A(1), Src1: isa.A(1), Src2: isa.S(1)})
		} else {
			b.AAdd(isa.A(1), isa.A(1), isa.None)
		}
		b.VLoad(v0, isa.A(1), x+off, false)
		scalar := isa.S(3) // loop-invariant coefficient
		if carried {
			scalar = isa.S(1) // previous reduction result
		}
		b.VOp(isa.OpMul, v1, v0, scalar)
		b.Reduce(isa.OpAdd, isa.S(1), v1)
		b.SOp(isa.OpAdd, isa.S(2), isa.S(2), isa.S(1)) // accumulate on the SP
		b.loopCtl()
	}
}

// LoadBurst emits a loop that issues `burst` independent vector loads and
// only then combines them: the address processor can run far ahead filling
// the AVDQ (SPEC77's behaviour in Figure 6), while the reference
// architecture stalls its single dispatch on the first use. burst is capped
// at 6 to leave registers for the result.
func (b *Builder) LoadBurst(vl, iters, burst int) {
	if burst < 2 {
		burst = 2
	}
	if burst > 6 {
		burst = 6
	}
	arrays := make([]uint64, burst)
	for i := range arrays {
		arrays[i] = b.Array(vl * iters)
	}
	z := b.Array(vl * iters)
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	for i := 0; i < iters; i++ {
		off := uint64(i) * step
		for j := 0; j < burst; j++ {
			b.AAdd(isa.A(1+j%4), isa.A(1+j%4), isa.None)
			b.VLoad(isa.V(j), isa.A(1+j%4), arrays[j]+off, false)
		}
		acc := isa.V(6)
		b.VOp(isa.OpAdd, acc, isa.V(0), isa.V(1))
		for j := 2; j < burst; j++ {
			b.VOp(isa.OpAdd, acc, acc, isa.V(j))
		}
		b.VOp(isa.OpMul, isa.V(7), acc, isa.S(1))
		b.AAdd(isa.A(5), isa.A(5), isa.None)
		b.VStore(isa.V(7), isa.A(5), z+off, false)
		b.loopCtl()
	}
}

// SoftPipeDaxpy emits a software-pipelined daxpy: the loads issued in
// iteration i are consumed in iteration i+2, so no instruction ever waits
// on a load issued in its own iteration. Such loops reach the memory-port
// bound on the reference architecture too (the Convex compiler scheduled
// for the lack of load chaining) — they model DYFESM's dominant loop, which
// runs at its chime bound on both architectures and shows no speedup (§5).
func (b *Builder) SoftPipeDaxpy(vl, iters int) {
	x, y, z := b.Array(vl*(iters+2)), b.Array(vl*(iters+2)), b.Array(vl*iters)
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	// Three register groups of (x, y) pairs rotate; the compute result
	// alternates between V6 and V7.
	groups := [3][2]isa.Reg{
		{isa.V(0), isa.V(1)},
		{isa.V(2), isa.V(3)},
		{isa.V(4), isa.V(5)},
	}
	for i := 0; i < iters+2; i++ {
		if i < iters {
			g := groups[i%3]
			off := uint64(i) * step
			b.AAdd(isa.A(1), isa.A(1), isa.None)
			b.VLoad(g[0], isa.A(1), x+off, false)
			b.AAdd(isa.A(2), isa.A(2), isa.None)
			b.VLoad(g[1], isa.A(2), y+off, false)
		}
		if i >= 2 {
			g := groups[(i-2)%3]
			res := isa.V(6 + i%2)
			off := uint64(i-2) * step
			b.VOp(isa.OpMul, res, g[0], isa.S(1))
			b.VOp(isa.OpAdd, res, res, g[1])
			b.AAdd(isa.A(3), isa.A(3), isa.None)
			b.VStore(res, isa.A(3), z+off, false)
		}
		b.loopCtl()
	}
}

// SpillEager emits a stream loop with a cross-iteration spill whose reload
// is consumed in the same iteration it is issued. The spilled temporary is
// computed from the previous iteration's load, so its store data is ready
// early; the reload's consumer, however, waits for the full reload — the
// reference architecture therefore pays the memory latency every iteration
// (no load chaining), while the decoupled AP, whose spill stores have
// usually drained by reload time, keeps slipping. This is the BDNA regime:
// large decoupling gains on heavily spilled code, with the bypass adding a
// further, moderate gain for the reloads that do catch their store in the
// queue.
func (b *Builder) SpillEager(vl, iters int) {
	x, z := b.Array(vl*(iters+1)), b.Array(vl*(iters+1))
	slots := [2]uint64{b.Array(vl), b.Array(vl)}
	b.SetVL(vl)
	b.SetVS(1)
	step := uint64(vl) * isa.ElemSize
	groups := [2][2]isa.Reg{
		{isa.V(0), isa.V(1)},
		{isa.V(2), isa.V(3)},
	}
	for i := 0; i < iters; i++ {
		g, p := groups[i%2], groups[(i+1)%2]
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(g[0], isa.A(1), x+off, false)
		if i >= 1 {
			// Spill a temporary computed from the previous load: its data
			// is available to the store engine almost immediately.
			b.VOp(isa.OpMul, isa.V(6), p[0], isa.S(1))
			b.VStore(isa.V(6), isa.A(4), slots[i%2], true)
		}
		if i >= 2 {
			// Reload last iteration's spill and consume it right away.
			b.VLoad(g[1], isa.A(4), slots[(i-1)%2], true)
			b.VOp(isa.OpAdd, isa.V(7), p[0], g[1])
			b.AAdd(isa.A(3), isa.A(3), isa.None)
			b.VStore(isa.V(7), isa.A(3), z+off, false)
		}
		b.loopCtl()
	}
}

// GatherScatter emits a sparse update loop: gather, scale, scatter. The
// disambiguator treats both as touching all of memory, so each gather
// drains the store queues — the conservative behaviour the paper specifies.
func (b *Builder) GatherScatter(vl, iters int) {
	x := b.Array(vl * iters * 4)
	b.SetVL(vl)
	for i := 0; i < iters; i++ {
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.Gather(isa.V(0), isa.A(1), x)
		b.VOp(isa.OpMul, isa.V(1), isa.V(0), isa.S(1))
		b.Scatter(isa.V(1), isa.A(1), x)
		b.loopCtl()
	}
}

// ScalarBlock emits n instructions of scalar-only code: S-register
// arithmetic with loads, stores and branches. memPct is the percentage of
// instructions that access memory; spillPct is the percentage of those
// memory accesses that are register spill traffic (store-then-reload pairs
// against a small stack region, marked Spill for the statistics). The
// loads hit a small working set so the scalar cache filters most of them,
// as real scalar glue code would.
func (b *Builder) ScalarBlock(n, memPct, spillPct int) {
	b.ScalarBlockSpan(n, memPct, spillPct, 64)
}

// ScalarBlockSpan is ScalarBlock with an explicit working-set span in
// elements. Spans well beyond the scalar cache capacity make the loads
// miss, exposing memory latency to the scalar pipeline — the regime where
// decoupled access/execute hides scalar miss latency but an in-order
// dispatch cannot.
func (b *Builder) ScalarBlockSpan(n, memPct, spillPct, span int) {
	if n <= 0 {
		return
	}
	if span < 16 {
		span = 16
	}
	work := b.Array(span)
	stack := b.Array(16)
	var pend []uint64 // spill stores awaiting their reload
	for i := 0; i < n; i++ {
		r := b.rng.Intn(100)
		switch {
		case r < memPct:
			if b.rng.Intn(100) < spillPct {
				if len(pend) > 0 && b.rng.Intn(2) == 0 {
					addr := pend[0]
					pend = pend[1:]
					b.SLoad(isa.S(5), isa.A(6), addr, true)
				} else {
					addr := stack + uint64(b.rng.Intn(16))*isa.ElemSize
					b.SStore(isa.S(5), isa.A(6), addr, true)
					pend = append(pend, addr)
				}
				break
			}
			addr := work + uint64(b.rng.Intn(span))*isa.ElemSize
			if b.rng.Intn(3) == 0 {
				b.SStore(isa.S(4+b.rng.Intn(3)), isa.A(6), addr, false)
			} else {
				b.SLoad(isa.S(4+b.rng.Intn(3)), isa.A(6), addr, false)
			}
		case r < memPct+12:
			b.Branch(isa.S(4))
		case r < memPct+24:
			b.AAdd(isa.A(6), isa.A(6), isa.None)
		default:
			dst := isa.S(4 + b.rng.Intn(4))
			b.SOp(isa.OpAdd, dst, dst, isa.S(4))
		}
	}
	// Reload any spills still outstanding so every pair completes.
	for _, addr := range pend {
		b.SLoad(isa.S(5), isa.A(6), addr, true)
	}
	b.EndBB()
}

// ScalarRecurrence emits a pointer-chase-like scalar loop: each load's
// address depends on the previous loaded value, serializing on memory
// latency. It models the scalar-dominated phases of poorly vectorized code.
func (b *Builder) ScalarRecurrence(iters int) {
	base := b.Array(iters + 1)
	for i := 0; i < iters; i++ {
		addr := base + uint64(i)*isa.ElemSize
		b.SLoad(isa.A(7), isa.A(7), addr, false)
		b.AAdd(isa.A(6), isa.A(7), isa.None)
		b.Branch(isa.A(6))
	}
}

// StridedSweep emits a column-walk loop (large constant stride), typical of
// matrix sweeps along the non-contiguous dimension.
func (b *Builder) StridedSweep(vl, iters int, stride int64) {
	x, z := b.Array(vl*iters*int(stride)+1), b.Array(vl*iters*int(stride)+1)
	b.SetVL(vl)
	b.SetVS(stride)
	step := uint64(vl) * uint64(stride) * isa.ElemSize
	for i := 0; i < iters; i++ {
		v0, v1 := isa.V(0), isa.V(1)
		if i%2 == 1 {
			v0, v1 = isa.V(4), isa.V(5)
		}
		off := uint64(i) * step
		b.AAdd(isa.A(1), isa.A(1), isa.None)
		b.VLoad(v0, isa.A(1), x+off, false)
		b.VOp(isa.OpMul, v1, v0, isa.S(1))
		b.AAdd(isa.A(2), isa.A(2), isa.None)
		b.VStore(v1, isa.A(2), z+off, false)
		b.loopCtl()
	}
	b.SetVS(1)
}
