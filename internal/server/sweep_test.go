package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"decvec/internal/sim"
)

// Explicit cells are the dvasweep shard protocol: arbitrary cell lists,
// not rectangles, answered in the buffered form when streaming is off.
func TestSweepCellsMode(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Cells: []SweepCell{
			{Program: "BDNA", Arch: "DVA", Latency: 1},
			{Program: "OCEAN", Arch: "REF", Latency: 50},
			{Program: "BDNA", Arch: "BYP", Latency: 100},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cells sweep: %s (%s)", resp.Status, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(sr.Points))
	}
	if sr.Points[1].Program != "OCEAN" || sr.Points[1].Latency != 50 {
		t.Errorf("point order not preserved: %+v", sr.Points[1])
	}
}

// Cells and grid dimensions in one request would be ambiguous; reject.
func TestSweepCellsExclusiveWithGrid(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Programs: []string{"BDNA"},
		Cells:    []SweepCell{{Program: "BDNA", Arch: "DVA", Latency: 1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed cells+grid: %s (%s), want 400", resp.Status, body)
	}
}

// A bad cell must name its position so a coordinator can log which shard
// member was malformed.
func TestSweepCellValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Cells: []SweepCell{
			{Program: "BDNA", Arch: "DVA", Latency: 1},
			{Program: "NOSUCH", Arch: "DVA", Latency: 1},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid cell: %s, want 400", resp.Status)
	}
	if !strings.Contains(string(body), "cell 1") {
		t.Errorf("error does not name the offending cell: %s", body)
	}
}

// The explicit cell list honors the same point cap as grids.
func TestSweepCellsCap(t *testing.T) {
	_, ts := testServer(t, Config{MaxSweepPoints: 2})
	cells := make([]SweepCell, 3)
	for i := range cells {
		cells[i] = SweepCell{Program: "BDNA", Arch: "DVA", Latency: int64(i + 1)}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Cells: cells})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap cells: %s, want 400", resp.Status)
	}
}

// The grid cap must be computed from the request's dimension lengths
// before anything is expanded — empty dimensions counting at their
// default widths — so an oversized grid is rejected by arithmetic alone.
func TestSweepGridCapComputedFromDimensions(t *testing.T) {
	_, ts := testServer(t, Config{MaxSweepPoints: 4})
	// No explicit programs or archs: the defaults (6 programs × 2 archs)
	// must still count toward the product.
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Latencies: []int64{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("default-dimension grid of 12 points under cap 4: %s, want 400", resp.Status)
	}
	if !strings.Contains(string(body), "12 points") {
		t.Errorf("rejection does not carry the computed count: %s", body)
	}
}

// The streaming mode answers NDJSON: one row per cell in completion
// order, each carrying the canonical binary result, then a Done trailer
// with the worker's cache counters.
func TestSweepStreaming(t *testing.T) {
	srv, ts := testServer(t, Config{})
	cells := []SweepCell{
		{Program: "BDNA", Arch: "DVA", Latency: 1},
		{Program: "BDNA", Arch: "REF", Latency: 1},
		{Program: "BDNA", Arch: "DVA", Latency: 50},
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Cells: cells, Stream: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming sweep: %s (%s)", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q, want application/x-ndjson", ct)
	}
	seen := map[int]bool{}
	var done *SweepRow
	dec := json.NewDecoder(bytes.NewReader(body))
	for {
		var row SweepRow
		if err := dec.Decode(&row); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		if row.Done {
			d := row
			done = &d
			continue
		}
		if row.Error != "" {
			t.Fatalf("cell %d errored: %s", row.I, row.Error)
		}
		if seen[row.I] {
			t.Fatalf("cell %d answered twice", row.I)
		}
		seen[row.I] = true
		res, err := sim.DecodeResult(bytes.NewReader(row.Result))
		if err != nil {
			t.Fatalf("cell %d: undecodable canonical payload: %v", row.I, err)
		}
		if res.Cycles <= 0 {
			t.Errorf("cell %d: implausible result: %+v", row.I, res)
		}
	}
	if len(seen) != len(cells) {
		t.Fatalf("stream answered %d of %d cells", len(seen), len(cells))
	}
	if done == nil {
		t.Fatal("stream ended without a Done trailer")
	}
	if done.Simulations != srv.Suite().Simulations() {
		t.Errorf("trailer simulations = %d, suite says %d", done.Simulations, srv.Suite().Simulations())
	}
}

// Raw mode answers /v1/simulate with the canonical binary encoding
// instead of the metrics JSON.
func TestSimulateRaw(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Program: "BDNA", Arch: "DVA", Latency: 50, Raw: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw simulate: %s (%s)", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type = %q, want application/octet-stream", ct)
	}
	res, err := sim.DecodeResult(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("undecodable raw payload: %v", err)
	}
	if res.Cycles <= 0 {
		t.Errorf("implausible raw result: %+v", res)
	}
}
