package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by the admission gate when every simulation slot
// is busy and the wait queue is full; handlers translate it to 429.
var ErrOverloaded = errors.New("server: overloaded: all simulation slots busy and the wait queue is full")

// gate is the admission controller the server installs as the suite's
// experiments.Gate: a counting semaphore of simulation slots plus a bounded
// wait queue. Only real simulator invocations pass through it — cache hits
// and coalesced duplicate requests are answered without ever touching the
// gate — so its gauges measure genuine simulator pressure.
type gate struct {
	sem      chan struct{} // one token per concurrent simulation slot
	maxQueue int64
	queued   atomic.Int64 // callers blocked waiting for a slot
	inflight atomic.Int64 // callers holding a slot
}

func newGate(maxConcurrent, maxQueue int) *gate {
	return &gate{sem: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// Acquire claims a simulation slot, waiting in the bounded queue when all
// slots are busy. It fails fast with ErrOverloaded when the queue is full,
// and with ctx.Err() when the caller gives up while waiting — a queued
// request that is abandoned frees its queue position immediately.
func (g *gate) Acquire(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case g.sem <- struct{}{}:
	default:
		if g.queued.Add(1) > g.maxQueue {
			g.queued.Add(-1)
			return nil, ErrOverloaded
		}
		select {
		case g.sem <- struct{}{}:
			g.queued.Add(-1)
		case <-ctx.Done():
			g.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	g.inflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			g.inflight.Add(-1)
			<-g.sem
		})
	}, nil
}

// InFlight returns the number of simulations currently holding a slot.
func (g *gate) InFlight() int64 { return g.inflight.Load() }

// Queued returns the number of simulations currently waiting for a slot.
func (g *gate) Queued() int64 { return g.queued.Load() }
