package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"decvec/internal/experiments"
	"decvec/internal/simcache"
	"decvec/internal/workload"
)

// SweepCell is one explicit cell of a /v1/sweep request: the dvasweep
// coordinator sends each worker the cells its shard owns, which need not
// form any rectangular grid.
type SweepCell struct {
	Program string `json:"program"`
	Arch    string `json:"arch"`
	Latency int64  `json:"latency"`
	LoadQ   int    `json:"loadq,omitempty"`
	StoreQ  int    `json:"storeq,omitempty"`
}

// SweepRow is one line of the /v1/sweep streaming (NDJSON) response. Rows
// arrive in completion order, one per requested cell, carrying either the
// canonical binary result encoding (the simcache payload format, so a
// distributed merge is byte-identical to a local run) or that cell's error.
// The final row has Done set and carries the worker's suite-lifetime
// simulation count and cache counters; a client that never sees it knows
// the stream broke and which cells (by index) are still owed.
type SweepRow struct {
	I      int    `json:"i"`
	Result []byte `json:"result,omitempty"` // canonical sim.EncodeResult payload
	Error  string `json:"error,omitempty"`

	Done        bool  `json:"done,omitempty"`
	Simulations int64 `json:"simulations,omitempty"`
	CacheHits   int64 `json:"cacheHits,omitempty"`
	CacheMisses int64 `json:"cacheMisses,omitempty"`
}

// sweepJobs expands a sweep request — explicit cells or a rectangular grid —
// into batch jobs, enforcing the point cap before any expansion.
func (s *Server) sweepJobs(req *SweepRequest) ([]experiments.BatchJob, error) {
	if len(req.Cells) > 0 {
		if len(req.Programs)+len(req.Archs)+len(req.Latencies)+len(req.LoadQs)+len(req.StoreQs) > 0 {
			return nil, errors.New(`"cells" is mutually exclusive with the grid dimensions`)
		}
		if len(req.Cells) > s.cfg.MaxSweepPoints {
			return nil, fmt.Errorf("sweep has %d cells, cap is %d", len(req.Cells), s.cfg.MaxSweepPoints)
		}
		jobs := make([]experiments.BatchJob, len(req.Cells))
		for i, c := range req.Cells {
			p, err := workload.Get(c.Program)
			if err != nil {
				return nil, fmt.Errorf("cell %d: %w", i, err)
			}
			sr := SimulateRequest{Arch: c.Arch, Latency: c.Latency, LoadQ: c.LoadQ, StoreQ: c.StoreQ}
			cfg, arch, err := sr.config()
			if err != nil {
				return nil, fmt.Errorf("cell %d: %w", i, err)
			}
			jobs[i] = experiments.BatchJob{Program: p, Arch: arch, Cfg: cfg}
		}
		return jobs, nil
	}
	progs, specs, err := s.sweepGrid(req)
	if err != nil {
		return nil, err
	}
	jobs := make([]experiments.BatchJob, 0, len(progs)*len(specs))
	for _, p := range progs {
		for _, spec := range specs {
			jobs = append(jobs, experiments.BatchJob{Program: p, Arch: spec.Arch, Cfg: spec.Cfg})
		}
	}
	return jobs, nil
}

// streamSweep answers a streaming sweep: cells drain through a bounded
// worker pool (the admission gate still meters the real simulator
// invocations underneath), each completion is written — and flushed — as
// one NDJSON row the moment it lands, and a Done trailer closes the stream.
// A timeout or client disconnect stops feeding new cells; rows already
// written stay valid, so a coordinator retries exactly the cells it never
// received.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req *SweepRequest, jobs []experiments.BatchJob) {
	s.sweepReqs.Add(1)
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	writeRow := func(row SweepRow) {
		mu.Lock()
		_ = enc.Encode(row)
		if fl != nil {
			fl.Flush()
		}
		mu.Unlock()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain without running; the client retries these
				}
				res, err := s.suite.RunCtx(ctx, jobs[i].Program, jobs[i].Arch, jobs[i].Cfg)
				if err != nil {
					writeRow(SweepRow{I: i, Error: err.Error()})
					continue
				}
				payload, err := simcache.EncodeResultBytes(res)
				if err != nil {
					writeRow(SweepRow{I: i, Error: err.Error()})
					continue
				}
				writeRow(SweepRow{I: i, Result: payload})
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	st := s.suite.CacheStats()
	writeRow(SweepRow{
		I:           -1,
		Done:        true,
		Simulations: s.suite.Simulations(),
		CacheHits:   st.Hits,
		CacheMisses: st.Misses,
	})
	s.served.Add(1)
}
