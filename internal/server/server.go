// Package server implements dvad, the long-running simulation daemon: an
// HTTP/JSON front end over an embedded experiments.Suite that turns the
// one-shot CLI simulator into shared evaluation infrastructure.
//
// Endpoints:
//
//   - POST /v1/simulate — one (workload or uploaded trace) × arch × config
//     run, answering the `dvasim -metrics-json` payload.
//   - POST /v1/sweep — a (program × arch × latency × queue) grid fanned
//     through the suite's warm machinery, answering compact per-point rows.
//   - GET  /healthz — liveness.
//   - GET  /statsz — request counters, admission gauges, simulation count
//     and cache counters (report.ServerMetric; ?format=table for ASCII).
//
// The suite's singleflight tiers are the coalescing unit: a thousand
// identical concurrent requests perform one simulation, and with a
// persistent store attached a request already answered in any previous
// process performs zero. Real simulator invocations — never cache hits or
// coalesced waiters — pass through an admission gate bounding concurrency
// and queue depth (429 on overflow). Shutdown drains in-flight work and
// runs a final cache GC; a periodic GC keeps a long-lived daemon inside its
// size cap continuously rather than only at exit.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decvec/internal/experiments"
	"decvec/internal/report"
	"decvec/internal/sim"
	"decvec/internal/simcache"
	"decvec/internal/trace"
	"decvec/internal/workload"
)

// Config parametrizes a Server.
type Config struct {
	// Scale is the trace scale factor shared by every request (1.0 =
	// default trace sizes). Requests cannot override it: the scale is part
	// of the suite's identity, and mixing scales would fragment the cache.
	Scale float64

	// MaxConcurrent bounds simultaneously running simulations;
	// 0 = GOMAXPROCS.
	MaxConcurrent int

	// MaxQueue bounds simulations waiting for a slot; past it the gate
	// sheds load with 429. 0 = 4×MaxConcurrent.
	MaxQueue int

	// RequestTimeout caps the wall time of one request (queue wait
	// included). Expired requests answer 504; a simulation already running
	// completes and lands in the cache for the retry. 0 = 60s.
	RequestTimeout time.Duration

	// Store, when non-nil, is the persistent disk tier shared with the CLI
	// tools. The server owns its lifecycle from here: periodic and
	// shutdown GC.
	Store *simcache.Store

	// GCInterval is how often the background GC enforces the store's size
	// cap; 0 disables periodic GC (the final shutdown GC still runs).
	GCInterval time.Duration

	// MaxSweepPoints bounds the grid size of one /v1/sweep request.
	// 0 = 4096.
	MaxSweepPoints int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	return c
}

// Server is the dvad daemon: an embedded suite, its admission gate, and the
// HTTP handlers over them.
type Server struct {
	cfg   Config
	suite *experiments.Suite
	gate  *gate
	mux   *http.ServeMux
	start time.Time

	httpSrv atomic.Pointer[http.Server]

	bg     sync.WaitGroup // detached simulations outliving their request
	stopGC chan struct{}
	gcWG   sync.WaitGroup

	served, simulateReqs, sweepReqs     atomic.Int64
	overloaded, timeouts, requestErrors atomic.Int64

	// simHook, when non-nil, runs inside every admitted simulation slot
	// before the simulator starts. Test seam: lets handler tests hold a
	// slot open deterministically. Set before serving traffic.
	simHook func()
}

// New returns a Server over a fresh suite configured per cfg and starts the
// periodic GC loop (when an interval and a store are configured). Callers
// must Shutdown the server to release the loop and run the final GC.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		suite:  experiments.NewSuite(cfg.Scale),
		gate:   newGate(cfg.MaxConcurrent, cfg.MaxQueue),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		stopGC: make(chan struct{}),
	}
	s.suite.Disk = cfg.Store
	s.suite.Gate = gateWithHook{s: s}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	if cfg.Store != nil && cfg.GCInterval > 0 {
		s.gcWG.Add(1)
		go s.gcLoop()
	}
	return s
}

// gateWithHook is the suite-facing gate: the real admission gate plus the
// test seam that runs while the slot is held.
type gateWithHook struct{ s *Server }

func (g gateWithHook) Acquire(ctx context.Context) (func(), error) {
	release, err := g.s.gate.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	if g.s.simHook != nil {
		g.s.simHook()
	}
	return release, nil
}

// Suite exposes the embedded suite (the load harness and tests read its
// Simulations counter).
func (s *Server) Suite() *experiments.Suite { return s.suite }

// Handler returns the daemon's HTTP handler (httptest servers mount it
// directly).
func (s *Server) Handler() http.Handler { return s.mux }

// gcLoop periodically enforces the store's size cap so a long-lived daemon
// respects it continuously, not only at process exit.
func (s *Server) gcLoop() {
	defer s.gcWG.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_, _ = s.cfg.Store.GC()
		case <-s.stopGC:
			return
		}
	}
}

// ListenAndServe serves the daemon on addr until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, matching net/http.
func (s *Server) ListenAndServe(addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux}
	s.httpSrv.Store(hs)
	return hs.ListenAndServe()
}

// Shutdown gracefully stops the daemon: the listener closes, in-flight
// requests and detached background simulations drain, the periodic GC loop
// stops, and — when a store is attached — one final GC enforces the size
// cap before the process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if hs := s.httpSrv.Swap(nil); hs != nil {
		err = hs.Shutdown(ctx)
	}
	s.bg.Wait()
	select {
	case <-s.stopGC:
	default:
		close(s.stopGC)
	}
	s.gcWG.Wait()
	if s.cfg.Store != nil {
		if _, gcErr := s.cfg.Store.GC(); gcErr != nil && err == nil {
			err = gcErr
		}
	}
	return err
}

// Stats snapshots the server counters in the /statsz schema.
func (s *Server) Stats() report.ServerMetric {
	m := report.ServerMetric{
		UptimeSec:     time.Since(s.start).Seconds(),
		Served:        s.served.Load(),
		Simulate:      s.simulateReqs.Load(),
		Sweep:         s.sweepReqs.Load(),
		Overloaded:    s.overloaded.Load(),
		Timeouts:      s.timeouts.Load(),
		Errors:        s.requestErrors.Load(),
		InFlight:      s.gate.InFlight(),
		Queued:        s.gate.Queued(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		MaxQueue:      s.cfg.MaxQueue,
		Simulations:   s.suite.Simulations(),
	}
	if coalesced := m.Served - m.Simulations; coalesced > 0 {
		m.Coalesced = coalesced
	}
	if s.cfg.Store != nil {
		m.Cache = report.CacheMetricOf(s.cfg.Store.Stats())
	}
	return m
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	m := s.Stats()
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.ServerTable(m))
		if m.Cache != nil {
			fmt.Fprint(w, report.CacheTable(s.cfg.Store.Stats()))
		}
		return
	}
	b, err := report.ServerJSON(m)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// maxBodyBytes bounds request bodies; uploaded traces dominate the budget.
const maxBodyBytes = 64 << 20

// SimulateRequest is the /v1/simulate body: one program (by name) or one
// uploaded trace (binary trace format, base64), an architecture, and the
// queue/latency knobs of the CLI.
type SimulateRequest struct {
	Program string `json:"program,omitempty"`
	// Trace is a base64-encoded binary trace (the dvatrace/WriteTrace
	// format); mutually exclusive with Program. Identical uploads coalesce
	// by content hash.
	Trace   []byte `json:"trace,omitempty"`
	Arch    string `json:"arch"`
	Latency int64  `json:"latency"`
	LoadQ   int    `json:"loadq,omitempty"`
	StoreQ  int    `json:"storeq,omitempty"`
	IQ      int    `json:"iq,omitempty"`
	Jitter  int64  `json:"jitter,omitempty"`
	Bypass  bool   `json:"bypass,omitempty"`
	// TimeoutMs lowers the server's request timeout for this request; it
	// can never raise it.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Raw answers with the canonical binary result encoding
	// (application/octet-stream, the simcache payload format) instead of
	// the metrics JSON — the single-cell path of the dvasweep remote
	// executor, which merges byte-identical results across workers.
	Raw bool `json:"raw,omitempty"`
}

// config materializes the request's sim.Config.
func (req *SimulateRequest) config() (sim.Config, experiments.Arch, error) {
	if req.Latency <= 0 {
		return sim.Config{}, "", fmt.Errorf("latency must be positive, got %d", req.Latency)
	}
	cfg := sim.DefaultConfig(req.Latency)
	if req.LoadQ > 0 {
		cfg.AVDQSize = req.LoadQ
	}
	if req.StoreQ > 0 {
		cfg.VADQSize = req.StoreQ
	}
	if req.IQ > 0 {
		cfg.IQSize = req.IQ
	}
	if req.Jitter > 0 {
		cfg.LatencyJitter = req.Jitter
	}
	if req.Bypass {
		cfg.Bypass = true
	}
	// BYP is DVA with the bypass bit set: canonicalize so the request
	// shares cache entries and coalescing with the equivalent DVA run.
	arch := experiments.Arch(strings.ToUpper(req.Arch))
	if arch == "BYP" {
		arch = experiments.DVA
		cfg.Bypass = true
	}
	switch arch {
	case experiments.REF, experiments.DVA:
		return cfg, arch, nil
	default:
		return sim.Config{}, "", fmt.Errorf("unknown architecture %q (want REF, DVA or BYP)", req.Arch)
	}
}

// requestContext derives the request's work context: the server timeout,
// lowered (never raised) by the request's own cap.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMs > 0 {
		if rd := time.Duration(timeoutMs) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// httpError answers one failed request, classifying the error: gate
// overflow → 429, expiry → 504, everything else → the given fallback.
func (s *Server) httpError(w http.ResponseWriter, err error, fallback int) {
	code := fallback
	switch {
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
		s.overloaded.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
		s.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		// The client is gone; any status is written to a closed
		// connection. Use 499 (nginx's client-closed-request) for the
		// access-log trail and count it as neither timeout nor error.
		code = 499
	default:
		s.requestErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.requestErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// await runs fn on a tracked goroutine and waits for it or the context.
// Simulations are not interruptible mid-run, so an expired request answers
// 504 immediately while the detached run completes and populates the cache
// for the retry; Shutdown drains these stragglers.
func (s *Server) await(ctx context.Context, fn func() (*sim.Result, error)) (*sim.Result, error) {
	type outcome struct {
		res *sim.Result
		err error
	}
	ch := make(chan outcome, 1)
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		res, err := fn()
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SimulateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	cfg, arch, err := req.config()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if (req.Program == "") == (len(req.Trace) == 0) {
		s.badRequest(w, errors.New(`exactly one of "program" and "trace" must be set`))
		return
	}
	var run func(context.Context) (*sim.Result, error)
	if req.Program != "" {
		p, err := workload.Get(req.Program)
		if err != nil {
			s.badRequest(w, err)
			return
		}
		run = func(ctx context.Context) (*sim.Result, error) {
			return s.suite.RunCtx(ctx, p, arch, cfg)
		}
	} else {
		src, err := trace.Read(bytes.NewReader(req.Trace))
		if err != nil {
			s.badRequest(w, fmt.Errorf("decoding trace: %w", err))
			return
		}
		run = func(ctx context.Context) (*sim.Result, error) {
			return s.suite.RunSourceCtx(ctx, src, arch, cfg)
		}
	}
	s.simulateReqs.Add(1)

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.await(ctx, func() (*sim.Result, error) { return run(ctx) })
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	if req.Raw {
		payload, err := simcache.EncodeResultBytes(res)
		if err != nil {
			s.httpError(w, err, http.StatusInternalServerError)
			return
		}
		s.served.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(payload)
		return
	}
	var b []byte
	if s.cfg.Store != nil {
		b, err = report.MetricsJSONWithCache(res, s.cfg.Store.Stats())
	} else {
		b, err = report.MetricsJSON(res)
	}
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// SweepRequest is the /v1/sweep body: a (program × arch × latency × queue)
// grid, or an explicit cell list. Empty grid dimensions take the paper
// defaults (simulated programs, both architectures, the Figure 3-5 latency
// sweep, default queues).
type SweepRequest struct {
	Programs  []string `json:"programs,omitempty"`
	Archs     []string `json:"archs,omitempty"`
	Latencies []int64  `json:"latencies,omitempty"`
	LoadQs    []int    `json:"loadqs,omitempty"`
	StoreQs   []int    `json:"storeqs,omitempty"`
	// Cells lists explicit cells instead of a grid (the dvasweep shard
	// protocol); mutually exclusive with the dimensions above.
	Cells []SweepCell `json:"cells,omitempty"`
	// Stream selects the NDJSON streaming response (one SweepRow per cell
	// in completion order, then a Done trailer) instead of the buffered
	// SweepResponse.
	Stream    bool  `json:"stream,omitempty"`
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// SweepPoint is one cell of the sweep response.
type SweepPoint struct {
	Program string  `json:"program"`
	Arch    string  `json:"arch"`
	Latency int64   `json:"latency"`
	LoadQ   int     `json:"loadq"`
	StoreQ  int     `json:"storeq"`
	Cycles  int64   `json:"cycles"`
	IPC     float64 `json:"ipc"`
}

// SweepResponse is the /v1/sweep payload.
type SweepResponse struct {
	Points []SweepPoint `json:"points"`
	// Simulations is the suite-lifetime count after this sweep; with a
	// warm cache a large grid adds zero.
	Simulations int64 `json:"simulations"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	jobs, err := s.sweepJobs(&req)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if req.Stream {
		s.streamSweep(w, r, &req, jobs)
		return
	}
	s.sweepReqs.Add(1)

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	// Run the whole request as one batch through the pooled machines
	// (trace-grouped, cost-sorted, admission-gated); results come back in
	// request order, one per batch job.
	var results []*sim.Result
	_, err = s.await(ctx, func() (*sim.Result, error) {
		var berr error
		results, berr = s.suite.RunBatch(ctx, jobs)
		return nil, berr
	})
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	resp := SweepResponse{Points: make([]SweepPoint, 0, len(jobs))}
	for i, j := range jobs {
		res := results[i]
		resp.Points = append(resp.Points, SweepPoint{
			Program: j.Program.Name,
			Arch:    string(j.Arch),
			Latency: j.Cfg.MemLatency,
			LoadQ:   j.Cfg.AVDQSize,
			StoreQ:  j.Cfg.VADQSize,
			Cycles:  res.Cycles,
			IPC:     res.IPC(),
		})
	}
	resp.Simulations = s.suite.Simulations()
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// gridPoints computes the point count of a sweep request from its dimension
// lengths alone (empty dimensions take their default sizes), so an oversized
// grid is rejected before any program or spec expansion work is spent on it.
func gridPoints(req *SweepRequest) int {
	dim := func(n, def int) int {
		if n == 0 {
			return def
		}
		return n
	}
	return dim(len(req.Programs), len(workload.Simulated())) *
		dim(len(req.Archs), 2) *
		dim(len(req.Latencies), len(experiments.DefaultLatencies)) *
		dim(len(req.LoadQs), 1) *
		dim(len(req.StoreQs), 1)
}

// sweepGrid expands a sweep request into its program set and run specs,
// enforcing the grid-size bound — from the request's dimension counts, up
// front, so an oversized request is refused before it burns allocation and
// expansion work on a grid that was never going to run.
func (s *Server) sweepGrid(req *SweepRequest) ([]*workload.Program, []experiments.RunSpec, error) {
	if points := gridPoints(req); points > s.cfg.MaxSweepPoints {
		return nil, nil, fmt.Errorf("sweep grid has %d points, cap is %d", points, s.cfg.MaxSweepPoints)
	}
	var progs []*workload.Program
	if len(req.Programs) == 0 {
		progs = workload.Simulated()
	} else {
		for _, name := range req.Programs {
			p, err := workload.Get(name)
			if err != nil {
				return nil, nil, err
			}
			progs = append(progs, p)
		}
	}
	archs := req.Archs
	if len(archs) == 0 {
		archs = []string{"REF", "DVA"}
	}
	lats := req.Latencies
	if len(lats) == 0 {
		lats = experiments.DefaultLatencies
	}
	loadQs := req.LoadQs
	if len(loadQs) == 0 {
		loadQs = []int{0}
	}
	storeQs := req.StoreQs
	if len(storeQs) == 0 {
		storeQs = []int{0}
	}
	var specs []experiments.RunSpec
	for _, a := range archs {
		arch := experiments.Arch(strings.ToUpper(a))
		bypass := false
		if arch == "BYP" {
			arch = experiments.DVA
			bypass = true
		}
		if arch != experiments.REF && arch != experiments.DVA {
			return nil, nil, fmt.Errorf("unknown architecture %q (want REF, DVA or BYP)", a)
		}
		for _, l := range lats {
			if l <= 0 {
				return nil, nil, fmt.Errorf("latency must be positive, got %d", l)
			}
			for _, lq := range loadQs {
				for _, sq := range storeQs {
					cfg := sim.DefaultConfig(l)
					if lq > 0 {
						cfg.AVDQSize = lq
					}
					if sq > 0 {
						cfg.VADQSize = sq
					}
					cfg.Bypass = bypass
					specs = append(specs, experiments.RunSpec{Arch: arch, Cfg: cfg})
				}
			}
		}
	}
	return progs, specs, nil
}

// Compile-time checks: the gates satisfy the suite's admission interface.
var (
	_ experiments.Gate = (*gate)(nil)
	_ experiments.Gate = gateWithHook{}
)
