package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decvec/internal/report"
	"decvec/internal/simcache"
	"decvec/internal/trace"
	"decvec/internal/workload"
)

// testServer returns a small-scale server and its httptest front end.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Scale == 0 {
		cfg.Scale = 0.05 // keep simulations cheap
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz body = %q", body)
	}
}

func TestSimulateWorkload(t *testing.T) {
	srv, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Program: "BDNA", Arch: "DVA", Latency: 50,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %s: %s", resp.Status, body)
	}
	var m report.Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("response is not the -metrics-json shape: %v", err)
	}
	if m.Arch != "DVA" || m.Cycles <= 0 {
		t.Errorf("metrics = arch %q cycles %d, want DVA with positive cycles", m.Arch, m.Cycles)
	}
	if got := srv.Suite().Simulations(); got != 1 {
		t.Errorf("Simulations() = %d, want 1", got)
	}
	// The identical request again: memory-tier hit, no new simulation.
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Program: "BDNA", Arch: "DVA", Latency: 50,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second simulate: %s", resp2.Status)
	}
	if !bytes.Equal(body, body2) {
		t.Error("identical requests returned different payloads")
	}
	if got := srv.Suite().Simulations(); got != 1 {
		t.Errorf("Simulations() after repeat = %d, want 1 (cache hit)", got)
	}
}

func TestSimulateBYPCanonicalizesToDVABypass(t *testing.T) {
	srv, ts := testServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Program: "ARC2D", Arch: "BYP", Latency: 30,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("BYP simulate: %s: %s", resp.Status, body)
	}
	// The explicit DVA+bypass spelling must hit the same memory-tier entry.
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Program: "ARC2D", Arch: "DVA", Latency: 30, Bypass: true,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("DVA+bypass simulate: %s: %s", resp.Status, body)
	}
	if got := srv.Suite().Simulations(); got != 1 {
		t.Errorf("Simulations() = %d, want 1 (BYP and DVA+bypass share a key)", got)
	}
}

func TestSimulateUploadedTrace(t *testing.T) {
	srv, ts := testServer(t, Config{})
	p, err := workload.Get("TRFD")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, p.Trace(0.05)); err != nil {
		t.Fatal(err)
	}
	req := SimulateRequest{Trace: buf.Bytes(), Arch: "REF", Latency: 20}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace simulate: %s: %s", resp.Status, body)
	}
	var m report.Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Arch != "REF" || m.Cycles <= 0 {
		t.Errorf("metrics = arch %q cycles %d", m.Arch, m.Cycles)
	}
	// Re-uploading identical bytes coalesces by content hash.
	if resp, _ := postJSON(t, ts.URL+"/v1/simulate", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("second trace simulate: %s", resp.Status)
	}
	if got := srv.Suite().Simulations(); got != 1 {
		t.Errorf("Simulations() = %d, want 1 (identical uploads share a key)", got)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"unknown program", SimulateRequest{Program: "NOPE", Arch: "DVA", Latency: 50}},
		{"unknown arch", SimulateRequest{Program: "BDNA", Arch: "VLIW", Latency: 50}},
		{"no latency", SimulateRequest{Program: "BDNA", Arch: "DVA"}},
		{"program and trace", SimulateRequest{Program: "BDNA", Trace: []byte("x"), Arch: "DVA", Latency: 50}},
		{"neither program nor trace", SimulateRequest{Arch: "DVA", Latency: 50}},
		{"garbage trace", SimulateRequest{Trace: []byte("not a trace"), Arch: "DVA", Latency: 50}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s (body %s), want 400", tc.name, resp.Status, body)
		}
	}
	// Method check.
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate: %s, want 405", resp.Status)
	}
}

// TestCoalescing is the tentpole acceptance test: N concurrent identical
// requests complete with exactly one Simulations() increment. The sim hook
// holds the single winner inside its simulation slot until every request
// has been fired, so all N are provably concurrent.
func TestCoalescing(t *testing.T) {
	const n = 100
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, ts := testServer(t, Config{MaxConcurrent: 2, MaxQueue: 2 * n})
	var once sync.Once
	srv.simHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	var wg sync.WaitGroup
	var okCount, failCount atomic.Int64
	body, _ := json.Marshal(SimulateRequest{Program: "BDNA", Arch: "DVA", Latency: 50})
	launched := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			launched <- struct{}{}
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				failCount.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				okCount.Add(1)
			} else {
				failCount.Add(1)
			}
		}()
	}
	// Wait until the winner is inside its simulation slot and every request
	// goroutine has launched, then let the simulation finish.
	<-entered
	for i := 0; i < n; i++ {
		<-launched
	}
	close(release)
	wg.Wait()

	if got := okCount.Load(); got != n {
		t.Errorf("%d/%d requests succeeded (%d failed)", got, n, failCount.Load())
	}
	if sims := srv.Suite().Simulations(); sims != 1 {
		t.Errorf("Simulations() = %d, want 1: %d identical concurrent requests must coalesce", sims, n)
	}
	st := srv.Stats()
	if st.Coalesced < n-1 {
		t.Errorf("Stats().Coalesced = %d, want >= %d", st.Coalesced, n-1)
	}
}

// TestOverloadSheds429 fills the single slot and the whole wait queue with
// distinct requests, then asserts the next distinct request bounces with
// 429 without ever reaching a simulator.
func TestOverloadSheds429(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	srv, ts := testServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	srv.simHook = func() {
		entered <- struct{}{}
		<-release
	}
	defer close(release)

	post := func(lat int64, done chan<- int) {
		body, _ := json.Marshal(SimulateRequest{Program: "BDNA", Arch: "DVA", Latency: lat})
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}

	// Request 1 occupies the slot (hook admits it and blocks).
	first := make(chan int, 1)
	go post(11, first)
	<-entered

	// Request 2 occupies the single queue position. Poll the gauge until it
	// is actually queued — the HTTP round trip is asynchronous.
	second := make(chan int, 1)
	go post(22, second)
	deadline := time.Now().Add(10 * time.Second)
	for srv.gate.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the wait queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Request 3 must shed immediately with 429.
	third := make(chan int, 1)
	go post(33, third)
	if code := <-third; code != http.StatusTooManyRequests {
		t.Fatalf("third request got %d, want 429", code)
	}
	if st := srv.Stats(); st.Overloaded != 1 {
		t.Errorf("Stats().Overloaded = %d, want 1", st.Overloaded)
	}

	// Draining the hook lets the held requests finish normally.
	release <- struct{}{}
	release <- struct{}{}
	if code := <-first; code != http.StatusOK {
		t.Errorf("first request got %d, want 200", code)
	}
	if code := <-second; code != http.StatusOK {
		t.Errorf("second request got %d, want 200", code)
	}
}

// TestRequestTimeout expires a request whose simulation slot is held and
// asserts 504; the detached simulation then completes and lands in the
// suite cache, so a retry is instant.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	srv, ts := testServer(t, Config{MaxConcurrent: 1, MaxQueue: 4})
	var block atomic.Bool
	block.Store(true)
	srv.simHook = func() {
		if block.Load() {
			<-release
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Program: "BDNA", Arch: "DVA", Latency: 50, TimeoutMs: 50,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request: %s (%s), want 504", resp.Status, body)
	}
	if st := srv.Stats(); st.Timeouts != 1 {
		t.Errorf("Stats().Timeouts = %d, want 1", st.Timeouts)
	}

	// Unblock the detached run; the simulation completes (runs are not
	// interruptible mid-flight) and lands in the suite cache, so the retry
	// is served without waiting.
	block.Store(false)
	close(release)
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Program: "BDNA", Arch: "DVA", Latency: 50,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after timeout: %s (%s)", resp2.Status, body2)
	}
}

// TestShutdownDrains starts a slow request, shuts the server down mid-run,
// and asserts the request still completes 200 — graceful shutdown must
// drain, not kill.
func TestShutdownDrains(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	cfg := Config{Scale: 0.05, MaxConcurrent: 1, MaxQueue: 1}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var once sync.Once
	s.simHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	status := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(SimulateRequest{Program: "BDNA", Arch: "DVA", Latency: 50})
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight run, not race past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if code := <-status; code != http.StatusOK {
		t.Errorf("in-flight request got %d during graceful shutdown, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestShutdownRunsFinalGC attaches an over-cap store and asserts Shutdown
// enforces the cap (the long-lived daemon's exit-path GC).
func TestShutdownRunsFinalGC(t *testing.T) {
	store, err := simcache.Open(t.TempDir(), simcache.Options{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Scale: 0.05, Store: store})
	resp := httptest.NewRecorder()
	body, _ := json.Marshal(SimulateRequest{Program: "BDNA", Arch: "DVA", Latency: 50})
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
	s.Handler().ServeHTTP(resp, req)
	if resp.Code != http.StatusOK {
		t.Fatalf("simulate: %d", resp.Code)
	}
	if st := store.Stats(); st.Writes != 1 {
		t.Fatalf("store writes = %d, want 1", st.Writes)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Evicted != 1 {
		t.Errorf("store evicted = %d, want 1: Shutdown must run the final GC", st.Evicted)
	}
}

func TestStatszAndSweep(t *testing.T) {
	srv, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Programs:  []string{"BDNA", "TRFD"},
		Archs:     []string{"REF", "DVA"},
		Latencies: []int64{1, 50},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %s: %s", resp.Status, body)
	}
	var sw SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 8 {
		t.Fatalf("sweep returned %d points, want 2x2x2 = 8", len(sw.Points))
	}
	for _, p := range sw.Points {
		if p.Cycles <= 0 {
			t.Errorf("point %+v has nonpositive cycles", p)
		}
	}
	if sw.Simulations != 8 {
		t.Errorf("sweep Simulations = %d, want 8", sw.Simulations)
	}

	// statsz reflects the traffic.
	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var m report.ServerMetric
	if err := json.NewDecoder(sresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Sweep != 1 || m.Served != 1 || m.Simulations != 8 {
		t.Errorf("statsz = sweep %d served %d sims %d, want 1/1/8", m.Sweep, m.Served, m.Simulations)
	}
	if m.MaxConcurrent != srv.cfg.MaxConcurrent {
		t.Errorf("statsz maxConcurrent = %d, want %d", m.MaxConcurrent, srv.cfg.MaxConcurrent)
	}

	// The table rendering works too.
	tresp, err := http.Get(ts.URL + "/statsz?format=table")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	tb, _ := io.ReadAll(tresp.Body)
	if !strings.Contains(string(tb), "dvad server") {
		t.Errorf("statsz table rendering missing header: %q", tb)
	}
}

func TestSweepGridCap(t *testing.T) {
	_, ts := testServer(t, Config{MaxSweepPoints: 4})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Programs:  []string{"BDNA"},
		Archs:     []string{"REF", "DVA"},
		Latencies: []int64{1, 10, 20},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep: %s (%s), want 400", resp.Status, body)
	}
}

// TestPeriodicGC proves a long-lived daemon enforces its cap without any
// request traffic: an over-cap store shrinks on the ticker alone.
func TestPeriodicGC(t *testing.T) {
	dir := t.TempDir()
	store, err := simcache.Open(dir, simcache.Options{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Scale: 0.05, Store: store, GCInterval: 10 * time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	resp := httptest.NewRecorder()
	body, _ := json.Marshal(SimulateRequest{Program: "TRFD", Arch: "REF", Latency: 10})
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
	s.Handler().ServeHTTP(resp, req)
	if resp.Code != http.StatusOK {
		t.Fatalf("simulate: %d", resp.Code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for store.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic GC never evicted the over-cap entry")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeTableRendering(t *testing.T) {
	m := report.ServerMetric{Served: 100, Simulations: 1, Coalesced: 99}
	out := report.ServerTable(m)
	for _, want := range []string{"served", "coalesced", "100", "99"} {
		if !strings.Contains(out, want) {
			t.Errorf("ServerTable missing %q:\n%s", want, out)
		}
	}
}
