// Package sweep is the distributed sweep engine: it enumerates a
// (program × arch × latency × queue) parameter grid as a streaming plan,
// shards its cells cache-affinely by simcache key prefix — every cell with
// the same key prefix routes to the same worker, so repeat sweeps land each
// cell on the worker whose disk tier already holds it — and drains the
// shards through pluggable executors: an in-process executor over
// experiments.Suite.RunBatch, and a remote executor speaking the dvad
// /v1/sweep + /v1/simulate protocol with bounded inflight, retry-with-
// backoff on 429/5xx, and failover re-sharding when a worker drops.
//
// Results merge deterministically in plan order whatever the workers'
// completion order, under the same errors.Join discipline as RunBatch: a
// partial sweep returns every completed result alongside the joined error.
// The paper's figures are dense grids of independent simulations; this
// package is what lets those grids be sized in millions of cells, bounded
// by cores and cache hits rather than one process's wall clock.
package sweep

import (
	"fmt"
	"strings"

	"decvec/internal/experiments"
	"decvec/internal/sim"
	"decvec/internal/workload"
)

// GridSpec names a (program × arch × latency × loadQ × storeQ) grid by its
// dimension values; its JSON form is the -grid file format of cmd/dvasweep.
// Empty dimensions take the paper defaults: the six simulated programs,
// REF and DVA, the Figure 3-5 latency sweep, default queue sizes.
type GridSpec struct {
	Programs  []string `json:"programs,omitempty"`
	Archs     []string `json:"archs,omitempty"`
	Latencies []int64  `json:"latencies,omitempty"`
	LoadQs    []int    `json:"loadqs,omitempty"`
	StoreQs   []int    `json:"storeqs,omitempty"`
}

// archSpec is one resolved architecture dimension value: BYP arrives as
// DVA with the bypass bit, so its cells share cache keys — and therefore
// shards — with the equivalent DVA+bypass cells.
type archSpec struct {
	arch   experiments.Arch
	bypass bool
}

// Plan is a compiled grid: the dimension arrays, never the cell product.
// Cells are decoded on demand by index, so a million-point plan costs the
// same memory as a ten-point one — O(points) appears only in the result
// slice a run necessarily returns.
type Plan struct {
	programs []*workload.Program
	archs    []archSpec
	lats     []int64
	loadQs   []int
	storeQs  []int
}

// NewPlan compiles a grid spec, resolving program names and architecture
// spellings and validating every dimension value up front — a plan that
// compiles cannot fail to enumerate.
func NewPlan(spec GridSpec) (*Plan, error) {
	p := &Plan{}
	if len(spec.Programs) == 0 {
		p.programs = workload.Simulated()
	} else {
		for _, name := range spec.Programs {
			prog, err := workload.Get(name)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			p.programs = append(p.programs, prog)
		}
	}
	archs := spec.Archs
	if len(archs) == 0 {
		archs = []string{"REF", "DVA"}
	}
	for _, a := range archs {
		as := archSpec{arch: experiments.Arch(strings.ToUpper(a))}
		if as.arch == "BYP" {
			as.arch = experiments.DVA
			as.bypass = true
		}
		if as.arch != experiments.REF && as.arch != experiments.DVA {
			return nil, fmt.Errorf("sweep: unknown architecture %q (want REF, DVA or BYP)", a)
		}
		p.archs = append(p.archs, as)
	}
	p.lats = spec.Latencies
	if len(p.lats) == 0 {
		p.lats = experiments.DefaultLatencies
	}
	for _, l := range p.lats {
		if l <= 0 {
			return nil, fmt.Errorf("sweep: latency must be positive, got %d", l)
		}
	}
	for _, q := range spec.LoadQs {
		if q < 0 {
			return nil, fmt.Errorf("sweep: load queue size must be >= 0, got %d", q)
		}
	}
	for _, q := range spec.StoreQs {
		if q < 0 {
			return nil, fmt.Errorf("sweep: store queue size must be >= 0, got %d", q)
		}
	}
	p.loadQs = spec.LoadQs
	if len(p.loadQs) == 0 {
		p.loadQs = []int{0}
	}
	p.storeQs = spec.StoreQs
	if len(p.storeQs) == 0 {
		p.storeQs = []int{0}
	}
	return p, nil
}

// Points returns the plan's cell count.
func (p *Plan) Points() int {
	return len(p.programs) * len(p.archs) * len(p.lats) * len(p.loadQs) * len(p.storeQs)
}

// Programs returns the plan's program set (the coordinator hashes each
// program's trace once for key derivation).
func (p *Plan) Programs() []*workload.Program { return p.programs }

// Cell is one (program, architecture, configuration) point of a plan,
// carrying both the materialized sim.Config the executors run and the raw
// dimension values the remote wire protocol speaks. Index is the cell's
// position in plan order — the merge key: results land at out[Index]
// whatever worker produced them, in whatever order.
type Cell struct {
	Index   int
	Program *workload.Program
	Arch    experiments.Arch
	Cfg     sim.Config

	// Raw dimension values for the dvad wire protocol (0 = worker default).
	Latency int64
	LoadQ   int
	StoreQ  int
	Bypass  bool
}

// Cell decodes the i-th cell of plan order: programs outermost, then
// architectures, latencies, load queues, store queues innermost — the same
// nesting the dvad grid mode and experiments.WarmCtx enumerate, so a
// distributed merge compares row-for-row with a local batch of the same
// grid.
func (p *Plan) Cell(i int) Cell {
	n := i
	sq := p.storeQs[n%len(p.storeQs)]
	n /= len(p.storeQs)
	lq := p.loadQs[n%len(p.loadQs)]
	n /= len(p.loadQs)
	lat := p.lats[n%len(p.lats)]
	n /= len(p.lats)
	a := p.archs[n%len(p.archs)]
	n /= len(p.archs)
	prog := p.programs[n]

	cfg := sim.DefaultConfig(lat)
	if lq > 0 {
		cfg.AVDQSize = lq
	}
	if sq > 0 {
		cfg.VADQSize = sq
	}
	cfg.Bypass = a.bypass
	return Cell{
		Index:   i,
		Program: prog,
		Arch:    a.arch,
		Cfg:     cfg,
		Latency: lat,
		LoadQ:   lq,
		StoreQ:  sq,
		Bypass:  a.bypass,
	}
}

// Job converts the cell to its batch-job form for the in-process executor.
func (c Cell) Job() experiments.BatchJob {
	return experiments.BatchJob{Program: c.Program, Arch: c.Arch, Cfg: c.Cfg}
}
