package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decvec/internal/sim"
)

// The remote executor mirrors the dvad wire types rather than importing
// internal/server: sweep sits in the harness layer and may not depend on
// the serving layer (the same discipline cmd/dvadload follows). The
// contract is the JSON shape, pinned by the root integration test against
// a real server.
type wireCell struct {
	Program string `json:"program"`
	Arch    string `json:"arch"`
	Latency int64  `json:"latency"`
	LoadQ   int    `json:"loadq,omitempty"`
	StoreQ  int    `json:"storeq,omitempty"`
}

type wireSweepRequest struct {
	Cells     []wireCell `json:"cells"`
	Stream    bool       `json:"stream"`
	TimeoutMs int64      `json:"timeoutMs,omitempty"`
}

type wireRow struct {
	I           int    `json:"i"`
	Result      []byte `json:"result,omitempty"`
	Error       string `json:"error,omitempty"`
	Done        bool   `json:"done,omitempty"`
	CacheHits   int64  `json:"cacheHits,omitempty"`
	CacheMisses int64  `json:"cacheMisses,omitempty"`
}

type wireSimRequest struct {
	Program   string `json:"program"`
	Arch      string `json:"arch"`
	Latency   int64  `json:"latency"`
	LoadQ     int    `json:"loadq,omitempty"`
	StoreQ    int    `json:"storeq,omitempty"`
	TimeoutMs int64  `json:"timeoutMs,omitempty"`
	Raw       bool   `json:"raw,omitempty"`
}

// wireStats is the /statsz slice the executor reads for its cache baseline.
type wireStats struct {
	Cache *struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
}

// retryError wraps a failure the executor may retry: transport errors,
// 429 overload, 5xx, broken or trailerless streams, worker-side timeouts.
// Anything else — a 4xx rejection, an undecodable result — is permanent.
type retryError struct{ err error }

func (e *retryError) Error() string { return e.err.Error() }
func (e *retryError) Unwrap() error { return e.err }

// RemoteOptions tune a remote executor; the zero value is production-ready.
type RemoteOptions struct {
	// Name overrides the stats/diagnostics name (default: the base URL).
	Name string
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Retries is how many times a retryable chunk failure is retried
	// before the worker is declared down (default 4).
	Retries int
	// Backoff is the first retry's delay; it doubles per retry
	// (default 100ms).
	Backoff time.Duration
	// TimeoutMs is the worker-side request timeout sent with every chunk;
	// the worker can lower but never raise its own. 0 keeps the worker
	// default.
	TimeoutMs int64
}

// Remote is the executor for one dvad worker. Chunks go out as explicit-
// cells /v1/sweep requests in streaming mode; single cells ride the
// /v1/simulate raw path. Both answer with the canonical binary result
// encoding, so a merge across workers is byte-identical to a local run.
//
// Failures retry with exponential backoff — the whole chunk after a 429,
// 5xx or transport error, only the cells not yet received after a
// mid-stream break (rows already flushed stay valid). When retries are
// exhausted the executor reports ErrWorkerDown and the coordinator
// re-shards the remainder.
type Remote struct {
	name      string
	base      string
	client    *http.Client
	retries   int
	backoff   time.Duration
	timeoutMs int64

	retried atomic.Int64

	// The worker's trailer counters are suite-lifetime absolutes; the
	// sweep-window delta needs a baseline, fetched from /statsz before the
	// first chunk (first trailer seen if the fetch fails).
	mu           sync.Mutex
	haveBase     bool
	baseHits     int64
	baseMisses   int64
	lastHits     int64
	lastMisses   int64
	haveCounters bool
}

// NewRemote returns an executor for the dvad worker at baseURL
// (e.g. "http://127.0.0.1:8077").
func NewRemote(baseURL string, opts RemoteOptions) *Remote {
	r := &Remote{
		name:      opts.Name,
		base:      strings.TrimRight(baseURL, "/"),
		client:    opts.Client,
		retries:   opts.Retries,
		backoff:   opts.Backoff,
		timeoutMs: opts.TimeoutMs,
	}
	if r.name == "" {
		r.name = r.base
	}
	if r.client == nil {
		r.client = http.DefaultClient
	}
	if r.retries <= 0 {
		r.retries = 4
	}
	if r.backoff <= 0 {
		r.backoff = 100 * time.Millisecond
	}
	return r
}

// Name implements Executor.
func (r *Remote) Name() string { return r.name }

// Stats implements Executor.
func (r *Remote) Stats() ExecutorStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ExecutorStats{Retries: r.retried.Load()}
	if r.haveBase && r.haveCounters {
		st.CacheHits = r.lastHits - r.baseHits
		st.CacheMisses = r.lastMisses - r.baseMisses
	}
	return st
}

func wireCellOf(c Cell) wireCell {
	arch := string(c.Arch)
	if c.Bypass {
		arch = "BYP"
	}
	return wireCell{
		Program: c.Program.Name,
		Arch:    arch,
		Latency: c.Latency,
		LoadQ:   c.LoadQ,
		StoreQ:  c.StoreQ,
	}
}

// Run implements Executor.
func (r *Remote) Run(ctx context.Context, cells []Cell) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(cells))
	if len(cells) == 0 {
		return out, nil
	}
	r.fetchBaseline(ctx)

	pending := make([]int, len(cells))
	for i := range pending {
		pending[i] = i
	}
	var cellErrs []error
	backoff := r.backoff
	for attempt := 0; ; attempt++ {
		still, err := r.post(ctx, cells, pending, out, &cellErrs)
		if err == nil && len(still) == 0 {
			return out, errors.Join(cellErrs...)
		}
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		var re *retryError
		if err != nil && !errors.As(err, &re) {
			return out, err // permanent protocol failure
		}
		pending = still
		cause := err
		if cause == nil {
			cause = fmt.Errorf("%d cells never answered", len(pending))
		}
		if attempt >= r.retries {
			return out, fmt.Errorf("%w: %s after %d retries: %v", ErrWorkerDown, r.name, r.retries, cause)
		}
		r.retried.Add(1)
		if err := sleepCtx(ctx, backoff); err != nil {
			return out, err
		}
		backoff *= 2
	}
}

// post sends one chunk attempt covering cells[pending...], fills out and
// cellErrs from the rows received, and returns the indices (into cells)
// still owed. A *retryError invites another attempt; other errors are
// final.
func (r *Remote) post(ctx context.Context, cells []Cell, pending []int, out []*sim.Result, cellErrs *[]error) ([]int, error) {
	if len(pending) == 1 {
		return r.simulateOne(ctx, cells, pending[0], out)
	}
	wreq := wireSweepRequest{Stream: true, TimeoutMs: r.timeoutMs}
	wreq.Cells = make([]wireCell, len(pending))
	for k, pi := range pending {
		wreq.Cells[k] = wireCellOf(cells[pi])
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return pending, err
	}
	resp, err := r.do(ctx, "/v1/sweep", body)
	if err != nil {
		return pending, err
	}
	defer resp.Body.Close()

	filled := make([]bool, len(pending))
	doneSeen := false
	dec := json.NewDecoder(resp.Body)
	for {
		var row wireRow
		if err := dec.Decode(&row); err != nil {
			if err == io.EOF {
				break
			}
			// Mid-stream break: rows already decoded stay valid, only the
			// remainder is owed.
			return unfilled(pending, filled), &retryError{fmt.Errorf("worker %s: sweep stream broke: %v", r.name, err)}
		}
		if row.Done {
			doneSeen = true
			r.noteCounters(row.CacheHits, row.CacheMisses)
			continue
		}
		if row.I < 0 || row.I >= len(pending) || filled[row.I] {
			return unfilled(pending, filled), fmt.Errorf("worker %s: sweep row index %d out of range", r.name, row.I)
		}
		ci := pending[row.I]
		filled[row.I] = true
		if row.Error != "" {
			c := cells[ci]
			*cellErrs = append(*cellErrs, fmt.Errorf("worker %s: cell %d (%s %s lat=%d): %s",
				r.name, ci, c.Program.Name, c.Arch, c.Latency, row.Error))
			continue
		}
		res, err := sim.DecodeResult(bytes.NewReader(row.Result))
		if err != nil {
			return unfilled(pending, filled), fmt.Errorf("worker %s: cell %d: undecodable result: %v", r.name, ci, err)
		}
		out[ci] = res
	}
	still := unfilled(pending, filled)
	if !doneSeen {
		return still, &retryError{fmt.Errorf("worker %s: sweep stream ended without trailer", r.name)}
	}
	if len(still) > 0 {
		// The trailer arrived but some cells never got rows: the worker's
		// request deadline passed and it drained them unrun. Retryable.
		return still, &retryError{fmt.Errorf("worker %s: %d cells timed out worker-side", r.name, len(still))}
	}
	return nil, nil
}

// simulateOne answers a single-cell chunk through /v1/simulate in raw
// mode: the response body is the canonical binary result itself.
func (r *Remote) simulateOne(ctx context.Context, cells []Cell, ci int, out []*sim.Result) ([]int, error) {
	wc := wireCellOf(cells[ci])
	body, err := json.Marshal(wireSimRequest{
		Program:   wc.Program,
		Arch:      wc.Arch,
		Latency:   wc.Latency,
		LoadQ:     wc.LoadQ,
		StoreQ:    wc.StoreQ,
		TimeoutMs: r.timeoutMs,
		Raw:       true,
	})
	if err != nil {
		return []int{ci}, err
	}
	resp, err := r.do(ctx, "/v1/simulate", body)
	if err != nil {
		return []int{ci}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return []int{ci}, &retryError{fmt.Errorf("worker %s: reading result: %v", r.name, err)}
	}
	res, err := sim.DecodeResult(bytes.NewReader(payload))
	if err != nil {
		return []int{ci}, fmt.Errorf("worker %s: cell %d: undecodable result: %v", r.name, ci, err)
	}
	out[ci] = res
	return nil, nil
}

// do posts one JSON request and classifies the status: 200 passes the
// response through, 429 and 5xx are retryable, anything else is final.
func (r *Remote) do(ctx context.Context, path string, body []byte) (*http.Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(hreq)
	if err != nil {
		return nil, &retryError{fmt.Errorf("worker %s: %s: %v", r.name, path, err)}
	}
	if resp.StatusCode == http.StatusOK {
		return resp, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	serr := fmt.Errorf("worker %s: %s: %s: %s", r.name, path, resp.Status, bytes.TrimSpace(msg))
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		return nil, &retryError{serr}
	}
	return nil, serr
}

// fetchBaseline reads the worker's absolute cache counters once, before
// the first chunk, so Stats can report the sweep-window delta. A failed
// fetch falls back to the first trailer (a slight undercount, never an
// error — stats must not fail a sweep).
func (r *Remote) fetchBaseline(ctx context.Context) {
	r.mu.Lock()
	if r.haveBase {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/statsz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st wireStats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil || st.Cache == nil {
		return
	}
	r.mu.Lock()
	if !r.haveBase {
		r.haveBase = true
		r.baseHits = st.Cache.Hits
		r.baseMisses = st.Cache.Misses
	}
	r.mu.Unlock()
}

// noteCounters records a trailer's absolute worker counters.
func (r *Remote) noteCounters(hits, misses int64) {
	r.mu.Lock()
	if !r.haveBase {
		// No /statsz baseline: the first trailer becomes it, so the first
		// chunk's own hits are not counted. Better a small undercount than
		// another worker's history in our ratio.
		r.haveBase = true
		r.baseHits = hits
		r.baseMisses = misses
	}
	r.lastHits = hits
	r.lastMisses = misses
	r.haveCounters = true
	r.mu.Unlock()
}

// unfilled maps the attempt-local filled mask back to cell indices.
func unfilled(pending []int, filled []bool) []int {
	var still []int
	for k, pi := range pending {
		if !filled[k] {
			still = append(still, pi)
		}
	}
	return still
}

// sleepCtx waits d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
