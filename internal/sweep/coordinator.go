package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"decvec/internal/sim"
	"decvec/internal/simcache"
)

// Shard maps a cache-key prefix to one of n shards. The prefix is
// simcache.KeyPrefixLen hex digits of the cell's content-addressed key, so
// the mapping is a pure function of (model, trace, arch, config): the same
// cell routes to the same shard in every sweep against the same worker
// count, which is what keeps each worker's disk tier hot across repeat
// sweeps.
func Shard(prefix string, n int) int {
	if n <= 1 {
		return 0
	}
	v, err := strconv.ParseUint(prefix, 16, 64)
	if err != nil {
		// Not a hex prefix — DeriveKey never produces one, but routing
		// must stay total and deterministic, so fold the bytes instead.
		for _, b := range []byte(prefix) {
			v = v*131 + uint64(b)
		}
	}
	return int(v % uint64(n))
}

// Key returns the cell's content-addressed simcache key under the given
// model fingerprint and trace hash — exactly the key the worker's disk
// tier stores the result under, which is what makes Shard cache-affine.
func (c Cell) Key(fingerprint string, traceHash [32]byte) simcache.Key {
	return simcache.DeriveKey(fingerprint, traceHash, string(c.Arch), c.Cfg, "")
}

// Options tune a coordinated sweep; the zero value is production-ready.
type Options struct {
	// Scale is the trace scale factor used for key derivation; it must
	// match the workers' -scale for cache affinity to land (a mismatch
	// only costs hit ratio, never correctness). Default
	// workload.DefaultScale via the suite convention: 1.0.
	Scale float64
	// Fingerprint overrides sim.ModelFingerprint in key derivation
	// (tests).
	Fingerprint string
	// ChunkSize caps the cells of one executor dispatch (default 128).
	ChunkSize int
	// Inflight is how many chunks one worker processes concurrently — the
	// per-worker bounded inflight (default 2: one on the wire while one
	// is being assembled keeps a worker busy without flooding its
	// admission queue).
	Inflight int
	// Progress, when non-nil, is called after every completed chunk with
	// the running completed-cell count and the plan total. It must be
	// safe for concurrent use.
	Progress func(done, total int)
}

// WorkerStats is one worker's slice of a sweep's Stats.
type WorkerStats struct {
	Name        string
	Cells       int64 // cells this worker completed
	CacheHits   int64
	CacheMisses int64
	HitRatio    float64 // CacheHits / (CacheHits + CacheMisses)
	Retries     int64
	Failed      bool   // worker went down during the sweep
	LastError   string // the failure that took it down, if any
}

// Stats is the sweep-level outcome summary.
type Stats struct {
	Points    int   // plan cells
	Completed int64 // cells with results
	Resharded int64 // cells moved to surviving workers after a death
	Rounds    int   // dispatch rounds (1 = no failover needed)
	Workers   []WorkerStats
}

// indexedErr keeps a permanent cell error with its plan position, so the
// joined aggregate reads in plan order whatever order workers failed in.
type indexedErr struct {
	index int
	err   error
}

// workerState is the coordinator's view of one executor during a round.
type workerState struct {
	exec   Executor
	chunks chan []Cell

	down     atomic.Bool
	done     atomic.Int64
	mu       sync.Mutex
	owed     []Cell // cells to re-shard after going down
	permErrs []indexedErr
	downErr  error
}

// Run drains the plan through the executors and merges the results in plan
// order: out[i] is plan cell i's result wherever and whenever it ran, so a
// distributed sweep is positionally — and, through the canonical binary
// encoding, byte — identical to a single-process RunBatch of the same
// grid.
//
// Cells shard by cache-key prefix (Shard) and stream to each worker in
// bounded chunks — the plan is never materialized beyond the open chunk
// per worker plus the inflight bound, so grid size costs memory only in
// the result slice. When a worker goes down (ErrWorkerDown), the next
// round re-shards its unfinished cells across the survivors; the sweep
// fails only when cells remain and no worker does.
//
// Error discipline matches RunBatch: every runnable cell runs, permanent
// per-cell errors join — sorted by plan position for determinism — and the
// completed results come back alongside the joined error, nil holes at the
// failed positions.
func Run(ctx context.Context, plan *Plan, execs []Executor, opts Options) ([]*sim.Result, Stats, error) {
	points := plan.Points()
	st := Stats{Points: points, Workers: make([]WorkerStats, 0, len(execs))}
	if len(execs) == 0 {
		return nil, st, errors.New("sweep: no executors")
	}
	out := make([]*sim.Result, points)
	if points == 0 {
		for _, e := range execs {
			st.Workers = append(st.Workers, workerStatsOf(e, nil))
		}
		return out, st, nil
	}

	scale := opts.Scale
	if scale <= 0 {
		scale = 1.0
	}
	fp := opts.Fingerprint
	if fp == "" {
		fp = sim.ModelFingerprint
	}
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = 128
	}
	inflight := opts.Inflight
	if inflight <= 0 {
		inflight = 2
	}

	// One trace hash per program covers every cell's key derivation.
	traceHash := make(map[string][32]byte, len(plan.Programs()))
	for _, p := range plan.Programs() {
		h, err := p.CachedTraceHash(scale)
		if err != nil {
			return nil, st, fmt.Errorf("sweep: hashing %s trace: %w", p.Name, err)
		}
		traceHash[p.Name] = h
	}

	var completed atomic.Int64
	progress := func() {
		if opts.Progress != nil {
			opts.Progress(int(completed.Load()), points)
		}
	}

	workers := make([]*workerState, len(execs))
	for i, e := range execs {
		workers[i] = &workerState{exec: e}
	}
	// alive is compacted in place between rounds, so it must not share its
	// array with the workers list the final stats walk.
	alive := append([]*workerState(nil), workers...)

	var permErrs []indexedErr
	var remaining []Cell
	for {
		st.Rounds++

		// Start this round's workers. Each drains its own chunk channel
		// through a per-worker inflight window; a worker that goes down
		// keeps draining — recording cells as owed — so the feeder below
		// can never block forever on a dead worker's channel.
		var wg sync.WaitGroup
		for _, w := range alive {
			w.chunks = make(chan []Cell, inflight)
			wg.Add(1)
			go func(w *workerState) {
				defer wg.Done()
				runWorker(ctx, w, out, inflight, &completed, progress)
			}(w)
		}

		// Feed: enumerate this round's cells — streamed straight off the
		// plan in round one, the re-shard remainder afterwards — routing
		// each to its shard's worker and dispatching chunks as they fill.
		// Memory here is one open chunk per worker, not O(points).
		open := make([][]Cell, len(alive))
		feed := func(c Cell) {
			sh := Shard(c.Key(fp, traceHash[c.Program.Name]).Prefix(), len(alive))
			open[sh] = append(open[sh], c)
			if len(open[sh]) >= chunkSize {
				alive[sh].chunks <- open[sh]
				open[sh] = nil
			}
		}
		if st.Rounds == 1 {
			for i := 0; i < points; i++ {
				feed(plan.Cell(i))
			}
		} else {
			for _, c := range remaining {
				feed(c)
			}
		}
		for sh, cs := range open {
			if len(cs) > 0 {
				alive[sh].chunks <- cs
			}
		}
		for _, w := range alive {
			close(w.chunks)
		}
		wg.Wait()

		// Collect the round: permanent errors accumulate, dead workers
		// leave the rotation, their owed cells become the next round.
		remaining = remaining[:0]
		next := alive[:0]
		for _, w := range alive {
			w.mu.Lock()
			permErrs = append(permErrs, w.permErrs...)
			w.permErrs = nil
			owed := w.owed
			w.owed = nil
			w.mu.Unlock()
			remaining = append(remaining, owed...)
			if w.down.Load() {
				continue
			}
			next = append(next, w)
		}
		alive = next

		if len(remaining) == 0 {
			break
		}
		if ctx.Err() != nil {
			permErrs = append(permErrs, indexedErr{remaining[0].Index, ctx.Err()})
			break
		}
		if len(alive) == 0 {
			permErrs = append(permErrs, indexedErr{remaining[0].Index,
				fmt.Errorf("sweep: %d cells unassigned: every worker failed", len(remaining))})
			break
		}
		st.Resharded += int64(len(remaining))
	}

	st.Completed = completed.Load()
	for _, w := range workers {
		ws := workerStatsOf(w.exec, w)
		st.Workers = append(st.Workers, ws)
	}

	sort.SliceStable(permErrs, func(i, j int) bool { return permErrs[i].index < permErrs[j].index })
	errs := make([]error, len(permErrs))
	for i, pe := range permErrs {
		errs[i] = pe.err
	}
	return out, st, errors.Join(errs...)
}

// runWorker drains one worker's chunk channel for a round, keeping up to
// inflight chunks in flight at once. Results land at out[cell.Index] —
// distinct slots, so no lock guards the result slice. A chunk whose
// executor reports ErrWorkerDown marks the worker down; its unfinished
// cells, and every chunk still queued, are recorded as owed for
// re-sharding.
func runWorker(ctx context.Context, w *workerState, out []*sim.Result, inflight int, completed *atomic.Int64, progress func()) {
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	for cells := range w.chunks {
		if w.down.Load() || ctx.Err() != nil {
			w.mu.Lock()
			w.owed = append(w.owed, cells...)
			w.mu.Unlock()
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(cells []Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := w.exec.Run(ctx, cells)
			var missing []Cell
			for i, c := range cells {
				if i < len(res) && res[i] != nil {
					out[c.Index] = res[i]
					w.done.Add(1)
					completed.Add(1)
				} else {
					missing = append(missing, c)
				}
			}
			progress()
			switch {
			case err == nil:
				if len(missing) > 0 {
					// An executor must explain every nil slot; a silent
					// hole is a protocol bug, surfaced loudly.
					w.mu.Lock()
					w.permErrs = append(w.permErrs, indexedErr{missing[0].Index,
						fmt.Errorf("sweep: worker %s returned no result and no error for %d cells", w.exec.Name(), len(missing))})
					w.mu.Unlock()
				}
			case errors.Is(err, ErrWorkerDown):
				w.down.Store(true)
				w.mu.Lock()
				w.owed = append(w.owed, missing...)
				if w.downErr == nil {
					w.downErr = err
				}
				w.mu.Unlock()
			default:
				// Permanent: the joined error explains the nil holes.
				idx := cells[0].Index
				if len(missing) > 0 {
					idx = missing[0].Index
				}
				w.mu.Lock()
				w.permErrs = append(w.permErrs, indexedErr{idx, err})
				w.mu.Unlock()
			}
		}(cells)
	}
	wg.Wait()
}

// workerStatsOf folds an executor's counters into the stats row.
func workerStatsOf(e Executor, w *workerState) WorkerStats {
	ws := WorkerStats{Name: e.Name()}
	es := e.Stats()
	ws.CacheHits = es.CacheHits
	ws.CacheMisses = es.CacheMisses
	ws.Retries = es.Retries
	if total := es.CacheHits + es.CacheMisses; total > 0 {
		ws.HitRatio = float64(es.CacheHits) / float64(total)
	}
	if w != nil {
		ws.Cells = w.done.Load()
		ws.Failed = w.down.Load()
		w.mu.Lock()
		if w.downErr != nil {
			ws.LastError = w.downErr.Error()
		}
		w.mu.Unlock()
	}
	return ws
}
