package sweep

import (
	"testing"

	"decvec/internal/experiments"
	"decvec/internal/workload"
)

// The default plan is the paper's Figure 3-5 grid: six simulated programs,
// REF and DVA, eleven latencies.
func TestPlanDefaults(t *testing.T) {
	p, err := NewPlan(GridSpec{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(workload.Simulated()) * 2 * len(experiments.DefaultLatencies)
	if p.Points() != want {
		t.Errorf("default plan has %d points, want %d", p.Points(), want)
	}
}

// Cell decode must enumerate exactly the nested-loop order the dvad grid
// mode uses: programs outermost, then archs, latencies, loadQs, storeQs.
func TestPlanCellOrder(t *testing.T) {
	spec := GridSpec{
		Programs:  []string{"BDNA", "OCEAN"},
		Archs:     []string{"REF", "DVA"},
		Latencies: []int64{1, 50, 100},
		LoadQs:    []int{0, 8},
		StoreQs:   []int{0, 4},
	}
	p, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Points() != 2*2*3*2*2 {
		t.Fatalf("points = %d, want 24", p.Points())
	}
	i := 0
	for _, prog := range spec.Programs {
		for _, arch := range spec.Archs {
			for _, lat := range spec.Latencies {
				for _, lq := range spec.LoadQs {
					for _, sq := range spec.StoreQs {
						c := p.Cell(i)
						if c.Index != i {
							t.Fatalf("cell %d: Index = %d", i, c.Index)
						}
						if c.Program.Name != prog || string(c.Arch) != arch ||
							c.Latency != lat || c.LoadQ != lq || c.StoreQ != sq {
							t.Fatalf("cell %d = (%s %s %d %d %d), want (%s %s %d %d %d)",
								i, c.Program.Name, c.Arch, c.Latency, c.LoadQ, c.StoreQ,
								prog, arch, lat, lq, sq)
						}
						if c.Cfg.MemLatency != lat {
							t.Fatalf("cell %d: Cfg.MemLatency = %d, want %d", i, c.Cfg.MemLatency, lat)
						}
						i++
					}
				}
			}
		}
	}
}

// BYP is spelled as its own architecture but must canonicalize to
// DVA+bypass, so its cells share cache keys with equivalent DVA cells.
func TestPlanBypassCanonicalization(t *testing.T) {
	p, err := NewPlan(GridSpec{Programs: []string{"BDNA"}, Archs: []string{"byp"}, Latencies: []int64{50}})
	if err != nil {
		t.Fatal(err)
	}
	c := p.Cell(0)
	if c.Arch != experiments.DVA || !c.Bypass || !c.Cfg.Bypass {
		t.Errorf("BYP cell = arch %s bypass %v cfg.Bypass %v, want DVA true true", c.Arch, c.Bypass, c.Cfg.Bypass)
	}
}

func TestPlanRejectsBadSpecs(t *testing.T) {
	bad := []GridSpec{
		{Programs: []string{"NOSUCH"}},
		{Archs: []string{"VLIW"}},
		{Latencies: []int64{0}},
		{Latencies: []int64{-3}},
		{LoadQs: []int{-1}},
		{StoreQs: []int{-1}},
	}
	for i, spec := range bad {
		if _, err := NewPlan(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}
