package sweep

import (
	"context"
	"errors"

	"decvec/internal/experiments"
	"decvec/internal/sim"
	"decvec/internal/simcache"
)

// ErrWorkerDown marks an executor failure that warrants failover: the
// executor can no longer make progress at all (connection refused, retries
// exhausted, process gone), as opposed to a cell that failed on its own
// merits. The coordinator responds by marking the worker dead and
// re-sharding its unfinished cells across the survivors; any other error is
// permanent for the cells it explains.
var ErrWorkerDown = errors.New("sweep: worker down")

// Executor drains shard chunks for one worker.
//
// Run executes the cells and reports positionally: res[i] is cells[i]'s
// result, or nil when that cell has none. A nil slot paired with an error
// wrapping ErrWorkerDown is owed — the coordinator re-dispatches it
// elsewhere; a nil slot under any other error is that cell failing
// permanently. Run may be called concurrently up to the coordinator's
// per-worker inflight bound.
type Executor interface {
	// Name identifies the worker in stats and diagnostics.
	Name() string
	Run(ctx context.Context, cells []Cell) ([]*sim.Result, error)
	// Stats snapshots the executor's lifetime counters.
	Stats() ExecutorStats
}

// ExecutorStats are one worker's counters over the executor's lifetime.
type ExecutorStats struct {
	CacheHits   int64 // disk-tier hits observed at this worker during the sweep
	CacheMisses int64 // disk-tier misses likewise
	Retries     int64 // request retries (remote transport errors, 429s, 5xx)
}

// Local is the in-process executor: its shard drains through
// Suite.RunBatch on the caller's own machine, which also makes it the
// fallback when no remote workers are configured. Cache counters are the
// suite's disk-tier deltas since the executor was created.
type Local struct {
	name  string
	suite *experiments.Suite
	base  simcache.Stats
}

// NewLocal returns a local executor over the suite.
func NewLocal(name string, suite *experiments.Suite) *Local {
	return &Local{name: name, suite: suite, base: suite.CacheStats()}
}

// Name implements Executor.
func (l *Local) Name() string { return l.name }

// Run implements Executor via RunBatch, inheriting its whole pipeline:
// cold trace materialization, duplicate collapsing, trace-grouped hot
// drain, singleflight and disk tiers. RunBatch's partial-result contract
// maps directly onto the executor one: completed cells come back, failed
// cells are nil holes under the joined error.
func (l *Local) Run(ctx context.Context, cells []Cell) ([]*sim.Result, error) {
	jobs := make([]experiments.BatchJob, len(cells))
	for i, c := range cells {
		jobs[i] = c.Job()
	}
	return l.suite.RunBatch(ctx, jobs)
}

// Stats implements Executor.
func (l *Local) Stats() ExecutorStats {
	st := l.suite.CacheStats()
	return ExecutorStats{
		CacheHits:   st.Hits - l.base.Hits,
		CacheMisses: st.Misses - l.base.Misses,
	}
}
