package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"decvec/internal/experiments"
	"decvec/internal/server"
	"decvec/internal/sim"
	"decvec/internal/simcache"
	"decvec/internal/workload"
)

// dvadServer spins a real in-process dvad for the remote executor to talk
// to; only the test file imports internal/server (test files sit outside
// the layer DAG).
func dvadServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{Scale: 0.05})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts
}

// canonical is the cell's result as the local suite computes and encodes
// it — the byte-identity reference for whatever the wire returns.
func canonical(t *testing.T, suite *experiments.Suite, c Cell) []byte {
	t.Helper()
	res, err := suite.RunCtx(context.Background(), c.Program, c.Arch, c.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simcache.EncodeResultBytes(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func encodeOf(t *testing.T, r *sim.Result) []byte {
	t.Helper()
	b, err := simcache.EncodeResultBytes(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A worker that sheds load with 429 must be retried with backoff, not
// declared down — and the results it finally returns must byte-match a
// local run.
func TestRemoteRetriesAfter429(t *testing.T) {
	ts := dvadServer(t)
	var rejected atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sweep" && rejected.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Scheme = "http"
		r2.URL.Host = ts.Listener.Addr().String()
		proxy(w, r2)
	}))
	defer front.Close()

	plan := testPlan(t, 6)
	cells := make([]Cell, plan.Points())
	for i := range cells {
		cells[i] = plan.Cell(i)
	}
	rr := NewRemote(front.URL, RemoteOptions{Retries: 5, Backoff: time.Millisecond})
	out, err := rr.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	suite := experiments.NewSuite(0.05)
	for i, r := range out {
		if r == nil {
			t.Fatalf("cell %d missing", i)
		}
		if !bytes.Equal(encodeOf(t, r), canonical(t, suite, cells[i])) {
			t.Errorf("cell %d differs from the local run", i)
		}
	}
	if got := rr.Stats().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

// A stream that breaks mid-way must be resumed by retrying only the cells
// never received: rows already flushed stay merged.
func TestRemoteRecoversFromMidStreamBreak(t *testing.T) {
	ts := dvadServer(t)
	suite := experiments.NewSuite(0.05)
	var sweeps atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sweep" && sweeps.Add(1) == 1 {
			// Serve the first two cells for real, then drop the
			// connection before the trailer.
			var req server.SweepRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Cells) < 3 {
				t.Errorf("first sweep request malformed: %v (%d cells)", err, len(req.Cells))
				panic(http.ErrAbortHandler)
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc := json.NewEncoder(w)
			for i := 0; i < 2; i++ {
				p, err := workload.Get(req.Cells[i].Program)
				if err != nil {
					t.Error(err)
					panic(http.ErrAbortHandler)
				}
				res, err := suite.RunCtx(r.Context(), p, experiments.Arch(req.Cells[i].Arch), sim.DefaultConfig(req.Cells[i].Latency))
				if err != nil {
					t.Error(err)
					panic(http.ErrAbortHandler)
				}
				enc.Encode(server.SweepRow{I: i, Result: encodeOf(t, res)})
				w.(http.Flusher).Flush()
			}
			panic(http.ErrAbortHandler)
		}
		r2 := r.Clone(r.Context())
		r2.URL.Scheme = "http"
		r2.URL.Host = ts.Listener.Addr().String()
		proxy(w, r2)
	}))
	defer front.Close()

	plan := testPlan(t, 6)
	cells := make([]Cell, plan.Points())
	for i := range cells {
		cells[i] = plan.Cell(i)
	}
	rr := NewRemote(front.URL, RemoteOptions{Retries: 3, Backoff: time.Millisecond})
	out, err := rr.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	ref := experiments.NewSuite(0.05)
	for i, r := range out {
		if r == nil {
			t.Fatalf("cell %d missing after mid-stream recovery", i)
		}
		if !bytes.Equal(encodeOf(t, r), canonical(t, ref, cells[i])) {
			t.Errorf("cell %d differs from the local run", i)
		}
	}
	if got := rr.Stats().Retries; got < 1 {
		t.Errorf("retries = %d, want >= 1", got)
	}
}

// A single-cell chunk rides /v1/simulate in raw mode and must return the
// same canonical bytes.
func TestRemoteSingleCellRawPath(t *testing.T) {
	ts := dvadServer(t)
	plan := testPlan(t, 3)
	rr := NewRemote(ts.URL, RemoteOptions{Retries: 2, Backoff: time.Millisecond})
	cells := []Cell{plan.Cell(1)}
	out, err := rr.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	suite := experiments.NewSuite(0.05)
	if !bytes.Equal(encodeOf(t, out[0]), canonical(t, suite, cells[0])) {
		t.Error("raw /v1/simulate result differs from the local run")
	}
}

// A worker that is simply gone must exhaust its retries and surface
// ErrWorkerDown — the coordinator's failover signal.
func TestRemoteDeadWorkerReportsDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	plan := testPlan(t, 4)
	cells := make([]Cell, plan.Points())
	for i := range cells {
		cells[i] = plan.Cell(i)
	}
	rr := NewRemote(dead.URL, RemoteOptions{Retries: 1, Backoff: time.Millisecond})
	_, err := rr.Run(context.Background(), cells)
	if !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("dead worker error = %v, want ErrWorkerDown", err)
	}
}

// A 400 rejection is permanent: retrying a request the worker rejected as
// malformed can never succeed, and must not be mistaken for worker death.
func TestRemoteBadRequestIsPermanent(t *testing.T) {
	var calls atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sweep" {
			calls.Add(1)
		}
		http.Error(w, "no such program", http.StatusBadRequest)
	}))
	defer front.Close()

	plan := testPlan(t, 4)
	cells := make([]Cell, plan.Points())
	for i := range cells {
		cells[i] = plan.Cell(i)
	}
	rr := NewRemote(front.URL, RemoteOptions{Retries: 3, Backoff: time.Millisecond})
	_, err := rr.Run(context.Background(), cells)
	if err == nil || errors.Is(err, ErrWorkerDown) {
		t.Fatalf("400 must be a permanent non-down error, got %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("400 was retried %d times; must not be retried", calls.Load()-1)
	}
}

// proxy forwards one request to the backing server and copies the
// response through, preserving streaming flushes.
func proxy(w http.ResponseWriter, r *http.Request) {
	r.RequestURI = ""
	resp, err := http.DefaultClient.Do(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
