package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"decvec/internal/sim"
)

// testPlan builds an n-cell single-program plan (one cell per latency).
func testPlan(t *testing.T, n int) *Plan {
	t.Helper()
	lats := make([]int64, n)
	for i := range lats {
		lats[i] = int64(i + 1)
	}
	p, err := NewPlan(GridSpec{Programs: []string{"BDNA"}, Archs: []string{"DVA"}, Latencies: lats})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fakeExec is an in-memory executor: each cell's "result" encodes its plan
// index as the cycle count, chunks complete in reverse order, and an
// executor can be told to die after a given number of cells.
type fakeExec struct {
	name     string
	count    atomic.Int64
	dieAfter int64 // die once count reaches this; <0 = never
}

func (f *fakeExec) Name() string         { return f.name }
func (f *fakeExec) Stats() ExecutorStats { return ExecutorStats{} }

func (f *fakeExec) Run(ctx context.Context, cells []Cell) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(cells))
	// Reverse order: completion order must not matter to the merge.
	for i := len(cells) - 1; i >= 0; i-- {
		if f.dieAfter >= 0 && f.count.Load() >= f.dieAfter {
			return out, fmt.Errorf("%s crashed: %w", f.name, ErrWorkerDown)
		}
		out[i] = &sim.Result{Cycles: int64(cells[i].Index)}
		f.count.Add(1)
	}
	return out, nil
}

// The same key prefix must always land on the same shard — that is the
// whole cache-affinity contract — and real cell prefixes must actually
// spread across shards.
func TestSamePrefixSameShard(t *testing.T) {
	plan := testPlan(t, 64)
	var hash [32]byte
	copy(hash[:], []byte("stable-trace-hash-for-sharding!!"))
	used := map[int]int{}
	for i := 0; i < plan.Points(); i++ {
		prefix := plan.Cell(i).Key("mh1:test", hash).Prefix()
		first := Shard(prefix, 3)
		for rep := 0; rep < 3; rep++ {
			if got := Shard(prefix, 3); got != first {
				t.Fatalf("Shard(%q, 3) flapped: %d then %d", prefix, first, got)
			}
		}
		if first < 0 || first >= 3 {
			t.Fatalf("Shard(%q, 3) = %d out of range", prefix, first)
		}
		used[first]++
	}
	if len(used) != 3 {
		t.Errorf("64 cells used only shards %v; want all 3", used)
	}
	// Identical cells derive identical keys, hence identical shards.
	a := plan.Cell(7).Key("mh1:test", hash)
	b := plan.Cell(7).Key("mh1:test", hash)
	if a != b {
		t.Errorf("same cell derived different keys: %s vs %s", a, b)
	}
	// Non-hex prefixes still route deterministically.
	if Shard("not-hex!", 5) != Shard("not-hex!", 5) {
		t.Error("non-hex prefix routing is unstable")
	}
}

// Results must merge in plan order however the workers complete: chunks
// run concurrently across three workers, and each worker fills its chunk
// backwards.
func TestDeterministicMergeUnderScrambledCompletion(t *testing.T) {
	plan := testPlan(t, 53)
	execs := []Executor{
		&fakeExec{name: "a", dieAfter: -1},
		&fakeExec{name: "b", dieAfter: -1},
		&fakeExec{name: "c", dieAfter: -1},
	}
	out, st, err := Run(context.Background(), plan, execs, Options{Scale: 0.05, ChunkSize: 4, Inflight: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r == nil {
			t.Fatalf("cell %d missing", i)
		}
		if r.Cycles != int64(i) {
			t.Fatalf("out[%d] carries cell %d's result", i, r.Cycles)
		}
	}
	if st.Completed != int64(plan.Points()) || st.Resharded != 0 || st.Rounds != 1 {
		t.Errorf("stats = completed %d resharded %d rounds %d, want %d/0/1",
			st.Completed, st.Resharded, st.Rounds, plan.Points())
	}
	var sum int64
	for _, w := range st.Workers {
		sum += w.Cells
	}
	if sum != int64(plan.Points()) {
		t.Errorf("worker cell counts sum to %d, want %d", sum, plan.Points())
	}
}

// A worker dying mid-shard must not lose cells: its remainder re-shards
// across the survivors and the sweep completes with every result in
// place.
func TestFailoverReshardsDeadWorkersCells(t *testing.T) {
	plan := testPlan(t, 41)
	dying := &fakeExec{name: "dying", dieAfter: 5}
	healthy := &fakeExec{name: "healthy", dieAfter: -1}
	out, st, err := Run(context.Background(), plan, []Executor{dying, healthy},
		Options{Scale: 0.05, ChunkSize: 4, Inflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r == nil || r.Cycles != int64(i) {
			t.Fatalf("cell %d lost or misplaced after failover: %+v", i, r)
		}
	}
	if st.Resharded == 0 {
		t.Error("no cells recorded as re-sharded despite a worker death")
	}
	if st.Rounds < 2 {
		t.Errorf("rounds = %d, want >= 2", st.Rounds)
	}
	var foundDead bool
	for _, w := range st.Workers {
		if w.Name == "dying" {
			foundDead = true
			if !w.Failed || w.LastError == "" {
				t.Errorf("dying worker not reported failed: %+v", w)
			}
		}
	}
	if !foundDead {
		t.Error("dying worker missing from stats")
	}
}

// When every worker dies the sweep must fail loudly, naming the
// unassigned cells, while still returning what completed.
func TestAllWorkersDead(t *testing.T) {
	plan := testPlan(t, 12)
	out, st, err := Run(context.Background(), plan, []Executor{
		&fakeExec{name: "w1", dieAfter: 2},
		&fakeExec{name: "w2", dieAfter: 2},
	}, Options{Scale: 0.05, ChunkSize: 3, Inflight: 1})
	if err == nil {
		t.Fatal("sweep with every worker dead returned nil error")
	}
	if st.Completed == 0 {
		t.Error("no partial results survived")
	}
	var nonNil int64
	for _, r := range out {
		if r != nil {
			nonNil++
		}
	}
	if nonNil != st.Completed {
		t.Errorf("stats claim %d completed, results hold %d", st.Completed, nonNil)
	}
}

// A permanent executor error (not ErrWorkerDown) must fail only its cells
// and keep the worker in rotation.
func TestPermanentCellErrorsJoin(t *testing.T) {
	plan := testPlan(t, 8)
	permErr := errors.New("bad cell")
	exec := &errOnceExec{err: permErr}
	out, st, err := Run(context.Background(), plan, []Executor{exec},
		Options{Scale: 0.05, ChunkSize: 4, Inflight: 1})
	if !errors.Is(err, permErr) {
		t.Fatalf("joined error lost the permanent cause: %v", err)
	}
	var nonNil int
	for _, r := range out {
		if r != nil {
			nonNil++
		}
	}
	if nonNil != 4 {
		t.Errorf("%d results survived, want the 4 cells of the good chunk", nonNil)
	}
	for _, w := range st.Workers {
		if w.Failed {
			t.Errorf("permanent cell error wrongly killed worker %s", w.Name)
		}
	}
}

// errOnceExec fails its first chunk permanently and serves the rest.
type errOnceExec struct {
	first atomic.Bool
	err   error
}

func (e *errOnceExec) Name() string         { return "erronce" }
func (e *errOnceExec) Stats() ExecutorStats { return ExecutorStats{} }

func (e *errOnceExec) Run(ctx context.Context, cells []Cell) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(cells))
	if !e.first.Swap(true) {
		return out, e.err
	}
	for i, c := range cells {
		out[i] = &sim.Result{Cycles: int64(c.Index)}
	}
	return out, nil
}
