package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"decvec/internal/sim"
)

// tableResult builds a fixed synthetic result so the table goldens are
// independent of simulator behaviour.
func tableResult() *sim.Result {
	res := &sim.Result{Arch: "DVA", Cycles: 1000}
	res.Stalls.Add(sim.StallAPBus, 250)
	res.Stalls.Add(sim.StallVPData, 125)
	res.Stalls.Add(sim.StallSPData, 5)
	res.Queues = []sim.QueueStat{
		{Name: "AVDQ", Cap: 256, Pushes: 420, Pops: 420, Peak: 31, MeanLen: 3.5, FullCycles: 0},
		{Name: "VADQ", Cap: 16, Pushes: 96, Pops: 96, Peak: 16, MeanLen: 12.8, FullCycles: 77},
	}
	return res
}

func TestStallTableGolden(t *testing.T) {
	got := StallTable(tableResult())
	// Rows sort by cycle count, descending; columns are 2-space padded and the
	// percentage keeps the %5.1f width so digits align down the column.
	want := strings.Join([]string{
		"Stall cycles by cause",
		"cause    unit  cycles  % of run",
		"-------------------------------",
		"AP.bus   AP    250      25.0   ",
		"VP.data  VP    125      12.5   ",
		"SP.data  SP    5         0.5   ",
		"",
	}, "\n")
	if got != want {
		t.Errorf("StallTable mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestQueueTableGolden(t *testing.T) {
	got := QueueTable(tableResult())
	want := strings.Join([]string{
		"Queue occupancy",
		"queue  cap  pushes  peak  mean   pressure  full cycles",
		"------------------------------------------------------",
		"AVDQ   256  420     31    3.50   0.014     0          ",
		"VADQ   16   96      16    12.80  0.800     77         ",
		"",
	}, "\n")
	if got != want {
		t.Errorf("QueueTable mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// An empty result (no stalls, no queues — the REF shape) must render the
// headers and nothing else, not crash.
func TestTablesEmptyResult(t *testing.T) {
	res := &sim.Result{Arch: "REF"}
	st := StallTable(res)
	if !strings.Contains(st, "Stall cycles by cause") || strings.Contains(st, "AP.") {
		t.Errorf("empty StallTable rendered rows: %q", st)
	}
	qt := QueueTable(res)
	if !strings.Contains(qt, "Queue occupancy") || strings.Contains(qt, "AVDQ") {
		t.Errorf("empty QueueTable rendered rows: %q", qt)
	}
}

// WriteTraceEvents with a nil recorder must still emit a valid, loadable
// Trace Event Format document (metadata only).
func TestWriteTraceEventsNilRecorder(t *testing.T) {
	var buf bytes.Buffer
	res := &sim.Result{Arch: "DVA", Cycles: 10}
	if err := WriteTraceEvents(&buf, res, nil); err != nil {
		t.Fatalf("WriteTraceEvents(nil recorder): %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, e := range doc.TraceEvents {
		if e["ph"] != "M" {
			t.Errorf("nil recorder produced a non-metadata event: %v", e)
		}
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("expected metadata events naming the timeline threads")
	}
}

func TestMetricsJSONGolden(t *testing.T) {
	b, err := MetricsJSON(tableResult())
	if err != nil {
		t.Fatalf("MetricsJSON: %v", err)
	}
	var m Metrics
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("MetricsJSON output does not round-trip: %v", err)
	}
	if m.Cycles != 1000 || len(m.Stalls) != 3 || len(m.Queues) != 2 {
		t.Errorf("MetricsJSON lost data: cycles=%d stalls=%d queues=%d", m.Cycles, len(m.Stalls), len(m.Queues))
	}
	if m.Stalls[0].Reason != "AP.bus" || m.Stalls[0].Cycles != 250 {
		t.Errorf("stall ordering: got %+v, want AP.bus first with 250 cycles", m.Stalls[0])
	}
}
