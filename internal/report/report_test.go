package report

import (
	"context"
	"strings"
	"testing"

	"decvec/internal/experiments"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "A", "LongHeader", "C")
	tb.AddRow("x", "y", "z")
	tb.AddRow("longer", "s")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	// Header and rows share the separator width.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	// The missing third cell of row 2 renders as padding, not a panic.
	if !strings.Contains(lines[4], "longer") {
		t.Errorf("row = %q", lines[4])
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("s", 3.14159, 42)
	out := tb.String()
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Errorf("float formatting: %q", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int formatting: %q", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", "2")
	tb.AddRow(`with"quote`, "3")
	csv := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n"
	if csv != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", csv, want)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2) = %q", got)
	}
}

// TestRenderersProduceOutput drives every renderer over a small suite so
// the formatting paths stay exercised end to end.
func TestRenderersProduceOutput(t *testing.T) {
	s := experiments.NewSuite(0.3)

	t1, err := experiments.Table1(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out := Table1(t1); !strings.Contains(out, "ARC2D") || !strings.Contains(out, "SPICE") {
		t.Error("Table1 output incomplete")
	}

	f1, err := experiments.Figure1(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out := Figure1(f1); !strings.Contains(out, "<FU2,FU1,LD>") || !strings.Contains(out, "LD idle") {
		t.Error("Figure1 output incomplete")
	}

	sw, err := experiments.Sweep(context.Background(), s, []int64{1, 50})
	if err != nil {
		t.Fatal(err)
	}
	if out := Figure3(sw); !strings.Contains(out, "IDEAL") || !strings.Contains(out, "DVA") {
		t.Error("Figure3 output incomplete")
	}
	if out := Figure4(sw); !strings.Contains(out, "L=50") {
		t.Error("Figure4 output incomplete")
	}
	if out := Figure5(sw); !strings.Contains(out, "speedup") {
		t.Error("Figure5 output incomplete")
	}

	f6, err := experiments.Figure6(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out := Figure6(f6); !strings.Contains(out, "Busy slots") {
		t.Error("Figure6 output incomplete")
	}

	f7, err := experiments.Figure7(context.Background(), s, []int64{1, 50})
	if err != nil {
		t.Fatal(err)
	}
	if out := Figure7(f7); !strings.Contains(out, "BYP 4/8") {
		t.Error("Figure7 output incomplete")
	}

	f8, err := experiments.Figure8(context.Background(), s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if out := Figure8(f8); !strings.Contains(out, "Reduction") {
		t.Error("Figure8 output incomplete")
	}

	ab, err := experiments.AblationAVDQ(context.Background(), s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if out := Ablation(ab); !strings.Contains(out, "256") {
		t.Error("Ablation output incomplete")
	}
}
