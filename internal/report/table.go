// Package report renders experiment results as aligned ASCII tables and
// CSV, the textual equivalents of the paper's tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v except float64, which uses two decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	t.AddRow(row...)
}

// String renders the table with columns padded to their widest cell.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a proportional ASCII bar of the given fraction of width.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
