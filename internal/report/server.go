package report

import "encoding/json"

// ServerMetric is the machine-readable schema behind the dvad daemon's
// /statsz endpoint and its shutdown summary: request counters, admission
// gauges, the suite's simulation count, and — when a persistent store is
// attached — the same cache counters the CLI tools report, so a daemon and
// a dvabench run against one store render identically.
type ServerMetric struct {
	UptimeSec     float64 `json:"uptimeSec"`
	Served        int64   `json:"served"`           // requests answered 200
	Simulate      int64   `json:"simulateRequests"` // /v1/simulate requests accepted
	Sweep         int64   `json:"sweepRequests"`    // /v1/sweep requests accepted
	Overloaded    int64   `json:"overloaded"`       // requests shed with 429
	Timeouts      int64   `json:"timeouts"`         // requests expired with 504
	Errors        int64   `json:"errors"`           // requests failed 4xx/5xx (excluding 429/504)
	InFlight      int64   `json:"inflight"`         // simulations holding a slot right now
	Queued        int64   `json:"queued"`           // simulations waiting for a slot right now
	MaxConcurrent int     `json:"maxConcurrent"`    // admission slot count
	MaxQueue      int     `json:"maxQueue"`         // admission wait-queue bound
	Simulations   int64   `json:"simulations"`      // simulator invocations actually run
	// Coalesced counts requests answered without their own simulation —
	// served from a cache tier or riding a concurrent identical request.
	// served ≫ simulations is the daemon doing its job.
	Coalesced int64        `json:"coalesced"`
	Cache     *CacheMetric `json:"cache,omitempty"`
}

// ServerJSON renders the /statsz payload as indented JSON.
func ServerJSON(m ServerMetric) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// ServerTable renders the server counters as an ASCII table, the shutdown
// summary companion to CacheTable.
func ServerTable(m ServerMetric) string {
	t := NewTable("dvad server",
		"served", "sims", "coalesced", "inflight", "queued", "429s", "timeouts", "errors")
	t.AddRowf(m.Served, m.Simulations, m.Coalesced, m.InFlight, m.Queued,
		m.Overloaded, m.Timeouts, m.Errors)
	return t.String()
}
