package report

import (
	"fmt"
	"strings"

	"decvec/internal/experiments"
	"decvec/internal/sim"
)

// Table1 renders the Table 1 reproduction: paper ratios next to measured
// ratios (absolute counts differ by the documented trace scaling).
func Table1(r *experiments.Table1Result) string {
	t := NewTable("Table 1: basic operation counts for the Perfect Club programs",
		"Program", "Sim", "#bbs", "#insns S", "#insns V", "#ops V",
		"%Vect", "%Vect(paper)", "avg VL", "avg VL(paper)", "%spill mem")
	for _, row := range r.Rows {
		simMark := ""
		if row.Simulated {
			simMark = "*"
		}
		m := row.Measured
		t.AddRowf(row.Name, simMark,
			m.BasicBlocks, m.ScalarInsts, m.VectorInsts, m.VectorOps,
			100*m.Vectorization(), row.Paper.Vect,
			m.AvgVL(), row.Paper.AvgVL,
			100*m.SpillFraction())
	}
	return t.String() + "(* = simulated in the paper's evaluation; counts are at trace scale, ratios comparable to the paper)\n"
}

// stateOrder lists the eight states bottom-to-top as in the Figure 1 bars.
var stateOrder = []sim.State{
	0,
	sim.StateLD,
	sim.StateFU1,
	sim.StateFU1 | sim.StateLD,
	sim.StateFU2,
	sim.StateFU2 | sim.StateLD,
	sim.StateFU2 | sim.StateFU1,
	sim.StateFU2 | sim.StateFU1 | sim.StateLD,
}

// Figure1 renders the per-state execution-time breakdown of the reference
// architecture.
func Figure1(r *experiments.Figure1Result) string {
	var b strings.Builder
	b.WriteString("Figure 1: functional unit usage for the reference architecture\n")
	b.WriteString("(cycles per (FU2,FU1,LD) state; bars show the share of total time)\n\n")
	for _, p := range r.Programs {
		headers := []string{"State"}
		for _, row := range p.Rows {
			headers = append(headers, fmt.Sprintf("L=%d", row.Latency))
		}
		t := NewTable(p.Name, headers...)
		for _, st := range stateOrder {
			cells := []string{st.String()}
			for _, row := range p.Rows {
				frac := row.States.Fraction(st)
				cells = append(cells, fmt.Sprintf("%8d %s", row.States.Cycles[st], Bar(frac, 10)))
			}
			t.AddRow(cells...)
		}
		totals := []string{"total"}
		idles := []string{"LD idle %"}
		for _, row := range p.Rows {
			totals = append(totals, fmt.Sprintf("%8d", row.States.Total()))
			idles = append(idles, fmt.Sprintf("%7.1f%%", 100*row.LDIdleFrac))
		}
		t.AddRow(totals...)
		t.AddRow(idles...)
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Figure3 renders execution time versus memory latency for IDEAL, REF and
// DVA.
func Figure3(r *experiments.SweepResult) string {
	var b strings.Builder
	b.WriteString("Figure 3: DVA versus Reference architecture (execution cycles)\n\n")
	for _, p := range r.Programs {
		t := NewTable(p.Name, "Latency", "IDEAL", "REF", "DVA", "REF/IDEAL", "DVA/IDEAL")
		for _, pt := range p.Points {
			t.AddRowf(pt.Latency, p.Ideal, pt.Ref.Cycles, pt.Dva.Cycles,
				float64(pt.Ref.Cycles)/float64(p.Ideal),
				float64(pt.Dva.Cycles)/float64(p.Ideal))
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Figure4 renders the ratio of cycles spent with all units idle (state
// < , , >) between REF and DVA.
func Figure4(r *experiments.SweepResult) string {
	headers := []string{"Program"}
	for _, l := range r.Latencies {
		headers = append(headers, fmt.Sprintf("L=%d", l))
	}
	t := NewTable("Figure 4: ratio of cycles in state < , , > (REF / DVA)", headers...)
	for _, p := range r.Programs {
		cells := []string{p.Name}
		for _, v := range p.StallRatio() {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Figure5 renders the speedup of the DVA over REF per latency.
func Figure5(r *experiments.SweepResult) string {
	headers := []string{"Program"}
	for _, l := range r.Latencies {
		headers = append(headers, fmt.Sprintf("L=%d", l))
	}
	t := NewTable("Figure 5: speedup of the DVA over the Reference architecture", headers...)
	for _, p := range r.Programs {
		cells := []string{p.Name}
		for _, v := range p.Speedup() {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Figure6 renders the AVDQ busy-slot distributions.
func Figure6(r *experiments.Figure6Result) string {
	var b strings.Builder
	b.WriteString("Figure 6: busy slots in the AVDQ (cycles at each occupancy)\n\n")
	for _, p := range r.Programs {
		maxSlot := 0
		for _, row := range p.Rows {
			if m := row.Hist.Max(); m > maxSlot {
				maxSlot = m
			}
		}
		if maxSlot < 9 {
			maxSlot = 9
		}
		headers := []string{"Busy slots"}
		for _, row := range p.Rows {
			headers = append(headers, fmt.Sprintf("L=%d", row.Latency))
		}
		t := NewTable(p.Name, headers...)
		for k := 0; k <= maxSlot; k++ {
			cells := []string{fmt.Sprintf("%d", k)}
			for _, row := range p.Rows {
				var v int64
				if k < len(row.Hist.Buckets) {
					v = row.Hist.Buckets[k]
				}
				frac := float64(v) / float64(row.Hist.Total())
				cells = append(cells, fmt.Sprintf("%8d %s", v, Bar(frac, 10)))
			}
			t.AddRow(cells...)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Figure7 renders the bypass-configuration sweep.
func Figure7(r *experiments.Figure7Result) string {
	var b strings.Builder
	b.WriteString("Figure 7: performance of the bypassing scheme (execution cycles)\n\n")
	for _, p := range r.Programs {
		headers := []string{"Latency", "IDEAL"}
		for _, s := range p.Series {
			headers = append(headers, s.Name)
		}
		t := NewTable(p.Name, headers...)
		for i, l := range r.Latencies {
			cells := []string{fmt.Sprintf("%d", l), fmt.Sprintf("%d", p.Ideal)}
			for _, s := range p.Series {
				cells = append(cells, fmt.Sprintf("%d", s.Points[i].Cycles))
			}
			t.AddRow(cells...)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Figure8 renders the memory-traffic comparison.
func Figure8(r *experiments.Figure8Result) string {
	t := NewTable(fmt.Sprintf("Figure 8: total memory traffic, DVA 256/16 vs BYP 256/16 (elements, L=%d)", r.Latency),
		"Program", "DVA traffic", "BYP traffic", "Bypasses", "Reduction")
	for _, row := range r.Rows {
		t.AddRowf(row.Name, row.DvaElems, row.BypElems, row.Bypasses,
			fmt.Sprintf("%.1f%%", 100*row.ReductionFrac))
	}
	return t.String()
}

// Ablation renders a queue-sizing sensitivity study, normalizing each
// program's series to its best (lowest) cycle count.
func Ablation(r *experiments.AblationResult) string {
	headers := []string{"Program"}
	for _, v := range r.Values {
		headers = append(headers, fmt.Sprintf("%d", v))
	}
	t := NewTable(fmt.Sprintf("Ablation: %s (cycles, relative to best; L=%d)", r.Parameter, r.Latency), headers...)
	for _, p := range r.Programs {
		best := p.Points[0].Cycles
		for _, pt := range p.Points {
			if pt.Cycles < best {
				best = pt.Cycles
			}
		}
		cells := []string{p.Name}
		for _, pt := range p.Points {
			cells = append(cells, fmt.Sprintf("%d (%.2f)", pt.Cycles, float64(pt.Cycles)/float64(best)))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// ExtensionOOO renders the §8 future-work study: decoupling versus
// out-of-order execution with register renaming.
func ExtensionOOO(r *experiments.ExtensionOOOResult) string {
	headers := []string{"Program", "Latency", "REF", "DVA"}
	for _, w := range r.Windows {
		headers = append(headers, fmt.Sprintf("OOO-w%d", w))
	}
	headers = append(headers, "DVA spd", fmt.Sprintf("OOO-w%d spd", r.Windows[len(r.Windows)-1]))
	t := NewTable("Extension (paper §8): decoupling vs out-of-order + renaming (cycles)", headers...)
	for _, row := range r.Rows {
		cells := []string{row.Name, fmt.Sprintf("%d", row.Latency),
			fmt.Sprintf("%d", row.Ref), fmt.Sprintf("%d", row.Dva)}
		for _, c := range row.Ooo {
			cells = append(cells, fmt.Sprintf("%d", c))
		}
		cells = append(cells,
			fmt.Sprintf("%.2f", float64(row.Ref)/float64(row.Dva)),
			fmt.Sprintf("%.2f", float64(row.Ref)/float64(row.Ooo[len(row.Ooo)-1])))
		t.AddRow(cells...)
	}
	return t.String()
}

// ExtensionConflicts renders the multiprocessor-conflict study: the DVA's
// tolerance of variable (conflicted) memory latency.
func ExtensionConflicts(r *experiments.ConflictsResult) string {
	t := NewTable(fmt.Sprintf("Extension (paper §1): memory-conflict jitter at base latency %d (per-access latency in [L, L+J])", r.BaseLatency),
		"Program", "Jitter", "REF", "DVA", "Speedup")
	for _, row := range r.Rows {
		t.AddRowf(row.Name, row.Jitter, row.Ref, row.Dva, row.Speedup)
	}
	return t.String()
}

// ExtensionPorts renders the second-port comparison: how much of a real
// second memory port's benefit the §7 bypass captures.
func ExtensionPorts(r *experiments.PortsResult) string {
	t := NewTable("Extension (paper §7): the bypass as the 'illusion of two memory ports' (cycles)",
		"Program", "Latency", "DVA 1-port", "BYP 1-port", "DVA 2-port", "bypass gain", "2nd-port gain")
	for _, row := range r.Rows {
		t.AddRowf(row.Name, row.Latency, row.Dva1, row.Byp1, row.Dva2,
			fmt.Sprintf("%.2f", row.BypGain), fmt.Sprintf("%.2f", row.PortGain))
	}
	return t.String()
}
