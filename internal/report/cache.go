package report

import (
	"decvec/internal/simcache"
)

// CacheTable renders the persistent result cache's counters as a one-row
// table (the `dvabench` end-of-run cache summary).
func CacheTable(st simcache.Stats) string {
	t := NewTable("Result cache",
		"hits", "misses", "corrupt", "evicted", "writes", "verified", "orphans")
	t.AddRowf(st.Hits, st.Misses, st.Corrupt, st.Evicted, st.Writes, st.Verified, st.Orphans)
	return t.String()
}

// CacheMetric is the machine-readable form of the cache counters, attached
// to Metrics when a run went through the persistent store.
type CacheMetric struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Corrupt  int64 `json:"corrupt"`
	Evicted  int64 `json:"evicted"`
	Writes   int64 `json:"writes"`
	Verified int64 `json:"verified"`
	Orphans  int64 `json:"orphans"`
}

// CacheMetricOf converts a counter snapshot.
func CacheMetricOf(st simcache.Stats) *CacheMetric {
	return &CacheMetric{
		Hits:     st.Hits,
		Misses:   st.Misses,
		Corrupt:  st.Corrupt,
		Evicted:  st.Evicted,
		Writes:   st.Writes,
		Verified: st.Verified,
		Orphans:  st.Orphans,
	}
}
