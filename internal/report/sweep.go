package report

import (
	"encoding/json"
	"fmt"
)

// SweepWorkerMetric is one worker's slice of a distributed sweep: how many
// cells it completed, how its disk tier performed, how often its requests
// had to be retried, and whether it died along the way.
type SweepWorkerMetric struct {
	Name        string  `json:"name"`
	Cells       int64   `json:"cells"`
	CacheHits   int64   `json:"cacheHits"`
	CacheMisses int64   `json:"cacheMisses"`
	HitRatio    float64 `json:"hitRatio"`
	Retries     int64   `json:"retries"`
	Failed      bool    `json:"failed,omitempty"`
	LastError   string  `json:"lastError,omitempty"`
}

// SweepMetric is the machine-readable outcome summary of a coordinated
// sweep — the dvasweep end-of-run report. The facade converts
// sweep.Stats into this shape (report deliberately stays independent of
// the sweep engine so the serving layer — whose tests drive real sweeps —
// can depend on report without a cycle).
type SweepMetric struct {
	Points    int                 `json:"points"`
	Completed int64               `json:"completed"`
	Resharded int64               `json:"resharded"`
	Rounds    int                 `json:"rounds"`
	Workers   []SweepWorkerMetric `json:"workers"`
}

// SweepJSON renders the sweep summary as indented JSON.
func SweepJSON(m SweepMetric) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// SweepTable renders the sweep summary as ASCII tables: one sweep-level
// row, then one row per worker with its cache-hit ratio — the number that
// tells you whether cache-affine sharding is landing cells on the workers
// that already hold them.
func SweepTable(m SweepMetric) string {
	t := NewTable("dvasweep",
		"points", "completed", "resharded", "rounds", "workers")
	t.AddRowf(m.Points, m.Completed, m.Resharded, m.Rounds, len(m.Workers))
	out := t.String()

	wt := NewTable("workers",
		"worker", "cells", "hits", "misses", "hit%", "retries", "state")
	for _, w := range m.Workers {
		state := "ok"
		if w.Failed {
			state = "down"
		}
		wt.AddRowf(w.Name, w.Cells, w.CacheHits, w.CacheMisses,
			fmt.Sprintf("%.1f", 100*w.HitRatio), w.Retries, state)
	}
	return out + "\n" + wt.String()
}
