package report

import (
	"encoding/json"
	"fmt"
	"io"

	"decvec/internal/sim"
	"decvec/internal/simcache"
)

// This file renders the observability layer's data — stall attribution,
// queue occupancy and the cycle-stamped event stream — as machine-readable
// JSON and as a chrome://tracing (Trace Event Format) file.

// Metrics is the machine-readable summary of one simulation run, the schema
// behind `dvasim -metrics-json`.
type Metrics struct {
	Arch   string `json:"arch"`
	Config string `json:"config"`
	Cycles int64  `json:"cycles"`

	IPC           float64 `json:"ipc"`
	ScalarInsts   int64   `json:"scalarInsts"`
	VectorInsts   int64   `json:"vectorInsts"`
	VectorOps     int64   `json:"vectorOps"`
	LoadElems     int64   `json:"loadElems"`
	StoreElems    int64   `json:"storeElems"`
	Bypasses      int64   `json:"bypasses"`
	BypassedElems int64   `json:"bypassedElems"`
	Flushes       int64   `json:"flushes"`

	States []StateMetric `json:"states"`
	// Stalls lists every stall reason with at least one cycle, most cycles
	// first. ProcStalls aggregates them per unit.
	Stalls     []StallMetric     `json:"stalls"`
	ProcStalls []ProcStallMetric `json:"procStalls"`
	// Queues summarizes every architectural queue (absent for REF).
	Queues []QueueMetric `json:"queues,omitempty"`
	// Cache is the persistent result-cache counter snapshot, present only
	// when the run was served through a store (dvasim -cache).
	Cache *CacheMetric `json:"cache,omitempty"`
}

// StateMetric is one (FU2,FU1,LD) state's share of the run.
type StateMetric struct {
	State    string  `json:"state"`
	Cycles   int64   `json:"cycles"`
	Fraction float64 `json:"fraction"`
}

// StallMetric is one stall reason's cycle count.
type StallMetric struct {
	Reason string `json:"reason"` // canonical "Proc.cause" name
	Proc   string `json:"proc"`
	Cycles int64  `json:"cycles"`
}

// ProcStallMetric is one unit's total stall cycles.
type ProcStallMetric struct {
	Proc   string `json:"proc"`
	Cycles int64  `json:"cycles"`
}

// QueueMetric is one queue's occupancy summary.
type QueueMetric struct {
	Name       string  `json:"name"`
	Cap        int     `json:"cap"`
	Pushes     int64   `json:"pushes"`
	Pops       int64   `json:"pops"`
	Peak       int     `json:"peak"`
	MeanLen    float64 `json:"meanLen"`
	Pressure   float64 `json:"pressure"`
	FullCycles int64   `json:"fullCycles"`
}

// CollectMetrics builds the Metrics view of a result.
func CollectMetrics(res *sim.Result) *Metrics {
	m := &Metrics{
		Arch:          res.Arch,
		Config:        res.Config.String(),
		Cycles:        res.Cycles,
		IPC:           res.IPC(),
		ScalarInsts:   res.Counts.ScalarInsts,
		VectorInsts:   res.Counts.VectorInsts,
		VectorOps:     res.Counts.VectorOps,
		LoadElems:     res.Traffic.LoadElems,
		StoreElems:    res.Traffic.StoreElems,
		Bypasses:      res.Bypasses,
		BypassedElems: res.BypassedElems,
		Flushes:       res.Flushes,
	}
	for s := sim.State(0); s < sim.NumStates; s++ {
		m.States = append(m.States, StateMetric{
			State:    s.String(),
			Cycles:   res.States.Cycles[s],
			Fraction: res.States.Fraction(s),
		})
	}
	for _, sc := range res.Stalls.Nonzero() {
		m.Stalls = append(m.Stalls, StallMetric{
			Reason: sc.Reason.String(),
			Proc:   sc.Reason.Proc().String(),
			Cycles: sc.Cycles,
		})
	}
	for p := sim.Proc(0); p < sim.NumProcs; p++ {
		if t := res.Stalls.ProcTotal(p); t > 0 {
			m.ProcStalls = append(m.ProcStalls, ProcStallMetric{Proc: p.String(), Cycles: t})
		}
	}
	for _, q := range res.Queues {
		m.Queues = append(m.Queues, QueueMetric{
			Name:       q.Name,
			Cap:        q.Cap,
			Pushes:     q.Pushes,
			Pops:       q.Pops,
			Peak:       q.Peak,
			MeanLen:    q.MeanLen,
			Pressure:   q.Pressure(),
			FullCycles: q.FullCycles,
		})
	}
	return m
}

// MetricsJSON renders the result as indented JSON.
func MetricsJSON(res *sim.Result) ([]byte, error) {
	return json.MarshalIndent(CollectMetrics(res), "", "  ")
}

// MetricsJSONWithCache is MetricsJSON with the persistent cache counters
// attached.
func MetricsJSONWithCache(res *sim.Result, st simcache.Stats) ([]byte, error) {
	m := CollectMetrics(res)
	m.Cache = CacheMetricOf(st)
	return json.MarshalIndent(m, "", "  ")
}

// StallTable renders the nonzero stall reasons of a run as a table, with
// each reason's share of total execution cycles.
func StallTable(res *sim.Result) string {
	t := NewTable("Stall cycles by cause",
		"cause", "unit", "cycles", "% of run")
	for _, sc := range res.Stalls.Nonzero() {
		pct := 0.0
		if res.Cycles > 0 {
			pct = 100 * float64(sc.Cycles) / float64(res.Cycles)
		}
		t.AddRowf(sc.Reason.String(), sc.Reason.Proc().String(), sc.Cycles, fmt.Sprintf("%5.1f", pct))
	}
	return t.String()
}

// QueueTable renders the per-queue occupancy stats of a run as a table.
func QueueTable(res *sim.Result) string {
	t := NewTable("Queue occupancy",
		"queue", "cap", "pushes", "peak", "mean", "pressure", "full cycles")
	for _, q := range res.Queues {
		t.AddRowf(q.Name, q.Cap, q.Pushes, q.Peak,
			fmt.Sprintf("%.2f", q.MeanLen), fmt.Sprintf("%.3f", q.Pressure()), q.FullCycles)
	}
	return t.String()
}

// tefEvent is one entry of the Trace Event Format's traceEvents array
// (the JSON schema understood by chrome://tracing and Perfetto).
type tefEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// The bus gets its own timeline row below the per-processor ones.
const busTid = int(sim.NumProcs)

// WriteTraceEvents writes the recorded event stream of a run as a Trace
// Event Format JSON file loadable in chrome://tracing or Perfetto. One
// timeline thread per unit plus one for the address bus; queue occupancies
// become counter tracks; bypasses and flushes become instant events.
// Timestamps are simulated cycles (rendered as microseconds by the viewer).
func WriteTraceEvents(w io.Writer, res *sim.Result, rec *sim.Recorder) error {
	bw := &errWriter{w: w}
	bw.writeString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func(e tefEvent) {
		if !first {
			bw.writeString(",\n")
		}
		first = false
		b, err := json.Marshal(e)
		if err != nil {
			bw.err = err
			return
		}
		bw.write(b)
	}

	// Metadata: name the process after the run and each thread after its unit.
	name := fmt.Sprintf("%s (%s)", res.Arch, res.Config.String())
	emit(tefEvent{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": name}})
	for p := sim.Proc(0); p < sim.NumProcs; p++ {
		emit(tefEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: int(p),
			Args: map[string]any{"name": p.String()}})
		emit(tefEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: int(p),
			Args: map[string]any{"sort_index": int(p)}})
	}
	emit(tefEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: busTid,
		Args: map[string]any{"name": "BUS"}})
	emit(tefEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: busTid,
		Args: map[string]any{"sort_index": busTid}})

	for _, e := range rec.Events() {
		switch e.Kind {
		case sim.EvIssue:
			emit(tefEvent{Name: e.Label, Ph: "X", Ts: e.Cycle, Dur: 1,
				Pid: 1, Tid: int(e.Proc), Args: map[string]any{"seq": e.Seq}})
		case sim.EvStall:
			emit(tefEvent{Name: "stall " + e.Reason.String(), Ph: "X",
				Ts: e.Cycle, Dur: e.N, Pid: 1, Tid: int(e.Proc)})
		case sim.EvQueuePush, sim.EvQueuePop:
			emit(tefEvent{Name: e.Queue, Ph: "C", Ts: e.Cycle, Pid: 1,
				Args: map[string]any{"len": e.N}})
		case sim.EvBusGrant:
			emit(tefEvent{Name: "bus " + e.Proc.String(), Ph: "X",
				Ts: e.Cycle, Dur: e.N, Pid: 1, Tid: busTid,
				Args: map[string]any{"seq": e.Seq}})
		case sim.EvBypass:
			emit(tefEvent{Name: "bypass", Ph: "i", Ts: e.Cycle, Pid: 1,
				Tid: int(e.Proc), S: "t",
				Args: map[string]any{"seq": e.Seq, "elems": e.N}})
		case sim.EvFlush:
			emit(tefEvent{Name: "flush", Ph: "i", Ts: e.Cycle, Pid: 1,
				Tid: int(e.Proc), S: "t", Args: map[string]any{"seq": e.Seq}})
		}
		if bw.err != nil {
			return bw.err
		}
	}
	bw.writeString("]}\n")
	return bw.err
}

// errWriter is the usual sticky-error writer wrapper.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *errWriter) writeString(s string) { e.write([]byte(s)) }
