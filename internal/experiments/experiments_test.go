package experiments

import (
	"context"
	"errors"
	"testing"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// The shape tests run at a reduced trace scale to keep the suite fast; the
// paper's qualitative findings must hold at any scale.
const testScale = 0.5

func suite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(testScale)
}

func TestSuiteCachesRuns(t *testing.T) {
	s := suite(t)
	p := workload.Simulated()[0]
	cfg := sim.DefaultConfig(10)
	a, err := s.Run(p, REF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(p, REF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not cached")
	}
	if _, err := s.Run(p, Arch("BOGUS"), cfg); err == nil {
		t.Error("expected unknown-architecture error")
	}
}

func TestTable1HasThirteenRows(t *testing.T) {
	r, err := Table1(context.Background(), suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 13 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	sim6 := 0
	for _, row := range r.Rows {
		if row.Simulated {
			sim6++
		}
		if row.Measured.ScalarInsts == 0 {
			t.Errorf("%s: empty measurement", row.Name)
		}
	}
	if sim6 != 6 {
		t.Errorf("simulated rows = %d", sim6)
	}
}

func TestFigure1Shapes(t *testing.T) {
	r, err := Figure1(context.Background(), suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Programs) != 6 {
		t.Fatalf("programs = %d", len(r.Programs))
	}
	for _, p := range r.Programs {
		first, last := p.Rows[0], p.Rows[len(p.Rows)-1]
		// Execution time grows with latency on the reference machine.
		if last.States.Total() <= first.States.Total() {
			t.Errorf("%s: REF time did not grow with latency (%d -> %d)",
				p.Name, first.States.Total(), last.States.Total())
		}
		// The all-idle state grows with latency (§3: the rise in < , , >
		// is the latency's doing).
		if last.States.Idle() <= first.States.Idle() {
			t.Errorf("%s: idle cycles did not grow (%d -> %d)",
				p.Name, first.States.Idle(), last.States.Idle())
		}
		// The memory port is idle for a substantial fraction somewhere —
		// the paper's motivation for decoupling.
		if last.LDIdleFrac < 0.05 {
			t.Errorf("%s: LD idle fraction %.3f suspiciously low", p.Name, last.LDIdleFrac)
		}
	}
}

func TestSweepShapes(t *testing.T) {
	s := suite(t)
	r, err := Sweep(context.Background(), s, []int64{1, 30, 100})
	if err != nil {
		t.Fatal(err)
	}
	var maxSpeedup float64
	for _, p := range r.Programs {
		// The DVA is never slower than 0.95x REF anywhere, and both stay
		// at or above the lower bound (bypass is off here).
		for _, pt := range p.Points {
			if pt.Dva.Cycles > pt.Ref.Cycles*21/20 {
				t.Errorf("%s L=%d: DVA (%d) much slower than REF (%d)",
					p.Name, pt.Latency, pt.Dva.Cycles, pt.Ref.Cycles)
			}
			if pt.Ref.Cycles < p.Ideal || pt.Dva.Cycles < p.Ideal {
				t.Errorf("%s L=%d: a run beat the lower bound (%d): ref=%d dva=%d",
					p.Name, pt.Latency, p.Ideal, pt.Ref.Cycles, pt.Dva.Cycles)
			}
		}
		sp := p.Speedup()
		// Speedup grows (or at least does not shrink much) with latency:
		// decoupling tolerates latency better.
		if sp[len(sp)-1] < sp[0]-0.05 {
			t.Errorf("%s: speedup shrinks with latency: %v", p.Name, sp)
		}
		if sp[len(sp)-1] > maxSpeedup {
			maxSpeedup = sp[len(sp)-1]
		}
		// REF's sensitivity: its time at L=100 exceeds its time at L=1.
		if p.Points[2].Ref.Cycles <= p.Points[0].Ref.Cycles {
			t.Errorf("%s: REF insensitive to latency", p.Name)
		}
		// DVA's slope is flatter than REF's.
		refRise := float64(p.Points[2].Ref.Cycles) / float64(p.Points[0].Ref.Cycles)
		dvaRise := float64(p.Points[2].Dva.Cycles) / float64(p.Points[0].Dva.Cycles)
		if dvaRise >= refRise {
			t.Errorf("%s: DVA slope (%.2f) not flatter than REF (%.2f)", p.Name, dvaRise, refRise)
		}
		// Stall-cycle ratio (Figure 4) is >= 1: decoupling reduces < , , >.
		for i, ratio := range p.StallRatio() {
			if ratio < 1 {
				t.Errorf("%s: stall ratio %.2f < 1 at L=%d", p.Name, ratio, r.Latencies[i])
			}
		}
	}
	// Somebody gets a substantial speedup at L=100 (paper: up to 2.05).
	if maxSpeedup < 1.4 {
		t.Errorf("max speedup %.2f at L=100, expected > 1.4", maxSpeedup)
	}
}

func TestSweepDYFESMFlat(t *testing.T) {
	// DYFESM is the paper's no-speedup case: its three dominant loops are
	// chime-bound or lockstepped.
	r, err := Sweep(context.Background(), suite(t), []int64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Programs {
		if p.Name != "DYFESM" {
			continue
		}
		for i, sp := range p.Speedup() {
			if sp > 1.25 {
				t.Errorf("DYFESM speedup %.2f at %d: should stay near 1", sp, r.Latencies[i])
			}
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	r, err := Figure6(context.Background(), suite(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Programs {
		for _, row := range p.Rows {
			// §6: no program ever holds more than 8 busy slots — the
			// 16-slot VPIQ bounds the loads in flight.
			if m := row.Hist.Max(); m > 9 {
				t.Errorf("%s L=%d: AVDQ occupancy %d exceeds the VPIQ bound", p.Name, row.Latency, m)
			}
		}
		// Occupancy grows with latency (more outstanding requests) unless
		// the program already saturates the usable depth at L=1, as
		// SPEC77's load bursts do.
		first := p.Rows[0].Hist.Mean()
		last := p.Rows[len(p.Rows)-1].Hist.Mean()
		if first < 3 && last < first-0.2 {
			t.Errorf("%s: occupancy fell with latency: %.2f -> %.2f", p.Name, first, last)
		}
	}
	// SPEC77 uses the queue hardest (its load bursts).
	var spec77, others float64
	var nOthers int
	for _, p := range r.Programs {
		m := p.Rows[len(p.Rows)-1].Hist.Mean()
		if p.Name == "SPEC77" {
			spec77 = m
		} else {
			others += m
			nOthers++
		}
	}
	if spec77 <= others/float64(nOthers) {
		t.Errorf("SPEC77 mean occupancy %.2f not above the others' average %.2f",
			spec77, others/float64(nOthers))
	}
}

func TestFigure7Shapes(t *testing.T) {
	s := suite(t)
	r, err := Figure7(context.Background(), s, []int64{1, 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Programs {
		series := map[string][]Figure7Point{}
		for _, ser := range p.Series {
			series[ser.Name] = ser.Points
		}
		dva := series["DVA 256/16"]
		byp := series["BYP 256/16"]
		// The big-queue bypass never loses to the DVA (same queues plus a
		// shortcut).
		for i := range dva {
			if byp[i].Cycles > dva[i].Cycles*101/100 {
				t.Errorf("%s L=%d: BYP 256/16 (%d) slower than DVA (%d)",
					p.Name, dva[i].Latency, byp[i].Cycles, dva[i].Cycles)
			}
		}
		// §7: SPEC77 suffers with a 4-slot load queue relative to its own
		// 256-slot configuration.
		if p.Name == "SPEC77" {
			small := series["BYP 4/16"]
			last := len(small) - 1
			if small[last].Cycles <= byp[last].Cycles {
				t.Errorf("SPEC77: 4-slot load queue (%d) should be slower than 256 (%d)",
					small[last].Cycles, byp[last].Cycles)
			}
		}
	}
	// DYFESM leads the bypass gains at L=1 (paper: 22.0%).
	var dyfesmGain float64
	for _, p := range r.Programs {
		series := map[string][]Figure7Point{}
		for _, ser := range p.Series {
			series[ser.Name] = ser.Points
		}
		gain := float64(series["DVA 256/16"][0].Cycles) / float64(series["BYP 256/16"][0].Cycles)
		if p.Name == "DYFESM" {
			dyfesmGain = gain
		}
	}
	if dyfesmGain < 1.10 {
		t.Errorf("DYFESM bypass gain at L=1 is %.2f, expected the paper's large benefit", dyfesmGain)
	}
}

func TestFigure8Shapes(t *testing.T) {
	r, err := Figure8(context.Background(), suite(t), 30)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure8Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.BypElems > row.DvaElems {
			t.Errorf("%s: bypass increased traffic", row.Name)
		}
		if row.ReductionFrac < 0 || row.ReductionFrac > 0.6 {
			t.Errorf("%s: reduction %.2f out of plausible range", row.Name, row.ReductionFrac)
		}
	}
	// The paper's ordering: DYFESM and TRFD show the largest reductions;
	// SPEC77 essentially none.
	if byName["SPEC77"].ReductionFrac > 0.05 {
		t.Errorf("SPEC77 reduction %.2f should be tiny", byName["SPEC77"].ReductionFrac)
	}
	if byName["DYFESM"].ReductionFrac < 0.15 || byName["TRFD"].ReductionFrac < 0.15 {
		t.Errorf("DYFESM/TRFD reductions too small: %.2f / %.2f",
			byName["DYFESM"].ReductionFrac, byName["TRFD"].ReductionFrac)
	}
}

func TestAblationIQ(t *testing.T) {
	r, err := AblationIQ(context.Background(), suite(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Programs {
		// §5 found 16 slots within 2% of 512 on the real traces; on our
		// synthetic traces the scalar spill round-trips couple the AP and
		// SP harder, so we assert the weaker band documented in
		// EXPERIMENTS.md: 16 within 15% of 512, and the curve monotone.
		var at16, at512 int64
		var prev int64 = 1 << 62
		for _, pt := range p.Points {
			switch pt.Value {
			case 16:
				at16 = pt.Cycles
			case 512:
				at512 = pt.Cycles
			}
			if float64(pt.Cycles) > float64(prev)*1.01 {
				t.Errorf("%s: cycles not monotone in IQ size at %d (%d after %d)",
					p.Name, pt.Value, pt.Cycles, prev)
			}
			prev = pt.Cycles
		}
		limit := 1.15
		if p.Name == "SPEC77" {
			// SPEC77's six-load bursts nearly fill a 16-slot VPIQ with a
			// single iteration (6 QMOVs + 7 computations), so it leans on
			// instruction-queue depth the way it leans on AVDQ depth.
			limit = 1.30
		}
		if float64(at16) > float64(at512)*limit {
			t.Errorf("%s: IQ=16 (%d) more than %.0f%% over IQ=512 (%d)",
				p.Name, at16, 100*(limit-1), at512)
		}
	}
}

func TestAblationVSQ(t *testing.T) {
	r, err := AblationVSQ(context.Background(), suite(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Programs {
		var at8, at16 int64
		for _, pt := range p.Points {
			switch pt.Value {
			case 8:
				at8 = pt.Cycles
			case 16:
				at16 = pt.Cycles
			}
		}
		// §7: eight slots capture ~95% of sixteen's performance.
		if float64(at8) > float64(at16)*1.08 {
			t.Errorf("%s: VSQ=8 (%d) more than 8%% over VSQ=16 (%d)", p.Name, at8, at16)
		}
	}
}

func TestAblationAVDQ(t *testing.T) {
	r, err := AblationAVDQ(context.Background(), suite(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Programs {
		var at4, at256 int64
		for _, pt := range p.Points {
			switch pt.Value {
			case 4:
				at4 = pt.Cycles
			case 256:
				at256 = pt.Cycles
			}
		}
		limit := 1.10
		if p.Name == "SPEC77" {
			// SPEC77 genuinely needs the queue depth (§7).
			limit = 1.60
			if float64(at4) <= float64(at256)*1.02 {
				t.Errorf("SPEC77 should visibly suffer with a 4-slot AVDQ (%d vs %d)", at4, at256)
			}
		}
		if float64(at4) > float64(at256)*limit {
			t.Errorf("%s: AVDQ=4 (%d) exceeds %.0f%% over AVDQ=256 (%d)",
				p.Name, at4, 100*(limit-1), at256)
		}
	}
}

func TestParallelPropagatesError(t *testing.T) {
	errBoom := parallel([]func() error{
		func() error { return nil },
		func() error { return errTest },
	})
	if !errors.Is(errBoom, errTest) {
		t.Errorf("got %v", errBoom)
	}
	if err := parallel(nil); err != nil {
		t.Errorf("empty jobs: %v", err)
	}
}

// parallel used to drain only the first error; every failing job must now
// surface in the joined aggregate.
func TestParallelCollectsAllErrors(t *testing.T) {
	errOther := &testError{msg: "other"}
	err := parallel([]func() error{
		func() error { return errTest },
		func() error { return nil },
		func() error { return errOther },
	})
	if !errors.Is(err, errTest) || !errors.Is(err, errOther) {
		t.Errorf("joined error %v is missing one of the two job errors", err)
	}
}

var errTest = &testError{msg: "boom"}

type testError struct{ msg string }

func (e *testError) Error() string { return e.msg }

func TestExtensionOOOShapes(t *testing.T) {
	s := suite(t)
	r, err := ExtensionOOO(context.Background(), s, []int64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 { // 6 programs x 2 latencies
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// A large-window machine with renaming should match or beat the
		// in-order reference everywhere.
		big := row.Ooo[len(row.Ooo)-1]
		if float64(big) > float64(row.Ref)*1.02 {
			t.Errorf("%s L=%d: OOO-w64 (%d) worse than REF (%d)", row.Name, row.Latency, big, row.Ref)
		}
		// Windows are monotone: more window never hurts.
		for i := 1; i < len(row.Ooo); i++ {
			if row.Ooo[i] > row.Ooo[i-1]*101/100 {
				t.Errorf("%s L=%d: OOO window scaling not monotone: %v", row.Name, row.Latency, row.Ooo)
			}
		}
	}
	// The headline of the follow-on literature: at high latency a big
	// window with renaming beats plain decoupling, while a small window
	// does not.
	var bigWins, smallLoses int
	for _, row := range r.Rows {
		if row.Latency != 100 {
			continue
		}
		if row.Ooo[len(row.Ooo)-1] <= row.Dva {
			bigWins++
		}
		if row.Ooo[0] >= row.Dva {
			smallLoses++
		}
	}
	if bigWins < 4 {
		t.Errorf("OOO-w64 beats DVA on only %d/6 programs at L=100", bigWins)
	}
	if smallLoses < 4 {
		t.Errorf("OOO-w4 loses to DVA on only %d/6 programs at L=100", smallLoses)
	}
}

func TestExtensionConflictsShapes(t *testing.T) {
	r, err := ExtensionConflicts(context.Background(), suite(t), 20, []int64{0, 60, 120})
	if err != nil {
		t.Fatal(err)
	}
	// Collect per-program speedup series.
	series := map[string][]float64{}
	for _, row := range r.Rows {
		series[row.Name] = append(series[row.Name], row.Speedup)
	}
	for name, sp := range series {
		// Decoupling tolerates conflict-induced latency variation: the
		// speedup must not shrink as jitter grows (except lockstepped
		// DYFESM, which is allowed to stay flat).
		if sp[len(sp)-1] < sp[0]-0.05 {
			t.Errorf("%s: speedup fell with jitter: %v", name, sp)
		}
		if name != "DYFESM" && name != "BDNA" && sp[len(sp)-1] < sp[0]+0.05 {
			t.Errorf("%s: speedup did not grow with jitter: %v", name, sp)
		}
	}
}

func TestAblationQMov(t *testing.T) {
	r, err := AblationQMov(context.Background(), suite(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	var anyHurt bool
	for _, p := range r.Programs {
		var at1, at2, at4 int64
		for _, pt := range p.Points {
			switch pt.Value {
			case 1:
				at1 = pt.Cycles
			case 2:
				at2 = pt.Cycles
			case 4:
				at4 = pt.Cycles
			}
		}
		// §4.3: one unit pays a high overhead on common sequences...
		if float64(at1) > float64(at2)*1.02 {
			anyHurt = true
		}
		if at1 < at2 {
			t.Errorf("%s: one QMOV unit cannot beat two (%d vs %d)", p.Name, at1, at2)
		}
		// ...while a third/fourth unit buys almost nothing — except for
		// SPEC77, whose six-load bursts can drain in parallel.
		limit := 1.03
		if p.Name == "SPEC77" {
			limit = 1.08
		}
		if float64(at2) > float64(at4)*limit {
			t.Errorf("%s: two units (%d) should be within %.0f%% of four (%d)",
				p.Name, at2, 100*(limit-1), at4)
		}
	}
	if !anyHurt {
		t.Error("no program paid a penalty with a single QMOV unit; the paper's rationale should be visible")
	}
}

func TestExtensionPortsShapes(t *testing.T) {
	r, err := ExtensionPorts(context.Background(), suite(t), []int64{1, 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// A second port never hurts.
		if row.Dva2 > row.Dva1*101/100 {
			t.Errorf("%s L=%d: second port slowed the DVA (%d vs %d)",
				row.Name, row.Latency, row.Dva2, row.Dva1)
		}
	}
	// On the spill-dominated recurrence programs the bypass captures a
	// benefit comparable to a real second port; on the pure-bandwidth
	// programs (ARC2D/FLO52) the real port wins clearly.
	byKey := map[string]PortsRow{}
	for _, row := range r.Rows {
		if row.Latency == 50 {
			byKey[row.Name] = row
		}
	}
	if d := byKey["TRFD"]; d.BypGain < d.PortGain-0.02 {
		t.Errorf("TRFD: bypass gain %.2f should rival the second port's %.2f", d.BypGain, d.PortGain)
	}
	if f := byKey["FLO52"]; f.PortGain < f.BypGain+0.10 {
		t.Errorf("FLO52: a real second port (%.2f) should clearly beat the bypass (%.2f)", f.PortGain, f.BypGain)
	}
}
