package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"decvec/internal/dva"
	"decvec/internal/ooo"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/trace"
	"decvec/internal/workload"
)

// Pooled per-core run arenas, shared by every suite in the process. A
// Runner keeps one machine's worth of queues, scoreboards and scratch alive
// across runs and resets it in place (the Reset contract in
// internal/sim/arena.go), so a sweep's ten-thousandth simulation allocates
// exactly as much as its second: nothing. The pools are process-global
// because runners carry no cross-run state — every run re-seeds the machine
// from its config alone.
var (
	refRunners sim.RunPool[*ref.Runner]
	dvaRunners sim.RunPool[*dva.Runner]
	oooRunners sim.RunPool[*ooo.Runner]
)

var errUnknownArch = errors.New("experiments: unknown architecture")

func getRefRunner() *ref.Runner {
	if r, ok := refRunners.Get(); ok {
		return r
	}
	return ref.NewRunner()
}

func getDVARunner() *dva.Runner {
	if r, ok := dvaRunners.Get(); ok {
		return r
	}
	return dva.NewRunner()
}

func getOOORunner() *ooo.Runner {
	if r, ok := oooRunners.Get(); ok {
		return r
	}
	return ooo.NewRunner()
}

// simulateArch performs one uncached simulator invocation on a pooled
// machine. This is the batch hot loop: everything per run up to the core's
// own (hot-path-gated) stepping must stay allocation-free, so the function
// sits under the hotalloc gate. A runner is returned to its pool even when
// the run fails — reset restores it either way.
// declint:hotpath
func simulateArch(tr trace.Source, arch Arch, cfg sim.Config) (*sim.Result, error) {
	switch arch {
	case REF:
		rn := getRefRunner()
		r, err := rn.Run(tr, cfg)
		refRunners.Put(rn)
		return r, err
	case DVA:
		rn := getDVARunner()
		r, err := rn.Run(tr, cfg)
		dvaRunners.Put(rn)
		return r, err
	default:
		return nil, errUnknownArch
	}
}

// simulateOOO is simulateArch for the out-of-order extension.
// declint:hotpath
func simulateOOO(tr trace.Source, cfg ooo.Config) (*sim.Result, error) {
	rn := getOOORunner()
	r, err := rn.Run(tr, cfg)
	oooRunners.Put(rn)
	return r, err
}

// BatchJob is one simulation of a batch: a program run on an architecture
// under a configuration.
type BatchJob struct {
	Program *workload.Program
	Arch    Arch
	Cfg     sim.Config
}

// RunBatch steps many independent traces through the pooled machines and
// returns the results in job order. The batch is staged for throughput:
//
//   - cold: every distinct trace is materialized once, across the CPUs;
//   - hot: duplicate (program, arch, config) cells are collapsed, grouped
//     by trace so consecutive runs on a worker replay an instruction slab
//     that is already cache-hot, ordered longest-expected-first, and
//     drained by a worker pool in which every simulation reuses a pooled
//     machine (through the suite's singleflight and disk tiers, so a batch
//     shares results with — and publishes results to — every other caller).
//
// Errors do not mask each other: all cells run, the joined aggregate is
// returned, and the cells that did succeed come back alongside it — a
// partial batch returns every completed result with nil holes at the failed
// positions. Cancellation skips cells not yet started.
func (s *Suite) RunBatch(ctx context.Context, jobs []BatchJob) ([]*sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}

	// Cold phase: materialize every distinct trace in parallel, so no hot
	// worker ever stalls generating instructions. Programs are deduped by
	// name — which is also what the suite and the disk cache key on — so
	// two distinct definitions sharing a name would silently answer one
	// cell with the other's trace. Refuse the whole batch instead.
	progs := make(map[string]*workload.Program, 8)
	mats := make([]func() error, 0, 8)
	for _, j := range jobs {
		if prev, ok := progs[j.Program.Name]; ok {
			if prev != j.Program {
				return nil, fmt.Errorf("experiments: batch contains two distinct programs named %q; results would be keyed interchangeably", j.Program.Name)
			}
			continue
		}
		progs[j.Program.Name] = j.Program
		p := j.Program
		mats = append(mats, func() error {
			p.CachedTrace(s.Scale)
			return nil
		})
	}
	if err := parallelCtx(ctx, mats); err != nil {
		return nil, err
	}

	// Collapse duplicate cells; remember every distinct one once.
	type cell struct {
		p    *workload.Program
		arch Arch
		cfg  sim.Config
		cost int64
	}
	key := func(j BatchJob) suiteKey {
		cfg := j.Cfg
		if s.SlowTick {
			cfg.SlowTick = true
		}
		return suiteKey{program: j.Program.Name, arch: j.Arch, cfg: cfg}
	}
	cells := make(map[suiteKey]cell, len(jobs))
	order := make([]suiteKey, 0, len(jobs))
	progCost := make(map[string]int64, len(progs))
	for _, j := range jobs {
		k := key(j)
		if _, ok := cells[k]; ok {
			continue
		}
		c := cell{
			p:    j.Program,
			arch: j.Arch,
			cfg:  j.Cfg,
			cost: int64(j.Program.CachedTrace(s.Scale).Len()) * j.Cfg.MemLatency,
		}
		cells[k] = c
		order = append(order, k)
		progCost[j.Program.Name] += c.cost
	}

	// Batched interleave: all of one trace's cells run back to back (its
	// instruction slab stays hot in cache), heaviest trace first, and within
	// a trace heaviest cell first, so the long simulations start immediately
	// and short ones fill the remaining worker capacity.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.program != b.program {
			ca, cb := progCost[a.program], progCost[b.program]
			if ca != cb {
				return ca > cb
			}
			return a.program < b.program
		}
		return cells[a].cost > cells[b].cost
	})

	// Hot phase: drain the cells across the CPUs, each worker recording its
	// own cell's outcome in place (distinct slots, so no lock is needed).
	// RunCtx supplies the singleflight and cache tiers; the simulation
	// itself lands on a pooled machine via simulateArch. parallelCtx runs
	// every cell and joins every error — one failed cell must neither hide
	// another's failure nor discard the cells that succeeded.
	got := make([]*sim.Result, len(order))
	fns := make([]func() error, len(order))
	for i, k := range order {
		c := cells[k]
		fns[i] = func() error {
			r, err := s.RunCtx(ctx, c.p, c.arch, c.cfg)
			got[i] = r
			return err
		}
	}
	hotErr := parallelCtx(ctx, fns)

	// Collect in job order from the recorded outcomes — never by re-running
	// a cell, which for a failed cell would mean a second simulation whose
	// error masks the first. Failed cells leave nil holes; the joined
	// hot-phase aggregate carries every cause.
	byKey := make(map[suiteKey]*sim.Result, len(order))
	for i, k := range order {
		byKey[k] = got[i]
	}
	out := make([]*sim.Result, len(jobs))
	for i, j := range jobs {
		out[i] = byKey[key(j)]
	}
	return out, hotErr
}
