package experiments

import (
	"context"

	"decvec/internal/trace"
	"decvec/internal/workload"
)

// Table1Row pairs the paper's Table 1 row for a program with the statistics
// measured on the synthetic trace. Paper counts are in millions of events
// at full scale; measured counts are at the suite's (scaled-down) trace
// size, so the comparable columns are the ratios: percentage vectorization
// and average vector length.
type Table1Row struct {
	Name      string
	Simulated bool
	Paper     workload.PaperRow
	Measured  *trace.Stats
}

// Table1Result is the reproduction of the paper's Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 computes trace statistics for all thirteen Perfect Club models.
func Table1(ctx context.Context, s *Suite) (*Table1Result, error) {
	res := &Table1Result{}
	rows := make([]Table1Row, len(workload.All))
	var jobs []func() error
	for i, p := range workload.All {
		i, p := i, p
		jobs = append(jobs, func() error {
			rows[i] = Table1Row{
				Name:      p.Name,
				Simulated: p.Simulated,
				Paper:     p.Paper,
				Measured:  s.Stats(p),
			}
			return nil
		})
	}
	if err := parallelCtx(ctx, jobs); err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}
