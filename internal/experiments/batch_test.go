package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// A batch with failing cells must return every completed result alongside
// the joined error — and the joined error must name every failure, not
// just whichever the collect loop met first. The old collect path re-ran
// cells and returned the first error bare, masking the rest and dropping
// the successes.
func TestRunBatchPartialFailure(t *testing.T) {
	s := NewSuite(0.05)
	p := workload.Simulated()[0]
	jobs := []BatchJob{
		{Program: p, Arch: REF, Cfg: sim.DefaultConfig(1)},
		{Program: p, Arch: Arch("XXX"), Cfg: sim.DefaultConfig(1)},
		{Program: p, Arch: DVA, Cfg: sim.DefaultConfig(1)},
		{Program: p, Arch: Arch("YYY"), Cfg: sim.DefaultConfig(10)},
	}
	out, err := s.RunBatch(context.Background(), jobs)
	if err == nil {
		t.Fatal("RunBatch with unknown architectures returned nil error")
	}
	if !errors.Is(err, errUnknownArch) {
		t.Errorf("joined error does not wrap errUnknownArch: %v", err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("partial results: got %d slots, want %d", len(out), len(jobs))
	}
	if out[0] == nil || out[2] == nil {
		t.Errorf("successful cells dropped from a partial batch: out[0]=%v out[2]=%v", out[0], out[2])
	}
	if out[1] != nil || out[3] != nil {
		t.Errorf("failed cells must be nil holes: out[1]=%v out[3]=%v", out[1], out[3])
	}
}

// Two distinct program definitions sharing a name would be keyed
// interchangeably by the suite and the disk cache; RunBatch must refuse
// the batch loudly instead of answering one cell with the other's trace.
func TestRunBatchProgramNameCollision(t *testing.T) {
	orig := workload.Simulated()[0]
	fake := &workload.Program{Name: orig.Name, Description: "impostor"}
	s := NewSuite(0.05)
	jobs := []BatchJob{
		{Program: orig, Arch: REF, Cfg: sim.DefaultConfig(1)},
		{Program: fake, Arch: REF, Cfg: sim.DefaultConfig(1)},
	}
	out, err := s.RunBatch(context.Background(), jobs)
	if err == nil {
		t.Fatal("RunBatch accepted two distinct programs sharing a name")
	}
	if !strings.Contains(err.Error(), orig.Name) {
		t.Errorf("collision error does not name the program: %v", err)
	}
	if out != nil {
		t.Errorf("collision must fail the whole batch, got results %v", out)
	}

	// The same definition appearing twice is of course fine.
	jobs = []BatchJob{
		{Program: orig, Arch: REF, Cfg: sim.DefaultConfig(1)},
		{Program: orig, Arch: REF, Cfg: sim.DefaultConfig(1)},
	}
	out, err = s.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatalf("duplicate jobs of one program: %v", err)
	}
	if out[0] == nil || out[0] != out[1] {
		t.Errorf("duplicate cells should collapse to one result: %p %p", out[0], out[1])
	}
}
