package experiments

import (
	"context"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// PortsRow compares, for one (program, latency), the single-port DVA, the
// single-port DVA with the §7 bypass, and a DVA given a real second memory
// port (no bypass).
type PortsRow struct {
	Name     string
	Latency  int64
	Dva1     int64 // DVA, one port
	Byp1     int64 // BYP 256/16, one port
	Dva2     int64 // DVA, two ports
	BypGain  float64
	PortGain float64
}

// PortsResult is the extension quantifying §7's observation that the
// bypass "gives the illusion of having two memory ports": how much of a
// real second port's benefit does the bypass capture, at the cost of a
// queue comparator instead of a second bus?
type PortsResult struct {
	Latencies []int64
	Rows      []PortsRow
}

// ExtensionPorts runs the comparison.
func ExtensionPorts(ctx context.Context, s *Suite, lats []int64) (*PortsResult, error) {
	if len(lats) == 0 {
		lats = []int64{1, 50}
	}
	progs := workload.Simulated()
	oneP := func(l int64) sim.Config { return sim.DefaultConfig(l) }
	bypP := func(l int64) sim.Config { return sim.BypassConfig(l, 256, 16) }
	twoP := func(l int64) sim.Config {
		cfg := sim.DefaultConfig(l)
		cfg.MemPorts = 2
		return cfg
	}
	var runs []RunSpec
	for _, l := range lats {
		for _, cfg := range []sim.Config{oneP(l), bypP(l), twoP(l)} {
			runs = append(runs, RunSpec{DVA, cfg})
		}
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &PortsResult{Latencies: lats}
	for _, p := range progs {
		for _, l := range lats {
			r1, err := s.RunCtx(ctx, p, DVA, oneP(l))
			if err != nil {
				return nil, err
			}
			rb, err := s.RunCtx(ctx, p, DVA, bypP(l))
			if err != nil {
				return nil, err
			}
			r2, err := s.RunCtx(ctx, p, DVA, twoP(l))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, PortsRow{
				Name:     p.Name,
				Latency:  l,
				Dva1:     r1.Cycles,
				Byp1:     rb.Cycles,
				Dva2:     r2.Cycles,
				BypGain:  float64(r1.Cycles) / float64(rb.Cycles),
				PortGain: float64(r1.Cycles) / float64(r2.Cycles),
			})
		}
	}
	return res, nil
}
