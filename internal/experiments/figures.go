package experiments

import (
	"context"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// Figure1Row is one bar of Figure 1: the reference architecture's execution
// time at one memory latency, broken into the eight (FU2, FU1, LD) states.
type Figure1Row struct {
	Latency int64
	States  sim.StateStats
	// LDIdleFrac is the fraction of cycles where the memory port sat idle —
	// the cycles §3 argues decoupling can reclaim.
	LDIdleFrac float64
}

// Figure1Program groups the Figure 1 bars of one benchmark.
type Figure1Program struct {
	Name string
	Rows []Figure1Row
}

// Figure1Result reproduces Figure 1 for the six simulated benchmarks.
type Figure1Result struct {
	Latencies []int64
	Programs  []Figure1Program
}

// Figure1 runs the reference architecture at the Figure 1 latencies and
// collects the per-state cycle breakdowns.
func Figure1(ctx context.Context, s *Suite) (*Figure1Result, error) {
	lats := Figure1Latencies
	progs := workload.Simulated()
	var runs []RunSpec
	for _, l := range lats {
		runs = append(runs, RunSpec{REF, sim.DefaultConfig(l)})
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &Figure1Result{Latencies: lats}
	for _, p := range progs {
		fp := Figure1Program{Name: p.Name}
		for _, l := range lats {
			r, err := s.RunCtx(ctx, p, REF, sim.DefaultConfig(l))
			if err != nil {
				return nil, err
			}
			fp.Rows = append(fp.Rows, Figure1Row{
				Latency:    l,
				States:     r.States,
				LDIdleFrac: float64(r.States.LDIdle()) / float64(r.States.Total()),
			})
		}
		res.Programs = append(res.Programs, fp)
	}
	return res, nil
}

// SweepPoint is one latency point of the Figure 3 sweep.
type SweepPoint struct {
	Latency int64
	Ref     *sim.Result
	Dva     *sim.Result
}

// SweepProgram is the Figure 3/4/5 data of one benchmark: the IDEAL lower
// bound plus REF and DVA execution across the latency sweep.
type SweepProgram struct {
	Name   string
	Ideal  int64
	Points []SweepPoint
}

// Speedup returns the Figure 5 series: REF time over DVA time per latency.
func (sp *SweepProgram) Speedup() []float64 {
	out := make([]float64, len(sp.Points))
	for i, pt := range sp.Points {
		out[i] = float64(pt.Ref.Cycles) / float64(pt.Dva.Cycles)
	}
	return out
}

// StallRatio returns the Figure 4 series: the ratio of cycles spent in
// state < , , > on REF versus DVA per latency.
func (sp *SweepProgram) StallRatio() []float64 {
	out := make([]float64, len(sp.Points))
	for i, pt := range sp.Points {
		d := pt.Dva.States.Idle()
		if d == 0 {
			d = 1
		}
		out[i] = float64(pt.Ref.States.Idle()) / float64(d)
	}
	return out
}

// SweepResult is the shared dataset behind Figures 3, 4 and 5.
type SweepResult struct {
	Latencies []int64
	Programs  []SweepProgram
}

// Sweep runs the six simulated benchmarks on REF and DVA (default queue
// configuration: IQ 16, scalar queues 256, AVDQ 256, VADQ 16) across the
// latency sweep. Figures 3, 4 and 5 are all views of this dataset.
func Sweep(ctx context.Context, s *Suite, lats []int64) (*SweepResult, error) {
	if len(lats) == 0 {
		lats = DefaultLatencies
	}
	progs := workload.Simulated()
	var runs []RunSpec
	for _, l := range lats {
		cfg := sim.DefaultConfig(l)
		runs = append(runs,
			RunSpec{REF, cfg},
			RunSpec{DVA, cfg},
		)
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &SweepResult{Latencies: lats}
	for _, p := range progs {
		sp := SweepProgram{Name: p.Name, Ideal: s.Ideal(ctx, p).Cycles}
		for _, l := range lats {
			cfg := sim.DefaultConfig(l)
			rr, err := s.RunCtx(ctx, p, REF, cfg)
			if err != nil {
				return nil, err
			}
			rd, err := s.RunCtx(ctx, p, DVA, cfg)
			if err != nil {
				return nil, err
			}
			sp.Points = append(sp.Points, SweepPoint{Latency: l, Ref: rr, Dva: rd})
		}
		res.Programs = append(res.Programs, sp)
	}
	return res, nil
}

// Figure6Row is the AVDQ busy-slot distribution at one latency.
type Figure6Row struct {
	Latency int64
	// Hist[k] is the number of cycles the AVDQ held exactly k busy slots.
	Hist *sim.Histogram
}

// Figure6Program groups one benchmark's distributions.
type Figure6Program struct {
	Name string
	Rows []Figure6Row
}

// Figure6Result reproduces the Figure 6 histograms.
type Figure6Result struct {
	Latencies []int64
	Programs  []Figure6Program
}

// Figure6 measures the AVDQ occupancy distribution of the DVA (256-slot
// load queue) at the Figure 6 latencies.
func Figure6(ctx context.Context, s *Suite) (*Figure6Result, error) {
	lats := Figure6Latencies
	progs := workload.Simulated()
	var runs []RunSpec
	for _, l := range lats {
		runs = append(runs, RunSpec{DVA, sim.DefaultConfig(l)})
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &Figure6Result{Latencies: lats}
	for _, p := range progs {
		fp := Figure6Program{Name: p.Name}
		for _, l := range lats {
			r, err := s.RunCtx(ctx, p, DVA, sim.DefaultConfig(l))
			if err != nil {
				return nil, err
			}
			fp.Rows = append(fp.Rows, Figure6Row{Latency: l, Hist: r.AVDQBusy})
		}
		res.Programs = append(res.Programs, fp)
	}
	return res, nil
}
