package experiments

import (
	"context"
	"sync"
	"testing"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// Concurrent Run calls for the same key must share one simulation: the
// pre-singleflight code checked the cache, released the lock, simulated and
// only then stored, so a burst of identical requests each ran the simulator.
//
// The run must outlast the scheduler's preemption quantum (~10ms), or on a
// single-CPU machine the first caller finishes before the others wake and
// the race never materializes: use the cycle-stepped DVA at full scale.
func TestSuiteRunSingleflight(t *testing.T) {
	s := NewSuite(1.0)
	p := workload.Simulated()[0]
	cfg := sim.DefaultConfig(50)

	const callers = 16
	results := make([]*sim.Result, callers)
	start := make(chan struct{}) // release all callers at once
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r, err := s.Run(p, DVA, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	close(start)
	wg.Wait()

	if got := s.Simulations(); got != 1 {
		t.Errorf("Simulations() = %d, want 1 for %d identical concurrent calls", got, callers)
	}
	for i, r := range results {
		if r != results[0] {
			t.Errorf("caller %d got a different result object", i)
		}
	}
}

// Distinct keys must still simulate independently, and repeats of any key
// stay cached.
func TestSuiteRunCountsDistinctKeys(t *testing.T) {
	s := suite(t)
	p := workload.Simulated()[0]

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, lat := range []int64{1, 10} {
			wg.Add(1)
			go func(lat int64) {
				defer wg.Done()
				if _, err := s.Run(p, REF, sim.DefaultConfig(lat)); err != nil {
					t.Error(err)
				}
			}(lat)
		}
	}
	wg.Wait()

	if got := s.Simulations(); got != 2 {
		t.Errorf("Simulations() = %d, want 2 (one per distinct config)", got)
	}
	// A sequential repeat hits the cache.
	if _, err := s.Run(p, REF, sim.DefaultConfig(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Simulations(); got != 2 {
		t.Errorf("Simulations() = %d after cached repeat, want 2", got)
	}
}

// Errors must not be cached, and a failed flight must not wedge later calls.
func TestSuiteRunErrorNotCached(t *testing.T) {
	s := suite(t)
	p := workload.Simulated()[0]
	cfg := sim.DefaultConfig(10)

	if _, err := s.Run(p, Arch("BOGUS"), cfg); err == nil {
		t.Fatal("want error for unknown architecture")
	}
	if _, err := s.Run(p, Arch("BOGUS"), cfg); err == nil {
		t.Fatal("want error again (errors are retried, not cached)")
	}
	if got := s.Simulations(); got != 2 {
		t.Errorf("Simulations() = %d, want 2 (failed attempts are attempts)", got)
	}
	// The suite still works for valid keys afterwards.
	if _, err := s.Run(p, REF, cfg); err != nil {
		t.Fatal(err)
	}
}

// Ideal shares the same singleflight discipline.
func TestSuiteIdealSingleflight(t *testing.T) {
	s := suite(t)
	p := workload.Simulated()[0]

	const callers = 8
	bounds := make([]int64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bounds[i] = s.Ideal(context.Background(), p).Cycles
		}(i)
	}
	wg.Wait()
	for i, b := range bounds {
		if b != bounds[0] {
			t.Errorf("caller %d got bound %d, want %d", i, b, bounds[0])
		}
	}
}
