package experiments

import (
	"context"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// BypassConfig names one §7 configuration: "BYP loadQ/storeQ".
type BypassConfig struct {
	Name   string
	LoadQ  int
	StoreQ int
}

// Figure7Configs are the four bypass configurations of Figure 7, compared
// against the plain DVA (256/16).
var Figure7Configs = []BypassConfig{
	{Name: "BYP 4/4", LoadQ: 4, StoreQ: 4},
	{Name: "BYP 4/8", LoadQ: 4, StoreQ: 8},
	{Name: "BYP 4/16", LoadQ: 4, StoreQ: 16},
	{Name: "BYP 256/16", LoadQ: 256, StoreQ: 16},
}

// Figure7Point is one latency point of a Figure 7 series.
type Figure7Point struct {
	Latency int64
	Cycles  int64
}

// Figure7Series is one curve of a Figure 7 panel.
type Figure7Series struct {
	Name   string
	Points []Figure7Point
}

// Figure7Program is one benchmark's panel: IDEAL, the DVA baseline and the
// four bypass configurations.
type Figure7Program struct {
	Name   string
	Ideal  int64
	Series []Figure7Series
}

// Figure7Result reproduces Figure 7.
type Figure7Result struct {
	Latencies []int64
	Programs  []Figure7Program
}

// Figure7 sweeps the bypass configurations against the DVA across memory
// latencies.
func Figure7(ctx context.Context, s *Suite, lats []int64) (*Figure7Result, error) {
	if len(lats) == 0 {
		lats = DefaultLatencies
	}
	progs := workload.Simulated()
	var runs []RunSpec
	for _, l := range lats {
		runs = append(runs, RunSpec{DVA, sim.DefaultConfig(l)})
		for _, bc := range Figure7Configs {
			runs = append(runs, RunSpec{DVA, sim.BypassConfig(l, bc.LoadQ, bc.StoreQ)})
		}
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &Figure7Result{Latencies: lats}
	for _, p := range progs {
		fp := Figure7Program{Name: p.Name, Ideal: s.Ideal(ctx, p).Cycles}
		dva := Figure7Series{Name: "DVA 256/16"}
		for _, l := range lats {
			r, err := s.RunCtx(ctx, p, DVA, sim.DefaultConfig(l))
			if err != nil {
				return nil, err
			}
			dva.Points = append(dva.Points, Figure7Point{Latency: l, Cycles: r.Cycles})
		}
		fp.Series = append(fp.Series, dva)
		for _, bc := range Figure7Configs {
			ser := Figure7Series{Name: bc.Name}
			for _, l := range lats {
				r, err := s.RunCtx(ctx, p, DVA, sim.BypassConfig(l, bc.LoadQ, bc.StoreQ))
				if err != nil {
					return nil, err
				}
				ser.Points = append(ser.Points, Figure7Point{Latency: l, Cycles: r.Cycles})
			}
			fp.Series = append(fp.Series, ser)
		}
		res.Programs = append(res.Programs, fp)
	}
	return res, nil
}

// Figure8Row is one bar of Figure 8: the total memory traffic of the DVA
// 256/16 versus the BYP 256/16 and the resulting reduction.
type Figure8Row struct {
	Name          string
	DvaElems      int64
	BypElems      int64
	Bypasses      int64
	ReductionFrac float64 // (DVA - BYP) / DVA
}

// Figure8Result reproduces Figure 8 (measured at the latency the paper's
// §7 used for its traffic comparison; the ratio is essentially flat in L
// because bypass eligibility depends on queue contents, not latency).
type Figure8Result struct {
	Latency int64
	Rows    []Figure8Row
}

// Figure8 compares total memory traffic of DVA 256/16 and BYP 256/16.
func Figure8(ctx context.Context, s *Suite, latency int64) (*Figure8Result, error) {
	if latency <= 0 {
		latency = 30
	}
	progs := workload.Simulated()
	runs := []RunSpec{
		{DVA, sim.DefaultConfig(latency)},
		{DVA, sim.BypassConfig(latency, 256, 16)},
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &Figure8Result{Latency: latency}
	for _, p := range progs {
		rd, err := s.RunCtx(ctx, p, DVA, sim.DefaultConfig(latency))
		if err != nil {
			return nil, err
		}
		rb, err := s.RunCtx(ctx, p, DVA, sim.BypassConfig(latency, 256, 16))
		if err != nil {
			return nil, err
		}
		row := Figure8Row{
			Name:     p.Name,
			DvaElems: rd.Traffic.Total(),
			BypElems: rb.Traffic.Total(),
			Bypasses: rb.Bypasses,
		}
		if row.DvaElems > 0 {
			row.ReductionFrac = float64(row.DvaElems-row.BypElems) / float64(row.DvaElems)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
