package experiments

import (
	"context"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// AblationPoint is the execution time of one program at one swept value.
type AblationPoint struct {
	Value  int
	Cycles int64
}

// AblationProgram is one program's series over the swept parameter.
type AblationProgram struct {
	Name   string
	Points []AblationPoint
}

// AblationResult is a one-parameter sensitivity study at fixed latency.
type AblationResult struct {
	Parameter string
	Latency   int64
	Values    []int
	Programs  []AblationProgram
}

// sweepParam runs the six benchmarks over cfgs (one per value).
func sweepParam(ctx context.Context, s *Suite, name string, latency int64, values []int, mk func(v int) sim.Config) (*AblationResult, error) {
	progs := workload.Simulated()
	var runs []RunSpec
	for _, v := range values {
		runs = append(runs, RunSpec{DVA, mk(v)})
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &AblationResult{Parameter: name, Latency: latency, Values: values}
	for _, p := range progs {
		ap := AblationProgram{Name: p.Name}
		for _, v := range values {
			r, err := s.RunCtx(ctx, p, DVA, mk(v))
			if err != nil {
				return nil, err
			}
			ap.Points = append(ap.Points, AblationPoint{Value: v, Cycles: r.Cycles})
		}
		res.Programs = append(res.Programs, ap)
	}
	return res, nil
}

// AblationIQ reproduces the §5 instruction-queue sizing study: the paper
// found that shrinking the instruction queues from 512 to 16 slots costs
// under 2%.
func AblationIQ(ctx context.Context, s *Suite, latency int64) (*AblationResult, error) {
	if latency <= 0 {
		latency = 50
	}
	return sweepParam(ctx, s, "instruction queue slots", latency,
		[]int{4, 8, 16, 32, 512},
		func(v int) sim.Config {
			cfg := sim.DefaultConfig(latency)
			cfg.IQSize = v
			return cfg
		})
}

// AblationVSQ reproduces the §7 vector-store-queue study on the bypass
// configuration with a 4-slot load queue: eight slots capture ~95% of the
// benefit of sixteen.
func AblationVSQ(ctx context.Context, s *Suite, latency int64) (*AblationResult, error) {
	if latency <= 0 {
		latency = 50
	}
	return sweepParam(ctx, s, "vector store queue slots (BYP 4/x)", latency,
		[]int{4, 8, 16, 32, 256},
		func(v int) sim.Config {
			return sim.BypassConfig(latency, 4, v)
		})
}

// AblationAVDQ reproduces the §6/§8 load-queue finding: a four-slot AVDQ
// achieves most of the performance of an effectively infinite (256) queue,
// except for SPEC77, which uses the queue's depth.
func AblationAVDQ(ctx context.Context, s *Suite, latency int64) (*AblationResult, error) {
	if latency <= 0 {
		latency = 50
	}
	return sweepParam(ctx, s, "vector load queue slots (BYP x/16)", latency,
		[]int{2, 4, 8, 16, 256},
		func(v int) sim.Config {
			return sim.BypassConfig(latency, v, 16)
		})
}

// AblationQMov reproduces the §4.3 design decision: the VP carries two
// QMOV units "because otherwise the VP would be paying a high overhead in
// some very common sequences of code" (a load drain and a store fill in
// flight simultaneously). One unit should visibly hurt; more than two
// should buy almost nothing.
func AblationQMov(ctx context.Context, s *Suite, latency int64) (*AblationResult, error) {
	if latency <= 0 {
		latency = 50
	}
	return sweepParam(ctx, s, "VP QMOV units", latency,
		[]int{1, 2, 4},
		func(v int) sim.Config {
			cfg := sim.DefaultConfig(latency)
			cfg.QMovUnits = v
			return cfg
		})
}
