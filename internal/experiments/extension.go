package experiments

import (
	"context"

	"sync"

	"decvec/internal/ooo"
	"decvec/internal/sim"
	"decvec/internal/workload"
)

// ExtensionOOORow is one (program, latency) comparison between the
// reference architecture, the decoupled architecture and out-of-order
// execution with register renaming at several window sizes.
type ExtensionOOORow struct {
	Name    string
	Latency int64
	Ref     int64
	Dva     int64
	// Ooo holds cycles per window size, aligned with ExtensionOOOWindows.
	Ooo []int64
}

// ExtensionOOOWindows are the issue-window sizes swept by the extension
// study.
var ExtensionOOOWindows = []int{4, 16, 64}

// ExtensionOOOResult is the §8 future-work study: decoupling versus
// out-of-order execution and register renaming.
type ExtensionOOOResult struct {
	Latencies []int64
	Windows   []int
	Rows      []ExtensionOOORow
}

// ExtensionOOO compares REF, DVA and OOO across latencies. The OOO machine
// shares the reference datapath (two FUs, one port, no load chaining) and
// issue bandwidth (one per cycle), differing only in its issue window and
// physical-register renaming — the cleanest head-to-head the paper's §8
// asks for.
func ExtensionOOO(ctx context.Context, s *Suite, lats []int64) (*ExtensionOOOResult, error) {
	if len(lats) == 0 {
		lats = []int64{1, 30, 100}
	}
	progs := workload.Simulated()
	var runs []RunSpec
	for _, l := range lats {
		cfg := sim.DefaultConfig(l)
		runs = append(runs,
			RunSpec{REF, cfg},
			RunSpec{DVA, cfg})
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &ExtensionOOOResult{Latencies: lats, Windows: ExtensionOOOWindows}

	// The OOO runs go through Suite.RunOOO, so they share the suite's
	// memory and persistent caches; computed in parallel per
	// (program, latency, window).
	type key struct {
		prog string
		lat  int64
		w    int
	}
	oooCycles := make(map[key]int64)
	var oooMu sync.Mutex
	var jobs []func() error
	for _, p := range progs {
		for _, l := range lats {
			for _, w := range ExtensionOOOWindows {
				p, l, w := p, l, w
				jobs = append(jobs, func() error {
					cfg := ooo.DefaultConfig(l)
					cfg.Window = w
					cfg.PhysRegs = 4 * physFloor(w)
					r, err := s.RunOOOCtx(ctx, p, cfg)
					if err != nil {
						return err
					}
					oooMu.Lock()
					oooCycles[key{p.Name, l, w}] = r.Cycles
					oooMu.Unlock()
					return nil
				})
			}
		}
	}
	if err := parallelCtx(ctx, jobs); err != nil {
		return nil, err
	}
	for _, p := range progs {
		for _, l := range lats {
			rr, err := s.RunCtx(ctx, p, REF, sim.DefaultConfig(l))
			if err != nil {
				return nil, err
			}
			rd, err := s.RunCtx(ctx, p, DVA, sim.DefaultConfig(l))
			if err != nil {
				return nil, err
			}
			row := ExtensionOOORow{Name: p.Name, Latency: l, Ref: rr.Cycles, Dva: rd.Cycles}
			for _, w := range ExtensionOOOWindows {
				row.Ooo = append(row.Ooo, oooCycles[key{p.Name, l, w}])
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// physFloor sizes the physical register pool relative to the window with a
// floor of the architectural count.
func physFloor(w int) int {
	if w < 8 {
		return 8
	}
	return w
}
