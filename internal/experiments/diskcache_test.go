package experiments

import (
	"reflect"
	"strings"
	"testing"

	"decvec/internal/ooo"
	"decvec/internal/sim"
	"decvec/internal/simcache"
	"decvec/internal/workload"
)

func diskSuite(t *testing.T, dir string, opts simcache.Options) *Suite {
	t.Helper()
	store, err := simcache.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuite(testScale)
	s.Disk = store
	return s
}

func TestSuiteWarmDiskCacheSkipsSimulation(t *testing.T) {
	dir := t.TempDir()
	p, err := workload.Get("ARC2D")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []sim.Config{sim.DefaultConfig(1), sim.DefaultConfig(30)}

	cold := diskSuite(t, dir, simcache.Options{})
	var want []*sim.Result
	for _, cfg := range cfgs {
		for _, arch := range []Arch{REF, DVA} {
			r, err := cold.Run(p, arch, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
	}
	if got := cold.Simulations(); got != 4 {
		t.Fatalf("cold suite ran %d simulations, want 4", got)
	}
	if st := cold.CacheStats(); st.Writes != 4 || st.Hits != 0 {
		t.Fatalf("cold cache stats = %+v", st)
	}

	// A fresh suite over the same directory must satisfy every run from
	// disk: zero simulator invocations, identical results.
	warm := diskSuite(t, dir, simcache.Options{})
	i := 0
	for _, cfg := range cfgs {
		for _, arch := range []Arch{REF, DVA} {
			r, err := warm.Run(p, arch, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r, want[i]) {
				t.Errorf("%s L=%d: warm result differs from cold", arch, cfg.MemLatency)
			}
			i++
		}
	}
	if got := warm.Simulations(); got != 0 {
		t.Errorf("warm suite ran %d simulations, want 0", got)
	}
	if st := warm.CacheStats(); st.Hits != 4 || st.Misses != 0 {
		t.Errorf("warm cache stats = %+v", st)
	}
}

func TestSuiteSlowTickSharesDiskEntries(t *testing.T) {
	dir := t.TempDir()
	p, err := workload.Get("TRFD")
	if err != nil {
		t.Fatal(err)
	}
	cold := diskSuite(t, dir, simcache.Options{})
	if _, err := cold.Run(p, DVA, sim.DefaultConfig(30)); err != nil {
		t.Fatal(err)
	}
	// SlowTick is bit-identical and normalized out of the key: a slow-tick
	// suite hits the fast-tick entry.
	warm := diskSuite(t, dir, simcache.Options{})
	warm.SlowTick = true
	if _, err := warm.Run(p, DVA, sim.DefaultConfig(30)); err != nil {
		t.Fatal(err)
	}
	if got := warm.Simulations(); got != 0 {
		t.Errorf("slow-tick warm suite ran %d simulations, want 0", got)
	}
}

func TestSuiteRunOOODiskCache(t *testing.T) {
	dir := t.TempDir()
	p, err := workload.Get("FLO52")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ooo.DefaultConfig(30)
	cfg.Window = 16
	cfg.PhysRegs = 64

	cold := diskSuite(t, dir, simcache.Options{})
	want, err := cold.RunOOO(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Simulations(); got != 1 {
		t.Fatalf("cold OOO run: %d simulations, want 1", got)
	}

	warm := diskSuite(t, dir, simcache.Options{})
	got, err := warm.RunOOO(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulations() != 0 {
		t.Errorf("warm OOO run simulated")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("warm OOO result differs from cold")
	}

	// A different window is a different key, not a stale hit.
	cfg2 := cfg
	cfg2.Window = 64
	if _, err := warm.RunOOO(p, cfg2); err != nil {
		t.Fatal(err)
	}
	if warm.Simulations() != 1 {
		t.Errorf("distinct OOO window did not simulate")
	}
}

func TestSuiteVerifyPassesOnHonestStore(t *testing.T) {
	dir := t.TempDir()
	p, err := workload.Get("DYFESM")
	if err != nil {
		t.Fatal(err)
	}
	cold := diskSuite(t, dir, simcache.Options{})
	if _, err := cold.Run(p, DVA, sim.DefaultConfig(30)); err != nil {
		t.Fatal(err)
	}
	warm := diskSuite(t, dir, simcache.Options{})
	warm.VerifyFraction = 1.0
	if _, err := warm.Run(p, DVA, sim.DefaultConfig(30)); err != nil {
		t.Fatalf("verification failed on an honest store: %v", err)
	}
	// The verification re-simulation counts as a simulation and as Verified.
	if got := warm.Simulations(); got != 1 {
		t.Errorf("verify ran %d simulations, want 1", got)
	}
	if st := warm.CacheStats(); st.Verified != 1 {
		t.Errorf("cache stats = %+v, want 1 verified", st)
	}
}

func TestSuiteVerifyFailsOnTamperedEntry(t *testing.T) {
	dir := t.TempDir()
	p, err := workload.Get("SPEC77")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(30)
	store, err := simcache.Open(dir, simcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Plant a well-formed entry whose payload no simulator produces: run the
	// real simulation, skew the cycle count, store the skewed result under
	// the honest key. Checksums pass — only re-simulation can catch it.
	honest := NewSuite(testScale)
	r, err := honest.Run(p, DVA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tampered := *r
	tampered.Cycles++
	th, err := p.CachedTraceHash(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(store.Key(th, "DVA", cfg, ""), &tampered); err != nil {
		t.Fatal(err)
	}

	s := NewSuite(testScale)
	s.Disk = store
	s.VerifyFraction = 1.0
	_, err = s.Run(p, DVA, cfg)
	if err == nil {
		t.Fatal("verification accepted a tampered entry")
	}
	if !strings.Contains(err.Error(), "cache verification FAILED") {
		t.Errorf("error does not name the failure: %v", err)
	}
	// Without verification the tampered entry is served (the checksum holds),
	// demonstrating the failure -cache-verify exists to catch.
	blind := NewSuite(testScale)
	blind.Disk = store
	got, err := blind.Run(p, DVA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != tampered.Cycles {
		t.Errorf("expected the tampered entry to be served blind")
	}
}

func TestSuiteFingerprintChangeForcesColdRun(t *testing.T) {
	dir := t.TempDir()
	p, err := workload.Get("BDNA")
	if err != nil {
		t.Fatal(err)
	}
	cold := diskSuite(t, dir, simcache.Options{Fingerprint: "mh1:model-v1"})
	if _, err := cold.Run(p, REF, sim.DefaultConfig(30)); err != nil {
		t.Fatal(err)
	}
	// Same directory, new fingerprint — as after any model-source edit: the
	// old entry must be unreachable and the run must simulate.
	edited := diskSuite(t, dir, simcache.Options{Fingerprint: "mh1:model-v2"})
	if _, err := edited.Run(p, REF, sim.DefaultConfig(30)); err != nil {
		t.Fatal(err)
	}
	if got := edited.Simulations(); got != 1 {
		t.Errorf("edited-model suite ran %d simulations, want 1 (cold)", got)
	}
	if st := edited.CacheStats(); st.Hits != 0 || st.Misses != 1 {
		t.Errorf("edited-model cache stats = %+v", st)
	}
}
