package experiments

import (
	"context"

	"decvec/internal/ooo"
	"decvec/internal/sim"
	"decvec/internal/workload"
)

// Test-only convenience wrappers. Production code threads a context
// end-to-end (ctxdiscipline enforces it); tests run under their own
// deadlines and are free to mint root contexts, so they keep the shorter
// spellings here.

func (s *Suite) Run(p *workload.Program, arch Arch, cfg sim.Config) (*sim.Result, error) {
	return s.RunCtx(context.Background(), p, arch, cfg)
}

func (s *Suite) RunOOO(p *workload.Program, cfg ooo.Config) (*sim.Result, error) {
	return s.RunOOOCtx(context.Background(), p, cfg)
}

func (s *Suite) warm(programs []*workload.Program, runs []RunSpec) error {
	return s.WarmCtx(context.Background(), programs, runs)
}

func parallel(jobs []func() error) error {
	return parallelCtx(context.Background(), jobs)
}
