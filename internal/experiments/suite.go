// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (program characteristics), Figure 1 (functional-unit
// usage of the reference architecture), Figures 3-5 (execution time,
// stall-cycle ratio and speedup across memory latencies), Figure 6 (AVDQ
// occupancy distributions), Figure 7 (bypass configurations) and Figure 8
// (memory-traffic reduction), plus the queue-sizing ablations discussed in
// the paper's prose (§5-§7).
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"decvec/internal/ideal"
	"decvec/internal/ooo"
	"decvec/internal/sim"
	"decvec/internal/simcache"
	"decvec/internal/trace"
	"decvec/internal/workload"
)

// DefaultLatencies is the memory-latency sweep of Figures 3-5 and 7: the
// paper plots 1 and every multiple of ten up to 100 cycles.
var DefaultLatencies = []int64{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Figure1Latencies are the four latencies of the Figure 1 state breakdown.
var Figure1Latencies = []int64{1, 30, 70, 100}

// Figure6Latencies are the three latencies of the Figure 6 histograms.
var Figure6Latencies = []int64{1, 30, 100}

// Arch selects a simulator.
type Arch string

// Architectures.
const (
	REF Arch = "REF" // the reference (coupled) vector architecture
	DVA Arch = "DVA" // the decoupled vector architecture
)

// Gate admission-controls real simulator invocations. A server attaches one
// to Suite.Gate to bound concurrent simulations and shed load: Acquire
// blocks until a slot frees, the context is cancelled, or the gate refuses
// (overload); release must be called exactly once per successful Acquire.
// Cache hits and coalesced duplicate requests never touch the gate — only
// the call that actually runs a simulator pays for a slot.
type Gate interface {
	Acquire(ctx context.Context) (release func(), err error)
}

// Suite runs simulations for the experiment drivers through a two-tier
// cache: an in-process result map (figures sharing runs — 3, 4 and 5 use
// identical sweeps — simulate each configuration exactly once, also under
// concurrency: duplicate requests for an in-flight key wait for the first
// caller), and optionally a persistent content-addressed store (Disk) that
// survives the process, so repeat invocations skip simulation entirely.
// A Suite is safe for concurrent use.
type Suite struct {
	// Scale is the trace scale factor (1.0 = default trace sizes).
	Scale float64

	// SlowTick forces every simulation the suite performs into the
	// per-cycle reference mode (sim.Config.SlowTick), whatever the
	// experiment requested. Results are identical either way — see
	// DESIGN.md "Idle-skip advancement" — so this exists for
	// `dvabench -slowtick` and for timing the two modes against each
	// other. Set it before the first Run; flipping it on a warm suite
	// would mix modes in the cache (harmlessly, but confusingly).
	SlowTick bool

	// Disk, when non-nil, is the persistent result cache consulted between
	// the in-memory map and the simulator (memory → disk → simulate).
	// Lookups are keyed on trace content, architecture, canonical config
	// and the generated model fingerprint, so entries from an edited model
	// can never hit. Set it before the first Run.
	Disk *simcache.Store

	// VerifyFraction re-simulates this fraction of disk hits (selected
	// deterministically per key) and fails the Run loudly if the stored
	// bytes differ from the fresh encoding. 1.0 audits every hit;
	// 0 (default) trusts the checksummed store.
	VerifyFraction float64

	// Gate, when non-nil, admission-controls every real simulator
	// invocation (never cache hits or coalesced waiters). The dvad server
	// installs one to bound concurrency and return 429 under overload.
	// Set it before the first Run.
	Gate Gate

	runs    flightGroup[suiteKey, *sim.Result]
	oooRuns flightGroup[oooSuiteKey, *sim.Result]
	sources flightGroup[sourceKey, *sim.Result]
	ideals  flightGroup[string, ideal.Bound]

	mu     sync.Mutex
	sims   int64               // simulations actually executed (see Simulations)
	hashes map[string][32]byte // trace content hash per program, at suite scale
}

type suiteKey struct {
	program string
	arch    Arch
	cfg     sim.Config
}

// oooSuiteKey keys the out-of-order runs, whose configuration extends
// sim.Config with the window and physical-register pool.
type oooSuiteKey struct {
	program string
	cfg     ooo.Config
}

// sourceKey keys runs of arbitrary uploaded traces by content hash — two
// uploads of identical bytes coalesce exactly like two requests for the
// same workload.
type sourceKey struct {
	hash [32]byte
	arch Arch
	cfg  sim.Config
}

// NewSuite returns an empty suite at the given trace scale.
func NewSuite(scale float64) *Suite {
	if scale <= 0 {
		scale = workload.DefaultScale
	}
	return &Suite{
		Scale:   scale,
		runs:    newFlightGroup[suiteKey, *sim.Result](),
		oooRuns: newFlightGroup[oooSuiteKey, *sim.Result](),
		sources: newFlightGroup[sourceKey, *sim.Result](),
		ideals:  newFlightGroup[string, ideal.Bound](),
		hashes:  make(map[string][32]byte),
	}
}

// Simulations returns the number of simulator invocations the suite has
// performed; memory-cache, singleflight and disk-cache hits do not count.
// Cache-verification re-simulations do.
func (s *Suite) Simulations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sims
}

// CacheStats returns the persistent store's counters, or zeroes when the
// suite runs without one.
func (s *Suite) CacheStats() simcache.Stats {
	if s.Disk == nil {
		return simcache.Stats{}
	}
	return s.Disk.Stats()
}

// countSim tallies one real simulator invocation.
func (s *Suite) countSim() {
	s.mu.Lock()
	s.sims++
	s.mu.Unlock()
}

// admit acquires a simulation slot from the gate (a no-op slot when none is
// installed). Even ungated runs respect an already-cancelled context, so an
// abandoned request never starts a simulation it no longer wants.
func (s *Suite) admit(ctx context.Context) (func(), error) {
	if s.Gate == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return func() {}, nil
	}
	return s.Gate.Acquire(ctx)
}

// RunCtx simulates program p on the given architecture and configuration,
// returning a cached result when the identical run has been done before —
// in this process or, with a Disk store attached, in any previous one.
// Concurrent calls for the same key share a single simulation, and a
// caller that gives up stops waiting immediately (in the admission queue,
// or on a coalesced in-flight run) without disturbing the computation
// other callers still want.
func (s *Suite) RunCtx(ctx context.Context, p *workload.Program, arch Arch, cfg sim.Config) (*sim.Result, error) {
	if s.SlowTick {
		cfg.SlowTick = true
	}
	key := suiteKey{program: p.Name, arch: arch, cfg: cfg}
	if r, ok := s.runs.get(key); ok {
		return r, nil
	}
	return s.runs.do(ctx, key, func(ctx context.Context) (*sim.Result, error) {
		return s.cachedSimulate(ctx, p, string(arch), cfg, "", func(ctx context.Context) (*sim.Result, error) {
			return s.simulate(ctx, p, arch, cfg)
		})
	})
}

// RunOOOCtx simulates program p on the out-of-order extension (§8) with
// the same two-tier caching and cancellation discipline as RunCtx.
func (s *Suite) RunOOOCtx(ctx context.Context, p *workload.Program, cfg ooo.Config) (*sim.Result, error) {
	if s.SlowTick {
		cfg.SlowTick = true
	}
	key := oooSuiteKey{program: p.Name, cfg: cfg}
	if r, ok := s.oooRuns.get(key); ok {
		return r, nil
	}
	return s.oooRuns.do(ctx, key, func(ctx context.Context) (*sim.Result, error) {
		extra := fmt.Sprintf("window=%d physregs=%d", cfg.Window, cfg.PhysRegs)
		return s.cachedSimulate(ctx, p, "OOO", cfg.Config, extra, func(ctx context.Context) (*sim.Result, error) {
			release, err := s.admit(ctx)
			if err != nil {
				return nil, err
			}
			defer release()
			s.countSim()
			r, err := simulateOOO(p.CachedTrace(s.Scale), cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: OOO on %s: %w", p.Name, err)
			}
			return r, nil
		})
	})
}

// RunSourceCtx simulates an arbitrary materialized trace (for example one
// uploaded to the dvad server) on REF or DVA with the full coalescing and
// two-tier caching discipline: runs are keyed on trace content, so identical
// uploads share one simulation and one cache entry — the same entry a
// workload run of the identical trace would use.
func (s *Suite) RunSourceCtx(ctx context.Context, src *trace.Slice, arch Arch, cfg sim.Config) (*sim.Result, error) {
	if s.SlowTick {
		cfg.SlowTick = true
	}
	th, err := trace.Hash(src)
	if err != nil {
		return nil, fmt.Errorf("experiments: hashing trace %s: %w", src.Name(), err)
	}
	key := sourceKey{hash: th, arch: arch, cfg: cfg}
	if r, ok := s.sources.get(key); ok {
		return r, nil
	}
	return s.sources.do(ctx, key, func(ctx context.Context) (*sim.Result, error) {
		simulate := func(ctx context.Context) (*sim.Result, error) {
			return s.simulateSource(ctx, src, arch, cfg)
		}
		if s.Disk == nil {
			return simulate(ctx)
		}
		return s.diskTier(ctx, th, string(arch), cfg, "", src.Name(), simulate)
	})
}

// cachedSimulate is the disk tier for workload runs: hash the program's
// trace (memoized per suite) and delegate to diskTier. A trace that cannot
// be hashed cannot be keyed, so it simulates uncached.
func (s *Suite) cachedSimulate(ctx context.Context, p *workload.Program, arch string, cfg sim.Config, extra string, simulate func(context.Context) (*sim.Result, error)) (*sim.Result, error) {
	if s.Disk == nil {
		return simulate(ctx)
	}
	th, err := s.traceHash(p)
	if err != nil {
		return simulate(ctx)
	}
	return s.diskTier(ctx, th, arch, cfg, extra, p.Name, simulate)
}

// diskTier consults the persistent store, falls back to the simulator, and
// persists what it produced. With VerifyFraction > 0 a deterministic sample
// of hits is re-simulated and byte-compared against the stored encoding; a
// mismatch is a hard error, never a silent repair.
func (s *Suite) diskTier(ctx context.Context, th [32]byte, arch string, cfg sim.Config, extra, name string, simulate func(context.Context) (*sim.Result, error)) (*sim.Result, error) {
	key := s.Disk.Key(th, arch, cfg, extra)
	if r, payload, ok := s.Disk.GetBytes(key); ok {
		if simcache.VerifySample(key, s.VerifyFraction) {
			s.Disk.CountVerified()
			fresh, err := simulate(ctx)
			if err != nil {
				return nil, err
			}
			freshBytes, err := simcache.EncodeResultBytes(fresh)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(freshBytes, payload) {
				return nil, fmt.Errorf("experiments: cache verification FAILED for %s %s on %s: stored result differs from re-simulation (key %s…); the store at %s holds results no current model produces — remove it and re-run", arch, cfg.String(), name, key[:16], s.Disk.Dir())
			}
		}
		return r, nil
	}
	r, err := simulate(ctx)
	if err != nil {
		return nil, err
	}
	// Persistence is best-effort: a full disk or read-only store must not
	// fail a simulation that already succeeded.
	_ = s.Disk.Put(key, r)
	return r, nil
}

// traceHash memoizes the content hash of each program's trace at the suite
// scale.
func (s *Suite) traceHash(p *workload.Program) ([32]byte, error) {
	s.mu.Lock()
	if h, ok := s.hashes[p.Name]; ok {
		s.mu.Unlock()
		return h, nil
	}
	s.mu.Unlock()
	h, err := p.CachedTraceHash(s.Scale)
	if err != nil {
		return [32]byte{}, err
	}
	s.mu.Lock()
	s.hashes[p.Name] = h
	s.mu.Unlock()
	return h, nil
}

// simulate performs one uncached simulator invocation of a workload program
// on a pooled machine.
func (s *Suite) simulate(ctx context.Context, p *workload.Program, arch Arch, cfg sim.Config) (*sim.Result, error) {
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	s.countSim()
	r, rerr := simulateArch(p.CachedTrace(s.Scale), arch, cfg)
	if rerr != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", arch, p.Name, rerr)
	}
	return r, nil
}

// simulateSource performs one uncached simulator invocation of an arbitrary
// trace on a pooled machine.
func (s *Suite) simulateSource(ctx context.Context, src *trace.Slice, arch Arch, cfg sim.Config) (*sim.Result, error) {
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	s.countSim()
	r, rerr := simulateArch(src, arch, cfg)
	if rerr != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", arch, src.Name(), rerr)
	}
	return r, nil
}

// Ideal returns the five-resource lower bound for the program (§5).
// Concurrent calls for the same program share a single computation; ctx
// bounds the wait on a coalesced in-flight one.
func (s *Suite) Ideal(ctx context.Context, p *workload.Program) ideal.Bound {
	if b, ok := s.ideals.get(p.Name); ok {
		return b
	}
	b, _ := s.ideals.do(ctx, p.Name, func(context.Context) (ideal.Bound, error) {
		return ideal.Compute(p.CachedTrace(s.Scale)), nil
	})
	return b
}

// Stats returns the trace statistics for the program at the suite scale,
// memoized on the program so figure drivers never re-drain a trace.
func (s *Suite) Stats(p *workload.Program) *trace.Stats {
	return p.CachedStats(s.Scale)
}

// flightGroup memoizes successful computations per key and deduplicates
// concurrent requests: duplicate calls for an in-flight key wait for the
// first caller instead of recomputing. Errors are not cached — a later
// retry gets a fresh attempt.
type flightGroup[K comparable, V any] struct {
	mu       *sync.Mutex
	cache    map[K]V
	inflight map[K]*flightCall[V]
}

// flightCall is one in-progress computation other callers can wait on.
type flightCall[V any] struct {
	done chan struct{} // closed when v/err are set
	v    V
	err  error
}

func newFlightGroup[K comparable, V any]() flightGroup[K, V] {
	return flightGroup[K, V]{
		mu:       new(sync.Mutex),
		cache:    make(map[K]V),
		inflight: make(map[K]*flightCall[V]),
	}
}

// get returns the cached value for key without joining or starting a
// computation. The figure drivers re-query every cell of a warmed grid, so
// this hit path stays free of the closure and flight bookkeeping do needs.
func (g *flightGroup[K, V]) get(key K) (V, bool) {
	g.mu.Lock()
	v, ok := g.cache[key]
	g.mu.Unlock()
	return v, ok
}

// do returns the cached value for key, joins an in-flight computation, or
// runs fn itself and publishes the outcome. Waiting is cancellable: a waiter
// whose context ends leaves with ctx.Err() while the computation proceeds
// for the callers that still want it. Conversely, when the computing caller
// is abandoned (its fn fails with a context error) surviving waiters retry
// the computation under their own context rather than inheriting a
// cancellation that was never theirs.
func (g *flightGroup[K, V]) do(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, error) {
	for {
		g.mu.Lock()
		if v, ok := g.cache[key]; ok {
			g.mu.Unlock()
			return v, nil
		}
		if c, ok := g.inflight[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if isContextErr(c.err) && ctx.Err() == nil {
					continue // abandoned winner; retry under our own context
				}
				return c.v, c.err
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			}
		}
		c := &flightCall[V]{done: make(chan struct{})}
		g.inflight[key] = c
		g.mu.Unlock()

		c.v, c.err = fn(ctx)

		g.mu.Lock()
		if c.err == nil {
			g.cache[key] = c.v
		}
		delete(g.inflight, key)
		g.mu.Unlock()
		close(c.done)
		return c.v, c.err
	}
}

// isContextErr reports whether err stems from context cancellation or
// deadline expiry.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// parallelCtx runs the jobs across the available CPUs. All jobs run to
// completion; every error is collected and the joined aggregate returned,
// so one failing configuration cannot mask the others. Jobs must be
// independent; the Suite cache serializes internally. Once the context
// ends, jobs not yet started are skipped (in-flight jobs run to
// completion — simulations are not interruptible mid-run) and the context
// error joins the aggregate.
func parallelCtx(ctx context.Context, jobs []func() error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan func() error)
	var mu sync.Mutex
	var errs []error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				if ctx.Err() != nil {
					continue // drain without running
				}
				if err := job(); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	return errors.Join(errs...)
}

// RunSpec is one (architecture, configuration) cell of a warm grid.
type RunSpec struct {
	Arch Arch
	Cfg  sim.Config
}

// WarmCtx pre-runs the (program × spec) grid, honoring context cancellation
// between jobs; it is the grid-shaped entry to RunBatch, which materializes
// traces across the CPUs, collapses duplicate cells, groups cells by trace
// and drains them longest-expected-first through the pooled machines.
func (s *Suite) WarmCtx(ctx context.Context, programs []*workload.Program, runs []RunSpec) error {
	jobs := make([]BatchJob, 0, len(programs)*len(runs))
	for _, p := range programs {
		for _, r := range runs {
			jobs = append(jobs, BatchJob{Program: p, Arch: r.Arch, Cfg: r.Cfg})
		}
	}
	_, err := s.RunBatch(ctx, jobs)
	return err
}
