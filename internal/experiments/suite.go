// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (program characteristics), Figure 1 (functional-unit
// usage of the reference architecture), Figures 3-5 (execution time,
// stall-cycle ratio and speedup across memory latencies), Figure 6 (AVDQ
// occupancy distributions), Figure 7 (bypass configurations) and Figure 8
// (memory-traffic reduction), plus the queue-sizing ablations discussed in
// the paper's prose (§5-§7).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"decvec/internal/dva"
	"decvec/internal/ideal"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/trace"
	"decvec/internal/workload"
)

// DefaultLatencies is the memory-latency sweep of Figures 3-5 and 7: the
// paper plots 1 and every multiple of ten up to 100 cycles.
var DefaultLatencies = []int64{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Figure1Latencies are the four latencies of the Figure 1 state breakdown.
var Figure1Latencies = []int64{1, 30, 70, 100}

// Figure6Latencies are the three latencies of the Figure 6 histograms.
var Figure6Latencies = []int64{1, 30, 100}

// Arch selects a simulator.
type Arch string

// Architectures.
const (
	REF Arch = "REF" // the reference (coupled) vector architecture
	DVA Arch = "DVA" // the decoupled vector architecture
)

// Suite runs simulations for the experiment drivers, caching results so
// that figures sharing runs (3, 4 and 5 use identical sweeps) simulate each
// configuration exactly once — also under concurrency: duplicate requests
// for an in-flight key wait for the first caller instead of re-simulating.
// A Suite is safe for concurrent use.
type Suite struct {
	// Scale is the trace scale factor (1.0 = default trace sizes).
	Scale float64

	// SlowTick forces every simulation the suite performs into the
	// per-cycle reference mode (sim.Config.SlowTick), whatever the
	// experiment requested. Results are identical either way — see
	// DESIGN.md "Idle-skip advancement" — so this exists for
	// `dvabench -slowtick` and for timing the two modes against each
	// other. Set it before the first Run; flipping it on a warm suite
	// would mix modes in the cache (harmlessly, but confusingly).
	SlowTick bool

	mu       sync.Mutex
	cache    map[suiteKey]*sim.Result
	inflight map[suiteKey]*flight
	ideal    map[string]ideal.Bound
	idealInF map[string]*flight

	sims int64 // simulations actually executed (see Simulations)
}

type suiteKey struct {
	program string
	arch    Arch
	cfg     sim.Config
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{} // closed when r/err (or bound) are set
	r    *sim.Result
	err  error
	b    ideal.Bound
}

// NewSuite returns an empty suite at the given trace scale.
func NewSuite(scale float64) *Suite {
	if scale <= 0 {
		scale = workload.DefaultScale
	}
	return &Suite{
		Scale:    scale,
		cache:    make(map[suiteKey]*sim.Result),
		inflight: make(map[suiteKey]*flight),
		ideal:    make(map[string]ideal.Bound),
		idealInF: make(map[string]*flight),
	}
}

// Simulations returns the number of simulator invocations the suite has
// performed; cache and singleflight hits do not count.
func (s *Suite) Simulations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sims
}

// Run simulates program p on the given architecture and configuration,
// returning a cached result when the identical run has been done before.
// Concurrent calls for the same key share a single simulation.
func (s *Suite) Run(p *workload.Program, arch Arch, cfg sim.Config) (*sim.Result, error) {
	if s.SlowTick {
		cfg.SlowTick = true
	}
	key := suiteKey{program: p.Name, arch: arch, cfg: cfg}
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.r, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.sims++
	s.mu.Unlock()

	f.r, f.err = s.simulate(p, arch, cfg)

	s.mu.Lock()
	// Errors are not cached: a later retry gets a fresh attempt.
	if f.err == nil {
		s.cache[key] = f.r
	}
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.r, f.err
}

// simulate performs one uncached simulator invocation.
func (s *Suite) simulate(p *workload.Program, arch Arch, cfg sim.Config) (*sim.Result, error) {
	tr := p.CachedTrace(s.Scale)
	var (
		r   *sim.Result
		err error
	)
	switch arch {
	case REF:
		r, err = ref.Run(tr, cfg)
	case DVA:
		r, err = dva.Run(tr, cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown architecture %q", arch)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", arch, p.Name, err)
	}
	return r, nil
}

// Ideal returns the five-resource lower bound for the program (§5).
// Concurrent calls for the same program share a single computation.
func (s *Suite) Ideal(p *workload.Program) ideal.Bound {
	s.mu.Lock()
	if b, ok := s.ideal[p.Name]; ok {
		s.mu.Unlock()
		return b
	}
	if f, ok := s.idealInF[p.Name]; ok {
		s.mu.Unlock()
		<-f.done
		return f.b
	}
	f := &flight{done: make(chan struct{})}
	s.idealInF[p.Name] = f
	s.mu.Unlock()

	f.b = ideal.Compute(p.CachedTrace(s.Scale))

	s.mu.Lock()
	s.ideal[p.Name] = f.b
	delete(s.idealInF, p.Name)
	s.mu.Unlock()
	close(f.done)
	return f.b
}

// Stats returns the trace statistics for the program at the suite scale.
func (s *Suite) Stats(p *workload.Program) *trace.Stats {
	return trace.Collect(p.CachedTrace(s.Scale))
}

// parallel runs the jobs across the available CPUs and returns the first
// error. Jobs must be independent; the Suite cache serializes internally.
func parallel(jobs []func() error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan func() error)
	errs := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				errs <- job()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// warm pre-runs all (program, arch, cfg) combinations in parallel so the
// figure drivers can then read everything from cache sequentially.
func (s *Suite) warm(programs []*workload.Program, runs []struct {
	arch Arch
	cfg  sim.Config
}) error {
	var jobs []func() error
	for _, p := range programs {
		for _, r := range runs {
			p, r := p, r
			jobs = append(jobs, func() error {
				_, err := s.Run(p, r.arch, r.cfg)
				return err
			})
		}
	}
	return parallel(jobs)
}
