// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (program characteristics), Figure 1 (functional-unit
// usage of the reference architecture), Figures 3-5 (execution time,
// stall-cycle ratio and speedup across memory latencies), Figure 6 (AVDQ
// occupancy distributions), Figure 7 (bypass configurations) and Figure 8
// (memory-traffic reduction), plus the queue-sizing ablations discussed in
// the paper's prose (§5-§7).
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"decvec/internal/dva"
	"decvec/internal/ideal"
	"decvec/internal/ooo"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/simcache"
	"decvec/internal/trace"
	"decvec/internal/workload"
)

// DefaultLatencies is the memory-latency sweep of Figures 3-5 and 7: the
// paper plots 1 and every multiple of ten up to 100 cycles.
var DefaultLatencies = []int64{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Figure1Latencies are the four latencies of the Figure 1 state breakdown.
var Figure1Latencies = []int64{1, 30, 70, 100}

// Figure6Latencies are the three latencies of the Figure 6 histograms.
var Figure6Latencies = []int64{1, 30, 100}

// Arch selects a simulator.
type Arch string

// Architectures.
const (
	REF Arch = "REF" // the reference (coupled) vector architecture
	DVA Arch = "DVA" // the decoupled vector architecture
)

// Suite runs simulations for the experiment drivers through a two-tier
// cache: an in-process result map (figures sharing runs — 3, 4 and 5 use
// identical sweeps — simulate each configuration exactly once, also under
// concurrency: duplicate requests for an in-flight key wait for the first
// caller), and optionally a persistent content-addressed store (Disk) that
// survives the process, so repeat invocations skip simulation entirely.
// A Suite is safe for concurrent use.
type Suite struct {
	// Scale is the trace scale factor (1.0 = default trace sizes).
	Scale float64

	// SlowTick forces every simulation the suite performs into the
	// per-cycle reference mode (sim.Config.SlowTick), whatever the
	// experiment requested. Results are identical either way — see
	// DESIGN.md "Idle-skip advancement" — so this exists for
	// `dvabench -slowtick` and for timing the two modes against each
	// other. Set it before the first Run; flipping it on a warm suite
	// would mix modes in the cache (harmlessly, but confusingly).
	SlowTick bool

	// Disk, when non-nil, is the persistent result cache consulted between
	// the in-memory map and the simulator (memory → disk → simulate).
	// Lookups are keyed on trace content, architecture, canonical config
	// and the generated model fingerprint, so entries from an edited model
	// can never hit. Set it before the first Run.
	Disk *simcache.Store

	// VerifyFraction re-simulates this fraction of disk hits (selected
	// deterministically per key) and fails the Run loudly if the stored
	// bytes differ from the fresh encoding. 1.0 audits every hit;
	// 0 (default) trusts the checksummed store.
	VerifyFraction float64

	runs    flightGroup[suiteKey, *sim.Result]
	oooRuns flightGroup[oooSuiteKey, *sim.Result]
	ideals  flightGroup[string, ideal.Bound]

	mu     sync.Mutex
	sims   int64               // simulations actually executed (see Simulations)
	hashes map[string][32]byte // trace content hash per program, at suite scale
}

type suiteKey struct {
	program string
	arch    Arch
	cfg     sim.Config
}

// oooSuiteKey keys the out-of-order runs, whose configuration extends
// sim.Config with the window and physical-register pool.
type oooSuiteKey struct {
	program string
	cfg     ooo.Config
}

// NewSuite returns an empty suite at the given trace scale.
func NewSuite(scale float64) *Suite {
	if scale <= 0 {
		scale = workload.DefaultScale
	}
	return &Suite{
		Scale:   scale,
		runs:    newFlightGroup[suiteKey, *sim.Result](),
		oooRuns: newFlightGroup[oooSuiteKey, *sim.Result](),
		ideals:  newFlightGroup[string, ideal.Bound](),
		hashes:  make(map[string][32]byte),
	}
}

// Simulations returns the number of simulator invocations the suite has
// performed; memory-cache, singleflight and disk-cache hits do not count.
// Cache-verification re-simulations do.
func (s *Suite) Simulations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sims
}

// CacheStats returns the persistent store's counters, or zeroes when the
// suite runs without one.
func (s *Suite) CacheStats() simcache.Stats {
	if s.Disk == nil {
		return simcache.Stats{}
	}
	return s.Disk.Stats()
}

// countSim tallies one real simulator invocation.
func (s *Suite) countSim() {
	s.mu.Lock()
	s.sims++
	s.mu.Unlock()
}

// Run simulates program p on the given architecture and configuration,
// returning a cached result when the identical run has been done before —
// in this process or, with a Disk store attached, in any previous one.
// Concurrent calls for the same key share a single simulation.
func (s *Suite) Run(p *workload.Program, arch Arch, cfg sim.Config) (*sim.Result, error) {
	if s.SlowTick {
		cfg.SlowTick = true
	}
	key := suiteKey{program: p.Name, arch: arch, cfg: cfg}
	return s.runs.do(key, func() (*sim.Result, error) {
		return s.cachedSimulate(p, string(arch), cfg, "", func() (*sim.Result, error) {
			return s.simulate(p, arch, cfg)
		})
	})
}

// RunOOO simulates program p on the out-of-order extension (§8) with the
// same two-tier caching discipline as Run.
func (s *Suite) RunOOO(p *workload.Program, cfg ooo.Config) (*sim.Result, error) {
	if s.SlowTick {
		cfg.SlowTick = true
	}
	key := oooSuiteKey{program: p.Name, cfg: cfg}
	return s.oooRuns.do(key, func() (*sim.Result, error) {
		extra := fmt.Sprintf("window=%d physregs=%d", cfg.Window, cfg.PhysRegs)
		return s.cachedSimulate(p, "OOO", cfg.Config, extra, func() (*sim.Result, error) {
			s.countSim()
			r, err := ooo.Run(p.CachedTrace(s.Scale), cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: OOO on %s: %w", p.Name, err)
			}
			return r, nil
		})
	})
}

// cachedSimulate is the disk tier: consult the persistent store, fall back
// to the simulator, persist what it produced. With VerifyFraction > 0 a
// deterministic sample of hits is re-simulated and byte-compared against the
// stored encoding; a mismatch is a hard error, never a silent repair.
func (s *Suite) cachedSimulate(p *workload.Program, arch string, cfg sim.Config, extra string, simulate func() (*sim.Result, error)) (*sim.Result, error) {
	if s.Disk == nil {
		return simulate()
	}
	th, err := s.traceHash(p)
	if err != nil {
		// A trace that cannot be hashed cannot be keyed; simulate uncached.
		return simulate()
	}
	key := s.Disk.Key(th, arch, cfg, extra)
	if r, payload, ok := s.Disk.GetBytes(key); ok {
		if simcache.VerifySample(key, s.VerifyFraction) {
			s.Disk.CountVerified()
			fresh, err := simulate()
			if err != nil {
				return nil, err
			}
			freshBytes, err := simcache.EncodeResultBytes(fresh)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(freshBytes, payload) {
				return nil, fmt.Errorf("experiments: cache verification FAILED for %s %s on %s: stored result differs from re-simulation (key %s…); the store at %s holds results no current model produces — remove it and re-run", arch, cfg.String(), p.Name, key[:16], s.Disk.Dir())
			}
		}
		return r, nil
	}
	r, err := simulate()
	if err != nil {
		return nil, err
	}
	// Persistence is best-effort: a full disk or read-only store must not
	// fail a simulation that already succeeded.
	_ = s.Disk.Put(key, r)
	return r, nil
}

// traceHash memoizes the content hash of each program's trace at the suite
// scale.
func (s *Suite) traceHash(p *workload.Program) ([32]byte, error) {
	s.mu.Lock()
	if h, ok := s.hashes[p.Name]; ok {
		s.mu.Unlock()
		return h, nil
	}
	s.mu.Unlock()
	h, err := p.CachedTraceHash(s.Scale)
	if err != nil {
		return [32]byte{}, err
	}
	s.mu.Lock()
	s.hashes[p.Name] = h
	s.mu.Unlock()
	return h, nil
}

// simulate performs one uncached simulator invocation.
func (s *Suite) simulate(p *workload.Program, arch Arch, cfg sim.Config) (*sim.Result, error) {
	s.countSim()
	tr := p.CachedTrace(s.Scale)
	var (
		r   *sim.Result
		err error
	)
	switch arch {
	case REF:
		r, err = ref.Run(tr, cfg)
	case DVA:
		r, err = dva.Run(tr, cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown architecture %q", arch)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", arch, p.Name, err)
	}
	return r, nil
}

// Ideal returns the five-resource lower bound for the program (§5).
// Concurrent calls for the same program share a single computation.
func (s *Suite) Ideal(p *workload.Program) ideal.Bound {
	b, _ := s.ideals.do(p.Name, func() (ideal.Bound, error) {
		return ideal.Compute(p.CachedTrace(s.Scale)), nil
	})
	return b
}

// Stats returns the trace statistics for the program at the suite scale,
// memoized on the program so figure drivers never re-drain a trace.
func (s *Suite) Stats(p *workload.Program) *trace.Stats {
	return p.CachedStats(s.Scale)
}

// flightGroup memoizes successful computations per key and deduplicates
// concurrent requests: duplicate calls for an in-flight key wait for the
// first caller instead of recomputing. Errors are not cached — a later
// retry gets a fresh attempt.
type flightGroup[K comparable, V any] struct {
	mu       *sync.Mutex
	cache    map[K]V
	inflight map[K]*flightCall[V]
}

// flightCall is one in-progress computation other callers can wait on.
type flightCall[V any] struct {
	done chan struct{} // closed when v/err are set
	v    V
	err  error
}

func newFlightGroup[K comparable, V any]() flightGroup[K, V] {
	return flightGroup[K, V]{
		mu:       new(sync.Mutex),
		cache:    make(map[K]V),
		inflight: make(map[K]*flightCall[V]),
	}
}

// do returns the cached value for key, joins an in-flight computation, or
// runs fn itself and publishes the outcome.
func (g *flightGroup[K, V]) do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if v, ok := g.cache[key]; ok {
		g.mu.Unlock()
		return v, nil
	}
	if c, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.v, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	c.v, c.err = fn()

	g.mu.Lock()
	if c.err == nil {
		g.cache[key] = c.v
	}
	delete(g.inflight, key)
	g.mu.Unlock()
	close(c.done)
	return c.v, c.err
}

// parallel runs the jobs across the available CPUs. All jobs run to
// completion; every error is collected and the joined aggregate returned,
// so one failing configuration cannot mask the others. Jobs must be
// independent; the Suite cache serializes internally.
func parallel(jobs []func() error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan func() error)
	var mu sync.Mutex
	var errs []error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				if err := job(); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return errors.Join(errs...)
}

// warm pre-runs all (program, arch, cfg) combinations in parallel so the
// figure drivers can then read everything from cache sequentially. Jobs are
// submitted longest-expected-first — cost proxied by trace length × memory
// latency — so the slowest simulations start immediately and the short ones
// fill the remaining worker capacity, instead of a grid-order tail where one
// late-submitted long run idles every other CPU.
func (s *Suite) warm(programs []*workload.Program, runs []struct {
	arch Arch
	cfg  sim.Config
}) error {
	type job struct {
		cost int64
		run  func() error
	}
	jobs := make([]job, 0, len(programs)*len(runs))
	for _, p := range programs {
		length := int64(p.CachedTrace(s.Scale).Len())
		for _, r := range runs {
			p, r := p, r
			jobs = append(jobs, job{
				cost: length * r.cfg.MemLatency,
				run: func() error {
					_, err := s.Run(p, r.arch, r.cfg)
					return err
				},
			})
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].cost > jobs[j].cost })
	fns := make([]func() error, len(jobs))
	for i, j := range jobs {
		fns[i] = j.run
	}
	return parallel(fns)
}
