package experiments

import (
	"context"

	"decvec/internal/sim"
	"decvec/internal/workload"
)

// ConflictRow is one (program, jitter) point of the multiprocessor-conflict
// study.
type ConflictRow struct {
	Name    string
	Jitter  int64
	Ref     int64
	Dva     int64
	Speedup float64
}

// ConflictsResult is the extension study motivated by the paper's §1: in
// vector multiprocessors, memory latency varies with conflicts in the
// memory modules and the interconnection network; decoupling should absorb
// that variability the way it absorbs fixed latency.
type ConflictsResult struct {
	BaseLatency int64
	Jitters     []int64
	Rows        []ConflictRow
}

// ExtensionConflicts sweeps the per-access latency jitter at a fixed base
// latency and compares the two architectures under it.
func ExtensionConflicts(ctx context.Context, s *Suite, base int64, jitters []int64) (*ConflictsResult, error) {
	if base <= 0 {
		base = 20
	}
	if len(jitters) == 0 {
		jitters = []int64{0, 30, 60, 120}
	}
	progs := workload.Simulated()
	var runs []RunSpec
	mk := func(j int64) sim.Config {
		cfg := sim.DefaultConfig(base)
		cfg.LatencyJitter = j
		return cfg
	}
	for _, j := range jitters {
		runs = append(runs,
			RunSpec{REF, mk(j)},
			RunSpec{DVA, mk(j)})
	}
	if err := s.WarmCtx(ctx, progs, runs); err != nil {
		return nil, err
	}
	res := &ConflictsResult{BaseLatency: base, Jitters: jitters}
	for _, p := range progs {
		for _, j := range jitters {
			rr, err := s.RunCtx(ctx, p, REF, mk(j))
			if err != nil {
				return nil, err
			}
			rd, err := s.RunCtx(ctx, p, DVA, mk(j))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ConflictRow{
				Name:    p.Name,
				Jitter:  j,
				Ref:     rr.Cycles,
				Dva:     rd.Cycles,
				Speedup: float64(rr.Cycles) / float64(rd.Cycles),
			})
		}
	}
	return res, nil
}
