package decvec_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"decvec"
)

// Recording must be strictly passive: a run with a recorder attached takes
// identical decisions and produces bit-identical results. This is the
// observability layer's core invariant, checked per architecture.
func TestRecordingDoesNotPerturbResults(t *testing.T) {
	w, err := decvec.LoadWorkload("BDNA")
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"REF", "DVA", "BYP"} {
		t.Run(arch, func(t *testing.T) {
			cfg := decvec.DefaultConfig(30)
			plain, err := w.RunRecorded(arch, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			rec := decvec.NewRecorder()
			recorded, err := w.RunRecorded(arch, cfg, rec)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Cycles != recorded.Cycles {
				t.Errorf("cycles differ: %d without recorder, %d with", plain.Cycles, recorded.Cycles)
			}
			if plain.States != recorded.States {
				t.Error("state breakdown differs with recorder attached")
			}
			if plain.Stalls != recorded.Stalls {
				t.Error("stall counts differ with recorder attached")
			}
			if plain.Traffic != recorded.Traffic ||
				plain.Bypasses != recorded.Bypasses ||
				plain.Flushes != recorded.Flushes ||
				plain.ScalarCacheHits != recorded.ScalarCacheHits ||
				plain.ScalarCacheMisses != recorded.ScalarCacheMisses {
				t.Error("traffic/bypass/flush counters differ with recorder attached")
			}
			if rec.Len() == 0 {
				t.Fatal("recorder captured no events")
			}
		})
	}
}

// The recorded stream must be consistent with the result's own counters.
func TestRecordedStreamMatchesCounters(t *testing.T) {
	w, err := decvec.LoadWorkload("TRFD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := decvec.DefaultConfig(30)
	rec := decvec.NewRecorder()
	res, err := w.RunRecorded("BYP", cfg, rec)
	if err != nil {
		t.Fatal(err)
	}

	// Every bypass and flush in the counters appears in the stream.
	if got := rec.Count(decvec.EvBypass); got != res.Bypasses {
		t.Errorf("bypass events = %d, counter = %d", got, res.Bypasses)
	}
	if got := rec.Count(decvec.EvFlush); got != res.Flushes {
		t.Errorf("flush events = %d, counter = %d", got, res.Flushes)
	}
	// Stall events, expanded by their coalesced length, sum to the stall
	// counters.
	var stallCycles int64
	for _, e := range rec.Events() {
		if e.Kind == decvec.EvStall {
			stallCycles += e.N
		}
	}
	if want := res.Stalls.Total(); stallCycles != want {
		t.Errorf("stall event cycles = %d, counters total %d", stallCycles, want)
	}
	// Queue pushes in the stream match the queue stats.
	pushes := map[string]int64{}
	for _, e := range rec.Events() {
		if e.Kind == decvec.EvQueuePush {
			pushes[e.Queue]++
		}
	}
	for _, q := range res.Queues {
		if pushes[q.Name] != q.Pushes {
			t.Errorf("queue %s: %d push events, stats say %d", q.Name, pushes[q.Name], q.Pushes)
		}
	}
	// Events are cycle-ordered per unit... globally they are emitted in
	// step order within a cycle, so cycles must be non-decreasing except
	// for coalesced stalls (whose Cycle is the run's start). Check the
	// weaker global invariant: no event is stamped beyond the run length.
	for _, e := range rec.Events() {
		if e.Cycle < 0 || e.Cycle > res.Cycles+1 {
			t.Fatalf("event outside the run: %+v (run is %d cycles)", e, res.Cycles)
		}
	}
}

// MetricsJSON must round-trip as valid JSON carrying the per-reason stalls
// and per-queue occupancy.
func TestMetricsJSONSchema(t *testing.T) {
	w, err := decvec.LoadWorkload("FLO52")
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunDVA(decvec.DefaultConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	b, err := decvec.MetricsJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Arch   string `json:"arch"`
		Cycles int64  `json:"cycles"`
		Stalls []struct {
			Reason string `json:"reason"`
			Proc   string `json:"proc"`
			Cycles int64  `json:"cycles"`
		} `json:"stalls"`
		ProcStalls []struct {
			Proc   string `json:"proc"`
			Cycles int64  `json:"cycles"`
		} `json:"procStalls"`
		Queues []struct {
			Name     string  `json:"name"`
			Cap      int     `json:"cap"`
			Pressure float64 `json:"pressure"`
		} `json:"queues"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Arch != "DVA" || doc.Cycles != res.Cycles {
		t.Errorf("header wrong: %+v", doc)
	}
	if len(doc.Stalls) == 0 || len(doc.ProcStalls) == 0 {
		t.Error("stall attribution missing from metrics")
	}
	if len(doc.Queues) != len(res.Queues) {
		t.Errorf("got %d queues, want %d", len(doc.Queues), len(res.Queues))
	}
	for _, q := range doc.Queues {
		if q.Cap <= 0 || q.Pressure < 0 || q.Pressure > 1 {
			t.Errorf("implausible queue metric: %+v", q)
		}
	}
}

// The event trace must be a valid Trace Event Format JSON document.
func TestTraceEventsValidJSON(t *testing.T) {
	w, err := decvec.LoadWorkload("TRFD")
	if err != nil {
		t.Fatal(err)
	}
	rec := decvec.NewRecorder()
	res, err := w.RunRecorded("DVA", decvec.DefaultConfig(30), rec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := decvec.WriteTraceEvents(&buf, res, rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= rec.Len() {
		// metadata events come on top of the recorded ones
		t.Errorf("trace has %d entries for %d recorded events", len(doc.TraceEvents), rec.Len())
	}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		phases[e.Ph] = true
		switch e.Ph {
		case "M", "X", "C", "i":
		default:
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
	}
	for _, want := range []string{"M", "X", "C"} {
		if !phases[want] {
			t.Errorf("no %q events in trace", want)
		}
	}
}

// The stall and queue report tables must render every nonzero reason and
// every queue.
func TestStallAndQueueTables(t *testing.T) {
	w, err := decvec.LoadWorkload("TRFD")
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunDVA(decvec.DefaultConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	st := decvec.StallTable(res)
	for _, sc := range res.Stalls.Nonzero() {
		if !bytes.Contains([]byte(st), []byte(sc.Reason.String())) {
			t.Errorf("stall table missing %s:\n%s", sc.Reason, st)
		}
	}
	qt := decvec.QueueTable(res)
	for _, q := range res.Queues {
		if !bytes.Contains([]byte(qt), []byte(q.Name)) {
			t.Errorf("queue table missing %s:\n%s", q.Name, qt)
		}
	}
}
