package decvec

import (
	"reflect"
	"testing"

	"decvec/internal/dva"
	"decvec/internal/ooo"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/workload"
)

// These tests pin the arena Reset contract (internal/sim/arena.go): a pooled
// Runner reused across runs must be observationally bit-identical to a fresh
// machine. Each core walks the same (program x latency x queue-size) grid as
// the idle-skip suite with a single shared Runner, so every step resets the
// machine away from a different configuration (different queue capacities,
// port counts, histogram sizes) — the hostile case for stale-state leaks.
// Every grid point runs twice on the pooled machine, so same-geometry reuse
// (where reset takes every "reuse in place" branch) is pinned too.

// assertPooledIdentical fails the test unless a pooled run matches the fresh
// run bit-for-bit, including derived metrics JSON.
func assertPooledIdentical(t *testing.T, label string, fresh, pooled *sim.Result) {
	t.Helper()
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("%s: pooled result differs from fresh:\nfresh:  %+v\npooled: %+v", label, fresh, pooled)
	}
}

// TestDVAArenaReuseEquivalence runs the DVA/BYP grid on one shared Runner,
// comparing every reused run (results and event streams) against a fresh
// machine.
func TestDVAArenaReuseEquivalence(t *testing.T) {
	runner := dva.NewRunner()
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			for ci, cfg := range dvaGrid(lat) {
				src := p.CachedTrace(equivalenceScale)
				name := testName(p.Name, lat, ci)

				freshRec := sim.NewRecorder()
				fresh, err := dva.RunRecorded(src, cfg, freshRec)
				if err != nil {
					t.Fatalf("%s: fresh run: %v", name, err)
				}

				var first, second sim.Result
				firstRec, secondRec := sim.NewRecorder(), sim.NewRecorder()
				if err := runner.RunRecordedInto(&first, src, cfg, firstRec); err != nil {
					t.Fatalf("%s: pooled run 1: %v", name, err)
				}
				if err := runner.RunRecordedInto(&second, src, cfg, secondRec); err != nil {
					t.Fatalf("%s: pooled run 2: %v", name, err)
				}

				assertPooledIdentical(t, name+"/run1", fresh, &first)
				assertPooledIdentical(t, name+"/run2", fresh, &second)
				assertSameEvents(t, freshRec, firstRec)
				assertSameEvents(t, freshRec, secondRec)
			}
		}
	}
}

// TestREFArenaReuseEquivalence is the REF-core arena-reuse sweep.
func TestREFArenaReuseEquivalence(t *testing.T) {
	runner := ref.NewRunner()
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			src := p.CachedTrace(equivalenceScale)
			name := testName(p.Name, lat, 0)
			cfg := sim.DefaultConfig(lat)

			freshRec := sim.NewRecorder()
			fresh, err := ref.RunRecorded(src, cfg, freshRec)
			if err != nil {
				t.Fatalf("%s: fresh run: %v", name, err)
			}

			var first, second sim.Result
			firstRec, secondRec := sim.NewRecorder(), sim.NewRecorder()
			if err := runner.RunRecordedInto(&first, src, cfg, firstRec); err != nil {
				t.Fatalf("%s: pooled run 1: %v", name, err)
			}
			if err := runner.RunRecordedInto(&second, src, cfg, secondRec); err != nil {
				t.Fatalf("%s: pooled run 2: %v", name, err)
			}

			assertPooledIdentical(t, name+"/run1", fresh, &first)
			assertPooledIdentical(t, name+"/run2", fresh, &second)
			assertSameEvents(t, freshRec, firstRec)
			assertSameEvents(t, freshRec, secondRec)
		}
	}
}

// TestOOOArenaReuseEquivalence is the OOO-core arena-reuse sweep (results
// only; the OOO core has no event recorder). Window and physical-register
// shapes vary between grid steps, so the issue window ring and the value
// arena are both resized and reused along the walk.
func TestOOOArenaReuseEquivalence(t *testing.T) {
	shapes := []struct{ window, phys int }{
		{1, 8}, {4, 16}, {16, 32},
	}
	runner := ooo.NewRunner()
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			for si, sh := range shapes {
				src := p.CachedTrace(equivalenceScale)
				name := testName(p.Name, lat, si)
				cfg := ooo.DefaultConfig(lat)
				cfg.Window = sh.window
				cfg.PhysRegs = sh.phys

				fresh, err := ooo.Run(src, cfg)
				if err != nil {
					t.Fatalf("%s: fresh run: %v", name, err)
				}

				var first, second sim.Result
				if err := runner.RunInto(&first, src, cfg); err != nil {
					t.Fatalf("%s: pooled run 1: %v", name, err)
				}
				if err := runner.RunInto(&second, src, cfg); err != nil {
					t.Fatalf("%s: pooled run 2: %v", name, err)
				}

				assertPooledIdentical(t, name+"/run1", fresh, &first)
				assertPooledIdentical(t, name+"/run2", fresh, &second)
			}
		}
	}
}

// TestDVAWakeWheelStaleStateReuse pins the wake scheduler's slice of the
// Reset contract with same-geometry reuse, where reset takes every
// "reuse in place" branch and nothing is rebuilt. A finished run parks the
// wheel with every unit asleep far in the future, dirty bits folded, stall
// caches and last-step cycles at end-of-trace values; the next run — a
// different program under the identical config — must not inherit any of it
// (a stale wake time would let a unit oversleep, a stale dirty bit would
// step it spuriously, stale stall debt would corrupt the counters).
// Alternating recorder-off and recorder-on runs crosses the two stall
// accounting regimes on the same pooled machine: the off-run leaves debt
// bookkeeping (lastStep) behind, the on-run leaves replayed per-cycle
// streams, and each must reset away byte-exactly for the other.
func TestDVAWakeWheelStaleStateReuse(t *testing.T) {
	progs := workload.Simulated()
	if len(progs) < 2 {
		t.Fatal("need at least two simulated programs")
	}
	// First and last differ most in dispatch/memory character, maximizing
	// how wrong a carried-over wake wheel would be.
	pa, pb := progs[0], progs[len(progs)-1]
	cfg := sim.DefaultConfig(30)
	runner := dva.NewRunner()

	for round, p := range []*workload.Program{pa, pb, pa, pb} {
		src := p.CachedTrace(equivalenceScale)
		name := testName(p.Name, 30, round)
		if round%2 == 0 {
			// Recorder-off: bulk stall-debt accounting.
			fresh, err := dva.Run(src, cfg)
			if err != nil {
				t.Fatalf("%s: fresh run: %v", name, err)
			}
			var pooled sim.Result
			if err := runner.RunInto(&pooled, src, cfg); err != nil {
				t.Fatalf("%s: pooled run: %v", name, err)
			}
			assertPooledIdentical(t, name+"/rec-off", fresh, &pooled)
		} else {
			// Recorder-on: per-cycle replay, event streams compared too.
			freshRec := sim.NewRecorder()
			fresh, err := dva.RunRecorded(src, cfg, freshRec)
			if err != nil {
				t.Fatalf("%s: fresh run: %v", name, err)
			}
			var pooled sim.Result
			pooledRec := sim.NewRecorder()
			if err := runner.RunRecordedInto(&pooled, src, cfg, pooledRec); err != nil {
				t.Fatalf("%s: pooled run: %v", name, err)
			}
			assertPooledIdentical(t, name+"/rec-on", fresh, &pooled)
			assertSameEvents(t, freshRec, pooledRec)
		}
	}
}

// TestOOOWakeWheelStaleStateReuse is the OOO-core counterpart: same-geometry
// cross-trace reuse of the three-unit wheel (fetch/issue/retire wake times
// and action-graph dirty bits). The OOO core has no recorder, so results
// alone carry the comparison.
func TestOOOWakeWheelStaleStateReuse(t *testing.T) {
	progs := workload.Simulated()
	if len(progs) < 2 {
		t.Fatal("need at least two simulated programs")
	}
	pa, pb := progs[0], progs[len(progs)-1]
	cfg := ooo.DefaultConfig(30)
	runner := ooo.NewRunner()

	for round, p := range []*workload.Program{pa, pb, pa, pb} {
		src := p.CachedTrace(equivalenceScale)
		name := testName(p.Name, 30, round)
		fresh, err := ooo.Run(src, cfg)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", name, err)
		}
		var pooled sim.Result
		if err := runner.RunInto(&pooled, src, cfg); err != nil {
			t.Fatalf("%s: pooled run: %v", name, err)
		}
		assertPooledIdentical(t, name, fresh, &pooled)
	}
}

// TestArenaReuseSlowTick crosses the two contracts: a pooled machine in
// SlowTick mode must still match a fresh fast-path machine after normalize.
func TestArenaReuseSlowTick(t *testing.T) {
	p := workload.Simulated()[0]
	src := p.CachedTrace(equivalenceScale)
	cfg := sim.DefaultConfig(30)

	fresh, err := dva.Run(src, cfg)
	if err != nil {
		t.Fatalf("fresh fast run: %v", err)
	}

	runner := dva.NewRunner()
	slowCfg := cfg
	slowCfg.SlowTick = true
	var warm, pooled sim.Result
	if err := runner.RunInto(&warm, src, slowCfg); err != nil {
		t.Fatalf("pooled warm-up run: %v", err)
	}
	if err := runner.RunInto(&pooled, src, slowCfg); err != nil {
		t.Fatalf("pooled slow run: %v", err)
	}
	assertIdentical(t, fresh, &pooled)
}
