package decvec

import (
	"reflect"
	"testing"

	"decvec/internal/dva"
	"decvec/internal/ooo"
	"decvec/internal/ref"
	"decvec/internal/sim"
	"decvec/internal/workload"
)

// These tests pin the arena Reset contract (internal/sim/arena.go): a pooled
// Runner reused across runs must be observationally bit-identical to a fresh
// machine. Each core walks the same (program x latency x queue-size) grid as
// the idle-skip suite with a single shared Runner, so every step resets the
// machine away from a different configuration (different queue capacities,
// port counts, histogram sizes) — the hostile case for stale-state leaks.
// Every grid point runs twice on the pooled machine, so same-geometry reuse
// (where reset takes every "reuse in place" branch) is pinned too.

// assertPooledIdentical fails the test unless a pooled run matches the fresh
// run bit-for-bit, including derived metrics JSON.
func assertPooledIdentical(t *testing.T, label string, fresh, pooled *sim.Result) {
	t.Helper()
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("%s: pooled result differs from fresh:\nfresh:  %+v\npooled: %+v", label, fresh, pooled)
	}
}

// TestDVAArenaReuseEquivalence runs the DVA/BYP grid on one shared Runner,
// comparing every reused run (results and event streams) against a fresh
// machine.
func TestDVAArenaReuseEquivalence(t *testing.T) {
	runner := dva.NewRunner()
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			for ci, cfg := range dvaGrid(lat) {
				src := p.CachedTrace(equivalenceScale)
				name := testName(p.Name, lat, ci)

				freshRec := sim.NewRecorder()
				fresh, err := dva.RunRecorded(src, cfg, freshRec)
				if err != nil {
					t.Fatalf("%s: fresh run: %v", name, err)
				}

				var first, second sim.Result
				firstRec, secondRec := sim.NewRecorder(), sim.NewRecorder()
				if err := runner.RunRecordedInto(&first, src, cfg, firstRec); err != nil {
					t.Fatalf("%s: pooled run 1: %v", name, err)
				}
				if err := runner.RunRecordedInto(&second, src, cfg, secondRec); err != nil {
					t.Fatalf("%s: pooled run 2: %v", name, err)
				}

				assertPooledIdentical(t, name+"/run1", fresh, &first)
				assertPooledIdentical(t, name+"/run2", fresh, &second)
				assertSameEvents(t, freshRec, firstRec)
				assertSameEvents(t, freshRec, secondRec)
			}
		}
	}
}

// TestREFArenaReuseEquivalence is the REF-core arena-reuse sweep.
func TestREFArenaReuseEquivalence(t *testing.T) {
	runner := ref.NewRunner()
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			src := p.CachedTrace(equivalenceScale)
			name := testName(p.Name, lat, 0)
			cfg := sim.DefaultConfig(lat)

			freshRec := sim.NewRecorder()
			fresh, err := ref.RunRecorded(src, cfg, freshRec)
			if err != nil {
				t.Fatalf("%s: fresh run: %v", name, err)
			}

			var first, second sim.Result
			firstRec, secondRec := sim.NewRecorder(), sim.NewRecorder()
			if err := runner.RunRecordedInto(&first, src, cfg, firstRec); err != nil {
				t.Fatalf("%s: pooled run 1: %v", name, err)
			}
			if err := runner.RunRecordedInto(&second, src, cfg, secondRec); err != nil {
				t.Fatalf("%s: pooled run 2: %v", name, err)
			}

			assertPooledIdentical(t, name+"/run1", fresh, &first)
			assertPooledIdentical(t, name+"/run2", fresh, &second)
			assertSameEvents(t, freshRec, firstRec)
			assertSameEvents(t, freshRec, secondRec)
		}
	}
}

// TestOOOArenaReuseEquivalence is the OOO-core arena-reuse sweep (results
// only; the OOO core has no event recorder). Window and physical-register
// shapes vary between grid steps, so the issue window ring and the value
// arena are both resized and reused along the walk.
func TestOOOArenaReuseEquivalence(t *testing.T) {
	shapes := []struct{ window, phys int }{
		{1, 8}, {4, 16}, {16, 32},
	}
	runner := ooo.NewRunner()
	for _, p := range workload.Simulated() {
		for _, lat := range equivalenceLatencies {
			for si, sh := range shapes {
				src := p.CachedTrace(equivalenceScale)
				name := testName(p.Name, lat, si)
				cfg := ooo.DefaultConfig(lat)
				cfg.Window = sh.window
				cfg.PhysRegs = sh.phys

				fresh, err := ooo.Run(src, cfg)
				if err != nil {
					t.Fatalf("%s: fresh run: %v", name, err)
				}

				var first, second sim.Result
				if err := runner.RunInto(&first, src, cfg); err != nil {
					t.Fatalf("%s: pooled run 1: %v", name, err)
				}
				if err := runner.RunInto(&second, src, cfg); err != nil {
					t.Fatalf("%s: pooled run 2: %v", name, err)
				}

				assertPooledIdentical(t, name+"/run1", fresh, &first)
				assertPooledIdentical(t, name+"/run2", fresh, &second)
			}
		}
	}
}

// TestArenaReuseSlowTick crosses the two contracts: a pooled machine in
// SlowTick mode must still match a fresh fast-path machine after normalize.
func TestArenaReuseSlowTick(t *testing.T) {
	p := workload.Simulated()[0]
	src := p.CachedTrace(equivalenceScale)
	cfg := sim.DefaultConfig(30)

	fresh, err := dva.Run(src, cfg)
	if err != nil {
		t.Fatalf("fresh fast run: %v", err)
	}

	runner := dva.NewRunner()
	slowCfg := cfg
	slowCfg.SlowTick = true
	var warm, pooled sim.Result
	if err := runner.RunInto(&warm, src, slowCfg); err != nil {
		t.Fatalf("pooled warm-up run: %v", err)
	}
	if err := runner.RunInto(&pooled, src, slowCfg); err != nil {
		t.Fatalf("pooled slow run: %v", err)
	}
	assertIdentical(t, fresh, &pooled)
}
